//! Quality metrics for approximate arithmetic.

use std::fmt;

/// Standard approximate-computing quality metrics of an adder, gathered by
/// either simulator.
///
/// `error_probability` is the probability the full output value (sum bits +
/// final carry) differs from the exact binary sum — the quantity the paper's
/// simulations measure. The error-distance statistics quantify *how wrong*
/// erroneous outputs are, which matters for error-resilient applications
/// (image/video processing etc. from the paper's motivation) even though the
/// paper itself reports only the error probability.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorMetrics {
    /// Probability that the output value is wrong.
    pub error_probability: f64,
    /// Mean signed error distance `E[approx − exact]` (bias).
    pub mean_error_distance: f64,
    /// Mean absolute error distance `E[|approx − exact|]` (MED).
    pub mean_absolute_error_distance: f64,
    /// Worst observed absolute error distance.
    pub max_absolute_error_distance: u64,
}

/// Weighted accumulator used by both simulators to build [`ErrorMetrics`].
#[derive(Debug, Clone, Default)]
pub(crate) struct MetricsAccumulator {
    weight_total: f64,
    weight_error: f64,
    weighted_ed: f64,
    weighted_abs_ed: f64,
    max_abs_ed: u64,
}

impl MetricsAccumulator {
    /// Records one (possibly weighted) case with signed error distance `ed`.
    pub(crate) fn record(&mut self, weight: f64, ed: i64) {
        self.weight_total += weight;
        if ed != 0 {
            self.weight_error += weight;
        }
        self.weighted_ed += weight * ed as f64;
        self.weighted_abs_ed += weight * ed.unsigned_abs() as f64;
        if weight > 0.0 {
            self.max_abs_ed = self.max_abs_ed.max(ed.unsigned_abs());
        }
    }

    /// Adds `weight` to the total mass without recording any error — the
    /// bitsliced kernels account a whole 64-lane batch (correct *and*
    /// erroneous lanes) in one call, then settle the erroneous lanes as an
    /// aggregate via [`record_error_block`](Self::record_error_block).
    pub(crate) fn add_bulk_weight(&mut self, weight: f64) {
        self.weight_total += weight;
    }

    /// Records a whole block of erroneous cases whose aggregate moments were
    /// pre-summed by the caller (in plane space by the Monte-Carlo kernel's
    /// per-batch [`error_stats64`](sealpaa_cells::error_stats64) call, or
    /// lane-by-lane with a factored batch weight by the exhaustive kernel),
    /// so the accumulator takes one update per 64-lane batch instead of one
    /// per erroneous lane. The block's weight must already be part of the
    /// total via [`add_bulk_weight`](Self::add_bulk_weight).
    pub(crate) fn record_error_block(
        &mut self,
        error_weight: f64,
        sum_ed: f64,
        sum_abs_ed: f64,
        max_abs_ed: u64,
    ) {
        self.weight_error += error_weight;
        self.weighted_ed += sum_ed;
        self.weighted_abs_ed += sum_abs_ed;
        self.max_abs_ed = self.max_abs_ed.max(max_abs_ed);
    }

    /// Folds another accumulator's tallies into this one (used to combine
    /// per-thread Monte-Carlo chunks).
    pub(crate) fn merge(&mut self, other: MetricsAccumulator) {
        self.weight_total += other.weight_total;
        self.weight_error += other.weight_error;
        self.weighted_ed += other.weighted_ed;
        self.weighted_abs_ed += other.weighted_abs_ed;
        self.max_abs_ed = self.max_abs_ed.max(other.max_abs_ed);
    }

    pub(crate) fn finish(self) -> ErrorMetrics {
        if self.weight_total == 0.0 {
            return ErrorMetrics::default();
        }
        ErrorMetrics {
            error_probability: self.weight_error / self.weight_total,
            mean_error_distance: self.weighted_ed / self.weight_total,
            mean_absolute_error_distance: self.weighted_abs_ed / self.weight_total,
            max_absolute_error_distance: self.max_abs_ed,
        }
    }
}

impl fmt::Display for ErrorMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "P(err)={:.6} MED={:.4} bias={:+.4} maxED={}",
            self.error_probability,
            self.mean_absolute_error_distance,
            self.mean_error_distance,
            self.max_absolute_error_distance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_computes_weighted_means() {
        let mut acc = MetricsAccumulator::default();
        acc.record(0.5, 0);
        acc.record(0.25, 4);
        acc.record(0.25, -2);
        let m = acc.finish();
        assert!((m.error_probability - 0.5).abs() < 1e-12);
        assert!((m.mean_error_distance - (0.25 * 4.0 - 0.25 * 2.0)).abs() < 1e-12);
        assert!((m.mean_absolute_error_distance - (0.25 * 4.0 + 0.25 * 2.0)).abs() < 1e-12);
        assert_eq!(m.max_absolute_error_distance, 4);
    }

    #[test]
    fn merge_combines_chunks_like_one_pass() {
        let mut whole = MetricsAccumulator::default();
        let mut left = MetricsAccumulator::default();
        let mut right = MetricsAccumulator::default();
        for (i, ed) in [(0u64, 0i64), (1, 3), (2, -2), (3, 0), (4, 7)] {
            whole.record(1.0, ed);
            if i < 2 {
                left.record(1.0, ed);
            } else {
                right.record(1.0, ed);
            }
        }
        left.merge(right);
        assert_eq!(left.finish(), whole.finish());
    }

    #[test]
    fn bulk_plus_error_block_equals_per_case_records() {
        // The bitsliced decomposition (batch weight + aggregated erroneous
        // lanes) must produce the same metrics as recording every case
        // individually.
        let cases = [(1.0f64, 0i64), (1.0, 0), (1.0, 3), (1.0, -2), (1.0, 0)];
        let mut per_case = MetricsAccumulator::default();
        for &(w, ed) in &cases {
            per_case.record(w, ed);
        }
        let mut bulk = MetricsAccumulator::default();
        bulk.add_bulk_weight(cases.iter().map(|&(w, _)| w).sum());
        let errs: Vec<_> = cases.iter().filter(|&&(_, ed)| ed != 0).collect();
        bulk.record_error_block(
            errs.iter().map(|&&(w, _)| w).sum(),
            errs.iter().map(|&&(w, ed)| w * ed as f64).sum(),
            errs.iter()
                .map(|&&(w, ed)| w * ed.unsigned_abs() as f64)
                .sum(),
            errs.iter()
                .map(|&&(_, ed)| ed.unsigned_abs())
                .max()
                .unwrap(),
        );
        assert_eq!(per_case.finish(), bulk.finish());
    }

    #[test]
    fn zero_weight_cases_do_not_set_max() {
        let mut acc = MetricsAccumulator::default();
        acc.record(0.0, 1000);
        acc.record(1.0, 1);
        let m = acc.finish();
        assert_eq!(m.max_absolute_error_distance, 1);
    }

    #[test]
    fn empty_accumulator_yields_default() {
        let m = MetricsAccumulator::default().finish();
        assert_eq!(m, ErrorMetrics::default());
    }

    #[test]
    fn display_formats_all_fields() {
        let m = ErrorMetrics {
            error_probability: 0.25,
            mean_error_distance: -0.5,
            mean_absolute_error_distance: 1.5,
            max_absolute_error_distance: 8,
        };
        let s = m.to_string();
        assert!(s.contains("0.250000") && s.contains("maxED=8"));
    }
}
