//! Exhaustive (all input combinations) simulation.

use std::collections::BTreeMap;
use std::fmt;

use sealpaa_cells::{AdderChain, FaInput, InputProfile, TruthTable};
use sealpaa_num::Prob;

use crate::metrics::{ErrorMetrics, MetricsAccumulator};

/// Errors produced by [`exhaustive`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The input profile covers a different number of bits than the chain.
    WidthMismatch {
        /// Stages in the chain.
        chain: usize,
        /// Bits in the profile.
        profile: usize,
    },
    /// Exhaustive enumeration of `2^(2N+1)` cases is infeasible for this
    /// width — the very effect paper Fig. 1 plots.
    WidthTooLarge {
        /// Requested adder width.
        width: usize,
        /// Maximum width this build will enumerate.
        max: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::WidthMismatch { chain, profile } => write!(
                f,
                "adder chain has {chain} stages but input profile covers {profile} bits"
            ),
            SimError::WidthTooLarge { width, max } => write!(
                f,
                "exhaustive simulation of a {width}-bit adder needs 2^{} cases; \
                 widths above {max} are refused",
                2 * width + 1
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Widest adder [`exhaustive`] will enumerate (`2^(2·16+1)` ≈ 8.6 G cases is
/// already hours of work — the paper's Fig. 1 point).
pub const MAX_EXHAUSTIVE_WIDTH: usize = 16;

/// The amount of raw work an exhaustive run performed — the paper's Fig. 1
/// "number of computations" axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimWork {
    /// Input combinations evaluated (`2^(2N+1)`).
    pub cases: u64,
    /// Single-bit full-adder evaluations (`N` per case, for both the
    /// approximate and the reference chain).
    pub bit_additions: u64,
    /// Output comparisons (one per case).
    pub comparisons: u64,
}

/// The result of an exhaustive sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ExhaustiveReport<T> {
    /// Input combinations evaluated.
    pub cases: u64,
    /// Combinations on which the output value was wrong (unweighted count —
    /// for equally probable inputs `error_cases / cases` *is* the error
    /// probability).
    pub error_cases: u64,
    /// Exactly weighted probability that the output value is wrong.
    pub output_error_probability: T,
    /// Exactly weighted probability that some stage deviated from the
    /// accurate full adder along the accurate carry chain — the paper's
    /// error semantics. `≥ output_error_probability`.
    pub stage_error_probability: T,
    /// `f64` quality metrics (error distances etc.).
    pub metrics: ErrorMetrics,
    /// Unweighted case count per signed error distance (the empirical error
    /// histogram; for equally probable inputs `count / cases` equals the
    /// exact PMF of `sealpaa_core::error_distribution`).
    pub histogram: BTreeMap<i64, u64>,
    /// Raw work performed (paper Fig. 1).
    pub work: SimWork,
}

/// Enumerates every input combination of the chain, weighting each by its
/// exact probability under `profile` (paper Table 6: for equally probable
/// inputs this checks all `2^(2N+1)` cases and the comparison against the
/// analytical method is exact).
///
/// # Errors
///
/// * [`SimError::WidthMismatch`] if `profile` does not match the chain.
/// * [`SimError::WidthTooLarge`] if `chain.width() > MAX_EXHAUSTIVE_WIDTH`.
pub fn exhaustive<T: Prob>(
    chain: &AdderChain,
    profile: &InputProfile<T>,
) -> Result<ExhaustiveReport<T>, SimError> {
    let width = chain.width();
    if width != profile.width() {
        return Err(SimError::WidthMismatch {
            chain: width,
            profile: profile.width(),
        });
    }
    if width > MAX_EXHAUSTIVE_WIDTH {
        return Err(SimError::WidthTooLarge {
            width,
            max: MAX_EXHAUSTIVE_WIDTH,
        });
    }

    let accurate = TruthTable::accurate();
    let mut error_cases = 0u64;
    let mut output_error = T::zero();
    let mut stage_error = T::zero();
    let mut acc = MetricsAccumulator::default();
    let mut work = SimWork::default();
    let mut histogram: BTreeMap<i64, u64> = BTreeMap::new();

    let operand_count = 1u64 << width;
    for a in 0..operand_count {
        for b in 0..operand_count {
            for cin in [false, true] {
                let weight = profile.assignment_probability(a, b, cin);
                let approx = chain.add(a, b, cin);
                let exact = chain.accurate_sum(a, b, cin);
                work.cases += 1;
                work.bit_additions += width as u64;
                work.comparisons += 1;

                let wrong = approx != exact;
                if wrong {
                    error_cases += 1;
                    output_error = output_error + weight.clone();
                }
                acc.record(weight.to_f64(), approx.error_distance(exact));
                *histogram.entry(approx.error_distance(exact)).or_insert(0) += 1;

                // First-deviation semantics: walk the accurate carry chain
                // and ask whether any stage sits on an error row.
                let mut carry = cin;
                let mut deviated = false;
                for (i, cell) in chain.iter().enumerate() {
                    let input = FaInput::new((a >> i) & 1 == 1, (b >> i) & 1 == 1, carry);
                    if cell.truth_table().eval(input) != accurate.eval(input) {
                        deviated = true;
                        break;
                    }
                    carry = accurate.eval(input).carry_out;
                }
                if deviated {
                    stage_error = stage_error + weight;
                }
            }
        }
    }

    Ok(ExhaustiveReport {
        cases: work.cases,
        error_cases,
        output_error_probability: output_error,
        stage_error_probability: stage_error,
        metrics: acc.finish(),
        histogram,
        work,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sealpaa_cells::StandardCell;
    use sealpaa_num::Rational;

    #[test]
    fn accurate_adder_never_errs() {
        let chain = AdderChain::uniform(StandardCell::Accurate.cell(), 5);
        let profile = InputProfile::<f64>::uniform(5);
        let r = exhaustive(&chain, &profile).expect("feasible width");
        assert_eq!(r.error_cases, 0);
        assert_eq!(r.output_error_probability, 0.0);
        assert_eq!(r.stage_error_probability, 0.0);
        assert_eq!(r.metrics.max_absolute_error_distance, 0);
    }

    #[test]
    fn case_count_is_2_pow_2n_plus_1() {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 3);
        let profile = InputProfile::<f64>::uniform(3);
        let r = exhaustive(&chain, &profile).expect("feasible width");
        assert_eq!(r.cases, 1 << 7);
        assert_eq!(r.work.bit_additions, (1 << 7) * 3);
        assert_eq!(r.work.comparisons, 1 << 7);
    }

    #[test]
    fn uniform_weighting_equals_case_fraction() {
        let chain = AdderChain::uniform(StandardCell::Lpaa5.cell(), 4);
        let profile = InputProfile::<Rational>::uniform(4);
        let r = exhaustive(&chain, &profile).expect("feasible width");
        assert_eq!(
            r.output_error_probability,
            Rational::from_ratio(r.error_cases as i64, r.cases as i64)
        );
    }

    #[test]
    fn stage_error_at_least_output_error() {
        for cell in StandardCell::APPROXIMATE {
            let chain = AdderChain::uniform(cell.cell(), 3);
            let profile = InputProfile::<Rational>::constant(3, Rational::from_ratio(1, 5));
            let r = exhaustive(&chain, &profile).expect("feasible width");
            assert!(
                r.stage_error_probability >= r.output_error_probability,
                "{cell}"
            );
        }
    }

    #[test]
    fn width_mismatch_rejected() {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 3);
        let profile = InputProfile::<f64>::uniform(4);
        assert!(matches!(
            exhaustive(&chain, &profile),
            Err(SimError::WidthMismatch {
                chain: 3,
                profile: 4
            })
        ));
    }

    #[test]
    fn oversized_width_rejected() {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), MAX_EXHAUSTIVE_WIDTH + 1);
        let profile = InputProfile::<f64>::uniform(MAX_EXHAUSTIVE_WIDTH + 1);
        let err = exhaustive(&chain, &profile).unwrap_err();
        assert!(matches!(err, SimError::WidthTooLarge { .. }));
        assert!(err.to_string().contains("refused"));
    }

    #[test]
    fn histogram_counts_all_cases() {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 3);
        let profile = InputProfile::<f64>::uniform(3);
        let r = exhaustive(&chain, &profile).expect("feasible width");
        let total: u64 = r.histogram.values().sum();
        assert_eq!(total, r.cases);
        let wrong: u64 = r
            .histogram
            .iter()
            .filter(|(d, _)| **d != 0)
            .map(|(_, c)| c)
            .sum();
        assert_eq!(wrong, r.error_cases);
    }

    #[test]
    fn error_distance_metrics_for_known_single_stage() {
        // 1-bit LPAA 1, uniform inputs. Error rows: (0,1,0) → value 2 vs 1
        // (ED +1); (1,0,0) → value 0 vs 1 (ED −1). Each has weight 1/8.
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 1);
        let profile = InputProfile::<f64>::uniform(1);
        let r = exhaustive(&chain, &profile).expect("feasible width");
        assert!((r.metrics.error_probability - 0.25).abs() < 1e-12);
        assert!((r.metrics.mean_error_distance - 0.0).abs() < 1e-12);
        assert!((r.metrics.mean_absolute_error_distance - 0.25).abs() < 1e-12);
        assert_eq!(r.metrics.max_absolute_error_distance, 1);
    }
}
