//! Exhaustive (all input combinations) simulation.
//!
//! Two engines share one report format:
//!
//! * [`exhaustive_scalar`] — the straightforward per-case reference: one
//!   [`AdderChain::add`] walk per input combination. Kept public as the
//!   ground truth for differential tests and the baseline for benchmarks.
//! * [`exhaustive`] / [`exhaustive_with`] / [`exhaustive_with_backend`] —
//!   the bitsliced kernel: one SIMD word of consecutive `b` values (64–512
//!   lanes, following the runtime-detected [`Backend`]) is packed into the
//!   lanes of the word's bit-planes (their low six bit-planes are the
//!   fixed periodic constants `0xAAAA…`, `0xCCCC…`, …), the approximate
//!   and accurate chains are evaluated through the chain's
//!   `CompiledKernel`, and a single XOR/OR reduction yields the per-lane
//!   mismatch mask. Correct lanes are then settled in bulk (popcount for
//!   the histogram, one factorized weight per batch); only mismatching or
//!   stage-deviating lanes fall back to per-lane weight/histogram work.
//!   [`exhaustive_with`] additionally splits the `a` range across
//!   `std::thread::scope` workers and merges the partial results in range
//!   order; lanes are assigned in ascending case order on every backend,
//!   so for exact probability types (`Rational`, whose addition is
//!   associative) all counts, histograms and `T`-typed probabilities are
//!   bit-for-bit identical for **any** thread count *and* backend. The
//!   `f64` *metrics* may differ in the last ulp across thread counts or
//!   backends because float addition is not associative.
//!
//! For widths below 6 (fewer than 64 `b` values) every entry point runs the
//! scalar engine, so tiny sweeps remain exactly the reference behaviour;
//! between 6 bits and the backend's lane count the backend is narrowed so
//! a `b` chunk never exceeds one operand sweep.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;

use sealpaa_cells::{
    biased_distance_lanes, dispatch, error_distances64, error_stats, splat_planes, AdderChain,
    Backend, CompiledChain, CompiledKernel, FaInput, InputProfile, SimdKernel, SimdWord,
    TruthTable,
};
use sealpaa_num::Prob;

use crate::metrics::{ErrorMetrics, MetricsAccumulator};

/// Errors produced by [`exhaustive`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The input profile covers a different number of bits than the chain.
    WidthMismatch {
        /// Stages in the chain.
        chain: usize,
        /// Bits in the profile.
        profile: usize,
    },
    /// Exhaustive enumeration of `2^(2N+1)` cases is infeasible for this
    /// width — the very effect paper Fig. 1 plots.
    WidthTooLarge {
        /// Requested adder width.
        width: usize,
        /// Maximum width this build will enumerate.
        max: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::WidthMismatch { chain, profile } => write!(
                f,
                "adder chain has {chain} stages but input profile covers {profile} bits"
            ),
            SimError::WidthTooLarge { width, max } => write!(
                f,
                "exhaustive simulation of a {width}-bit adder needs 2^{} cases; \
                 widths above {max} are refused",
                2 * width + 1
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Widest adder [`exhaustive`] will enumerate (`2^(2·16+1)` ≈ 8.6 G cases —
/// the paper's Fig. 1 point). The bitsliced kernel makes this width *usable*
/// in practice (64 cases per pass, parallel over `a` ranges) where the
/// scalar engine needed hours.
pub const MAX_EXHAUSTIVE_WIDTH: usize = 16;

/// Narrowest width the bitsliced kernel accepts: below 6 bits there are
/// fewer than 64 `b` values to fill the lanes, so the scalar engine runs.
const BITSLICE_MIN_WIDTH: usize = 6;

/// The amount of raw work an exhaustive run performed — the paper's Fig. 1
/// "number of computations" axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimWork {
    /// Input combinations evaluated (`2^(2N+1)`).
    pub cases: u64,
    /// Single-bit full-adder evaluations: `3·N` per case — `N` for the
    /// approximate chain, `N` for the accurate reference chain, and `N` for
    /// the first-deviation walk along the accurate carries.
    pub bit_additions: u64,
    /// Output comparisons (one per case).
    pub comparisons: u64,
}

/// The result of an exhaustive sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ExhaustiveReport<T> {
    /// Input combinations evaluated.
    pub cases: u64,
    /// Combinations on which the output value was wrong (unweighted count —
    /// for equally probable inputs `error_cases / cases` *is* the error
    /// probability).
    pub error_cases: u64,
    /// Exactly weighted probability that the output value is wrong.
    pub output_error_probability: T,
    /// Exactly weighted probability that some stage deviated from the
    /// accurate full adder along the accurate carry chain — the paper's
    /// error semantics. `≥ output_error_probability`.
    pub stage_error_probability: T,
    /// `f64` quality metrics (error distances etc.).
    pub metrics: ErrorMetrics,
    /// Unweighted case count per signed error distance (the empirical error
    /// histogram; for equally probable inputs `count / cases` equals the
    /// exact PMF of `sealpaa_core::error_distribution`).
    pub histogram: BTreeMap<i64, u64>,
    /// Raw work performed (paper Fig. 1).
    pub work: SimWork,
}

fn validate<T: Prob>(chain: &AdderChain, profile: &InputProfile<T>) -> Result<usize, SimError> {
    let width = chain.width();
    if width != profile.width() {
        return Err(SimError::WidthMismatch {
            chain: width,
            profile: profile.width(),
        });
    }
    if width > MAX_EXHAUSTIVE_WIDTH {
        return Err(SimError::WidthTooLarge {
            width,
            max: MAX_EXHAUSTIVE_WIDTH,
        });
    }
    Ok(width)
}

/// Enumerates every input combination of the chain, weighting each by its
/// exact probability under `profile` (paper Table 6: for equally probable
/// inputs this checks all `2^(2N+1)` cases and the comparison against the
/// analytical method is exact).
///
/// Runs the bitsliced single-threaded kernel (the scalar engine below 6
/// bits); see [`exhaustive_with`] to spread the sweep across threads and
/// [`exhaustive_scalar`] for the reference implementation.
///
/// # Errors
///
/// * [`SimError::WidthMismatch`] if `profile` does not match the chain.
/// * [`SimError::WidthTooLarge`] if `chain.width() > MAX_EXHAUSTIVE_WIDTH`.
pub fn exhaustive<T: Prob>(
    chain: &AdderChain,
    profile: &InputProfile<T>,
) -> Result<ExhaustiveReport<T>, SimError> {
    let width = validate(chain, profile)?;
    if width < BITSLICE_MIN_WIDTH {
        return Ok(scalar_sweep(chain, profile));
    }
    let backend = sweep_backend(None, width);
    let compiled = CompiledChain::compile(chain);
    let tables = WeightTables::build(profile);
    let partial = dispatch(
        backend,
        SweepWorker {
            compiled: &compiled,
            tables: &tables,
            a_range: 0..1u64 << width,
        },
    );
    Ok(finish(vec![partial], width))
}

/// Narrows the requested (or detected) backend so one lane chunk never
/// exceeds the `2^width` `b` values of a single operand sweep.
fn sweep_backend(backend: Option<Backend>, width: usize) -> Backend {
    backend
        .unwrap_or_else(Backend::active)
        .narrowed_to_lanes(1usize << width.min(63))
}

/// [`exhaustive`] parallelized over contiguous `a` ranges with
/// `std::thread::scope`; partial results are merged in range order, so the
/// outcome is deterministic and — for exact probability types such as
/// `Rational` — bit-for-bit identical to the serial run for any `threads`.
///
/// `threads` is clamped to `1..=64`; pass
/// [`default_threads()`](crate::default_threads) to use every available
/// core. Widths below 6 bits fall back to the (single-threaded) scalar
/// engine — the whole sweep is microseconds there.
///
/// # Errors
///
/// Same conditions as [`exhaustive`].
pub fn exhaustive_with<T: Prob + Send + Sync>(
    chain: &AdderChain,
    profile: &InputProfile<T>,
    threads: usize,
) -> Result<ExhaustiveReport<T>, SimError> {
    exhaustive_with_backend(chain, profile, threads, None)
}

/// [`exhaustive_with`] with an explicit SIMD backend: `None` uses
/// [`Backend::active`] (runtime detection, overridable through the
/// `SEALPAA_SIMD` environment variable). The backend is narrowed when the
/// width offers fewer `b` values than the word has lanes. All counts,
/// histograms and exact (`Rational`) probabilities are bit-for-bit
/// identical across backends and thread counts; `f64` metrics agree to
/// rounding.
///
/// # Errors
///
/// Same conditions as [`exhaustive`].
pub fn exhaustive_with_backend<T: Prob + Send + Sync>(
    chain: &AdderChain,
    profile: &InputProfile<T>,
    threads: usize,
    backend: Option<Backend>,
) -> Result<ExhaustiveReport<T>, SimError> {
    let width = validate(chain, profile)?;
    if width < BITSLICE_MIN_WIDTH {
        return Ok(scalar_sweep(chain, profile));
    }
    let backend = sweep_backend(backend, width);
    let operand_count = 1u64 << width;
    let threads = (threads.clamp(1, 64) as u64).min(operand_count);
    let compiled = CompiledChain::compile(chain);
    let tables = WeightTables::build(profile);
    let worker = |a_range: Range<u64>| {
        dispatch(
            backend,
            SweepWorker {
                compiled: &compiled,
                tables: &tables,
                a_range,
            },
        )
    };
    if threads == 1 {
        let partial = worker(0..operand_count);
        return Ok(finish(vec![partial], width));
    }
    let bounds: Vec<u64> = (0..=threads)
        .map(|t| operand_count / threads * t + (operand_count % threads).min(t))
        .collect();
    let partials = std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .windows(2)
            .map(|w| {
                let (lo, hi) = (w[0], w[1]);
                let worker = &worker;
                scope.spawn(move || worker(lo..hi))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep workers do not panic"))
            .collect::<Vec<_>>()
    });
    Ok(finish(partials, width))
}

/// The scalar reference implementation: one [`AdderChain::add`] walk per
/// input combination, exactly as a direct transcription of the paper's
/// simulation setup would do it.
///
/// [`exhaustive`] produces identical `T`-typed probabilities, histograms and
/// counts for exact probability types; this entry point remains public as
/// the differential-test oracle and the benchmark baseline.
///
/// # Errors
///
/// Same conditions as [`exhaustive`].
pub fn exhaustive_scalar<T: Prob>(
    chain: &AdderChain,
    profile: &InputProfile<T>,
) -> Result<ExhaustiveReport<T>, SimError> {
    validate(chain, profile)?;
    Ok(scalar_sweep(chain, profile))
}

fn scalar_sweep<T: Prob>(chain: &AdderChain, profile: &InputProfile<T>) -> ExhaustiveReport<T> {
    let width = chain.width();
    let accurate = TruthTable::accurate();
    let mut error_cases = 0u64;
    let mut output_error = T::zero();
    let mut stage_error = T::zero();
    let mut acc = MetricsAccumulator::default();
    let mut work = SimWork::default();
    let mut histogram: BTreeMap<i64, u64> = BTreeMap::new();

    let operand_count = 1u64 << width;
    for a in 0..operand_count {
        for b in 0..operand_count {
            for cin in [false, true] {
                let weight = profile.assignment_probability(a, b, cin);
                let approx = chain.add(a, b, cin);
                let exact = chain.accurate_sum(a, b, cin);
                work.cases += 1;
                work.bit_additions += 3 * width as u64;
                work.comparisons += 1;

                let wrong = approx != exact;
                if wrong {
                    error_cases += 1;
                    output_error = output_error + weight.clone();
                }
                acc.record(weight.to_f64(), approx.error_distance(exact));
                *histogram.entry(approx.error_distance(exact)).or_insert(0) += 1;

                // First-deviation semantics: walk the accurate carry chain
                // and ask whether any stage sits on an error row.
                let mut carry = cin;
                let mut deviated = false;
                for (i, cell) in chain.iter().enumerate() {
                    let input = FaInput::new((a >> i) & 1 == 1, (b >> i) & 1 == 1, carry);
                    if cell.truth_table().eval(input) != accurate.eval(input) {
                        deviated = true;
                        break;
                    }
                    carry = accurate.eval(input).carry_out;
                }
                if deviated {
                    stage_error = stage_error + weight;
                }
            }
        }
    }

    ExhaustiveReport {
        cases: work.cases,
        error_cases,
        output_error_probability: output_error,
        stage_error_probability: stage_error,
        metrics: acc.finish(),
        histogram,
        work,
    }
}

/// The fixed periodic bit-planes of the six low bits of 64 consecutive `b`
/// values starting at a multiple of 64: bit `l` of plane `i` is bit `i` of
/// lane index `l`.
const LANE_PATTERNS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Precomputed per-operand weights shared (immutably) by all sweep workers.
///
/// `pa_t[a] = P(A = a)` as the exact probability type, `pa_f` the same in
/// `f64` (for the metrics accumulator), and `chunk_pb_f[c]` the summed
/// probability of the 64-lane `b` chunk starting at `64·c` — the factorized
/// batch weight that settles all-correct batches without touching a single
/// lane.
struct WeightTables<T> {
    pa_t: Vec<T>,
    pb_t: Vec<T>,
    pcin_t: [T; 2],
    pa_f: Vec<f64>,
    pb_f: Vec<f64>,
    pcin_f: [f64; 2],
    chunk_pb_t: Vec<T>,
    chunk_pb_f: Vec<f64>,
    /// The shared per-value weight when every `b` value is equally likely
    /// (the uniform operand profile): per-lane weighting then factors into
    /// one count product per batch, and the weighted `f64` moments into
    /// aggregate plane-space sums.
    uniform_pb: Option<(f64, T)>,
}

impl<T: Prob> WeightTables<T> {
    fn build(profile: &InputProfile<T>) -> Self {
        let width = profile.width();
        let n = 1usize << width;
        let operand_table = |bit_p: &dyn Fn(usize) -> T| -> Vec<T> {
            (0..n as u64)
                .map(|v| {
                    let mut p = T::one();
                    for i in 0..width {
                        let f = if (v >> i) & 1 == 1 {
                            bit_p(i)
                        } else {
                            bit_p(i).complement()
                        };
                        p = p * f;
                    }
                    p
                })
                .collect()
        };
        let pa_t = operand_table(&|i| profile.pa(i).clone());
        let pb_t = operand_table(&|i| profile.pb(i).clone());
        let pa_f: Vec<f64> = pa_t.iter().map(Prob::to_f64).collect();
        let pb_f: Vec<f64> = pb_t.iter().map(Prob::to_f64).collect();
        let chunk_pb_t: Vec<T> = pb_t
            .chunks(64)
            .map(|c| c.iter().fold(T::zero(), |s, p| s + p.clone()))
            .collect();
        let chunk_pb_f: Vec<f64> = pb_f.chunks(64).map(|c| c.iter().sum()).collect();
        let uniform_pb = if pb_t.iter().all(|p| *p == pb_t[0]) {
            Some((pb_f[0], pb_t[0].clone()))
        } else {
            None
        };
        WeightTables {
            pa_t,
            pb_t,
            pcin_t: [profile.p_cin().complement(), profile.p_cin().clone()],
            pa_f,
            pb_f,
            pcin_f: [
                profile.p_cin().complement().to_f64(),
                profile.p_cin().to_f64(),
            ],
            chunk_pb_t,
            chunk_pb_f,
            uniform_pb,
        }
    }
}

/// One worker's share of a bitsliced sweep. The histogram is a dense array
/// indexed by `error_distance + offset` (`offset = 2^(width+1) − 1`) so the
/// per-lane hot path is an increment, not a tree lookup.
struct Partial<T> {
    error_cases: u64,
    output_error: T,
    stage_error: T,
    acc: MetricsAccumulator,
    work: SimWork,
    hist: Vec<u64>,
}

/// One worker's share of a bitsliced sweep, dispatched to the selected
/// backend's word type.
struct SweepWorker<'a, T> {
    compiled: &'a CompiledChain,
    tables: &'a WeightTables<T>,
    a_range: Range<u64>,
}

impl<T: Prob> SimdKernel for SweepWorker<'_, T> {
    type Out = Partial<T>;

    #[inline(always)]
    fn run<W: SimdWord>(self) -> Partial<T> {
        bitsliced_range(&self.compiled.kernel::<W>(), self.tables, self.a_range)
    }
}

#[inline(always)]
fn bitsliced_range<T: Prob, W: SimdWord>(
    kernel: &CompiledKernel<W>,
    tables: &WeightTables<T>,
    a_range: Range<u64>,
) -> Partial<T> {
    let width = kernel.width();
    debug_assert!((BITSLICE_MIN_WIDTH..=MAX_EXHAUSTIVE_WIDTH).contains(&width));
    // Lane index l within a chunk carries `b = b_base + l`; the dispatch
    // layer narrows the backend so the chunk never exceeds the operand
    // sweep (`W::LANES ≤ 2^width`).
    let lanes_log2 = 6 + W::WORDS.trailing_zeros() as usize;
    debug_assert!(lanes_log2 <= width);
    let chunks = 1usize << (width - lanes_log2);
    let offset = (1i64 << (width + 1)) - 1;
    let mut hist = vec![0u64; (1usize << (width + 2)) - 1];
    let mut error_cases = 0u64;
    let mut output_error = T::zero();
    let mut stage_error = T::zero();
    let mut acc = MetricsAccumulator::default();
    let mut work = SimWork::default();

    let mut a_planes = vec![W::zero(); width];
    let mut b_planes = vec![W::zero(); width];
    let mut approx_sum = vec![W::zero(); width];
    let mut exact_sum = vec![W::zero(); width];
    let mut sub_approx = vec![0u64; width];
    let mut sub_exact = vec![0u64; width];
    let mut ed = [0i64; 64];
    let mut lane_dist = [W::zero(); 64];
    // Bits 0..6 of the lane's `b` repeat with period 64, so their planes
    // are the fixed subword patterns; bits 6..lanes_log2 select the
    // subword and are constant per 64-lane subword of the wide word; bits
    // above that come from `b_base` and are set per chunk below.
    for (i, plane) in b_planes.iter_mut().enumerate().take(lanes_log2) {
        *plane = if i < 6 {
            W::splat(LANE_PATTERNS[i])
        } else {
            W::from_fn(|s| (((s as u64) >> (i - 6)) & 1).wrapping_neg())
        };
    }

    for a in a_range {
        splat_planes(a, &mut a_planes);
        let pa_f = tables.pa_f[a as usize];
        for chunk in 0..chunks {
            let b_base = (chunk as u64) << lanes_log2;
            for (i, plane) in b_planes.iter_mut().enumerate().skip(lanes_log2) {
                *plane = W::splat(((b_base >> i) & 1).wrapping_neg());
            }
            // `chunk_pb_*` tables stay at 64-value granularity (they are
            // shared across backends); a wide chunk covers `W::WORDS`
            // consecutive entries.
            let sub_chunk0 = chunk * W::WORDS;
            let chunk_pb_f: f64 = tables.chunk_pb_f[sub_chunk0..sub_chunk0 + W::WORDS]
                .iter()
                .sum();
            for cin in [false, true] {
                let cin_word = W::splat((cin as u64).wrapping_neg());
                let diff = kernel.eval_diff(
                    &a_planes,
                    &b_planes,
                    cin_word,
                    &mut approx_sum,
                    &mut exact_sum,
                );

                work.cases += W::LANES as u64;
                work.bit_additions += W::LANES as u64 * 3 * width as u64;
                work.comparisons += W::LANES as u64;
                let wrong = diff.mismatch.count_ones();
                error_cases += wrong;
                let dense = wrong as usize * 4 >= W::LANES;
                // The uniform dense path below settles the correct lanes'
                // histogram entries itself (a correct lane's biased
                // distance is exactly `offset`, so its unconditional walk
                // already counts them); every other path settles them here
                // in bulk.
                if !(dense && tables.uniform_pb.is_some()) {
                    hist[offset as usize] += W::LANES as u64 - wrong;
                }
                acc.add_bulk_weight(pa_f * tables.pcin_f[cin as usize] * chunk_pb_f);

                // Per-lane slow path only for mismatching or deviating
                // lanes; an all-correct batch is fully settled above.
                // Dense batches compute every lane's distance at once in
                // plane space (a lane-parallel subtraction plus one wide
                // transpose, both scaling with the backend's lanes); sparse
                // ones keep the per-subword bit walk on extracted
                // subplanes. The two produce identical integers, so the
                // choice is pure performance and never perturbs results.
                // The shared `pa · pcin` weight factor is applied once per
                // batch: for exact `T` the factored sum is identical by
                // distributivity, for `f64` it agrees to rounding.
                if diff.mismatch.any() {
                    let w_ac_f = pa_f * tables.pcin_f[cin as usize];
                    if dense {
                        biased_distance_lanes(
                            &approx_sum,
                            diff.approx_cout,
                            &exact_sum,
                            diff.exact_cout,
                            &mut lane_dist,
                        );
                    }
                    if let Some((u_f, u_t)) = &tables.uniform_pb {
                        // Constant per-lane weight: the weighted `f64`
                        // moments factor into aggregate plane-space sums
                        // (exact integers) and the `T` weight into one
                        // integer-count product (exact for `Rational`);
                        // only the histogram still visits lanes.
                        let stats = error_stats(
                            &approx_sum,
                            diff.approx_cout,
                            &exact_sum,
                            diff.exact_cout,
                            diff.mismatch,
                        );
                        if dense {
                            // Lane-major walk, one wide load per lane and
                            // no mask test at all: a *correct* lane's
                            // biased distance is exactly `offset`, so
                            // counting every lane unconditionally settles
                            // correct and erroneous lanes alike (the bulk
                            // settle above is skipped for this path);
                            // histogram increments commute, so order is
                            // free.
                            for row in lane_dist.iter() {
                                let row = *row;
                                for s in 0..W::WORDS {
                                    hist[row.word(s) as usize] += 1;
                                }
                            }
                        } else {
                            for s in 0..W::WORDS {
                                let mm = diff.mismatch.word(s);
                                if mm == 0 {
                                    continue;
                                }
                                for i in 0..width {
                                    sub_approx[i] = approx_sum[i].word(s);
                                    sub_exact[i] = exact_sum[i].word(s);
                                }
                                error_distances64(
                                    &sub_approx,
                                    diff.approx_cout.word(s),
                                    &sub_exact,
                                    diff.exact_cout.word(s),
                                    mm,
                                    &mut ed,
                                );
                                let mut lanes = mm;
                                while lanes != 0 {
                                    let lane = lanes.trailing_zeros() as usize;
                                    lanes &= lanes - 1;
                                    hist[(ed[lane] + offset) as usize] += 1;
                                }
                            }
                        }
                        output_error = output_error
                            + tables.pa_t[a as usize].clone()
                                * tables.pcin_t[cin as usize].clone()
                                * (u_t.clone() * T::from_ratio(wrong, 1));
                        acc.record_error_block(
                            w_ac_f * (u_f * wrong as f64),
                            w_ac_f * (u_f * stats.sum_ed),
                            w_ac_f * (u_f * stats.sum_abs_ed),
                            if w_ac_f > 0.0 { stats.max_abs_ed } else { 0 },
                        );
                    } else {
                        let mut pb_sum_t = T::zero();
                        let mut pb_sum_f = 0.0f64;
                        let mut weighted_ed = 0.0f64;
                        let mut weighted_abs_ed = 0.0f64;
                        let mut max_abs_ed = 0u64;
                        macro_rules! settle {
                            ($lane:expr, $s:expr, $d:expr) => {{
                                let b = (b_base + (($s as u64) << 6) + $lane as u64) as usize;
                                let d: i64 = $d;
                                let w = tables.pb_f[b];
                                pb_sum_f += w;
                                weighted_ed += w * d as f64;
                                weighted_abs_ed += w * d.unsigned_abs() as f64;
                                if w > 0.0 {
                                    max_abs_ed = max_abs_ed.max(d.unsigned_abs());
                                }
                                hist[(d + offset) as usize] += 1;
                                pb_sum_t = pb_sum_t + tables.pb_t[b].clone();
                            }};
                        }
                        if dense {
                            // Lane-major walk (one wide load per lane); all
                            // accumulators are sums/maxima, so visit order
                            // only perturbs `f64` rounding (within the
                            // documented metric tolerance) and leaves exact
                            // `T` sums, counts and the histogram unchanged.
                            let mut mm_words = [0u64; 8];
                            debug_assert!(W::WORDS <= 8);
                            for (s, word) in mm_words.iter_mut().enumerate().take(W::WORDS) {
                                *word = diff.mismatch.word(s);
                            }
                            for (lane, row) in lane_dist.iter().enumerate() {
                                let row = *row;
                                for (s, word) in mm_words.iter().enumerate().take(W::WORDS) {
                                    if (word >> lane) & 1 == 1 {
                                        settle!(lane, s, row.word(s) as i64 - offset);
                                    }
                                }
                            }
                        } else {
                            for s in 0..W::WORDS {
                                let mm = diff.mismatch.word(s);
                                if mm == 0 {
                                    continue;
                                }
                                for i in 0..width {
                                    sub_approx[i] = approx_sum[i].word(s);
                                    sub_exact[i] = exact_sum[i].word(s);
                                }
                                error_distances64(
                                    &sub_approx,
                                    diff.approx_cout.word(s),
                                    &sub_exact,
                                    diff.exact_cout.word(s),
                                    mm,
                                    &mut ed,
                                );
                                let mut lanes = mm;
                                while lanes != 0 {
                                    let lane = lanes.trailing_zeros() as usize;
                                    lanes &= lanes - 1;
                                    settle!(lane, s, ed[lane]);
                                }
                            }
                        }
                        output_error = output_error
                            + tables.pa_t[a as usize].clone()
                                * tables.pcin_t[cin as usize].clone()
                                * pb_sum_t;
                        acc.record_error_block(
                            w_ac_f * pb_sum_f,
                            w_ac_f * weighted_ed,
                            w_ac_f * weighted_abs_ed,
                            if w_ac_f > 0.0 { max_abs_ed } else { 0 },
                        );
                    }
                }
                if let (true, Some((_, u_t))) = (diff.deviated.any(), &tables.uniform_pb) {
                    // Constant per-lane weight: one integer-count product
                    // per batch (exact for `Rational`).
                    stage_error = stage_error
                        + tables.pa_t[a as usize].clone()
                            * tables.pcin_t[cin as usize].clone()
                            * (u_t.clone() * T::from_ratio(diff.deviated.count_ones(), 1));
                } else if diff.deviated.any() {
                    // Cells like LPAA 5 deviate on most lanes, so per
                    // 64-lane subword sum over whichever of `deviated` /
                    // `!deviated` is sparser and, in the dense case,
                    // subtract from the precomputed subchunk total (exact
                    // for `Rational` — `Prob` requires `Sub` — and within
                    // rounding for `f64`).
                    let mut pb_sum_t = T::zero();
                    for s in 0..W::WORDS {
                        let dv = diff.deviated.word(s);
                        if dv == 0 {
                            continue;
                        }
                        let sub_base = b_base + ((s as u64) << 6);
                        let dense = dv.count_ones() > 32;
                        let mut sub_sum = T::zero();
                        let mut lanes = if dense { !dv } else { dv };
                        while lanes != 0 {
                            let lane = lanes.trailing_zeros() as usize;
                            lanes &= lanes - 1;
                            sub_sum =
                                sub_sum + tables.pb_t[(sub_base + lane as u64) as usize].clone();
                        }
                        if dense {
                            sub_sum = tables.chunk_pb_t[sub_chunk0 + s].clone() - sub_sum;
                        }
                        pb_sum_t = pb_sum_t + sub_sum;
                    }
                    stage_error = stage_error
                        + tables.pa_t[a as usize].clone()
                            * tables.pcin_t[cin as usize].clone()
                            * pb_sum_t;
                }
            }
        }
    }

    Partial {
        error_cases,
        output_error,
        stage_error,
        acc,
        work,
        hist,
    }
}

/// Merges worker partials **in range order** into the final report, so the
/// result is independent of scheduling.
fn finish<T: Prob>(partials: Vec<Partial<T>>, width: usize) -> ExhaustiveReport<T> {
    let offset = (1i64 << (width + 1)) - 1;
    let mut error_cases = 0u64;
    let mut output_error = T::zero();
    let mut stage_error = T::zero();
    let mut acc = MetricsAccumulator::default();
    let mut work = SimWork::default();
    let mut hist = vec![0u64; (1usize << (width + 2)) - 1];
    for partial in partials {
        error_cases += partial.error_cases;
        output_error = output_error + partial.output_error;
        stage_error = stage_error + partial.stage_error;
        acc.merge(partial.acc);
        work.cases += partial.work.cases;
        work.bit_additions += partial.work.bit_additions;
        work.comparisons += partial.work.comparisons;
        for (slot, count) in hist.iter_mut().zip(partial.hist) {
            *slot += count;
        }
    }
    let histogram: BTreeMap<i64, u64> = hist
        .into_iter()
        .enumerate()
        .filter(|&(_, count)| count != 0)
        .map(|(idx, count)| (idx as i64 - offset, count))
        .collect();
    ExhaustiveReport {
        cases: work.cases,
        error_cases,
        output_error_probability: output_error,
        stage_error_probability: stage_error,
        metrics: acc.finish(),
        histogram,
        work,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sealpaa_cells::StandardCell;
    use sealpaa_num::Rational;

    #[test]
    fn accurate_adder_never_errs() {
        let chain = AdderChain::uniform(StandardCell::Accurate.cell(), 5);
        let profile = InputProfile::<f64>::uniform(5);
        let r = exhaustive(&chain, &profile).expect("feasible width");
        assert_eq!(r.error_cases, 0);
        assert_eq!(r.output_error_probability, 0.0);
        assert_eq!(r.stage_error_probability, 0.0);
        assert_eq!(r.metrics.max_absolute_error_distance, 0);
    }

    #[test]
    fn case_count_is_2_pow_2n_plus_1() {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 3);
        let profile = InputProfile::<f64>::uniform(3);
        let r = exhaustive(&chain, &profile).expect("feasible width");
        assert_eq!(r.cases, 1 << 7);
        // 3·N single-bit additions per case: approximate chain + accurate
        // reference chain + first-deviation walk.
        assert_eq!(r.work.bit_additions, r.cases * 3 * 3);
        assert_eq!(r.work.comparisons, 1 << 7);
    }

    #[test]
    fn bitsliced_work_accounting_matches_scalar_model() {
        // Width ≥ 6 exercises the bitsliced kernel; the work model must not
        // depend on which engine ran.
        let chain = AdderChain::uniform(StandardCell::Lpaa2.cell(), 6);
        let profile = InputProfile::<f64>::uniform(6);
        let r = exhaustive(&chain, &profile).expect("feasible width");
        assert_eq!(r.cases, 1 << 13);
        assert_eq!(r.work.bit_additions, r.cases * 3 * 6);
        assert_eq!(r.work.comparisons, r.cases);
    }

    #[test]
    fn uniform_weighting_equals_case_fraction() {
        let chain = AdderChain::uniform(StandardCell::Lpaa5.cell(), 4);
        let profile = InputProfile::<Rational>::uniform(4);
        let r = exhaustive(&chain, &profile).expect("feasible width");
        assert_eq!(
            r.output_error_probability,
            Rational::from_ratio(r.error_cases as i64, r.cases as i64)
        );
    }

    #[test]
    fn uniform_weighting_equals_case_fraction_bitsliced() {
        let chain = AdderChain::uniform(StandardCell::Lpaa5.cell(), 7);
        let profile = InputProfile::<Rational>::uniform(7);
        let r = exhaustive(&chain, &profile).expect("feasible width");
        assert_eq!(
            r.output_error_probability,
            Rational::from_ratio(r.error_cases as i64, r.cases as i64)
        );
    }

    #[test]
    fn uniform_fast_path_matches_scalar_oracle_on_every_backend() {
        // The uniform profile takes the factored `uniform_pb` settle path
        // (all-lane histogram walk, plane-space moments); pin it exactly —
        // in Rational — against the scalar oracle for a hybrid chain, on
        // every backend the host offers.
        let chain = AdderChain::from_stages(vec![
            StandardCell::Lpaa2.cell(),
            StandardCell::Lpaa5.cell(),
            StandardCell::Accurate.cell(),
            StandardCell::Lpaa1.cell(),
            StandardCell::Lpaa6.cell(),
            StandardCell::Lpaa3.cell(),
            StandardCell::Lpaa7.cell(),
        ]);
        let profile = InputProfile::<Rational>::uniform(7);
        let oracle = exhaustive_scalar(&chain, &profile).expect("feasible");
        for backend in Backend::available() {
            let r = exhaustive_with_backend(&chain, &profile, 1, Some(backend)).expect("feasible");
            assert_eq!(
                r.output_error_probability, oracle.output_error_probability,
                "{backend}"
            );
            assert_eq!(
                r.stage_error_probability, oracle.stage_error_probability,
                "{backend}"
            );
            assert_eq!(r.histogram, oracle.histogram, "{backend}");
            assert_eq!(r.error_cases, oracle.error_cases, "{backend}");
        }
    }

    #[test]
    fn stage_error_at_least_output_error() {
        for cell in StandardCell::APPROXIMATE {
            let chain = AdderChain::uniform(cell.cell(), 3);
            let profile = InputProfile::<Rational>::constant(3, Rational::from_ratio(1, 5));
            let r = exhaustive(&chain, &profile).expect("feasible width");
            assert!(
                r.stage_error_probability >= r.output_error_probability,
                "{cell}"
            );
        }
    }

    #[test]
    fn width_mismatch_rejected() {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 3);
        let profile = InputProfile::<f64>::uniform(4);
        assert!(matches!(
            exhaustive(&chain, &profile),
            Err(SimError::WidthMismatch {
                chain: 3,
                profile: 4
            })
        ));
    }

    #[test]
    fn oversized_width_rejected() {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), MAX_EXHAUSTIVE_WIDTH + 1);
        let profile = InputProfile::<f64>::uniform(MAX_EXHAUSTIVE_WIDTH + 1);
        let err = exhaustive(&chain, &profile).unwrap_err();
        assert!(matches!(err, SimError::WidthTooLarge { .. }));
        assert!(err.to_string().contains("refused"));
        assert!(exhaustive_scalar(&chain, &profile).is_err());
        assert!(exhaustive_with(&chain, &profile, 2).is_err());
    }

    #[test]
    fn histogram_counts_all_cases() {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 3);
        let profile = InputProfile::<f64>::uniform(3);
        let r = exhaustive(&chain, &profile).expect("feasible width");
        let total: u64 = r.histogram.values().sum();
        assert_eq!(total, r.cases);
        let wrong: u64 = r
            .histogram
            .iter()
            .filter(|(d, _)| **d != 0)
            .map(|(_, c)| c)
            .sum();
        assert_eq!(wrong, r.error_cases);
    }

    #[test]
    fn histogram_counts_all_cases_bitsliced() {
        let chain = AdderChain::uniform(StandardCell::Lpaa7.cell(), 6);
        let profile = InputProfile::<f64>::uniform(6);
        let r = exhaustive(&chain, &profile).expect("feasible width");
        let total: u64 = r.histogram.values().sum();
        assert_eq!(total, r.cases);
        let wrong: u64 = r
            .histogram
            .iter()
            .filter(|(d, _)| **d != 0)
            .map(|(_, c)| c)
            .sum();
        assert_eq!(wrong, r.error_cases);
    }

    #[test]
    fn error_distance_metrics_for_known_single_stage() {
        // 1-bit LPAA 1, uniform inputs. Error rows: (0,1,0) → value 2 vs 1
        // (ED +1); (1,0,0) → value 0 vs 1 (ED −1). Each has weight 1/8.
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 1);
        let profile = InputProfile::<f64>::uniform(1);
        let r = exhaustive(&chain, &profile).expect("feasible width");
        assert!((r.metrics.error_probability - 0.25).abs() < 1e-12);
        assert!((r.metrics.mean_error_distance - 0.0).abs() < 1e-12);
        assert!((r.metrics.mean_absolute_error_distance - 0.25).abs() < 1e-12);
        assert_eq!(r.metrics.max_absolute_error_distance, 1);
    }

    #[test]
    fn bitsliced_matches_scalar_exactly_for_rational() {
        // The hybrid mixes error-free MSBs with two different approximate
        // cells, and the profile is asymmetric — a thorough exactness probe.
        let chain = AdderChain::from_stages(vec![
            StandardCell::Lpaa1.cell(),
            StandardCell::Lpaa4.cell(),
            StandardCell::Lpaa4.cell(),
            StandardCell::Accurate.cell(),
            StandardCell::Lpaa6.cell(),
            StandardCell::Accurate.cell(),
            StandardCell::Accurate.cell(),
        ]);
        let profile = InputProfile::<Rational>::new(
            (1..=7).map(|i| Rational::from_ratio(i, 11)).collect(),
            (1..=7).map(|i| Rational::from_ratio(i, 9)).collect(),
            Rational::from_ratio(2, 7),
        )
        .expect("valid profile");
        let fast = exhaustive(&chain, &profile).expect("feasible");
        let reference = exhaustive_scalar(&chain, &profile).expect("feasible");
        assert_eq!(fast.error_cases, reference.error_cases);
        assert_eq!(
            fast.output_error_probability,
            reference.output_error_probability
        );
        assert_eq!(
            fast.stage_error_probability,
            reference.stage_error_probability
        );
        assert_eq!(fast.histogram, reference.histogram);
        assert_eq!(fast.work, reference.work);
        assert_eq!(
            fast.metrics.max_absolute_error_distance,
            reference.metrics.max_absolute_error_distance
        );
    }

    #[test]
    fn every_backend_matches_u64_exactly_for_rational() {
        // The tentpole byte-identity contract: counts, histogram, work and
        // exact probabilities must be bit-for-bit identical on every
        // available backend, serial and parallel, hybrid chains included.
        let chain = AdderChain::from_stages(vec![
            StandardCell::Lpaa1.cell(),
            StandardCell::Lpaa4.cell(),
            StandardCell::Lpaa5.cell(),
            StandardCell::Accurate.cell(),
            StandardCell::Lpaa6.cell(),
            StandardCell::Lpaa2.cell(),
            StandardCell::Accurate.cell(),
            StandardCell::Lpaa7.cell(),
            StandardCell::Lpaa3.cell(),
        ]);
        let profile = InputProfile::<Rational>::new(
            (1..=9).map(|i| Rational::from_ratio(i, 13)).collect(),
            (1..=9).map(|i| Rational::from_ratio(i, 10)).collect(),
            Rational::from_ratio(3, 8),
        )
        .expect("valid profile");
        let baseline =
            exhaustive_with_backend(&chain, &profile, 1, Some(Backend::U64)).expect("feasible");
        for backend in Backend::available() {
            for threads in [1usize, 3] {
                let r = exhaustive_with_backend(&chain, &profile, threads, Some(backend))
                    .expect("feasible");
                assert_eq!(r.error_cases, baseline.error_cases, "{backend} t{threads}");
                assert_eq!(
                    r.output_error_probability, baseline.output_error_probability,
                    "{backend} t{threads}"
                );
                assert_eq!(
                    r.stage_error_probability, baseline.stage_error_probability,
                    "{backend} t{threads}"
                );
                assert_eq!(r.histogram, baseline.histogram, "{backend} t{threads}");
                assert_eq!(r.work, baseline.work, "{backend} t{threads}");
            }
        }
    }

    #[test]
    fn wide_backend_narrows_to_fit_small_widths() {
        // Width 6 offers only 64 b values; forcing a wide backend must
        // narrow, not crash, and still match the scalar oracle.
        let chain = AdderChain::uniform(StandardCell::Lpaa4.cell(), 6);
        let profile = InputProfile::<Rational>::constant(6, Rational::from_ratio(2, 9));
        let oracle = exhaustive_scalar(&chain, &profile).expect("feasible");
        for backend in Backend::available() {
            let r = exhaustive_with_backend(&chain, &profile, 1, Some(backend)).expect("feasible");
            assert_eq!(r.output_error_probability, oracle.output_error_probability);
            assert_eq!(r.histogram, oracle.histogram, "{backend}");
        }
    }

    #[test]
    fn parallel_matches_serial_exactly_for_rational() {
        let chain = AdderChain::uniform(StandardCell::Lpaa3.cell(), 7);
        let profile = InputProfile::<Rational>::constant(7, Rational::from_ratio(3, 10));
        let serial = exhaustive(&chain, &profile).expect("feasible");
        for threads in [2usize, 3, 5, 64] {
            let parallel = exhaustive_with(&chain, &profile, threads).expect("feasible");
            assert_eq!(
                parallel.output_error_probability, serial.output_error_probability,
                "threads={threads}"
            );
            assert_eq!(
                parallel.stage_error_probability, serial.stage_error_probability,
                "threads={threads}"
            );
            assert_eq!(parallel.histogram, serial.histogram, "threads={threads}");
            assert_eq!(parallel.error_cases, serial.error_cases);
            assert_eq!(parallel.work, serial.work);
        }
    }
}
