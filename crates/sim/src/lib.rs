//! Bit-true simulation of approximate adder chains.
//!
//! The paper validates its analytical method against two simulation regimes
//! (Table 6):
//!
//! * **Exhaustive** — every one of the `2^(2N+1)` input combinations of an
//!   N-bit adder, exactly weighted by the per-bit input probabilities
//!   ([`exhaustive`]); feasible only for small N, which is precisely the
//!   paper's Fig. 1 argument for an analytical method.
//! * **Monte-Carlo** — a configurable number of random samples drawn from
//!   the input profile ([`monte_carlo`]); the paper uses one million samples
//!   and reports agreement to the third decimal place (Table 7).
//!
//! Both regimes run on a bitsliced (SWAR) engine that evaluates 64 input
//! vectors per pass through `sealpaa_cells::CompiledChain`, and the
//! exhaustive sweep additionally parallelizes over operand ranges
//! ([`exhaustive_with`]) with an order-deterministic merge. The original
//! one-case-at-a-time engines stay available as [`exhaustive_scalar`] and
//! [`monte_carlo_scalar`] — they are the differential-test oracles and the
//! benchmark baselines.
//!
//! Both simulators report the error probability under two semantics (final
//! output value differs vs. any stage deviates — see
//! `sealpaa-core::exact_error_analysis` for why they can differ on exotic
//! hybrids) plus standard approximate-computing quality metrics
//! ([`ErrorMetrics`]).
//!
//! # Examples
//!
//! ```
//! use sealpaa_cells::{AdderChain, InputProfile, StandardCell};
//! use sealpaa_sim::exhaustive;
//!
//! let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 4);
//! let profile = InputProfile::<f64>::uniform(4);
//! let report = exhaustive(&chain, &profile)?;
//! assert_eq!(report.cases, 1 << 9); // 2^(2·4+1)
//! assert!(report.metrics.error_probability > 0.0);
//! # Ok::<(), sealpaa_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exhaustive;
mod metrics;
mod monte_carlo;
mod rng;
mod sampler;

pub use exhaustive::{
    exhaustive, exhaustive_scalar, exhaustive_with, exhaustive_with_backend, ExhaustiveReport,
    SimError, SimWork, MAX_EXHAUSTIVE_WIDTH,
};
pub use metrics::ErrorMetrics;
pub use monte_carlo::{monte_carlo, monte_carlo_scalar, MonteCarloConfig, MonteCarloReport};
pub use rng::{quantize_p53, SplitMix64, Xoshiro256pp};
pub use sampler::{plan_kind, PlanKind, PooledSampler, SamplerSummary, WideXoshiro};
// Re-exported so simulation callers can pick a kernel backend without
// depending on `sealpaa-cells` directly.
pub use sealpaa_cells::Backend;

/// The number of worker threads to use by default: the machine's available
/// parallelism, or 1 if it cannot be determined. CLI and server entry
/// points use this; the library-level [`MonteCarloConfig`] default stays at
/// 1 so that embedding code gets identical sample streams everywhere unless
/// it opts in (results are deterministic per `(seed, threads)` pair).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}
