//! Bit-true simulation of approximate adder chains.
//!
//! The paper validates its analytical method against two simulation regimes
//! (Table 6):
//!
//! * **Exhaustive** — every one of the `2^(2N+1)` input combinations of an
//!   N-bit adder, exactly weighted by the per-bit input probabilities
//!   ([`exhaustive`]); feasible only for small N, which is precisely the
//!   paper's Fig. 1 argument for an analytical method.
//! * **Monte-Carlo** — a configurable number of random samples drawn from
//!   the input profile ([`monte_carlo`]); the paper uses one million samples
//!   and reports agreement to the third decimal place (Table 7).
//!
//! Both simulators report the error probability under two semantics (final
//! output value differs vs. any stage deviates — see
//! `sealpaa-core::exact_error_analysis` for why they can differ on exotic
//! hybrids) plus standard approximate-computing quality metrics
//! ([`ErrorMetrics`]).
//!
//! # Examples
//!
//! ```
//! use sealpaa_cells::{AdderChain, InputProfile, StandardCell};
//! use sealpaa_sim::exhaustive;
//!
//! let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 4);
//! let profile = InputProfile::<f64>::uniform(4);
//! let report = exhaustive(&chain, &profile)?;
//! assert_eq!(report.cases, 1 << 9); // 2^(2·4+1)
//! assert!(report.metrics.error_probability > 0.0);
//! # Ok::<(), sealpaa_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exhaustive;
mod metrics;
mod monte_carlo;
mod rng;

pub use exhaustive::{exhaustive, ExhaustiveReport, SimError, SimWork};
pub use metrics::ErrorMetrics;
pub use monte_carlo::{monte_carlo, MonteCarloConfig, MonteCarloReport};
pub use rng::{SplitMix64, Xoshiro256pp};
