//! Monte-Carlo simulation with inputs drawn from the profile.
//!
//! [`monte_carlo`] is bitsliced and width-generic: each pass draws one
//! [`SimdWord`] of independent input vectors per bit-plane through the
//! entropy-pooled [`PooledSampler`] and evaluates all lanes through
//! [`CompiledKernel`], so the per-sample cost is a fraction of a word
//! operation instead of a per-bit truth-table walk. The kernel word width
//! follows the runtime-detected [`Backend`] (64 lanes on the portable u64
//! path, up to 512 with AVX-512), overridable per run via
//! [`MonteCarloConfig::backend`] or the `SEALPAA_SIMD` environment
//! variable. [`monte_carlo_scalar`] keeps the one-sample-at-a-time
//! reference implementation for differential tests and benchmark
//! baselines.
//!
//! Both engines are deterministic for a fixed `(seed, threads, backend)`
//! triple, but they consume randomness differently — across engines or
//! backends the same seed sees *different* (equally valid) samples.

use sealpaa_cells::{
    accurate_eval, dispatch, error_stats, AdderChain, Backend, CompiledChain, InputProfile,
    SimdKernel, SimdWord,
};
use sealpaa_num::Prob;

use crate::exhaustive::SimError;
use crate::metrics::{ErrorMetrics, MetricsAccumulator};
use crate::rng::{quantize_p53, Xoshiro256pp};
use crate::sampler::PooledSampler;

#[cfg(doc)]
use sealpaa_cells::CompiledKernel;

/// Configuration of a Monte-Carlo run.
///
/// The defaults mirror the paper: one million samples (Table 6/7), and a
/// fixed seed so every reported number is reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarloConfig {
    /// Number of random input vectors to draw.
    pub samples: u64,
    /// RNG seed (deterministic by default for reproducible tables).
    pub seed: u64,
    /// Worker threads. Results are deterministic for a given
    /// `(seed, threads, backend)` triple (each worker derives its own
    /// seed), so keep `threads` fixed when comparing runs.
    pub threads: usize,
    /// SIMD backend for the bitsliced engine, or `None` to use
    /// [`Backend::active`] (runtime detection, overridable through the
    /// `SEALPAA_SIMD` environment variable). The sample stream depends on
    /// the lane count, so pin this too when comparing runs bit-for-bit.
    pub backend: Option<Backend>,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            samples: 1_000_000,
            seed: 0xDAC1_7ADD,
            threads: 1,
            backend: None,
        }
    }
}

/// The outcome of a Monte-Carlo run.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloReport {
    /// Samples drawn.
    pub samples: u64,
    /// Samples whose output value was wrong.
    pub error_samples: u64,
    /// Quality metrics estimated from the samples.
    pub metrics: ErrorMetrics,
    /// One standard error of the `error_probability` estimate
    /// (`√(p(1−p)/n)`), so callers can judge how many decimal places are
    /// trustworthy — the paper's "up to 3rd decimal place for 1 M cases"
    /// claim (Table 6).
    pub standard_error: f64,
}

impl MonteCarloReport {
    /// Estimated probability that the output value is wrong.
    pub fn error_probability(&self) -> f64 {
        self.metrics.error_probability
    }
}

fn validate<T: Prob>(chain: &AdderChain, profile: &InputProfile<T>) -> Result<usize, SimError> {
    let width = chain.width();
    if width != profile.width() {
        return Err(SimError::WidthMismatch {
            chain: width,
            profile: profile.width(),
        });
    }
    if width > 64 {
        return Err(SimError::WidthTooLarge { width, max: 64 });
    }
    Ok(width)
}

fn report_from(acc: MetricsAccumulator, error_samples: u64, samples: u64) -> MonteCarloReport {
    let metrics = acc.finish();
    let p = metrics.error_probability;
    let standard_error = if samples > 0 {
        (p * (1.0 - p) / samples as f64).sqrt()
    } else {
        0.0
    };
    MonteCarloReport {
        samples,
        error_samples,
        metrics,
        standard_error,
    }
}

fn spawn_workers<F>(threads: u64, run_chunk: F) -> (MetricsAccumulator, u64)
where
    F: Fn(u64) -> (MetricsAccumulator, u64) + Sync,
{
    let mut acc = MetricsAccumulator::default();
    let mut error_samples = 0u64;
    if threads == 1 {
        let (a, e) = run_chunk(0);
        acc = a;
        error_samples = e;
    } else {
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let run_chunk = &run_chunk;
                    scope.spawn(move || run_chunk(w))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker threads do not panic"))
                .collect::<Vec<_>>()
        });
        for (chunk_acc, chunk_errors) in results {
            acc.merge(chunk_acc);
            error_samples += chunk_errors;
        }
    }
    (acc, error_samples)
}

/// One worker's share of a bitsliced Monte-Carlo run, dispatched to the
/// selected backend's word type.
struct McWorker<'a> {
    compiled: &'a CompiledChain,
    qa: &'a [u64],
    qb: &'a [u64],
    q_cin: u64,
    samples: u64,
    seed: u64,
}

impl SimdKernel for McWorker<'_> {
    type Out = (MetricsAccumulator, u64);

    #[inline(always)]
    fn run<W: SimdWord>(self) -> Self::Out {
        let kernel = self.compiled.kernel::<W>();
        let width = kernel.width();
        let mut sampler = PooledSampler::<W>::new(self.seed, self.qa, self.qb, self.q_cin);
        let mut acc = MetricsAccumulator::default();
        let mut errors = 0u64;
        let mut a_planes = vec![W::zero(); width];
        let mut b_planes = vec![W::zero(); width];
        let mut approx_sum = vec![W::zero(); width];
        let mut exact_sum = vec![W::zero(); width];
        let lanes = W::LANES as u64;
        let full_batches = self.samples / lanes;
        let tail = self.samples % lanes;
        let batches = full_batches + u64::from(tail > 0);
        for batch in 0..batches {
            // The final partial batch draws a full word of lanes and masks
            // the surplus out — simpler and branch-free in the hot path.
            let active = if batch == full_batches {
                W::tail_mask(tail as usize)
            } else {
                W::ones()
            };
            let cin_word = sampler.fill(&mut a_planes, &mut b_planes);
            let approx_cout = kernel.eval_into(&a_planes, &b_planes, cin_word, &mut approx_sum);
            let exact_cout = accurate_eval(&a_planes, &b_planes, cin_word, &mut exact_sum);
            let mut mismatch = approx_cout ^ exact_cout;
            for i in 0..width {
                mismatch = mismatch | (approx_sum[i] ^ exact_sum[i]);
            }
            mismatch = mismatch & active;
            acc.add_bulk_weight(active.count_ones() as f64);
            let wrong = mismatch.count_ones();
            errors += wrong;
            if mismatch.any() {
                // Aggregate the batch's error moments in plane space — one
                // O(width) pass and one accumulator update, independent of
                // how many lanes erred.
                let stats = error_stats(&approx_sum, approx_cout, &exact_sum, exact_cout, mismatch);
                acc.record_error_block(
                    wrong as f64,
                    stats.sum_ed,
                    stats.sum_abs_ed,
                    stats.max_abs_ed,
                );
            }
        }
        (acc, errors)
    }
}

/// Draws `config.samples` random input vectors from `profile` (independent
/// per-bit Bernoulli draws, as in the paper's LabVIEW setup) and measures the
/// approximate chain against exact addition.
///
/// Bitsliced: one SIMD word of samples (64–512 lanes depending on the
/// backend) is drawn and evaluated per pass, with probabilities quantized
/// to `2^-53`, the resolution of a scalar `next_f64` draw. Deterministic
/// per `(seed, threads, backend)`; see [`monte_carlo_scalar`] for the
/// per-sample reference engine.
///
/// # Errors
///
/// Returns [`SimError::WidthMismatch`] if `profile` does not match the chain,
/// or [`SimError::WidthTooLarge`] if the chain exceeds 64 bits (the
/// functional evaluator's limit).
///
/// # Examples
///
/// ```
/// use sealpaa_cells::{AdderChain, InputProfile, StandardCell};
/// use sealpaa_sim::{monte_carlo, MonteCarloConfig};
///
/// let chain = AdderChain::uniform(StandardCell::Lpaa6.cell(), 8);
/// let profile = InputProfile::constant(8, 0.1);
/// let config = MonteCarloConfig { samples: 50_000, ..Default::default() };
/// let report = monte_carlo(&chain, &profile, config)?;
/// // Paper Table 7: P(E) of 8-bit LPAA 6 at p=0.1 is ≈ 0.1695.
/// assert!((report.error_probability() - 0.1695).abs() < 0.01);
/// # Ok::<(), sealpaa_sim::SimError>(())
/// ```
pub fn monte_carlo<T: Prob>(
    chain: &AdderChain,
    profile: &InputProfile<T>,
    config: MonteCarloConfig,
) -> Result<MonteCarloReport, SimError> {
    let width = validate(chain, profile)?;
    let backend = config.backend.unwrap_or_else(Backend::active);
    let compiled = CompiledChain::compile(chain);
    let qa: Vec<u64> = (0..width)
        .map(|i| quantize_p53(profile.pa(i).to_f64()))
        .collect();
    let qb: Vec<u64> = (0..width)
        .map(|i| quantize_p53(profile.pb(i).to_f64()))
        .collect();
    let q_cin = quantize_p53(profile.p_cin().to_f64());

    let threads = config.threads.clamp(1, 64) as u64;
    let base = config.samples / threads;
    let extra = config.samples % threads;
    let run_chunk = |worker: u64| -> (MetricsAccumulator, u64) {
        let samples = base + u64::from(worker < extra);
        // SplitMix-style per-worker seed derivation keeps streams disjoint.
        let seed = config
            .seed
            .wrapping_add(worker.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        dispatch(
            backend,
            McWorker {
                compiled: &compiled,
                qa: &qa,
                qb: &qb,
                q_cin,
                samples,
                seed,
            },
        )
    };

    let (acc, error_samples) = spawn_workers(threads, run_chunk);
    Ok(report_from(acc, error_samples, config.samples))
}

/// The scalar reference engine: one sample at a time, one truth-table walk
/// per bit. Statistically equivalent to [`monte_carlo`] (the estimates
/// agree within sampling error) but roughly an order of magnitude slower —
/// kept public as the differential-test oracle and benchmark baseline.
/// Ignores [`MonteCarloConfig::backend`] (there is no kernel to widen).
///
/// # Errors
///
/// Same conditions as [`monte_carlo`].
pub fn monte_carlo_scalar<T: Prob>(
    chain: &AdderChain,
    profile: &InputProfile<T>,
    config: MonteCarloConfig,
) -> Result<MonteCarloReport, SimError> {
    let width = validate(chain, profile)?;

    // Pre-convert the profile to f64 thresholds once.
    let pa: Vec<f64> = (0..width).map(|i| profile.pa(i).to_f64()).collect();
    let pb: Vec<f64> = (0..width).map(|i| profile.pb(i).to_f64()).collect();
    let p_cin = profile.p_cin().to_f64();

    let threads = config.threads.clamp(1, 64) as u64;
    let base = config.samples / threads;
    let extra = config.samples % threads;
    let run_chunk = |worker: u64| -> (MetricsAccumulator, u64) {
        let samples = base + u64::from(worker < extra);
        // SplitMix-style per-worker seed derivation keeps streams disjoint.
        let seed = config
            .seed
            .wrapping_add(worker.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut acc = MetricsAccumulator::default();
        let mut errors = 0u64;
        for _ in 0..samples {
            let mut a = 0u64;
            let mut b = 0u64;
            for i in 0..width {
                if rng.next_f64() < pa[i] {
                    a |= 1 << i;
                }
                if rng.next_f64() < pb[i] {
                    b |= 1 << i;
                }
            }
            let cin = rng.next_f64() < p_cin;
            let approx = chain.add(a, b, cin);
            let exact = chain.accurate_sum(a, b, cin);
            if approx != exact {
                errors += 1;
            }
            acc.record(1.0, approx.error_distance(exact));
        }
        (acc, errors)
    };

    let (acc, error_samples) = spawn_workers(threads, run_chunk);
    Ok(report_from(acc, error_samples, config.samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive;
    use sealpaa_cells::StandardCell;

    #[test]
    fn deterministic_given_seed() {
        let chain = AdderChain::uniform(StandardCell::Lpaa3.cell(), 6);
        let profile = InputProfile::constant(6, 0.3);
        let cfg = MonteCarloConfig {
            samples: 10_000,
            seed: 42,
            ..Default::default()
        };
        let r1 = monte_carlo(&chain, &profile, cfg).expect("valid");
        let r2 = monte_carlo(&chain, &profile, cfg).expect("valid");
        assert_eq!(r1, r2);
    }

    #[test]
    fn different_seeds_differ() {
        let chain = AdderChain::uniform(StandardCell::Lpaa3.cell(), 6);
        let profile = InputProfile::constant(6, 0.3);
        let a = monte_carlo(
            &chain,
            &profile,
            MonteCarloConfig {
                samples: 5_000,
                seed: 1,
                ..Default::default()
            },
        )
        .expect("valid");
        let b = monte_carlo(
            &chain,
            &profile,
            MonteCarloConfig {
                samples: 5_000,
                seed: 2,
                ..Default::default()
            },
        )
        .expect("valid");
        assert_ne!(a.error_samples, b.error_samples);
    }

    #[test]
    fn estimate_converges_to_exhaustive_truth() {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 4);
        let profile = InputProfile::constant(4, 0.2);
        let truth = exhaustive(&chain, &profile)
            .expect("feasible")
            .output_error_probability;
        let mc = monte_carlo(
            &chain,
            &profile,
            MonteCarloConfig {
                samples: 200_000,
                seed: 7,
                ..Default::default()
            },
        )
        .expect("valid");
        // 5 standard errors is a comfortable, non-flaky bound.
        assert!(
            (mc.error_probability() - truth).abs() < 5.0 * mc.standard_error + 1e-9,
            "MC {} vs exact {truth}",
            mc.error_probability()
        );
    }

    #[test]
    fn scalar_engine_estimate_agrees_with_bitsliced() {
        // Same task, both engines: estimates must agree within the combined
        // sampling error (the streams differ, so not bit-for-bit).
        let chain = AdderChain::uniform(StandardCell::Lpaa6.cell(), 8);
        let profile = InputProfile::constant(8, 0.1);
        let cfg = MonteCarloConfig {
            samples: 60_000,
            seed: 21,
            threads: 1,
            backend: None,
        };
        let fast = monte_carlo(&chain, &profile, cfg).expect("valid");
        let slow = monte_carlo_scalar(&chain, &profile, cfg).expect("valid");
        assert!(
            (fast.error_probability() - slow.error_probability()).abs()
                < 5.0 * (fast.standard_error + slow.standard_error) + 1e-9,
            "bitsliced {} vs scalar {}",
            fast.error_probability(),
            slow.error_probability()
        );
        // The scalar engine stays deterministic too.
        let again = monte_carlo_scalar(&chain, &profile, cfg).expect("valid");
        assert_eq!(slow, again);
    }

    #[test]
    fn partial_batch_masks_surplus_lanes() {
        // A sample count straddling batch boundaries must count exactly
        // `samples` cases, not a multiple of the lane count — on every
        // backend available here.
        let chain = AdderChain::uniform(StandardCell::Lpaa7.cell(), 5);
        let profile = InputProfile::<f64>::uniform(5);
        for backend in Backend::available() {
            for samples in [1u64, 63, 64, 65, 130, 513] {
                let r = monte_carlo(
                    &chain,
                    &profile,
                    MonteCarloConfig {
                        samples,
                        seed: 2,
                        threads: 1,
                        backend: Some(backend),
                    },
                )
                .expect("valid");
                assert_eq!(r.samples, samples);
                assert!(r.error_samples <= samples, "{backend}: {samples} samples");
                assert!(
                    (r.metrics.error_probability - r.error_samples as f64 / samples as f64).abs()
                        < 1e-12
                );
            }
        }
    }

    #[test]
    fn backends_agree_statistically() {
        // Different backends see different (equally valid) sample streams;
        // their estimates must agree within combined sampling error, and
        // each must be deterministic in isolation.
        let chain = AdderChain::uniform(StandardCell::Lpaa6.cell(), 8);
        let profile = InputProfile::constant(8, 0.1);
        let run = |backend: Backend| {
            monte_carlo(
                &chain,
                &profile,
                MonteCarloConfig {
                    samples: 60_000,
                    seed: 11,
                    threads: 2,
                    backend: Some(backend),
                },
            )
            .expect("valid")
        };
        let baseline = run(Backend::U64);
        for backend in Backend::available() {
            let r = run(backend);
            assert_eq!(r, run(backend), "{backend} must be deterministic");
            assert!(
                (r.error_probability() - baseline.error_probability()).abs()
                    < 5.0 * (r.standard_error + baseline.standard_error) + 1e-9,
                "{backend}: {} vs u64 {}",
                r.error_probability(),
                baseline.error_probability()
            );
        }
    }

    #[test]
    fn multithreaded_run_is_deterministic_and_consistent() {
        let chain = AdderChain::uniform(StandardCell::Lpaa6.cell(), 8);
        let profile = InputProfile::constant(8, 0.1);
        let cfg = MonteCarloConfig {
            samples: 40_000,
            seed: 13,
            threads: 4,
            backend: None,
        };
        let r1 = monte_carlo(&chain, &profile, cfg).expect("valid");
        let r2 = monte_carlo(&chain, &profile, cfg).expect("valid");
        assert_eq!(r1, r2, "same (seed, threads) must reproduce exactly");
        assert_eq!(r1.samples, 40_000);
        // A single-threaded run with the same seed is a different (but
        // equally valid) sample; both estimates agree statistically.
        let single = monte_carlo(
            &chain,
            &profile,
            MonteCarloConfig {
                samples: 40_000,
                seed: 13,
                threads: 1,
                backend: None,
            },
        )
        .expect("valid");
        assert!(
            (single.error_probability() - r1.error_probability()).abs()
                < 5.0 * (single.standard_error + r1.standard_error) + 1e-9
        );
    }

    #[test]
    fn accurate_chain_has_zero_errors() {
        let chain = AdderChain::uniform(StandardCell::Accurate.cell(), 12);
        let profile = InputProfile::constant(12, 0.7);
        let r = monte_carlo(
            &chain,
            &profile,
            MonteCarloConfig {
                samples: 20_000,
                seed: 3,
                ..Default::default()
            },
        )
        .expect("valid");
        assert_eq!(r.error_samples, 0);
        assert_eq!(r.error_probability(), 0.0);
        assert_eq!(r.standard_error, 0.0);
    }

    #[test]
    fn zero_samples_is_well_defined() {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 2);
        let profile = InputProfile::<f64>::uniform(2);
        let r = monte_carlo(
            &chain,
            &profile,
            MonteCarloConfig {
                samples: 0,
                seed: 0,
                ..Default::default()
            },
        )
        .expect("valid");
        assert_eq!(r.error_probability(), 0.0);
    }

    #[test]
    fn width_mismatch_rejected() {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 2);
        let profile = InputProfile::<f64>::uniform(3);
        assert!(monte_carlo(&chain, &profile, MonteCarloConfig::default()).is_err());
        assert!(monte_carlo_scalar(&chain, &profile, MonteCarloConfig::default()).is_err());
    }
}
