//! A small, seedable, dependency-free PRNG for Monte-Carlo simulation.
//!
//! The workspace must build with no network access, so it cannot pull in the
//! `rand` crate; every randomized component instead draws from the two
//! generators here:
//!
//! * [`SplitMix64`] — Steele, Lea & Flood's 64-bit mixer. One multiply-xor
//!   pipeline per output, equidistributed over the full 2⁶⁴ state space.
//!   Used directly for seed expansion and stream splitting.
//! * [`Xoshiro256pp`] — Blackman & Vigna's xoshiro256++ generator: 256 bits
//!   of state seeded through SplitMix64 (the authors' recommended
//!   procedure), passing BigCrush. This is the workhorse for simulation.
//!
//! Both are deterministic: a fixed seed reproduces the exact sample stream
//! on every platform, which the paper-table reproductions and the test
//! suite rely on.
//!
//! # Examples
//!
//! ```
//! use sealpaa_sim::Xoshiro256pp;
//!
//! let mut rng = Xoshiro256pp::seed_from_u64(42);
//! let p = rng.next_f64();
//! assert!((0.0..1.0).contains(&p));
//! // Same seed, same stream.
//! assert_eq!(Xoshiro256pp::seed_from_u64(42).next_u64(),
//!            Xoshiro256pp::seed_from_u64(42).next_u64());
//! ```

/// SplitMix64: a tiny, fast, full-period 64-bit generator. Primarily used
/// to expand a 64-bit seed into larger state and to derive disjoint
/// per-worker streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++: the general-purpose simulation generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the 256-bit state by running SplitMix64 from `seed` (the
    /// construction recommended by the xoshiro authors; it guarantees the
    /// state is never all-zero).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        Xoshiro256pp {
            s: [
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
            ],
        }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn next_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// 64 independent Bernoulli draws at once: bit `l` of the result is `1`
    /// with probability `q / 2^53` — the bitsliced counterpart of 64 calls
    /// to [`next_bool`](Self::next_bool). `q` is a probability quantized to
    /// 53 fractional bits by [`quantize_p53`].
    ///
    /// The construction is a lane-parallel binary expansion: conceptually
    /// each lane compares a uniform 53-bit integer `U` against `q`,
    /// most-significant bit first. One `next_u64` supplies bit `k` of all 64
    /// lanes' `U`s; a lane is decided `true` as soon as its `U` bit is 0
    /// where `q`'s bit is 1, decided `false` as soon as its `U` bit is 1
    /// where `q`'s bit is 0, and lanes still undecided when the expansion is
    /// exhausted have `U = q`, i.e. `U < q` is false. Because the set of
    /// undecided lanes halves per word in expectation, the expected cost is
    /// ~`log2(64) + 2 ≈ 8` words per call for *any* `p` — not the 53 words a
    /// non-adaptive bit-by-bit combine would need.
    ///
    /// Deterministic: the words consumed are a pure function of the stream
    /// position and `q`.
    pub fn next_bernoulli64(&mut self, q: u64) -> u64 {
        if q == 0 {
            return 0;
        }
        if q >= 1 << 53 {
            return u64::MAX;
        }
        let mut result = 0u64;
        let mut undecided = u64::MAX;
        // Below `stop` every remaining bit of q is 0, so an undecided lane
        // (U prefix-equal to q) can only satisfy U ≥ q: decided false.
        let stop = q.trailing_zeros();
        let mut bit = 52u32;
        loop {
            let u = self.next_u64();
            // Branch-free row update: with q's bit broadcast to a mask `qm`,
            // a q-bit of 1 decides U-bit-0 lanes true and keeps U-bit-1
            // lanes undecided; a q-bit of 0 decides U-bit-1 lanes false and
            // keeps U-bit-0 lanes undecided.
            let qm = ((q >> bit) & 1).wrapping_neg();
            result |= undecided & !u & qm;
            undecided &= !(u ^ qm);
            if undecided == 0 || bit <= stop {
                return result;
            }
            bit -= 1;
        }
    }

    /// A uniform integer in `[0, n)` via Lemire's multiply-shift rejection
    /// (unbiased). `n` must be non-zero.
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "next_below(0) is meaningless");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let low = m as u64;
            if low >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
            // Rejected: retry to stay exactly uniform.
        }
    }
}

/// Quantizes a probability to 53 fractional bits for
/// [`Xoshiro256pp::next_bernoulli64`]: the nearest multiple of `2^-53`,
/// clamped to `[0, 1]`. `2^-53` matches the resolution of
/// [`Xoshiro256pp::next_f64`], so the quantization error is below anything a
/// Monte-Carlo run could resolve.
pub fn quantize_p53(p: f64) -> u64 {
    const SCALE: f64 = (1u64 << 53) as f64;
    (p.clamp(0.0, 1.0) * SCALE).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // reference implementation (Vigna).
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        assert_eq!(rng.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_stays_in_unit_interval_and_looks_uniform() {
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        // Mean of U[0,1) is 0.5 with σ/√n ≈ 0.0009; 5σ bound.
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn bernoulli_frequency_tracks_p() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.next_bool(0.1)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.1).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn quantize_p53_endpoints_and_midpoint() {
        assert_eq!(quantize_p53(0.0), 0);
        assert_eq!(quantize_p53(-3.0), 0);
        assert_eq!(quantize_p53(1.0), 1 << 53);
        assert_eq!(quantize_p53(2.0), 1 << 53);
        assert_eq!(quantize_p53(0.5), 1 << 52);
        assert_eq!(quantize_p53(0.25), 1 << 51);
    }

    #[test]
    fn bernoulli64_degenerate_probabilities_consume_no_randomness() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let before = rng.clone();
        assert_eq!(rng.next_bernoulli64(0), 0);
        assert_eq!(rng.next_bernoulli64(1 << 53), u64::MAX);
        assert_eq!(rng, before, "p ∈ {{0, 1}} must not advance the stream");
    }

    #[test]
    fn bernoulli64_is_deterministic() {
        let q = quantize_p53(0.3);
        let a: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(5);
            (0..16).map(|_| r.next_bernoulli64(q)).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(5);
            (0..16).map(|_| r.next_bernoulli64(q)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn bernoulli64_half_probability_is_one_word() {
        // p = 0.5 has a single significant bit, so the first word decides
        // every lane: result = !u, exactly one next_u64 consumed.
        let mut reference = Xoshiro256pp::seed_from_u64(9);
        let expect = !reference.next_u64();
        let after = reference.next_u64();
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        assert_eq!(rng.next_bernoulli64(quantize_p53(0.5)), expect);
        assert_eq!(rng.next_u64(), after);
    }

    #[test]
    fn bernoulli64_lane_frequency_tracks_p() {
        for p in [0.1, 0.5, 0.9, 0.0137] {
            let q = quantize_p53(p);
            let mut rng = Xoshiro256pp::seed_from_u64(0xB00);
            let draws = 4_000u32;
            let mut per_lane = [0u32; 64];
            let mut total = 0u64;
            for _ in 0..draws {
                let w = rng.next_bernoulli64(q);
                total += u64::from(w.count_ones());
                for (lane, count) in per_lane.iter_mut().enumerate() {
                    *count += ((w >> lane) & 1) as u32;
                }
            }
            let n = draws as f64 * 64.0;
            let freq = total as f64 / n;
            let sigma = (p * (1.0 - p) / n).sqrt();
            assert!((freq - p).abs() < 5.0 * sigma + 1e-9, "p={p}: freq {freq}");
            // Every lane individually tracks p too (no positional bias).
            for (lane, &count) in per_lane.iter().enumerate() {
                let lane_freq = count as f64 / draws as f64;
                let lane_sigma = (p * (1.0 - p) / draws as f64).sqrt();
                assert!(
                    (lane_freq - p).abs() < 6.0 * lane_sigma + 1e-9,
                    "p={p} lane {lane}: freq {lane_freq}"
                );
            }
        }
    }

    #[test]
    fn next_below_is_in_range_and_covers_values() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.next_below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }
}
