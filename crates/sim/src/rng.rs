//! A small, seedable, dependency-free PRNG for Monte-Carlo simulation.
//!
//! The workspace must build with no network access, so it cannot pull in the
//! `rand` crate; every randomized component instead draws from the two
//! generators here:
//!
//! * [`SplitMix64`] — Steele, Lea & Flood's 64-bit mixer. One multiply-xor
//!   pipeline per output, equidistributed over the full 2⁶⁴ state space.
//!   Used directly for seed expansion and stream splitting.
//! * [`Xoshiro256pp`] — Blackman & Vigna's xoshiro256++ generator: 256 bits
//!   of state seeded through SplitMix64 (the authors' recommended
//!   procedure), passing BigCrush. This is the workhorse for simulation.
//!
//! Both are deterministic: a fixed seed reproduces the exact sample stream
//! on every platform, which the paper-table reproductions and the test
//! suite rely on.
//!
//! # Examples
//!
//! ```
//! use sealpaa_sim::Xoshiro256pp;
//!
//! let mut rng = Xoshiro256pp::seed_from_u64(42);
//! let p = rng.next_f64();
//! assert!((0.0..1.0).contains(&p));
//! // Same seed, same stream.
//! assert_eq!(Xoshiro256pp::seed_from_u64(42).next_u64(),
//!            Xoshiro256pp::seed_from_u64(42).next_u64());
//! ```

/// SplitMix64: a tiny, fast, full-period 64-bit generator. Primarily used
/// to expand a 64-bit seed into larger state and to derive disjoint
/// per-worker streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++: the general-purpose simulation generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the 256-bit state by running SplitMix64 from `seed` (the
    /// construction recommended by the xoshiro authors; it guarantees the
    /// state is never all-zero).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        Xoshiro256pp {
            s: [
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
            ],
        }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn next_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// A uniform integer in `[0, n)` via Lemire's multiply-shift rejection
    /// (unbiased). `n` must be non-zero.
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "next_below(0) is meaningless");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let low = m as u64;
            if low >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
            // Rejected: retry to stay exactly uniform.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // reference implementation (Vigna).
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        assert_eq!(rng.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_stays_in_unit_interval_and_looks_uniform() {
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        // Mean of U[0,1) is 0.5 with σ/√n ≈ 0.0009; 5σ bound.
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn bernoulli_frequency_tracks_p() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.next_bool(0.1)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.1).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn next_below_is_in_range_and_covers_values() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.next_below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }
}
