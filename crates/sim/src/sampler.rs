//! Pooled Bernoulli bit-plane sampling for the Monte-Carlo engine.
//!
//! BENCH_simulation.json showed the biased-input regime (p = 0.1) to be
//! *entropy-bound*: at p = 0.5 one `next_u64` decides a whole 64-lane
//! plane, while the adaptive binary expansion of
//! [`Xoshiro256pp::next_bernoulli64`] needs ~`log2(64) + 2 ≈ 8` words per
//! plane for general p — the RNG, not the adder kernel, dominated. This
//! module attacks that bound from three directions:
//!
//! * **Wide words.** [`WideXoshiro`] runs `W::WORDS` independent
//!   xoshiro256++ streams element-wise, so one `next()` yields `W::LANES`
//!   fresh lane-bits. The adaptive expansion's cost in *words per 64
//!   lanes* drops by the lane multiple: undecided-lane halving is shared
//!   across the whole wide batch — the expansion words that used to serve
//!   one 64-lane plane now serve up to eight planes' worth of lanes of
//!   equal probability at once.
//! * **Mask composition for dyadic (short-expansion) probabilities.** A
//!   quantized probability with `k` significant fraction bits is generated
//!   *exactly* by a `k`-word Horner chain of AND/OR mask compositions
//!   (p = 0.5 → 1 word, 0.25 → 2, 3/16 → 4): fixed trip count, no
//!   branching on random data, and never more words than the adaptive
//!   path's worst case.
//! * **Plan pooling.** Planes are classified once, at construction, into a
//!   shared plan per distinct quantized probability (the common case —
//!   `InputProfile::constant` gives every plane the same p), so the hot
//!   loop is a table-driven dispatch with no per-draw classification work.
//!
//! What the pool deliberately does **not** share is raw random bits:
//! reusing one word's bits across two planes would correlate lane `l` of
//! both planes, and every error metric depends on the *joint* distribution
//! of the operand bits. Every lane-bit drawn here consumes fresh stream
//! output; the statistical tests in this module pin per-plane means, and
//! determinism holds per `(seed, threads, backend)`.

use sealpaa_cells::SimdWord;

use crate::rng::SplitMix64;

/// How many significant fraction bits a quantized probability may have and
/// still take the fixed-trip Horner mask-composition path (beyond this the
/// adaptive expansion's expected `log2(LANES) + 2` words is cheaper).
const HORNER_MAX_BITS: u32 = 12;

/// `W::WORDS` independent xoshiro256++ streams, stepped element-wise (the
/// lane-parallel counterpart of [`Xoshiro256pp`]). Element 0 of a 1-word
/// word type reproduces `Xoshiro256pp::seed_from_u64(seed)` exactly.
#[derive(Debug, Clone)]
pub struct WideXoshiro<W> {
    s: [W; 4],
}

impl<W: SimdWord> WideXoshiro<W> {
    /// Seeds every element's 256-bit state from one SplitMix64 chain
    /// (element `e` takes outputs `4e .. 4e + 4`), the construction
    /// recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        let states: Vec<[u64; 4]> = (0..W::WORDS)
            .map(|_| {
                [
                    mix.next_u64(),
                    mix.next_u64(),
                    mix.next_u64(),
                    mix.next_u64(),
                ]
            })
            .collect();
        WideXoshiro {
            s: [
                W::from_fn(|e| states[e][0]),
                W::from_fn(|e| states[e][1]),
                W::from_fn(|e| states[e][2]),
                W::from_fn(|e| states[e][3]),
            ],
        }
    }

    /// The next `W::LANES` uniform bits (one xoshiro256++ step per element).
    #[inline(always)]
    pub fn next_word(&mut self) -> W {
        let result = self.s[0]
            .wrapping_add64(self.s[3])
            .rotl64(23)
            .wrapping_add64(self.s[0]);
        let t = self.s[1].shl64(17);
        self.s[2] = self.s[2] ^ self.s[0];
        self.s[3] = self.s[3] ^ self.s[1];
        self.s[1] = self.s[1] ^ self.s[2];
        self.s[0] = self.s[0] ^ self.s[3];
        self.s[2] = self.s[2] ^ t;
        self.s[3] = self.s[3].rotl64(45);
        result
    }
}

/// How one quantized probability is generated (see [`plan_kind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Plan {
    /// p = 0: all-zeros, no randomness consumed.
    Zero,
    /// p = 1: all-ones, no randomness consumed.
    One,
    /// `len ≤ HORNER_MAX_BITS` significant fraction bits: exact Horner
    /// mask composition, exactly `len` words.
    Horner {
        /// The significant bits of `q` (`q >> q.trailing_zeros()`); bit 0
        /// is the least significant fraction bit and is always 1.
        bits: u64,
        /// Number of significant bits.
        len: u32,
    },
    /// General p: adaptive MSB-first binary expansion, expected
    /// `log2(LANES) + 2` words.
    Adaptive {
        /// The 53-bit quantized probability.
        q: u64,
        /// Below this bit every remaining bit of `q` is zero, so undecided
        /// lanes resolve to `false`.
        stop: u32,
    },
}

impl Plan {
    fn classify(q: u64) -> Plan {
        if q == 0 {
            return Plan::Zero;
        }
        if q >= 1 << 53 {
            return Plan::One;
        }
        let stop = q.trailing_zeros();
        let len = 53 - stop;
        if len <= HORNER_MAX_BITS {
            Plan::Horner {
                bits: q >> stop,
                len,
            }
        } else {
            Plan::Adaptive { q, stop }
        }
    }

    #[inline(always)]
    fn draw<W: SimdWord>(self, rng: &mut WideXoshiro<W>) -> W {
        match self {
            Plan::Zero => W::zero(),
            Plan::One => W::ones(),
            Plan::Horner { bits, len } => {
                // Horner evaluation of P = 0.b₁…b_k (bit len−1 = b₁ is the
                // most significant fraction bit, bit 0 = b_k = 1): start
                // from P = 1/2, then each step halves the running
                // probability and, on a 1-bit, adds 1/2 back — OR with a
                // fresh uniform word realizes `1/2 + P/2`, AND realizes
                // `P/2`. Exactly `len` words, fixed trip count.
                let mut r = rng.next_word();
                for pos in 1..len {
                    let w = rng.next_word();
                    r = if (bits >> pos) & 1 == 1 { w | r } else { w & r };
                }
                r
            }
            Plan::Adaptive { q, stop } => {
                // Lane-parallel binary expansion, MSB first (the wide form
                // of `Xoshiro256pp::next_bernoulli64`): each fresh word
                // supplies one bit of every lane's uniform U; a lane is
                // decided `true` the first time its U bit is 0 where q's
                // bit is 1, `false` on the opposite disagreement, and
                // lanes still undecided at `stop` have U ≥ q.
                let mut result = W::zero();
                let mut undecided = W::ones();
                let mut bit = 52u32;
                loop {
                    let u = rng.next_word();
                    let qm = W::splat(((q >> bit) & 1).wrapping_neg());
                    result = result | (undecided & !u & qm);
                    undecided = undecided & !(u ^ qm);
                    if !undecided.any() || bit <= stop {
                        return result;
                    }
                    bit -= 1;
                }
            }
        }
    }
}

/// Public classification of a quantized probability, for diagnostics
/// (`sealpaa simd`) and bench attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// p ∈ {0, 1}: no randomness consumed.
    Degenerate,
    /// Short binary expansion: exact mask composition using this many
    /// words per plane.
    MaskComposition(u32),
    /// General probability: adaptive expansion, expected
    /// `log2(lanes) + 2` words per plane.
    Adaptive,
}

/// Classifies a probability quantized by
/// [`quantize_p53`](crate::quantize_p53) the way [`PooledSampler`] will
/// generate it.
pub fn plan_kind(q: u64) -> PlanKind {
    match Plan::classify(q) {
        Plan::Zero | Plan::One => PlanKind::Degenerate,
        Plan::Horner { len, .. } => PlanKind::MaskComposition(len),
        Plan::Adaptive { .. } => PlanKind::Adaptive,
    }
}

/// Aggregate plan classification of a sampler (for diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SamplerSummary {
    /// Planes with p ∈ {0, 1}.
    pub degenerate: usize,
    /// Planes on the fixed-trip mask-composition path.
    pub mask_composition: usize,
    /// Planes on the adaptive-expansion path.
    pub adaptive: usize,
    /// Distinct quantized probabilities across all planes (the number of
    /// shared plans).
    pub distinct_probabilities: usize,
}

/// Draws the Monte-Carlo input planes — `a` planes, `b` planes, carry-in —
/// for one `W::LANES`-lane batch per [`fill`](Self::fill) call.
///
/// Plane order is fixed (`a₀ … a_{w−1}, b₀ … b_{w−1}, cin`), and each
/// plane's plan is resolved at construction, so the stream consumed is a
/// pure function of `(seed, plane probabilities)` — deterministic per
/// `(seed, threads, backend)` when embedded in the Monte-Carlo engine.
#[derive(Debug, Clone)]
pub struct PooledSampler<W> {
    /// Per-plane index into `plans`, in draw order (a planes, b planes).
    plane_plan: Vec<u32>,
    /// One shared plan per distinct quantized probability.
    plans: Vec<Plan>,
    cin_plan: Plan,
    rng: WideXoshiro<W>,
}

impl<W: SimdWord> PooledSampler<W> {
    /// Builds the sampler for quantized per-bit probabilities `qa`/`qb`
    /// (same length) and carry-in probability `q_cin`.
    pub fn new(seed: u64, qa: &[u64], qb: &[u64], q_cin: u64) -> Self {
        assert_eq!(qa.len(), qb.len(), "operand width mismatch");
        let mut plans: Vec<Plan> = Vec::new();
        let mut qs: Vec<u64> = Vec::new();
        let mut plane_plan = Vec::with_capacity(qa.len() * 2);
        for &q in qa.iter().chain(qb) {
            let idx = match qs.iter().position(|&seen| seen == q) {
                Some(idx) => idx,
                None => {
                    qs.push(q);
                    plans.push(Plan::classify(q));
                    plans.len() - 1
                }
            };
            plane_plan.push(idx as u32);
        }
        PooledSampler {
            plane_plan,
            plans,
            cin_plan: Plan::classify(q_cin),
            rng: WideXoshiro::seed_from_u64(seed),
        }
    }

    /// Draws one batch: fills the `a` and `b` bit-planes and returns the
    /// carry-in word. Slice lengths must match the construction width.
    #[inline(always)]
    pub fn fill(&mut self, a_planes: &mut [W], b_planes: &mut [W]) -> W {
        let width = a_planes.len();
        assert_eq!(b_planes.len(), width, "b_planes width mismatch");
        assert_eq!(self.plane_plan.len(), width * 2, "sampler width mismatch");
        for (plane, &idx) in a_planes.iter_mut().zip(&self.plane_plan[..width]) {
            *plane = self.plans[idx as usize].draw(&mut self.rng);
        }
        for (plane, &idx) in b_planes.iter_mut().zip(&self.plane_plan[width..]) {
            *plane = self.plans[idx as usize].draw(&mut self.rng);
        }
        self.cin_plan.draw(&mut self.rng)
    }

    /// Plan classification counts (for diagnostics).
    pub fn summary(&self) -> SamplerSummary {
        let mut summary = SamplerSummary {
            distinct_probabilities: self.plans.len()
                + usize::from(!self.plans.contains(&self.cin_plan)),
            ..Default::default()
        };
        let all_plans = self
            .plane_plan
            .iter()
            .map(|&idx| self.plans[idx as usize])
            .chain(std::iter::once(self.cin_plan));
        for plan in all_plans {
            match plan {
                Plan::Zero | Plan::One => summary.degenerate += 1,
                Plan::Horner { .. } => summary.mask_composition += 1,
                Plan::Adaptive { .. } => summary.adaptive += 1,
            }
        }
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{quantize_p53, Xoshiro256pp};
    use sealpaa_cells::simd::{W128, W256, W512};

    #[test]
    fn wide_rng_element_zero_matches_scalar_xoshiro() {
        let mut scalar = Xoshiro256pp::seed_from_u64(0xFEED);
        let mut wide = WideXoshiro::<u64>::seed_from_u64(0xFEED);
        for _ in 0..32 {
            assert_eq!(wide.next_word(), scalar.next_u64());
        }
        // Element 0 of every width follows the same stream.
        let mut scalar = Xoshiro256pp::seed_from_u64(0xFEED);
        let mut wide = WideXoshiro::<W512>::seed_from_u64(0xFEED);
        for _ in 0..32 {
            assert_eq!(wide.next_word().word(0), scalar.next_u64());
        }
    }

    #[test]
    fn wide_rng_elements_are_distinct_streams() {
        let mut wide = WideXoshiro::<W256>::seed_from_u64(1);
        let w = wide.next_word();
        for i in 1..4 {
            assert_ne!(w.word(i), w.word(0), "element {i} duplicates element 0");
        }
    }

    #[test]
    fn classification_thresholds() {
        assert_eq!(plan_kind(0), PlanKind::Degenerate);
        assert_eq!(plan_kind(1 << 53), PlanKind::Degenerate);
        assert_eq!(plan_kind(quantize_p53(0.5)), PlanKind::MaskComposition(1));
        assert_eq!(plan_kind(quantize_p53(0.25)), PlanKind::MaskComposition(2));
        assert_eq!(plan_kind(quantize_p53(0.75)), PlanKind::MaskComposition(2));
        assert_eq!(
            plan_kind(quantize_p53(3.0 / 16.0)),
            PlanKind::MaskComposition(4)
        );
        // 0.1 has an infinite binary expansion: quantized to 53 bits it is
        // far past the mask-composition cutoff.
        assert_eq!(plan_kind(quantize_p53(0.1)), PlanKind::Adaptive);
        assert_eq!(plan_kind(quantize_p53(0.0137)), PlanKind::Adaptive);
    }

    fn empirical_mean<W: SimdWord>(p: f64, seed: u64, draws: u32) -> f64 {
        let q = quantize_p53(p);
        let width = 3usize;
        let qa = vec![q; width];
        let qb = vec![q; width];
        let mut sampler = PooledSampler::<W>::new(seed, &qa, &qb, q);
        let mut a = vec![W::zero(); width];
        let mut b = vec![W::zero(); width];
        let mut ones = 0u64;
        let mut total = 0u64;
        for _ in 0..draws {
            let cin = sampler.fill(&mut a, &mut b);
            for plane in a.iter().chain(b.iter()).chain(std::iter::once(&cin)) {
                ones += plane.count_ones();
                total += W::LANES as u64;
            }
        }
        ones as f64 / total as f64
    }

    /// The satellite statistical contract: empirical plane means track p
    /// within seeded-loop tolerance for dyadic and non-dyadic p, on every
    /// word width.
    #[test]
    fn empirical_means_track_p_for_every_width() {
        for &p in &[0.5, 0.25, 0.1, 3.0 / 16.0, 0.0137] {
            for (lanes, mean) in [
                (64.0, empirical_mean::<u64>(p, 0xA5A5, 2000)),
                (128.0, empirical_mean::<W128>(p, 0xA5A5, 1000)),
                (256.0, empirical_mean::<W256>(p, 0xA5A5, 500)),
                (512.0, empirical_mean::<W512>(p, 0xA5A5, 250)),
            ] {
                // 7 planes per draw; n = draws · lanes · 7 with
                // draws · lanes = 128_000 in every configuration.
                let n = 128_000.0 * 7.0;
                let sigma = (p * (1.0 - p) / n).sqrt();
                assert!(
                    (mean - p).abs() < 5.0 * sigma + 1e-9,
                    "p={p} lanes={lanes}: mean {mean}"
                );
            }
        }
    }

    #[test]
    fn per_lane_frequency_is_unbiased() {
        // No lane of the wide word may be systematically biased (a broken
        // element stream or mask composition would show up here).
        let p = 0.3;
        let q = quantize_p53(p);
        let mut sampler = PooledSampler::<W256>::new(7, &[q], &[q], 0);
        let mut a = [W256::zero(); 1];
        let mut b = [W256::zero(); 1];
        let draws = 4000u32;
        let mut per_lane = vec![0u32; 256];
        for _ in 0..draws {
            let _ = sampler.fill(&mut a, &mut b);
            for (i, count) in per_lane.iter_mut().enumerate() {
                *count += ((a[0].word(i / 64) >> (i % 64)) & 1) as u32;
                *count += ((b[0].word(i / 64) >> (i % 64)) & 1) as u32;
            }
        }
        let n = f64::from(draws) * 2.0;
        let sigma = (p * (1.0 - p) / n).sqrt();
        for (lane, &count) in per_lane.iter().enumerate() {
            let freq = f64::from(count) / n;
            assert!((freq - p).abs() < 6.0 * sigma, "lane {lane}: freq {freq}");
        }
    }

    #[test]
    fn mask_composition_matches_adaptive_distribution() {
        // 3/16 takes the Horner path; force the adaptive path for the same
        // probability through the scalar RNG and compare means.
        let q = quantize_p53(3.0 / 16.0);
        let mut scalar = Xoshiro256pp::seed_from_u64(3);
        let mut scalar_ones = 0u64;
        let draws = 8000;
        for _ in 0..draws {
            scalar_ones += u64::from(scalar.next_bernoulli64(q).count_ones());
        }
        let horner = empirical_mean::<u64>(3.0 / 16.0, 3, draws as u32);
        let scalar_mean = scalar_ones as f64 / (draws as f64 * 64.0);
        let n = draws as f64 * 64.0;
        let sigma = (0.1875f64 * (1.0 - 0.1875) / n).sqrt();
        assert!((horner - 0.1875).abs() < 5.0 * sigma, "horner {horner}");
        assert!(
            (scalar_mean - 0.1875).abs() < 5.0 * sigma,
            "adaptive {scalar_mean}"
        );
    }

    #[test]
    fn degenerate_planes_consume_no_randomness() {
        let mut sampler = PooledSampler::<W128>::new(11, &[0, 1 << 53], &[0, 1 << 53], 0);
        let rng_before = sampler.rng.clone().next_word();
        let mut a = [W128::zero(); 2];
        let mut b = [W128::zero(); 2];
        let cin = sampler.fill(&mut a, &mut b);
        assert_eq!(a[0], W128::zero());
        assert_eq!(a[1], W128::ones());
        assert_eq!(b[0], W128::zero());
        assert_eq!(b[1], W128::ones());
        assert_eq!(cin, W128::zero());
        assert_eq!(
            sampler.rng.next_word(),
            rng_before,
            "stream must not advance"
        );
    }

    #[test]
    fn sampler_is_deterministic_per_seed() {
        let q = quantize_p53(0.37);
        let draw = |seed: u64| {
            let mut s = PooledSampler::<W256>::new(seed, &[q; 4], &[q; 4], q);
            let mut a = [W256::zero(); 4];
            let mut b = [W256::zero(); 4];
            let cin = s.fill(&mut a, &mut b);
            (a, b, cin)
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }

    #[test]
    fn summary_counts_plans_and_groups() {
        let half = quantize_p53(0.5);
        let tenth = quantize_p53(0.1);
        let sampler = PooledSampler::<u64>::new(1, &[half, half, tenth], &[half, 0, tenth], half);
        let summary = sampler.summary();
        assert_eq!(summary.degenerate, 1);
        assert_eq!(summary.mask_composition, 4); // three 0.5 planes + cin
        assert_eq!(summary.adaptive, 2);
        // 0.5, 0.1, 0 — three distinct probabilities, cin shares 0.5's plan.
        assert_eq!(summary.distinct_probabilities, 3);
    }
}
