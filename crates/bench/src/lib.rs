//! Reproduction harness for every table and figure in the paper's
//! evaluation, plus the Criterion benchmark suite.
//!
//! Each `experiments::*` function regenerates one artefact of the paper as a
//! formatted [`report::Table`]; the binaries in `src/bin/` are thin wrappers
//! that print them (`cargo run -p sealpaa-bench --bin table7`), and
//! `--bin repro_all` prints everything `EXPERIMENTS.md` records.
//!
//! | Paper artefact | Function | Binary |
//! |---|---|---|
//! | Fig. 1 (exhaustive-simulation blow-up) | [`experiments::fig1`] | `fig1` |
//! | Table 2 (cell characteristics) | [`experiments::table2`] | `table2` |
//! | Table 3 (inclusion–exclusion cost) | [`experiments::table3`] | `table3` |
//! | Table 4 (worked 4-bit example) | [`experiments::table4`] | `table4` |
//! | Table 5 (M/K/L matrices) | [`experiments::table5`] | `table5` |
//! | Table 6 (accuracy-match validation) | [`experiments::table6`] | `table6` |
//! | Table 7 (analytical vs simulation, p = 0.1) | [`experiments::table7`] | `table7` |
//! | Table 8 (resource utilisation) | [`experiments::table8`] | `table8` |
//! | Fig. 5(a,b,c) (success/error vs width) | [`experiments::fig5`] | `fig5` |
//! | GeAr extension sweep | [`experiments::gear_sweep`] | `gear_sweep` |
//! | Hybrid-adder DSE (paper Sec. 5 discussion) | [`experiments::hybrid_dse`] | `hybrid_dse` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod microbench;
pub mod report;
