//! Minimal fixed-width table rendering for the reproduction binaries.

use std::fmt;

/// A titled, column-aligned ASCII table.
///
/// # Examples
///
/// ```
/// use sealpaa_bench::report::Table;
///
/// let mut t = Table::new("demo", ["name", "value"]);
/// t.row(["pi", "3.14"]);
/// let rendered = t.to_string();
/// assert!(rendered.contains("demo"));
/// assert!(rendered.contains("3.14"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new<H: Into<String>>(
        title: impl Into<String>,
        headers: impl IntoIterator<Item = H>,
    ) -> Self {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row's cell count differs from the header count.
    pub fn row<C: Into<String>>(&mut self, cells: impl IntoIterator<Item = C>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Appends a free-form footnote printed after the table body.
    pub fn note(&mut self, text: impl Into<String>) -> &mut Self {
        self.notes.push(text.into());
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Borrows a cell by row/column for programmatic checks in tests.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row)?.get(col).map(String::as_str)
    }

    /// Renders the table as RFC-4180-ish CSV (header row first; fields
    /// containing commas or quotes are quoted) for plotting the figures
    /// outside this tool. Notes are not included.
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        let mut push_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        push_row(&self.headers);
        for row in &self.rows {
            push_row(row);
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (w, cell) in widths.iter().zip(cells) {
                line.push_str(&format!("{cell:<width$}  ", width = w));
            }
            writeln!(f, "{}", line.trim_end())
        };
        print_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("t", ["a", "long-header"]);
        t.row(["xxxxxx", "1"]);
        t.row(["y", "2"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("== t =="));
        // The second data column starts at the same offset in both rows.
        let col = lines[3].find('1').expect("has 1");
        assert_eq!(lines[4].find('2'), Some(col));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("t", ["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn notes_are_rendered() {
        let mut t = Table::new("t", ["a"]);
        t.row(["1"]).note("caveat");
        assert!(t.to_string().contains("note: caveat"));
    }

    #[test]
    fn csv_escapes_only_where_needed() {
        let mut t = Table::new("t", ["plain", "with,comma", "with\"quote"]);
        t.row(["a", "b,c", "d\"e"]);
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("plain,\"with,comma\",\"with\"\"quote\""));
        assert_eq!(lines.next(), Some("a,\"b,c\",\"d\"\"e\""));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn cell_accessor() {
        let mut t = Table::new("t", ["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.cell(0, 1), Some("2"));
        assert_eq!(t.cell(1, 0), None);
        assert_eq!(t.row_count(), 1);
    }
}
