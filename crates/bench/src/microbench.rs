//! A dependency-free microbenchmark harness with a Criterion-shaped API.
//!
//! The benchmark files under `benches/` were written against Criterion; this
//! module reproduces the small API subset they use — `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`, `Throughput`,
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros —
//! on top of `std::time::Instant` only, so the suite builds and runs with no
//! network access. The statistics are deliberately simple (median of wall
//!-clock samples after a calibration pass); for paper-grade claims, run
//! longer with `MICROBENCH_SAMPLE_MS`.
//!
//! Environment knobs:
//!
//! * `MICROBENCH_SAMPLE_MS` — target wall-clock per sample (default 20 ms),
//! * `MICROBENCH_QUICK` — if set, one sample per benchmark (smoke mode).
//!
//! [`criterion_group!`]: crate::criterion_group
//! [`criterion_main!`]: crate::criterion_main

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// An opaque sink that prevents the optimizer from deleting the benchmarked
/// computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// One completed measurement, captured by the harness so benchmark binaries
/// can emit machine-readable reports next to the human-readable lines.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Fully qualified benchmark name (`group/id`).
    pub name: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Drains every measurement recorded since the last call, in run order.
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut *RESULTS.lock().expect("bench results mutex"))
}

/// Throughput annotation (reported as elements/second next to the time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmarked operation processes this many logical elements.
    Elements(u64),
    /// The benchmarked operation processes this many bytes.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` — a parameterized benchmark within a group.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// Just the parameter — for groups whose name already says it all.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> BenchmarkId {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> BenchmarkId {
        BenchmarkId { label }
    }
}

/// Runs one benchmark body repeatedly and measures it.
pub struct Bencher {
    sample_budget: Duration,
    samples: usize,
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    result_ns: f64,
}

impl Bencher {
    /// Calibrates an iteration count against the sample budget, then times
    /// `samples` batches of the closure and records the median.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibration: time a single call (running it at least once also
        // warms caches and lazy statics).
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.sample_budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = per_iter[per_iter.len() / 2];
    }
}

fn quick_mode() -> bool {
    std::env::var_os("MICROBENCH_QUICK").is_some()
}

fn sample_budget() -> Duration {
    let ms = std::env::var("MICROBENCH_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20u64);
    Duration::from_millis(ms.max(1))
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_one(
    group: Option<&str>,
    id: &BenchmarkId,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        sample_budget: sample_budget(),
        samples: if quick_mode() { 1 } else { samples },
        result_ns: 0.0,
    };
    f(&mut bencher);
    let name = match group {
        Some(group) => format!("{group}/{}", id.label),
        None => id.label.clone(),
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if bencher.result_ns > 0.0 => {
            format!("  ({:.3e} elem/s)", n as f64 / (bencher.result_ns * 1e-9))
        }
        Some(Throughput::Bytes(n)) if bencher.result_ns > 0.0 => {
            format!("  ({:.3e} B/s)", n as f64 / (bencher.result_ns * 1e-9))
        }
        _ => String::new(),
    };
    println!("{name:<50} {:>12}/iter{rate}", format_ns(bencher.result_ns));
    RESULTS
        .lock()
        .expect("bench results mutex")
        .push(BenchResult {
            name,
            ns_per_iter: bencher.result_ns,
        });
}

/// The harness entry point handed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(None, &id.into(), 10, None, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(
            Some(&self.name),
            &id.into(),
            self.sample_size,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            Some(&self.name),
            &id,
            self.sample_size,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runner function, mirroring
/// Criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::microbench::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` for a benchmark binary, mirroring Criterion's macro of the
/// same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_one_records_results_for_machine_readable_reports() {
        std::env::set_var("MICROBENCH_QUICK", "1");
        std::env::set_var("MICROBENCH_SAMPLE_MS", "1");
        let _ = take_results(); // isolate from other tests in this process
        let mut c = Criterion::default();
        c.bench_function("recorded", |b| b.iter(|| black_box(3 * 3)));
        let results = take_results();
        assert!(results
            .iter()
            .any(|r| r.name == "recorded" && r.ns_per_iter > 0.0));
        assert!(take_results().is_empty(), "take drains the registry");
    }

    #[test]
    fn bencher_measures_something_positive() {
        let mut bencher = Bencher {
            sample_budget: Duration::from_micros(200),
            samples: 3,
            result_ns: 0.0,
        };
        let mut acc = 0u64;
        bencher.iter(|| {
            acc = acc.wrapping_add(black_box(1));
            acc
        });
        assert!(bencher.result_ns > 0.0);
    }

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("proposed", 64).label, "proposed/64");
        assert_eq!(BenchmarkId::from_parameter(128).label, "128");
        assert_eq!(BenchmarkId::from("f64").label, "f64");
    }

    #[test]
    fn group_and_function_apis_run_without_panicking() {
        std::env::set_var("MICROBENCH_QUICK", "1");
        std::env::set_var("MICROBENCH_SAMPLE_MS", "1");
        let mut c = Criterion::default();
        c.bench_function("standalone", |b| b.iter(|| black_box(2 + 2)));
        let mut group = c.benchmark_group("group");
        group.sample_size(2);
        group.throughput(Throughput::Elements(4));
        group.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
