//! Regenerates paper Table 5 (M, K, L matrices, derived).

fn main() {
    print!("{}", sealpaa_bench::experiments::table5());
}
