//! Regenerates paper Table 4 (worked 4-bit LPAA 1 example).

fn main() {
    print!("{}", sealpaa_bench::experiments::table4());
}
