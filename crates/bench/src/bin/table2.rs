//! Regenerates paper Table 2 (LPAA characteristics).

fn main() {
    print!("{}", sealpaa_bench::experiments::table2());
}
