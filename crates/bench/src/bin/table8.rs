//! Regenerates paper Table 8 (resource utilisation of the method).

fn main() {
    print!("{}", sealpaa_bench::experiments::table8());
}
