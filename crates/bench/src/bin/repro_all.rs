//! Runs every paper reproduction in sequence (the source of EXPERIMENTS.md).
//!
//! Usage: `cargo run --release -p sealpaa-bench --bin repro_all [mc_samples]`

use sealpaa_bench::experiments;

fn main() {
    let samples: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("mc_samples must be an integer"))
        .unwrap_or(1_000_000);
    println!("{}", experiments::fig1(10));
    println!("{}", experiments::table2());
    println!("{}", experiments::table3());
    println!("{}", experiments::table4());
    println!("{}", experiments::table5());
    println!("{}", experiments::table6(samples, 8));
    println!("{}", experiments::table7(samples));
    println!("{}", experiments::table8());
    for table in experiments::fig5() {
        println!("{table}");
    }
    println!("{}", experiments::gear_sweep(samples));
    println!("{}", experiments::hybrid_dse(8));
    println!("{}", experiments::multiplier_quality(samples.min(200_000)));
    println!(
        "{}",
        experiments::lsb_sweep_table(sealpaa_cells::StandardCell::Lpaa5, 8)
    );
    println!("{}", experiments::worst_case_table(16));
}
