//! Extension: approximate-LSB deployment sweep.
//!
//! Usage: `cargo run --release -p sealpaa-bench --bin lsb_sweep [width]`

use sealpaa_cells::StandardCell;

fn main() {
    let width: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("width must be an integer"))
        .unwrap_or(8);
    for cell in [StandardCell::Lpaa1, StandardCell::Lpaa5] {
        println!(
            "{}",
            sealpaa_bench::experiments::lsb_sweep_table(cell, width)
        );
    }
}
