//! Extension: exact worst-case errors with witnesses.
//!
//! Usage: `cargo run --release -p sealpaa-bench --bin worst_case [width]`

fn main() {
    let width: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("width must be an integer"))
        .unwrap_or(16);
    print!("{}", sealpaa_bench::experiments::worst_case_table(width));
}
