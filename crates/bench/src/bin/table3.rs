//! Regenerates paper Table 3 (inclusion-exclusion cost model).

fn main() {
    print!("{}", sealpaa_bench::experiments::table3());
}
