//! Regenerates paper Fig. 5(a,b,c) (P(Succ) vs width per LPAA).
//!
//! Usage: `cargo run --release -p sealpaa-bench --bin fig5 [--csv]`

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    for table in sealpaa_bench::experiments::fig5() {
        if csv {
            print!("{}", table.to_csv());
            println!();
        } else {
            println!("{table}");
        }
    }
}
