//! Extension: approximate shift-add multiplier quality per cell.
//!
//! Usage: `cargo run --release -p sealpaa-bench --bin multiplier_quality [mc_samples]`

fn main() {
    let samples: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("mc_samples must be an integer"))
        .unwrap_or(100_000);
    print!(
        "{}",
        sealpaa_bench::experiments::multiplier_quality(samples)
    );
}
