//! Extension (paper Sec. 5): budgeted hybrid-adder design-space exploration.
//!
//! Usage: `cargo run --release -p sealpaa-bench --bin hybrid_dse [width]`

fn main() {
    let width: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("width must be an integer"))
        .unwrap_or(8);
    print!("{}", sealpaa_bench::experiments::hybrid_dse(width));
}
