//! Regenerates paper Table 7 (analytical vs simulated P(E) at p = 0.1).
//!
//! Usage: `cargo run --release -p sealpaa-bench --bin table7 [mc_samples] [--csv]`

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let samples: u64 = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(|s| s.parse().expect("mc_samples must be an integer"))
        .unwrap_or(1_000_000);
    let table = sealpaa_bench::experiments::table7(samples);
    if csv {
        print!("{}", table.to_csv());
    } else {
        print!("{table}");
    }
}
