//! Regenerates paper Fig. 1 (exhaustive-simulation blow-up vs width).
//!
//! Usage: `cargo run --release -p sealpaa-bench --bin fig1 [max_width]`

fn main() {
    let max_width: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("max_width must be an integer"))
        .unwrap_or(10);
    print!("{}", sealpaa_bench::experiments::fig1(max_width));
}
