//! Extension: GeAr configuration sweep with three cross-checked analyses.
//!
//! Usage: `cargo run --release -p sealpaa-bench --bin gear_sweep [mc_samples]`

fn main() {
    let samples: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("mc_samples must be an integer"))
        .unwrap_or(1_000_000);
    print!("{}", sealpaa_bench::experiments::gear_sweep(samples));
}
