//! Regenerates paper Table 6 (accuracy match vs simulation).
//!
//! Usage: `cargo run --release -p sealpaa-bench --bin table6 [mc_samples] [max_exhaustive_width]`

fn main() {
    let samples: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("mc_samples must be an integer"))
        .unwrap_or(1_000_000);
    let width: usize = std::env::args()
        .nth(2)
        .map(|s| s.parse().expect("width must be an integer"))
        .unwrap_or(8);
    print!("{}", sealpaa_bench::experiments::table6(samples, width));
}
