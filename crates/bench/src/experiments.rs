//! One function per paper table/figure; see the crate docs for the mapping.

use std::time::Instant;

use sealpaa_cells::{AdderChain, InputProfile, StandardCell};
use sealpaa_core::{analyze, analyze_instrumented, table8_resource_model, MklMatrices};
use sealpaa_explore::{
    accurate_cell_with_proxy_costs, enumerate_designs, exhaustive_best, pareto_front, Budget,
};
use sealpaa_gear::{
    error_probability as gear_error, error_probability_block_independent as gear_independent,
    error_probability_inclexcl as gear_inclexcl, GearAdder, GearConfig,
};
use sealpaa_inclexcl::cost;
use sealpaa_num::Rational;
use sealpaa_sim::Xoshiro256pp;
use sealpaa_sim::{exhaustive, monte_carlo, MonteCarloConfig};

use crate::report::Table;

/// Paper Table 7's analytical `P(E)` values (inputs at `p = 0.1`), rows
/// `N = 2, 4, 6, 8, 10, 12`, columns LPAA 1–7 — used as the reference the
/// reproduction is checked against.
pub const PAPER_TABLE_7: [(usize, [f64; 7]); 6] = [
    (
        2,
        [0.30780, 0.9271, 0.95707, 0.31851, 0.27000, 0.1143, 0.01980],
    ),
    (
        4,
        [
            0.53090, 0.99468, 0.99763, 0.54033, 0.40950, 0.13533, 0.02333,
        ],
    ),
    (
        6,
        [
            0.68240, 0.99961, 0.99986, 0.68999, 0.52170, 0.15266, 0.02685,
        ],
    ),
    (
        8,
        [
            0.78498, 0.99997, 0.99999, 0.79092, 0.61258, 0.16953, 0.03035,
        ],
    ),
    (
        10,
        [
            0.85443, 0.99999, 0.99999, 0.85899, 0.68618, 0.18605, 0.03385,
        ],
    ),
    (
        12,
        [
            0.90145, 0.99999, 0.99999, 0.90490, 0.74581, 0.20225, 0.03733,
        ],
    ),
];

/// Paper Fig. 1: exhaustive-simulation time and computation counts explode
/// with the adder width while the analytical method stays flat.
///
/// # Panics
///
/// Panics if `max_width` exceeds the exhaustive simulator's limit.
pub fn fig1(max_width: usize) -> Table {
    let mut t = Table::new(
        "Fig. 1 — exhaustive simulation vs proposed analysis (LPAA 1, equal probabilities)",
        [
            "N",
            "sim cases",
            "sim bit-adds",
            "sim time",
            "analysis ops",
            "analysis time",
        ],
    );
    for n in 2..=max_width {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), n);
        let profile = InputProfile::<f64>::uniform(n);
        let start = Instant::now();
        let sim = exhaustive(&chain, &profile).expect("width within simulator limit");
        let sim_time = start.elapsed();
        let start = Instant::now();
        let (_, ops) = analyze_instrumented(&chain, &profile).expect("widths match");
        let ana_time = start.elapsed();
        t.row([
            n.to_string(),
            sim.cases.to_string(),
            sim.work.bit_additions.to_string(),
            format!("{sim_time:.2?}"),
            ops.total().to_string(),
            format!("{ana_time:.2?}"),
        ]);
    }
    t.note("simulation cost doubles 4x per added bit; analysis cost grows by one stage");
    t
}

/// Paper Table 2: per-cell error cases (computed from the truth tables) and
/// the published power/area characteristics.
pub fn table2() -> Table {
    let mut t = Table::new(
        "Table 2 — LPAA characteristics",
        ["cell", "error cases", "power (nW)", "area (GE)"],
    );
    for cell in StandardCell::APPROXIMATE {
        let errors = cell.truth_table().error_case_count().to_string();
        match cell.characteristics() {
            Some(c) => t.row([
                cell.name().to_owned(),
                errors,
                format!("{}", c.power_nw),
                format!("{}", c.area_ge),
            ]),
            None => t.row([cell.name().to_owned(), errors, "n/a".into(), "n/a".into()]),
        };
    }
    t.note("power/area published for LPAA 1-5 only (Gupta et al., TCAD'13, 65 nm)");
    t
}

/// Paper Table 3: the cost blow-up of traditional inclusion–exclusion
/// analysis versus the stage count.
pub fn table3() -> Table {
    let mut t = Table::new(
        "Table 3 — inclusion-exclusion cost model",
        [
            "stages",
            "terms",
            "multiplications",
            "additions",
            "memory units",
        ],
    );
    for k in (4..=32).step_by(4) {
        let c = cost(k);
        t.row([
            k.to_string(),
            c.terms.to_string(),
            c.multiplications.to_string(),
            c.additions.to_string(),
            c.memory_units.to_string(),
        ]);
    }
    t.note("k(2^(k-1)-1) mults / 2^k-2 adds / 2^(k+1)-1 memory; see EXPERIMENTS.md for the paper's typos");
    t
}

/// Paper Table 4: the worked 4-bit LPAA 1 example, stage by stage, in exact
/// arithmetic.
pub fn table4() -> Table {
    let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 4);
    let profile = InputProfile::<Rational>::new(
        vec![
            Rational::from_ratio(9, 10),
            Rational::from_ratio(1, 2),
            Rational::from_ratio(2, 5),
            Rational::from_ratio(4, 5),
        ],
        vec![
            Rational::from_ratio(4, 5),
            Rational::from_ratio(7, 10),
            Rational::from_ratio(3, 5),
            Rational::from_ratio(9, 10),
        ],
        Rational::from_ratio(1, 2),
    )
    .expect("paper profile is valid");
    let analysis = analyze(&chain, &profile).expect("widths match");
    let mut t = Table::new(
        "Table 4 — 4-bit LPAA 1 worked example",
        [
            "stage",
            "P(A)",
            "P(B)",
            "P(C̄curr∩S)",
            "P(Ccurr∩S)",
            "P(C̄next∩S)",
            "P(Cnext∩S)",
            "P(Succ)",
        ],
    );
    let last = analysis.width() - 1;
    for stage in analysis.stages() {
        let succ = if stage.stage == last {
            analysis.success_probability().to_decimal(6)
        } else {
            "NR".to_owned()
        };
        let (c_out0, c_out1) = if stage.stage == last {
            ("NR".to_owned(), "NR".to_owned())
        } else {
            (
                stage.carry_out.p_not_carry_and_success().to_decimal(6),
                stage.carry_out.p_carry_and_success().to_decimal(6),
            )
        };
        t.row([
            stage.stage.to_string(),
            stage.pa.to_decimal(2),
            stage.pb.to_decimal(2),
            stage.carry_in.p_not_carry_and_success().to_decimal(6),
            stage.carry_in.p_carry_and_success().to_decimal(6),
            c_out0,
            c_out1,
            succ,
        ]);
    }
    t.note("paper prints: 0.02/0.85, 0.1305/0.7295, 0.2064/0.58574, P(Succ)=0.738476");
    t
}

/// Paper Table 5: the M, K, L matrices of LPAA 1–7, derived from the
/// Table 1 truth tables.
pub fn table5() -> Table {
    let mut t = Table::new(
        "Table 5 — derived M, K, L matrices",
        ["cell", "M", "K", "L"],
    );
    for cell in StandardCell::APPROXIMATE {
        let mkl = MklMatrices::from_truth_table(&cell.truth_table());
        t.row([
            cell.name().to_owned(),
            format!("{:?}", mkl.m_bits()),
            format!("{:?}", mkl.k_bits()),
            format!("{:?}", mkl.l_bits()),
        ]);
    }
    t.note("derived from truth tables; unit tests assert equality with the paper's Table 5");
    t
}

/// Paper Table 6: accuracy of the proposed method against simulation.
///
/// Row 1 (equally probable inputs): analytical vs *exact rational*
/// exhaustive enumeration over all `2^(2N+1)` cases — counts exact matches.
/// Row 2 (inputs at `p = 0.1`): analytical vs Monte-Carlo with `mc_samples`
/// draws — reports the worst absolute deviation.
pub fn table6(mc_samples: u64, max_exhaustive_width: usize) -> Table {
    let mut t = Table::new(
        "Table 6 — accuracy match of proposed method vs simulation",
        ["input probabilities", "test regime", "result"],
    );

    let mut exact_matches = 0usize;
    let mut comparisons = 0usize;
    for cell in StandardCell::APPROXIMATE {
        for n in 2..=max_exhaustive_width {
            let chain = AdderChain::uniform(cell.cell(), n);
            let profile = InputProfile::<Rational>::uniform(n);
            let analytical = analyze(&chain, &profile)
                .expect("widths match")
                .error_probability();
            let simulated = exhaustive(&chain, &profile)
                .expect("width within limit")
                .output_error_probability;
            comparisons += 1;
            if analytical == simulated {
                exact_matches += 1;
            }
        }
    }
    t.row([
        "equally probable (p = 1/2)".to_owned(),
        format!("exhaustive, 2^(2N+1) cases, N = 2..={max_exhaustive_width}, exact rationals"),
        format!("{exact_matches}/{comparisons} exact (to any decimal place)"),
    ]);

    let mut worst = 0.0f64;
    for cell in StandardCell::APPROXIMATE {
        let chain = AdderChain::uniform(cell.cell(), 8);
        let profile = InputProfile::constant(8, 0.1);
        let analytical = analyze(&chain, &profile)
            .expect("widths match")
            .error_probability();
        let mc = monte_carlo(
            &chain,
            &profile,
            MonteCarloConfig {
                samples: mc_samples,
                ..Default::default()
            },
        )
        .expect("widths match");
        worst = worst.max((mc.error_probability() - analytical).abs());
    }
    t.row([
        "not equally probable (p = 0.1)".to_owned(),
        format!("Monte-Carlo, {mc_samples} samples, N = 8, all 7 LPAAs"),
        format!("max |analytical - simulated| = {worst:.5}"),
    ]);
    t.note("paper: exact match for equal probabilities; 3-decimal match for 1M MC samples");
    t
}

/// Paper Table 7: analytical vs simulated `P(E)` for all seven LPAAs at
/// `p = 0.1`, `N = 2, 4, …, 12`, with the paper's own analytical values for
/// comparison.
pub fn table7(mc_samples: u64) -> Table {
    let mut t = Table::new(
        "Table 7 — P(E), analytical vs Monte-Carlo vs paper (p = 0.1)",
        [
            "N",
            "cell",
            "analytical",
            "simulated",
            "paper",
            "|ours-paper|",
        ],
    );
    for &(n, paper_row) in &PAPER_TABLE_7 {
        for (c, cell) in StandardCell::APPROXIMATE.into_iter().enumerate() {
            let chain = AdderChain::uniform(cell.cell(), n);
            let profile = InputProfile::constant(n, 0.1);
            let analytical = analyze(&chain, &profile)
                .expect("widths match")
                .error_probability();
            let mc = monte_carlo(
                &chain,
                &profile,
                MonteCarloConfig {
                    samples: mc_samples,
                    ..Default::default()
                },
            )
            .expect("widths match");
            t.row([
                n.to_string(),
                cell.name().to_owned(),
                format!("{analytical:.5}"),
                format!("{:.5}", mc.error_probability()),
                format!("{:.5}", paper_row[c]),
                format!("{:.5}", (analytical - paper_row[c]).abs()),
            ]);
        }
    }
    t.note("paper column = paper Table 7 'Analyt.'; paper rounds/truncates to 5 decimals");
    t
}

/// Paper Table 8: resource utilisation of the proposed method — the paper's
/// hardware-style model next to this implementation's measured counts.
pub fn table8() -> Table {
    let width = 32;
    let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), width);
    let equal = InputProfile::constant(width, 0.5);
    let varying = InputProfile::new(
        (0..width).map(|i| 0.01 * i as f64 + 0.1).collect(),
        (0..width).map(|i| 0.9 - 0.01 * i as f64).collect(),
        0.5,
    )
    .expect("valid profile");
    let (_, ops_equal) = analyze_instrumented(&chain, &equal).expect("widths match");
    let (_, ops_varying) = analyze_instrumented(&chain, &varying).expect("widths match");
    let model_equal = table8_resource_model(width, true);
    let model_varying = table8_resource_model(width, false);

    let mut t = Table::new(
        "Table 8 — resource utilisation of the proposed method (32-bit)",
        ["scenario", "paper model", "measured (this impl.)"],
    );
    t.row([
        "operand bits equally probable".to_owned(),
        model_equal.to_string(),
        ops_equal.to_string(),
    ]);
    t.row([
        "operand bits with different probabilities".to_owned(),
        model_varying.to_string(),
        ops_varying.to_string(),
    ]);
    t.note("paper counts reusable datapath resources; measured counts are totals over all 32 iterations — both scale linearly in width");
    t
}

/// Paper Fig. 5: `P(Succ)`/`P(Error)` versus adder width for every LPAA at
/// (a) equal, (b) low and (c) high input-bit probabilities.
///
/// The paper does not print the low/high probability values; 0.2 and 0.8
/// reproduce its qualitative ranking (see `EXPERIMENTS.md`).
pub fn fig5() -> Vec<Table> {
    let scenarios = [
        ("Fig. 5(a) — equally probable inputs (p = 0.5)", 0.5),
        ("Fig. 5(b) — low input probability (p = 0.2)", 0.2),
        ("Fig. 5(c) — high input probability (p = 0.8)", 0.8),
    ];
    scenarios
        .into_iter()
        .map(|(title, p)| {
            let mut t = Table::new(
                title,
                [
                    "N", "LPAA 1", "LPAA 2", "LPAA 3", "LPAA 4", "LPAA 5", "LPAA 6", "LPAA 7",
                ],
            );
            // The width-n chain is a prefix of the width-16 chain under a
            // constant profile, so one analysis per cell yields the entire
            // sweep via its per-stage prefix successes.
            let profile = InputProfile::constant(16, p);
            let sweeps: Vec<Vec<f64>> = StandardCell::APPROXIMATE
                .iter()
                .map(|cell| {
                    let chain = AdderChain::uniform(cell.cell(), 16);
                    let analysis = analyze(&chain, &profile).expect("widths match");
                    (0..16).map(|i| analysis.prefix_success(i)).collect()
                })
                .collect();
            for n in 1..=16usize {
                let mut cells_out = vec![n.to_string()];
                for sweep in &sweeps {
                    cells_out.push(format!("{:.4}", sweep[n - 1]));
                }
                t.row(cells_out);
            }
            t.note("values are P(Succ); P(Error) = 1 - P(Succ)");
            t
        })
        .collect()
}

/// Extension: GeAr error probabilities at `N = 16` across configurations,
/// cross-checked three ways (linear DP, inclusion–exclusion, Monte-Carlo)
/// plus the block-independence approximation.
pub fn gear_sweep(mc_samples: u64) -> Table {
    let mut t = Table::new(
        "GeAr sweep (N = 16, uniform inputs)",
        [
            "config",
            "blocks",
            "exact (linear DP)",
            "incl-excl (terms)",
            "indep. approx",
            "Monte-Carlo",
        ],
    );
    for (r, p) in [(1, 1), (2, 0), (2, 2), (2, 4), (4, 0), (4, 4)] {
        let config = GearConfig::new(16, r, p).expect("valid config");
        let pa = vec![0.5f64; 16];
        let exact = gear_error(&config, &pa, &pa, 0.0).expect("widths match");
        let (ie, terms) = gear_inclexcl(&config, &pa, &pa, 0.0).expect("widths match");
        let indep = gear_independent(&config, &pa, &pa, 0.0).expect("widths match");
        let adder = GearAdder::new(config);
        let mut rng = Xoshiro256pp::seed_from_u64(0x6EA2 + r as u64 * 31 + p as u64);
        let mut errors = 0u64;
        for _ in 0..mc_samples {
            let a: u64 = rng.next_u64() & 0xFFFF;
            let b: u64 = rng.next_u64() & 0xFFFF;
            if !adder.matches_accurate(a, b, false) {
                errors += 1;
            }
        }
        t.row([
            config.to_string(),
            config.block_count().to_string(),
            format!("{exact:.6}"),
            format!("{ie:.6} ({terms})"),
            format!("{indep:.6}"),
            format!("{:.6}", errors as f64 / mc_samples as f64),
        ]);
    }
    t.note("exact linear DP is the paper-style recursive analysis; incl-excl is the [12]-style baseline");
    t
}

/// Extension (paper Sec. 5): budgeted hybrid-adder design-space exploration
/// under an MSB-skewed input profile.
pub fn hybrid_dse(width: usize) -> Table {
    let candidates = vec![
        StandardCell::Lpaa1.cell(),
        StandardCell::Lpaa2.cell(),
        StandardCell::Lpaa5.cell(),
        accurate_cell_with_proxy_costs(),
    ];
    // MSBs mostly 0 (as in magnitude-limited signals), LSBs balanced.
    let pa: Vec<f64> = (0..width)
        .map(|i| 0.5 - 0.4 * i as f64 / (width.max(2) - 1) as f64)
        .collect();
    let profile = InputProfile::new(pa.clone(), pa, 0.0).expect("valid profile");
    let unconstrained_power: f64 = 1080.0 * width as f64; // all-accurate chain

    let mut t = Table::new(
        format!("Hybrid DSE ({width}-bit, MSB-skewed inputs)"),
        [
            "power budget",
            "best chain",
            "P(err)",
            "power (nW)",
            "area (GE)",
        ],
    );
    for fraction in [0.25, 0.5, 0.75, 1.0] {
        let budget = Budget {
            max_power_nw: Some(unconstrained_power * fraction),
            max_area_ge: None,
        };
        let best = exhaustive_best(&candidates, &profile, &budget)
            .expect("space within cap")
            .expect("all-LPAA5 chain always fits");
        t.row([
            format!("{:.0}% of accurate", fraction * 100.0),
            best.chain.to_string(),
            format!("{:.6}", best.evaluation.error_probability),
            format!("{:.0}", best.evaluation.power_nw),
            format!("{:.2}", best.evaluation.area_ge),
        ]);
    }
    let designs = enumerate_designs(&candidates, &profile).expect("space within cap");
    let front = pareto_front(designs);
    t.note(format!(
        "Pareto frontier over (error, power, area): {} designs of {}",
        front.len(),
        (candidates.len() as u128).pow(width as u32)
    ));
    t
}

/// Extension: shift-add multiplier quality per accumulator cell (the
/// approximate-multiplier context of the paper's ref.\ 16).
pub fn multiplier_quality(mc_samples: u64) -> Table {
    let mut t = Table::new(
        "Approximate 8x8 shift-add multipliers (uniform operands)",
        ["accumulator cell", "error rate", "MRED", "max |error|"],
    );
    for cell in StandardCell::ALL {
        let m = sealpaa_datapath::ShiftAddMultiplier::new(cell.cell(), 8);
        let q = m.quality(mc_samples, 42);
        t.row([
            cell.name().to_owned(),
            format!("{:.4}", q.error_rate),
            format!("{:.5}", q.mean_relative_error),
            q.max_absolute_error.to_string(),
        ]);
    }
    t.note(
        "MRED = mean relative error distance; per-adder error compounds over the 7 accumulations",
    );
    t
}

/// Extension: the approximate-LSB deployment sweep (quality vs power) for a
/// chosen cell under uniform inputs.
pub fn lsb_sweep_table(cell: StandardCell, width: usize) -> Table {
    let points = sealpaa_explore::lsb_sweep(
        cell.cell(),
        accurate_cell_with_proxy_costs(),
        &InputProfile::constant(width, 0.5),
    )
    .expect("standard cells are costed");
    let mut t = Table::new(
        format!(
            "LSB sweep: {} below AccuFA (est.), {width}-bit, p = 0.5",
            cell.name()
        ),
        ["k", "P(error)", "power (nW)", "bias E[D]", "RMS(D)"],
    );
    for p in &points {
        t.row([
            p.approximate_bits.to_string(),
            format!("{:.6}", p.evaluation.error_probability),
            format!("{:.0}", p.evaluation.power_nw),
            format!("{:+.4}", p.mean_error_distance),
            format!("{:.4}", p.rms_error_distance),
        ]);
    }
    t.note("k = number of approximate least-significant stages");
    t
}

/// Extension: exact worst-case (maximum-magnitude) errors per cell and
/// width, with witness operands — the hard-tolerance counterpart to the
/// paper's statistical metric.
pub fn worst_case_table(width: usize) -> Table {
    let mut t = Table::new(
        format!("Worst-case error of {width}-bit homogeneous chains"),
        [
            "cell",
            "max overshoot",
            "max undershoot",
            "witness (overshoot)",
        ],
    );
    for cell in StandardCell::APPROXIMATE {
        let chain = AdderChain::uniform(cell.cell(), width);
        let wc = sealpaa_core::worst_case_error(&chain).expect("width within limit");
        t.row([
            cell.name().to_owned(),
            format!("{:+}", wc.max_error),
            format!("{:+}", wc.min_error),
            format!(
                "a={:#x} b={:#x} cin={}",
                wc.max_witness.a, wc.max_witness.b, wc.max_witness.carry_in as u8
            ),
        ]);
    }
    t.note("computed by an O(N) DP over the joint carry state; witnesses verified by evaluation");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_table_rows_are_signed() {
        let t = worst_case_table(8);
        assert_eq!(t.row_count(), 7);
        for row in 0..7 {
            assert!(t.cell(row, 1).expect("cell").starts_with('+'));
            assert!(t.cell(row, 2).expect("cell").starts_with(['-', '+']));
        }
    }

    #[test]
    fn multiplier_quality_accurate_row_is_clean() {
        let t = multiplier_quality(500);
        assert_eq!(t.cell(0, 1), Some("0.0000"));
        assert_eq!(t.row_count(), 8);
    }

    #[test]
    fn lsb_sweep_table_spans_zero_to_width() {
        let t = lsb_sweep_table(StandardCell::Lpaa5, 6);
        assert_eq!(t.row_count(), 7);
        assert_eq!(t.cell(0, 1), Some("0.000000"));
    }

    #[test]
    fn fig1_simulation_work_quadruples_per_bit() {
        let t = fig1(4);
        assert_eq!(t.cell(0, 1), Some("32"));
        assert_eq!(t.cell(1, 1), Some("128"));
        assert_eq!(t.cell(2, 1), Some("512"));
    }

    #[test]
    fn table2_reports_all_seven_cells() {
        let t = table2();
        assert_eq!(t.row_count(), 7);
        assert_eq!(t.cell(0, 1), Some("2"));
        assert_eq!(t.cell(4, 2), Some("0")); // LPAA 5 power
    }

    #[test]
    fn table3_first_row_matches_paper() {
        let t = table3();
        assert_eq!(t.cell(0, 1), Some("15"));
        assert_eq!(t.cell(0, 2), Some("28"));
        assert_eq!(t.cell(0, 3), Some("14"));
        assert_eq!(t.cell(0, 4), Some("31"));
    }

    #[test]
    fn table4_prints_paper_values() {
        let t = table4();
        let rendered = t.to_string();
        for expect in [
            "0.020000", "0.850000", "0.130500", "0.729500", "0.206400", "0.585740", "0.738476",
        ] {
            assert!(
                rendered.contains(expect),
                "missing {expect} in:\n{rendered}"
            );
        }
        // Last stage's carry-out is not required (paper's "NR").
        assert_eq!(t.cell(3, 5), Some("NR"));
    }

    #[test]
    fn table5_rows_match_paper_examples() {
        let t = table5();
        assert_eq!(t.cell(0, 1), Some("[0, 0, 0, 1, 0, 1, 1, 1]"));
        assert_eq!(t.cell(6, 2), Some("[1, 1, 1, 0, 1, 0, 0, 0]"));
    }

    #[test]
    fn table6_small_run_is_all_exact() {
        let t = table6(2_000, 3);
        let result = t.cell(0, 2).expect("row present");
        assert!(result.starts_with("14/14"), "got {result}");
    }

    #[test]
    fn table7_analytical_column_tracks_paper_to_4_decimals() {
        let t = table7(1_000);
        for row in 0..t.row_count() {
            let delta: f64 = t.cell(row, 5).expect("delta").parse().expect("numeric");
            assert!(
                delta < 2e-4,
                "row {row}: analytical deviates from paper by {delta}"
            );
        }
    }

    #[test]
    fn table8_has_both_scenarios() {
        let t = table8();
        assert_eq!(t.row_count(), 2);
        assert!(t.cell(0, 1).expect("model").contains("32 multipliers"));
        assert!(t.cell(1, 1).expect("model").contains("33 memory units"));
    }

    #[test]
    fn fig5_produces_three_scenarios_of_16_widths() {
        let tables = fig5();
        assert_eq!(tables.len(), 3);
        for t in &tables {
            assert_eq!(t.row_count(), 16);
        }
        // Paper claim: at equal probabilities nothing is usable beyond ~10
        // bits — LPAA 1's success at N = 16 is tiny.
        let lpaa1_at_16: f64 = tables[0].cell(15, 1).expect("cell").parse().expect("num");
        assert!(lpaa1_at_16 < 0.1, "got {lpaa1_at_16}");
        // LPAA 7 at low probabilities stays strong.
        let lpaa7_low: f64 = tables[1].cell(15, 7).expect("cell").parse().expect("num");
        assert!(lpaa7_low > 0.5);
    }

    #[test]
    fn gear_sweep_consistency() {
        let t = gear_sweep(2_000);
        for row in 0..t.row_count() {
            let exact: f64 = t.cell(row, 2).expect("exact").parse().expect("num");
            let ie = t.cell(row, 3).expect("ie");
            let ie_val: f64 = ie.split(' ').next().expect("value").parse().expect("num");
            assert!((exact - ie_val).abs() < 1e-9, "row {row}");
        }
    }

    #[test]
    fn hybrid_dse_tightens_with_budget() {
        let t = hybrid_dse(4);
        let err_25: f64 = t.cell(0, 2).expect("err").parse().expect("num");
        let err_100: f64 = t.cell(3, 2).expect("err").parse().expect("num");
        assert!(err_100 <= err_25 + 1e-12);
    }
}
