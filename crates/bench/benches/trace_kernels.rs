//! Trace-subsystem kernels: streaming bit-statistics profiling throughput
//! and the bitsliced 64-lane replay against the scalar per-record oracle —
//! the quantitative record behind `BENCH_trace.json`.
//!
//! Three groups:
//!
//! * `profiling` — one-pass [`TraceStats`] accumulation (per-bit ones plus
//!   all pairwise co-occurrence counts, `O((2w+1)²)` state) over a
//!   synthetic uniform trace.
//! * `replay` — ground-truth error metrics of the same trace through an
//!   LPAA 2 chain: the scalar oracle replays one record at a time through
//!   `AdderChain::add`, the bitsliced path packs `W::LANES` records per
//!   fused `eval_diff` pass on the detected SIMD backend. The differential
//!   suite in `crates/trace/tests/differential.rs` pins that both produce
//!   bit-for-bit identical reports for every thread count and backend.
//! * `replay_backends` — the same replay workloads once per *available*
//!   SIMD backend (u64, u64x2, avx2, avx512), single-threaded, so the
//!   recorded JSON shows the lane-width scaling in isolation.
//!
//! Unless `MICROBENCH_QUICK` is set (smoke mode), the run rewrites
//! `BENCH_trace.json` at the repository root with ns/op for every
//! benchmark and the bitsliced replay's speedup over the scalar oracle.
//! Smoke mode also shrinks the trace so CI stays fast; the committed JSON
//! always records the full workload.

use std::fmt::Write as _;

use sealpaa_bench::microbench::{
    black_box, take_results, BenchResult, BenchmarkId, Criterion, Throughput,
};
use sealpaa_cells::{AdderChain, Backend, StandardCell};
use sealpaa_trace::{generate, replay, replay_scalar, replay_with_backend, SynthKind, TraceStats};

const WIDTH: usize = 16;

fn record_count() -> usize {
    if std::env::var_os("MICROBENCH_QUICK").is_some() {
        1 << 12
    } else {
        1 << 16
    }
}

fn bench_profiling(c: &mut Criterion) {
    let records = generate(SynthKind::Uniform, WIDTH, record_count(), 7).expect("valid");
    let mut group = c.benchmark_group("profiling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function(BenchmarkId::new(format!("stats_w{WIDTH}"), "stream"), |b| {
        b.iter(|| TraceStats::from_records(WIDTH, black_box(&records)).expect("valid"))
    });
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let records = generate(SynthKind::Uniform, WIDTH, record_count(), 7).expect("valid");
    // Two chains bracketing the error-rate regimes: the homogeneous LPAA 2
    // chain errs on nearly every record (worst case for the per-lane
    // error-distance extraction), while the 4-LSB hybrid — the shape a
    // design-space exploration actually validates — errs rarely, so the
    // bitsliced path skips the extraction for most batches.
    let worst = AdderChain::uniform(StandardCell::Lpaa2.cell(), WIDTH);
    let hybrid = AdderChain::lsb_approximate(
        StandardCell::Lpaa2.cell(),
        StandardCell::Accurate.cell(),
        4,
        WIDTH,
    );
    let mut group = c.benchmark_group("replay");
    group.sample_size(10);
    group.throughput(Throughput::Elements(records.len() as u64));
    for (label, chain) in [
        (format!("lpaa2_w{WIDTH}"), &worst),
        (format!("hybrid4_w{WIDTH}"), &hybrid),
    ] {
        group.bench_function(BenchmarkId::new(label.clone(), "scalar"), |b| {
            b.iter(|| replay_scalar(black_box(chain), black_box(&records)).expect("valid"))
        });
        for threads in [1usize, 4] {
            group.bench_function(
                BenchmarkId::new(label.clone(), format!("bitsliced_t{threads}")),
                |b| {
                    b.iter(|| {
                        replay(black_box(chain), black_box(&records), threads).expect("valid")
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_replay_backends(c: &mut Criterion) {
    let records = generate(SynthKind::Uniform, WIDTH, record_count(), 7).expect("valid");
    let worst = AdderChain::uniform(StandardCell::Lpaa2.cell(), WIDTH);
    let hybrid = AdderChain::lsb_approximate(
        StandardCell::Lpaa2.cell(),
        StandardCell::Accurate.cell(),
        4,
        WIDTH,
    );
    let mut group = c.benchmark_group("replay_backends");
    group.sample_size(10);
    group.throughput(Throughput::Elements(records.len() as u64));
    for (label, chain) in [
        (format!("lpaa2_w{WIDTH}"), &worst),
        (format!("hybrid4_w{WIDTH}"), &hybrid),
    ] {
        for backend in Backend::available() {
            group.bench_function(BenchmarkId::new(label.clone(), backend.name()), |b| {
                b.iter(|| {
                    replay_with_backend(black_box(chain), black_box(&records), 1, Some(backend))
                        .expect("valid")
                })
            });
        }
    }
    group.finish();
}

fn ns_of(results: &[BenchResult], name: &str) -> f64 {
    results
        .iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("benchmark {name} did not run"))
        .ns_per_iter
}

fn render_report(results: &[BenchResult]) -> String {
    let mut benches = String::new();
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            benches,
            "    {{\"name\": \"{}\", \"ns_per_iter\": {:.1}}}{sep}",
            r.name, r.ns_per_iter
        );
    }

    let speedup_pairs = [
        (
            "trace replay, all-LPAA2 w16 (errs almost every record), 1 thread",
            "replay/lpaa2_w16/scalar",
            "replay/lpaa2_w16/bitsliced_t1",
        ),
        (
            "trace replay, all-LPAA2 w16 (errs almost every record), 4 threads",
            "replay/lpaa2_w16/scalar",
            "replay/lpaa2_w16/bitsliced_t4",
        ),
        (
            "trace replay, 4-LSB LPAA2 hybrid w16 (rare errors), 1 thread",
            "replay/hybrid4_w16/scalar",
            "replay/hybrid4_w16/bitsliced_t1",
        ),
        (
            "trace replay, 4-LSB LPAA2 hybrid w16 (rare errors), 4 threads",
            "replay/hybrid4_w16/scalar",
            "replay/hybrid4_w16/bitsliced_t4",
        ),
    ];
    let mut speedups = String::new();
    for (i, (workload, baseline, fast)) in speedup_pairs.iter().enumerate() {
        let base_ns = ns_of(results, baseline);
        let fast_ns = ns_of(results, fast);
        let sep = if i + 1 < speedup_pairs.len() { "," } else { "" };
        let _ = writeln!(
            speedups,
            "    {{\"workload\": \"{workload}\", \"baseline\": \"{baseline}\", \
             \"fast\": \"{fast}\", \"baseline_ns\": {base_ns:.1}, \"fast_ns\": {fast_ns:.1}, \
             \"speedup\": {:.2}}}{sep}",
            base_ns / fast_ns
        );
    }

    let available = Backend::available();
    let mut backend_rows = String::new();
    let workloads = ["lpaa2_w16", "hybrid4_w16"];
    for (wi, workload) in workloads.iter().enumerate() {
        let scalar_ns = ns_of(results, &format!("replay/{workload}/scalar"));
        let u64_ns = ns_of(results, &format!("replay_backends/{workload}/u64"));
        for (bi, backend) in available.iter().enumerate() {
            let ns = ns_of(
                results,
                &format!("replay_backends/{workload}/{}", backend.name()),
            );
            let last = wi + 1 == workloads.len() && bi + 1 == available.len();
            let sep = if last { "" } else { "," };
            let _ = writeln!(
                backend_rows,
                "    {{\"workload\": \"replay_{workload}\", \"backend\": \"{}\", \
                 \"lanes\": {}, \"ns_per_iter\": {ns:.1}, \"speedup_vs_u64\": {:.2}, \
                 \"speedup_vs_scalar\": {:.2}}}{sep}",
                backend.name(),
                backend.lanes(),
                u64_ns / ns,
                scalar_ns / ns
            );
        }
    }
    let active = Backend::active().name();

    format!(
        "{{\n  \"generator\": \"cargo bench -p sealpaa-bench --bench trace_kernels\",\n  \
         \"unit\": \"ns_per_iter is the median wall-clock time of one full workload\",\n  \
         \"simd_backend\": \"{active}\",\n  \
         \"note\": \"the replay baseline walks one record at a time through the scalar chain \
         evaluator; the bitsliced rows pack W::LANES records per fused eval_diff pass on the \
         simd_backend above and accumulate exact integer sums, so their report is bit-for-bit \
         identical to the baseline for every thread count and SIMD backend (pinned by \
         crates/trace/tests/differential.rs). Error-dense batches settle all lanes at once in \
         plane space (biased_distance_lanes), so even the all-LPAA2 chain (error rate near 1) \
         scales with lane width; the 4-LSB hybrid is the typical validation shape. The \
         backends section isolates lane-width scaling: one single-threaded row per available \
         backend. Acceptance: bitsliced >= 1.2x scalar on the worst case, >= 1.5x on the \
         hybrid, and the widest backend >= 2x the pre-SIMD u64 recording on both\",\n  \
         \"benches\": [\n{benches}  ],\n  \"speedups\": [\n{speedups}  ],\n  \
         \"backends\": [\n{backend_rows}  ]\n}}\n"
    )
}

fn main() {
    let mut criterion = Criterion::default();
    bench_profiling(&mut criterion);
    bench_replay(&mut criterion);
    bench_replay_backends(&mut criterion);
    let results = take_results();
    if std::env::var_os("MICROBENCH_QUICK").is_some() {
        eprintln!("MICROBENCH_QUICK set: not rewriting BENCH_trace.json");
        return;
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    std::fs::write(path, render_report(&results)).expect("write BENCH_trace.json");
    println!("wrote {path}");
}
