//! Trace-subsystem kernels: streaming bit-statistics profiling throughput
//! and the bitsliced 64-lane replay against the scalar per-record oracle —
//! the quantitative record behind `BENCH_trace.json`.
//!
//! Two groups:
//!
//! * `profiling` — one-pass [`TraceStats`] accumulation (per-bit ones plus
//!   all pairwise co-occurrence counts, `O((2w+1)²)` state) over a
//!   synthetic uniform trace.
//! * `replay` — ground-truth error metrics of the same trace through an
//!   LPAA 2 chain: the scalar oracle replays one record at a time through
//!   `AdderChain::add`, the bitsliced path packs 64 records per
//!   `CompiledChain::eval64_diff` pass. The differential suite in
//!   `crates/trace/tests/differential.rs` pins that both produce
//!   bit-for-bit identical reports for every thread count.
//!
//! Unless `MICROBENCH_QUICK` is set (smoke mode), the run rewrites
//! `BENCH_trace.json` at the repository root with ns/op for every
//! benchmark and the bitsliced replay's speedup over the scalar oracle.
//! Smoke mode also shrinks the trace so CI stays fast; the committed JSON
//! always records the full workload.

use std::fmt::Write as _;

use sealpaa_bench::microbench::{
    black_box, take_results, BenchResult, BenchmarkId, Criterion, Throughput,
};
use sealpaa_cells::{AdderChain, StandardCell};
use sealpaa_trace::{generate, replay, replay_scalar, SynthKind, TraceStats};

const WIDTH: usize = 16;

fn record_count() -> usize {
    if std::env::var_os("MICROBENCH_QUICK").is_some() {
        1 << 12
    } else {
        1 << 16
    }
}

fn bench_profiling(c: &mut Criterion) {
    let records = generate(SynthKind::Uniform, WIDTH, record_count(), 7).expect("valid");
    let mut group = c.benchmark_group("profiling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function(BenchmarkId::new(format!("stats_w{WIDTH}"), "stream"), |b| {
        b.iter(|| TraceStats::from_records(WIDTH, black_box(&records)).expect("valid"))
    });
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let records = generate(SynthKind::Uniform, WIDTH, record_count(), 7).expect("valid");
    // Two chains bracketing the error-rate regimes: the homogeneous LPAA 2
    // chain errs on nearly every record (worst case for the per-lane
    // error-distance extraction), while the 4-LSB hybrid — the shape a
    // design-space exploration actually validates — errs rarely, so the
    // bitsliced path skips the extraction for most batches.
    let worst = AdderChain::uniform(StandardCell::Lpaa2.cell(), WIDTH);
    let hybrid = AdderChain::lsb_approximate(
        StandardCell::Lpaa2.cell(),
        StandardCell::Accurate.cell(),
        4,
        WIDTH,
    );
    let mut group = c.benchmark_group("replay");
    group.sample_size(10);
    group.throughput(Throughput::Elements(records.len() as u64));
    for (label, chain) in [
        (format!("lpaa2_w{WIDTH}"), &worst),
        (format!("hybrid4_w{WIDTH}"), &hybrid),
    ] {
        group.bench_function(BenchmarkId::new(label.clone(), "scalar"), |b| {
            b.iter(|| replay_scalar(black_box(chain), black_box(&records)).expect("valid"))
        });
        for threads in [1usize, 4] {
            group.bench_function(
                BenchmarkId::new(label.clone(), format!("bitsliced_t{threads}")),
                |b| {
                    b.iter(|| {
                        replay(black_box(chain), black_box(&records), threads).expect("valid")
                    })
                },
            );
        }
    }
    group.finish();
}

fn ns_of(results: &[BenchResult], name: &str) -> f64 {
    results
        .iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("benchmark {name} did not run"))
        .ns_per_iter
}

fn render_report(results: &[BenchResult]) -> String {
    let mut benches = String::new();
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            benches,
            "    {{\"name\": \"{}\", \"ns_per_iter\": {:.1}}}{sep}",
            r.name, r.ns_per_iter
        );
    }

    let speedup_pairs = [
        (
            "trace replay, all-LPAA2 w16 (errs almost every record), 1 thread",
            "replay/lpaa2_w16/scalar",
            "replay/lpaa2_w16/bitsliced_t1",
        ),
        (
            "trace replay, all-LPAA2 w16 (errs almost every record), 4 threads",
            "replay/lpaa2_w16/scalar",
            "replay/lpaa2_w16/bitsliced_t4",
        ),
        (
            "trace replay, 4-LSB LPAA2 hybrid w16 (rare errors), 1 thread",
            "replay/hybrid4_w16/scalar",
            "replay/hybrid4_w16/bitsliced_t1",
        ),
        (
            "trace replay, 4-LSB LPAA2 hybrid w16 (rare errors), 4 threads",
            "replay/hybrid4_w16/scalar",
            "replay/hybrid4_w16/bitsliced_t4",
        ),
    ];
    let mut speedups = String::new();
    for (i, (workload, baseline, fast)) in speedup_pairs.iter().enumerate() {
        let base_ns = ns_of(results, baseline);
        let fast_ns = ns_of(results, fast);
        let sep = if i + 1 < speedup_pairs.len() { "," } else { "" };
        let _ = writeln!(
            speedups,
            "    {{\"workload\": \"{workload}\", \"baseline\": \"{baseline}\", \
             \"fast\": \"{fast}\", \"baseline_ns\": {base_ns:.1}, \"fast_ns\": {fast_ns:.1}, \
             \"speedup\": {:.2}}}{sep}",
            base_ns / fast_ns
        );
    }

    format!(
        "{{\n  \"generator\": \"cargo bench -p sealpaa-bench --bench trace_kernels\",\n  \
         \"unit\": \"ns_per_iter is the median wall-clock time of one full workload\",\n  \
         \"note\": \"the replay baseline walks one record at a time through the scalar chain \
         evaluator; the bitsliced rows pack 64 records per eval64_diff pass and accumulate \
         exact integer sums, so their report is bit-for-bit identical to the baseline for \
         every thread count (pinned by crates/trace/tests/differential.rs). The gain scales \
         with the success rate: erring lanes pay a per-lane error-distance extraction, so the \
         all-LPAA2 chain (error rate near 1) is the bitsliced worst case while the 4-LSB \
         hybrid is the typical validation shape. Acceptance: bitsliced >= 1.2x scalar on the \
         worst case, >= 1.5x on the hybrid\",\n  \
         \"benches\": [\n{benches}  ],\n  \"speedups\": [\n{speedups}  ]\n}}\n"
    )
}

fn main() {
    let mut criterion = Criterion::default();
    bench_profiling(&mut criterion);
    bench_replay(&mut criterion);
    let results = take_results();
    if std::env::var_os("MICROBENCH_QUICK").is_some() {
        eprintln!("MICROBENCH_QUICK set: not rewriting BENCH_trace.json");
        return;
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    std::fs::write(path, render_report(&results)).expect("write BENCH_trace.json");
    println!("wrote {path}");
}
