//! Paper Fig. 1: exhaustive-simulation cost quadruples per added bit, which
//! is what makes the analytical method necessary. Monte-Carlo cost per
//! sample is flat but its precision is only ~3 decimals at 10⁶ samples
//! (paper Table 6).

use sealpaa_bench::microbench::{black_box, BenchmarkId, Criterion, Throughput};
use sealpaa_bench::{criterion_group, criterion_main};
use sealpaa_cells::{AdderChain, InputProfile, StandardCell};
use sealpaa_sim::{exhaustive, monte_carlo, MonteCarloConfig};

fn bench_exhaustive_width_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("exhaustive_simulation_vs_width");
    group.sample_size(10);
    for width in [2usize, 4, 6, 8, 10] {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), width);
        let profile = InputProfile::<f64>::uniform(width);
        group.throughput(Throughput::Elements(1u64 << (2 * width + 1)));
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, _| {
            b.iter(|| exhaustive(black_box(&chain), black_box(&profile)).expect("feasible"))
        });
    }
    group.finish();
}

fn bench_monte_carlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte_carlo_100k_samples");
    group.sample_size(10);
    for width in [8usize, 16, 32] {
        let chain = AdderChain::uniform(StandardCell::Lpaa6.cell(), width);
        let profile = InputProfile::constant(width, 0.1);
        let config = MonteCarloConfig {
            samples: 100_000,
            seed: 1,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, _| {
            b.iter(|| monte_carlo(black_box(&chain), black_box(&profile), config).expect("valid"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exhaustive_width_sweep, bench_monte_carlo);
criterion_main!(benches);
