//! Benchmarks for the beyond-the-paper extensions: error-magnitude moments,
//! full error distributions, datapath composition, and HDL synthesis — so
//! their costs relative to the core O(N) analysis are on record.

use sealpaa_bench::microbench::{black_box, BenchmarkId, Criterion};
use sealpaa_bench::{criterion_group, criterion_main};
use sealpaa_cells::{AdderChain, InputProfile, StandardCell};
use sealpaa_core::{error_distribution, error_magnitude};
use sealpaa_datapath::{estimate, Datapath};
use sealpaa_hdl::{chain_netlist, chain_verilog};

fn bench_magnitude(c: &mut Criterion) {
    let mut group = c.benchmark_group("error_magnitude_vs_width");
    for width in [8usize, 32, 128] {
        let chain = AdderChain::uniform(StandardCell::Lpaa6.cell(), width);
        let profile = InputProfile::constant(width, 0.3);
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, _| {
            b.iter(|| error_magnitude(black_box(&chain), black_box(&profile)).expect("widths"))
        });
    }
    group.finish();
}

fn bench_distribution(c: &mut Criterion) {
    let mut group = c.benchmark_group("error_distribution_vs_width");
    group.sample_size(20);
    for width in [4usize, 8, 12] {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), width);
        let profile = InputProfile::constant(width, 0.3);
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, _| {
            b.iter(|| error_distribution(black_box(&chain), black_box(&profile)).expect("widths"))
        });
    }
    group.finish();
}

fn bench_datapath_estimate(c: &mut Criterion) {
    // A 15-adder balanced reduction tree of 16 operands.
    let mut dp = Datapath::new();
    let mut level: Vec<_> = (0..16).map(|i| dp.input(format!("x{i}"), 8)).collect();
    let mut width = 8;
    while level.len() > 1 {
        let chain = AdderChain::uniform(StandardCell::Lpaa6.cell(), width);
        level = level
            .chunks(2)
            .map(|pair| dp.add(pair[0], pair[1], chain.clone()).expect("fits"))
            .collect();
        width += 1;
    }
    let input_names: Vec<String> = (0..16).map(|i| format!("x{i}")).collect();
    let inputs: Vec<(&str, Vec<f64>)> = input_names
        .iter()
        .map(|n| (n.as_str(), vec![0.4; 8]))
        .collect();
    c.bench_function("datapath_estimate_16way_tree", |b| {
        b.iter(|| estimate(black_box(&dp), black_box(&inputs)).expect("valid"))
    });
}

fn bench_hdl_synthesis(c: &mut Criterion) {
    let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 32);
    let mut group = c.benchmark_group("hdl_32bit_chain");
    group.bench_function("netlist", |b| b.iter(|| chain_netlist(black_box(&chain))));
    group.bench_function("verilog_text", |b| {
        b.iter(|| chain_verilog(black_box(&chain)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_magnitude,
    bench_distribution,
    bench_datapath_estimate,
    bench_hdl_synthesis
);
criterion_main!(benches);
