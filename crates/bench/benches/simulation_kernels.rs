//! Bitsliced vs scalar simulation kernels, and exhaustive-sweep thread
//! scaling — the quantitative record behind `BENCH_simulation.json`.
//!
//! Three groups:
//!
//! * `scalar_vs_bitsliced` — the same workload through the scalar reference
//!   engine and the bitsliced engine on the widest available SIMD backend:
//!   Monte-Carlo on the 16-bit LPAA acceptance workloads, exhaustive sweeps
//!   at widths where the scalar oracle is still feasible (a width-16
//!   *scalar* exhaustive sweep is ~2³³ truth-table walks — the very blow-up
//!   of paper Fig. 1 — so exhaustive speedups are measured at widths 8 and
//!   10).
//! * `exhaustive_threads` — the width-10 exhaustive sweep through
//!   `exhaustive_with` at 1/2/4 threads (same workload as the
//!   `scalar_vs_bitsliced` width-10 pair, so the thread rows share the
//!   scalar baseline).
//! * `backend_comparison` — the Monte-Carlo (uniform and biased input) and
//!   width-10 exhaustive workloads pinned to each available SIMD backend
//!   (u64 / u64x2 / avx2 / avx512), so bench JSONs attribute every number
//!   to a backend and wide-lane gains are measured against the portable
//!   64-lane engine rather than only against the scalar oracle.
//!
//! Unless `MICROBENCH_QUICK` is set (smoke mode), the run rewrites
//! `BENCH_simulation.json` at the repository root with ns/op for every
//! benchmark and the speedups of each bitsliced/threaded configuration
//! over the scalar single-threaded baseline.

use std::fmt::Write as _;

use sealpaa_bench::microbench::{
    black_box, take_results, BenchResult, BenchmarkId, Criterion, Throughput,
};
use sealpaa_cells::{AdderChain, InputProfile, StandardCell};
use sealpaa_sim::{
    exhaustive_scalar, exhaustive_with, exhaustive_with_backend, monte_carlo, monte_carlo_scalar,
    Backend, MonteCarloConfig,
};

const MC_SAMPLES: u64 = 65_536;

fn mc_config(threads: usize) -> MonteCarloConfig {
    MonteCarloConfig {
        samples: MC_SAMPLES,
        seed: 0xDAC1_7ADD,
        threads,
        backend: None,
    }
}

fn bench_scalar_vs_bitsliced(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalar_vs_bitsliced");
    group.sample_size(10);

    // Monte-Carlo on the 16-bit LPAA acceptance workloads: the paper's
    // primary uniform-input regime (Table 6, p = 0.5), plus a biased-input
    // reference point (Table 7 regime, p = 0.1) where the Bernoulli
    // bit-plane sampler is entropy-bound (~7.3 random words per plane).
    for (label, cell, p) in [
        ("mc_lpaa6_w16_p0.5", StandardCell::Lpaa6, 0.5),
        ("mc_lpaa1_w16_p0.5", StandardCell::Lpaa1, 0.5),
        ("mc_lpaa6_w16_p0.1", StandardCell::Lpaa6, 0.1),
    ] {
        let chain = AdderChain::uniform(cell.cell(), 16);
        let profile = InputProfile::constant(16, p);
        group.throughput(Throughput::Elements(MC_SAMPLES));
        group.bench_function(BenchmarkId::new(label, "scalar"), |b| {
            b.iter(|| {
                monte_carlo_scalar(black_box(&chain), black_box(&profile), mc_config(1))
                    .expect("valid")
            })
        });
        group.bench_function(BenchmarkId::new(label, "bitsliced"), |b| {
            b.iter(|| {
                monte_carlo(black_box(&chain), black_box(&profile), mc_config(1)).expect("valid")
            })
        });
    }

    // Exhaustive sweeps at widths where the scalar oracle is feasible.
    for width in [8usize, 10] {
        let chain = AdderChain::uniform(StandardCell::Lpaa5.cell(), width);
        let profile = InputProfile::<f64>::uniform(width);
        let label = format!("exhaustive_lpaa5_w{width}");
        group.throughput(Throughput::Elements(1u64 << (2 * width + 1)));
        group.bench_function(BenchmarkId::new(label.clone(), "scalar"), |b| {
            b.iter(|| exhaustive_scalar(black_box(&chain), black_box(&profile)).expect("feasible"))
        });
        group.bench_function(BenchmarkId::new(label, "bitsliced"), |b| {
            b.iter(|| exhaustive_with(black_box(&chain), black_box(&profile), 1).expect("feasible"))
        });
    }
    group.finish();
}

fn bench_backend_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend_comparison");
    group.sample_size(10);

    let mc_backend_config = |backend: Backend| MonteCarloConfig {
        backend: Some(backend),
        ..mc_config(1)
    };
    for (label, p) in [("mc_lpaa6_w16_p0.5", 0.5), ("mc_lpaa6_w16_p0.1", 0.1)] {
        let chain = AdderChain::uniform(StandardCell::Lpaa6.cell(), 16);
        let profile = InputProfile::constant(16, p);
        group.throughput(Throughput::Elements(MC_SAMPLES));
        for backend in Backend::available() {
            group.bench_function(BenchmarkId::new(label, backend.name()), |b| {
                b.iter(|| {
                    monte_carlo(
                        black_box(&chain),
                        black_box(&profile),
                        mc_backend_config(backend),
                    )
                    .expect("valid")
                })
            });
        }
    }

    let chain = AdderChain::uniform(StandardCell::Lpaa5.cell(), 10);
    let profile = InputProfile::<f64>::uniform(10);
    group.throughput(Throughput::Elements(1u64 << 21));
    for backend in Backend::available() {
        group.bench_function(
            BenchmarkId::new("exhaustive_lpaa5_w10", backend.name()),
            |b| {
                b.iter(|| {
                    exhaustive_with_backend(
                        black_box(&chain),
                        black_box(&profile),
                        1,
                        Some(backend),
                    )
                    .expect("feasible")
                })
            },
        );
    }
    group.finish();
}

fn bench_exhaustive_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("exhaustive_threads");
    group.sample_size(10);
    let chain = AdderChain::uniform(StandardCell::Lpaa5.cell(), 10);
    let profile = InputProfile::<f64>::uniform(10);
    group.throughput(Throughput::Elements(1u64 << 21));
    for threads in [1usize, 2, 4] {
        group.bench_function(BenchmarkId::new("lpaa5_w10", threads), |b| {
            b.iter(|| {
                exhaustive_with(black_box(&chain), black_box(&profile), threads).expect("feasible")
            })
        });
    }
    group.finish();
}

fn ns_of(results: &[BenchResult], name: &str) -> f64 {
    results
        .iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("benchmark {name} did not run"))
        .ns_per_iter
}

fn render_report(results: &[BenchResult]) -> String {
    let active = Backend::active().name();
    let mut benches = String::new();
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            benches,
            "    {{\"name\": \"{}\", \"ns_per_iter\": {:.1}}}{sep}",
            r.name, r.ns_per_iter
        );
    }

    let speedup_pairs = [
        (
            "monte_carlo lpaa6 w16 p=0.5 (65536 samples)",
            "scalar_vs_bitsliced/mc_lpaa6_w16_p0.5/scalar",
            "scalar_vs_bitsliced/mc_lpaa6_w16_p0.5/bitsliced",
        ),
        (
            "monte_carlo lpaa1 w16 p=0.5 (65536 samples)",
            "scalar_vs_bitsliced/mc_lpaa1_w16_p0.5/scalar",
            "scalar_vs_bitsliced/mc_lpaa1_w16_p0.5/bitsliced",
        ),
        (
            "exhaustive lpaa5 w8 (2^17 cases)",
            "scalar_vs_bitsliced/exhaustive_lpaa5_w8/scalar",
            "scalar_vs_bitsliced/exhaustive_lpaa5_w8/bitsliced",
        ),
        (
            "exhaustive lpaa5 w10 (2^21 cases)",
            "scalar_vs_bitsliced/exhaustive_lpaa5_w10/scalar",
            "scalar_vs_bitsliced/exhaustive_lpaa5_w10/bitsliced",
        ),
        (
            "exhaustive lpaa5 w10, 2 threads (2^21 cases)",
            "scalar_vs_bitsliced/exhaustive_lpaa5_w10/scalar",
            "exhaustive_threads/lpaa5_w10/2",
        ),
        (
            "exhaustive lpaa5 w10, 4 threads (2^21 cases)",
            "scalar_vs_bitsliced/exhaustive_lpaa5_w10/scalar",
            "exhaustive_threads/lpaa5_w10/4",
        ),
    ];
    let mut speedups = String::new();
    for (i, (workload, baseline, fast)) in speedup_pairs.iter().enumerate() {
        let base_ns = ns_of(results, baseline);
        let fast_ns = ns_of(results, fast);
        let sep = if i + 1 < speedup_pairs.len() { "," } else { "" };
        let _ = writeln!(
            speedups,
            "    {{\"workload\": \"{workload}\", \"baseline\": \"{baseline}\", \
             \"fast\": \"{fast}\", \"baseline_ns\": {base_ns:.1}, \"fast_ns\": {fast_ns:.1}, \
             \"speedup\": {:.2}}}{sep}",
            base_ns / fast_ns
        );
    }

    // Per-backend rows: every backend_comparison workload, with the
    // portable 64-lane engine (u64) and the scalar engine as baselines.
    let backend_workloads = [
        (
            "mc_lpaa6_w16_p0.5",
            "scalar_vs_bitsliced/mc_lpaa6_w16_p0.5/scalar",
        ),
        (
            "mc_lpaa6_w16_p0.1",
            "scalar_vs_bitsliced/mc_lpaa6_w16_p0.1/scalar",
        ),
        (
            "exhaustive_lpaa5_w10",
            "scalar_vs_bitsliced/exhaustive_lpaa5_w10/scalar",
        ),
    ];
    let mut backend_rows = String::new();
    let row_count = backend_workloads.len() * Backend::available().len();
    let mut row_index = 0usize;
    for (workload, scalar_name) in backend_workloads {
        let scalar_ns = ns_of(results, scalar_name);
        let u64_ns = ns_of(results, &format!("backend_comparison/{workload}/u64"));
        for backend in Backend::available() {
            let ns = ns_of(
                results,
                &format!("backend_comparison/{workload}/{}", backend.name()),
            );
            row_index += 1;
            let sep = if row_index < row_count { "," } else { "" };
            let _ = writeln!(
                backend_rows,
                "    {{\"workload\": \"{workload}\", \"backend\": \"{}\", \"lanes\": {}, \
                 \"ns_per_iter\": {ns:.1}, \"speedup_vs_u64\": {:.2}, \
                 \"speedup_vs_scalar\": {:.2}}}{sep}",
                backend.name(),
                backend.lanes(),
                u64_ns / ns,
                scalar_ns / ns
            );
        }
    }

    let p01_scalar = ns_of(results, "scalar_vs_bitsliced/mc_lpaa6_w16_p0.1/scalar");
    let p01_fast = ns_of(results, "scalar_vs_bitsliced/mc_lpaa6_w16_p0.1/bitsliced");
    format!(
        "{{\n  \"generator\": \"cargo bench -p sealpaa-bench --bench simulation_kernels\",\n  \
         \"simd_backend\": \"{active}\",\n  \
         \"unit\": \"ns_per_iter is the median wall-clock time of one full workload\",\n  \
         \"note\": \"speedups compare against the scalar single-threaded engine on the same \
         workload; Monte-Carlo pairs use the paper's primary uniform-input regime (Table 6, \
         p = 0.5); a width-16 scalar exhaustive sweep (2^33 cases) is infeasible to benchmark \
         (paper Fig. 1), so exhaustive pairs use widths 8 and 10\",\n  \
         \"benches\": [\n{benches}  ],\n  \"speedups\": [\n{speedups}  ],\n  \
         \"backends\": [\n{backend_rows}  ],\n  \
         \"biased_input_reference\": {{\"workload\": \"monte_carlo lpaa6 w16 p=0.1 \
         (65536 samples, Table 7 regime)\", \"baseline_ns\": {p01_scalar:.1}, \
         \"fast_ns\": {p01_fast:.1}, \"speedup\": {:.2}, \"why\": \"biased-input Bernoulli \
         bit-plane sampling is entropy-bound (an adaptive plan consumes ~log2(lanes)+2 random \
         words per plane vs 1 for p=0.5), so its gain trails the uniform regime; the pooled \
         sampler amortizes plan selection across planes and draws whole wide words, which is \
         what keeps the biased row above the acceptance floor\"}}\n}}\n",
        p01_scalar / p01_fast
    )
}

fn main() {
    let mut criterion = Criterion::default();
    bench_scalar_vs_bitsliced(&mut criterion);
    bench_backend_comparison(&mut criterion);
    bench_exhaustive_threads(&mut criterion);
    let results = take_results();
    if std::env::var_os("MICROBENCH_QUICK").is_some() {
        eprintln!("MICROBENCH_QUICK set: not rewriting BENCH_simulation.json");
        return;
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simulation.json");
    std::fs::write(path, render_report(&results)).expect("write BENCH_simulation.json");
    println!("wrote {path}");
}
