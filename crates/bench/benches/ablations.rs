//! Ablations of design choices called out in DESIGN.md:
//!
//! * `f64` vs exact-`Rational` analysis — how much the exact mode costs,
//! * per-stage M/K/L derivation vs a hoisted single derivation — whether
//!   deriving the matrices from the truth table at every stage (the generic
//!   path that enables hybrid chains) is measurably expensive,
//! * the exact joint-chain DP vs the paper's recursion — the price of the
//!   cancellation-aware extension.

use sealpaa_bench::microbench::{black_box, Criterion};
use sealpaa_bench::{criterion_group, criterion_main};
use sealpaa_cells::{AdderChain, InputProfile, StandardCell};
use sealpaa_core::{analyze, exact_error_analysis, CarryState, Ipm, MklMatrices, OpCounts};
use sealpaa_num::Rational;

fn bench_f64_vs_rational(c: &mut Criterion) {
    let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 32);
    let f_profile = InputProfile::constant(32, 0.1);
    let r_profile = InputProfile::<Rational>::constant(32, Rational::from_ratio(1, 10));
    let mut group = c.benchmark_group("number_type_32bit");
    group.bench_function("f64", |b| {
        b.iter(|| analyze(black_box(&chain), black_box(&f_profile)).expect("widths match"))
    });
    group.sample_size(20);
    group.bench_function("rational_exact", |b| {
        b.iter(|| analyze(black_box(&chain), black_box(&r_profile)).expect("widths match"))
    });
    group.finish();
}

fn bench_matrix_derivation(c: &mut Criterion) {
    // The generic engine re-derives M/K/L per stage; measure the derivation
    // itself and a hand-hoisted recursion to quantify the overhead.
    let table = StandardCell::Lpaa1.truth_table();
    c.bench_function("mkl_derivation_single", |b| {
        b.iter(|| MklMatrices::from_truth_table(black_box(&table)))
    });

    let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 64);
    let profile = InputProfile::constant(64, 0.1);
    let mut group = c.benchmark_group("derivation_hoisting_64bit");
    group.bench_function("engine_per_stage_derivation", |b| {
        b.iter(|| analyze(black_box(&chain), black_box(&profile)).expect("widths match"))
    });
    group.bench_function("hand_hoisted_recursion", |b| {
        let mkl = MklMatrices::from_truth_table(&table);
        b.iter(|| {
            let mut ops = OpCounts::default();
            let mut carry = CarryState::initial(black_box(profile.p_cin()));
            let mut success = 1.0f64;
            for i in 0..64 {
                let ipm = Ipm::build(profile.pa(i), profile.pb(i), &carry, &mut ops);
                carry = CarryState::new(ipm.dot(mkl.k(), &mut ops), ipm.dot(mkl.m(), &mut ops));
                success = ipm.dot(mkl.l(), &mut ops);
            }
            success
        })
    });
    group.finish();
}

fn bench_exact_joint_dp(c: &mut Criterion) {
    let chain = AdderChain::uniform(StandardCell::Lpaa6.cell(), 32);
    let profile = InputProfile::constant(32, 0.3);
    let mut group = c.benchmark_group("paper_recursion_vs_joint_dp_32bit");
    group.bench_function("paper_recursion", |b| {
        b.iter(|| analyze(black_box(&chain), black_box(&profile)).expect("widths match"))
    });
    group.bench_function("exact_joint_dp", |b| {
        b.iter(|| {
            exact_error_analysis(black_box(&chain), black_box(&profile)).expect("widths match")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_f64_vs_rational,
    bench_matrix_derivation,
    bench_exact_joint_dp
);
criterion_main!(benches);
