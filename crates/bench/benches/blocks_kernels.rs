//! Block-adder kernels: the analytical error-distance engine against the
//! bitsliced exhaustive simulator, and the prefix-sharing heterogeneous DSE
//! against the naive per-configuration scan — the quantitative record
//! behind `BENCH_blocks.json`.
//!
//! Two groups:
//!
//! * `distance` — one full ED-PMF of a heterogeneous width-12 configuration,
//!   analytically (one pass over the bit positions, carry-state DP) and
//!   exhaustively (all `2^(2N+1)` operand/cin assignments, 64 SWAR lanes per
//!   pass). The differential suite in `crates/blocks/tests/differential.rs`
//!   pins that both produce the identical distribution, exactly, in
//!   `Rational`.
//! * `dse` — the provably-best mean-ED design over every {3,4}-wide,
//!   depth-{0,1} accurate-cell tiling of a width-40 adder fed
//!   12-bit-magnitude operands (the regime approximate adders target): the
//!   prefix-sharing search re-uses the carry-state DP of every common block
//!   prefix, the reference scan re-runs the full analytical pass per
//!   configuration. Both return bit-identical winners (pinned in
//!   `crates/explore/src/blocks_dse.rs`).
//!
//! Unless `MICROBENCH_QUICK` is set (smoke mode), the run rewrites
//! `BENCH_blocks.json` at the repository root with ns/op for every
//! benchmark and the two headline speedups. Smoke mode also shrinks the
//! widths so CI stays fast; the committed JSON always records the full
//! workload.

use std::fmt::Write as _;

use sealpaa_bench::microbench::{black_box, take_results, BenchResult, BenchmarkId, Criterion};
use sealpaa_blocks::{error_distance_distribution, exhaustive_distance_histogram, BlockConfig};
use sealpaa_cells::InputProfile;
use sealpaa_explore::{
    accurate_cell_with_proxy_costs, best_block_design, best_block_design_reference, BlockBudget,
    BlockObjective, BlockSearchSpace,
};

fn quick() -> bool {
    std::env::var_os("MICROBENCH_QUICK").is_some()
}

/// The heterogeneous configuration the `distance` group analyzes. The three
/// cell types and both depth regimes exercise every stepper path.
fn distance_config() -> (String, BlockConfig) {
    let spec = if quick() {
        "4:0:accurate,2:1:lpaa1,2:2:lpaa2"
    } else {
        "4:0:accurate,4:2:lpaa1,4:3:lpaa2"
    };
    (spec.to_owned(), spec.parse().expect("valid config"))
}

fn bench_distance(c: &mut Criterion) {
    let (_, config) = distance_config();
    let width = config.width();
    let profile = InputProfile::<f64>::uniform(width);
    let mut group = c.benchmark_group("distance");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new(format!("w{width}"), "analytical"), |b| {
        b.iter(|| error_distance_distribution(black_box(&config), black_box(&profile)))
    });
    group.bench_function(BenchmarkId::new(format!("w{width}"), "exhaustive"), |b| {
        b.iter(|| exhaustive_distance_histogram(black_box(&config)))
    });
    group.finish();
}

fn dse_width() -> usize {
    if quick() {
        18
    } else {
        40
    }
}

/// Number of low bits that actually carry entropy in the DSE workload: the
/// operands are 12-bit sensor-style magnitudes in a wide datapath — the
/// regime approximate adders target — so carries die above bit 12 and the
/// analysis cost is flat across the upper positions. The live region is the
/// expensive part of every analysis, and it is exactly the part the
/// prefix-sharing search computes once per shared low-block prefix.
const DSE_LIVE_BITS: usize = 12;

fn dse_profile(width: usize) -> InputProfile<f64> {
    let p: Vec<f64> = (0..width)
        .map(|i| if i < DSE_LIVE_BITS { 0.5 } else { 0.0 })
        .collect();
    InputProfile::new(p.clone(), p, 0.0).expect("valid profile")
}

fn bench_dse(c: &mut Criterion) {
    let width = dse_width();
    let space = BlockSearchSpace::new(&[3, 4], &[0, 1], &[accurate_cell_with_proxy_costs()])
        .expect("valid space");
    let profile = dse_profile(width);
    let budget = BlockBudget::default();
    let mut group = c.benchmark_group("dse");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new(format!("w{width}"), "naive_scan"), |b| {
        b.iter(|| {
            best_block_design_reference(
                black_box(&space),
                black_box(&profile),
                &budget,
                BlockObjective::MeanAbsolute,
            )
        })
    });
    for threads in [1usize, 4] {
        group.bench_function(
            BenchmarkId::new(format!("w{width}"), format!("prefix_sharing_t{threads}")),
            |b| {
                b.iter(|| {
                    best_block_design(
                        black_box(&space),
                        black_box(&profile),
                        &budget,
                        BlockObjective::MeanAbsolute,
                        threads,
                    )
                })
            },
        );
    }
    group.finish();
}

fn ns_of(results: &[BenchResult], name: &str) -> f64 {
    results
        .iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("benchmark {name} did not run"))
        .ns_per_iter
}

fn render_report(results: &[BenchResult], dist_width: usize, dse_width: usize) -> String {
    let mut benches = String::new();
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            benches,
            "    {{\"name\": \"{}\", \"ns_per_iter\": {:.1}}}{sep}",
            r.name, r.ns_per_iter
        );
    }

    let speedup_pairs = [
        (
            format!(
                "ED-PMF of a heterogeneous width-{dist_width} config: analytical carry-state \
                 DP vs bitsliced exhaustive enumeration of all operand pairs"
            ),
            format!("distance/w{dist_width}/exhaustive"),
            format!("distance/w{dist_width}/analytical"),
        ),
        (
            format!(
                "best mean-ED design over every 3/4-wide depth-0/1 tiling of a width-\
                 {dse_width} adder under 12-bit-magnitude operands: prefix-sharing DSE \
                 (1 thread) vs naive per-config scan"
            ),
            format!("dse/w{dse_width}/naive_scan"),
            format!("dse/w{dse_width}/prefix_sharing_t1"),
        ),
        (
            format!(
                "best mean-ED design over every 3/4-wide depth-0/1 tiling of a width-\
                 {dse_width} adder under 12-bit-magnitude operands: prefix-sharing DSE \
                 (4 threads) vs naive per-config scan"
            ),
            format!("dse/w{dse_width}/naive_scan"),
            format!("dse/w{dse_width}/prefix_sharing_t4"),
        ),
    ];
    let mut speedups = String::new();
    for (i, (workload, baseline, fast)) in speedup_pairs.iter().enumerate() {
        let base_ns = ns_of(results, baseline);
        let fast_ns = ns_of(results, fast);
        let sep = if i + 1 < speedup_pairs.len() { "," } else { "" };
        let _ = writeln!(
            speedups,
            "    {{\"workload\": \"{workload}\", \"baseline\": \"{baseline}\", \
             \"fast\": \"{fast}\", \"baseline_ns\": {base_ns:.1}, \"fast_ns\": {fast_ns:.1}, \
             \"speedup\": {:.2}}}{sep}",
            base_ns / fast_ns
        );
    }

    format!(
        "{{\n  \"generator\": \"cargo bench -p sealpaa-bench --bench blocks_kernels\",\n  \
         \"unit\": \"ns_per_iter is the median wall-clock time of one full workload\",\n  \
         \"note\": \"the analytical row computes the exact error-distance PMF in one pass \
         over the bit positions (carry-state DP); the exhaustive row enumerates every \
         operand/cin assignment 64 SWAR lanes at a time. Both produce the identical \
         distribution (pinned exactly, in Rational, by crates/blocks/tests/differential.rs). \
         The DSE rows search every 3/4-wide, depth-0/1 accurate-cell tiling of a wide \
         datapath fed 12-bit-magnitude operands (p = 1/2 on the low 12 bits, 0 above — the \
         regime approximate adders target) for the provably-best mean-ED design: \
         prefix-sharing re-uses the carry-state DP of shared block prefixes, the naive scan \
         re-runs the full pass per configuration, and both return bit-identical winners for \
         every thread count. Acceptance: analytical >= 10x exhaustive at width 12, \
         prefix-sharing >= 5x the naive scan at width 40 on one thread\",\n  \
         \"benches\": [\n{benches}  ],\n  \"speedups\": [\n{speedups}  ]\n}}\n"
    )
}

fn main() {
    let mut criterion = Criterion::default();
    bench_distance(&mut criterion);
    bench_dse(&mut criterion);
    let results = take_results();
    if quick() {
        eprintln!("MICROBENCH_QUICK set: not rewriting BENCH_blocks.json");
        return;
    }
    let (_, config) = distance_config();
    let report = render_report(&results, config.width(), dse_width());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_blocks.json");
    std::fs::write(path, report).expect("write BENCH_blocks.json");
    println!("wrote {path}");
}
