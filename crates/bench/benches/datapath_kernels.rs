//! Datapath kernels: the analytical error-propagation engine against
//! Monte-Carlo simulation, and the prefix-sharing per-node adder assignment
//! against the naive per-configuration scan — the quantitative record
//! behind `BENCH_datapath.json`.
//!
//! Two groups:
//!
//! * `snr` — the predicted output-error moments (and hence SNR) of a 3x3
//!   Gaussian-blur convolution built from LPAA 5 adders, analytically (one
//!   pass over the graph, closed-form moment algebra per node) and by
//!   Monte-Carlo simulation (20k random pixel neighbourhoods, every one
//!   evaluated gate-accurately and bit-by-bit). The acceptance suite in
//!   `crates/propagate/tests/acceptance.rs` pins that the two agree within
//!   documented dB bounds.
//! * `optimize` — the provably-best (min-MSE) per-adder cell assignment of
//!   the same convolution over a 3-cell candidate library: the
//!   prefix-sharing DFS re-uses the propagated signal state of every common
//!   graph prefix, the reference scan re-propagates the whole graph per
//!   configuration. Both return bit-identical winners for every thread
//!   count (pinned in `crates/explore/src/datapath_dse.rs`).
//!
//! Unless `MICROBENCH_QUICK` is set (smoke mode), the run rewrites
//! `BENCH_datapath.json` at the repository root with ns/op for every
//! benchmark and the two headline speedups. Smoke mode also shrinks the
//! workload so CI stays fast; the committed JSON always records the full
//! workload.

use std::fmt::Write as _;

use sealpaa_bench::microbench::{black_box, take_results, BenchResult, BenchmarkId, Criterion};
use sealpaa_cells::StandardCell;
use sealpaa_datapath::{Datapath, NodeKind, Signal};
use sealpaa_explore::{
    accurate_cell_with_proxy_costs, best_datapath_assignment, best_datapath_assignment_reference,
    Budget,
};
use sealpaa_propagate::{monte_carlo, propagate_moments, topologies};

fn quick() -> bool {
    std::env::var_os("MICROBENCH_QUICK").is_some()
}

/// Pixel bit-width of the convolution both groups analyze.
fn pixel_bits() -> usize {
    if quick() {
        4
    } else {
        8
    }
}

/// Monte-Carlo sample count the `snr` baseline draws. The full run uses the
/// same 20k samples the CLI's `datapath simulate` defaults to.
fn mc_samples() -> u64 {
    if quick() {
        500
    } else {
        20_000
    }
}

/// The 3x3 Gaussian blur kernel (quick mode: a 3-tap binomial FIR with the
/// same coefficient structure, to keep the smoke run under a second).
fn workload() -> (String, Datapath, Signal, Vec<String>) {
    let cell = StandardCell::Lpaa5.cell();
    let bits = pixel_bits();
    if quick() {
        let topo = topologies::fir(&cell, &[1, 2, 1], bits).expect("fir fits");
        (
            format!("fir3_w{bits}"),
            topo.datapath,
            topo.output,
            topo.inputs,
        )
    } else {
        let kernel = vec![vec![1, 2, 1], vec![2, 4, 2], vec![1, 2, 1]];
        let topo = topologies::conv2d(&cell, &kernel, bits).expect("conv2d fits");
        (
            format!("gauss3x3_w{bits}"),
            topo.datapath,
            topo.output,
            topo.inputs,
        )
    }
}

/// Uniform bit probabilities for every input, at each input's actual width.
fn uniform_inputs(dp: &Datapath, names: &[String]) -> Vec<(String, Vec<f64>)> {
    names
        .iter()
        .map(|name| {
            let width = dp
                .signals()
                .find(|&s| matches!(dp.kind(s), NodeKind::Input { name: n } if n == name))
                .map_or(1, |s| dp.width(s));
            (name.clone(), vec![0.5; width])
        })
        .collect()
}

fn as_refs(inputs: &[(String, Vec<f64>)]) -> Vec<(&str, Vec<f64>)> {
    inputs
        .iter()
        .map(|(name, bits)| (name.as_str(), bits.clone()))
        .collect()
}

fn bench_snr(c: &mut Criterion) {
    let (label, dp, output, names) = workload();
    let inputs = uniform_inputs(&dp, &names);
    let inputs = as_refs(&inputs);
    let samples = mc_samples();
    let mut group = c.benchmark_group("snr");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new(&label, "analytical"), |b| {
        b.iter(|| propagate_moments(black_box(&dp), black_box(output), black_box(&inputs)))
    });
    group.bench_function(
        BenchmarkId::new(&label, format!("monte_carlo_{samples}")),
        |b| {
            b.iter(|| {
                monte_carlo(
                    black_box(&dp),
                    black_box(output),
                    black_box(&inputs),
                    samples,
                    1,
                )
            })
        },
    );
    group.finish();
}

fn bench_optimize(c: &mut Criterion) {
    let (label, dp, output, names) = workload();
    let inputs = uniform_inputs(&dp, &names);
    let inputs = as_refs(&inputs);
    let candidates = [
        accurate_cell_with_proxy_costs(),
        StandardCell::Lpaa2.cell(),
        StandardCell::Lpaa5.cell(),
    ];
    let budget = Budget::default();
    let mut group = c.benchmark_group("optimize");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new(&label, "naive_scan"), |b| {
        b.iter(|| {
            best_datapath_assignment_reference(
                black_box(&dp),
                black_box(output),
                black_box(&inputs),
                black_box(&candidates),
                &budget,
            )
        })
    });
    for threads in [1usize, 4] {
        group.bench_function(
            BenchmarkId::new(&label, format!("prefix_sharing_t{threads}")),
            |b| {
                b.iter(|| {
                    best_datapath_assignment(
                        black_box(&dp),
                        black_box(output),
                        black_box(&inputs),
                        black_box(&candidates),
                        &budget,
                        threads,
                    )
                })
            },
        );
    }
    group.finish();
}

fn ns_of(results: &[BenchResult], name: &str) -> f64 {
    results
        .iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("benchmark {name} did not run"))
        .ns_per_iter
}

fn render_report(results: &[BenchResult], label: &str, samples: u64) -> String {
    let mut benches = String::new();
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            benches,
            "    {{\"name\": \"{}\", \"ns_per_iter\": {:.1}}}{sep}",
            r.name, r.ns_per_iter
        );
    }

    let speedup_pairs = [
        (
            format!(
                "output-error moments/SNR of a 3x3 Gaussian blur (LPAA 5 adders, 8-bit \
                 pixels): analytical one-pass propagation vs {samples}-sample gate-accurate \
                 Monte-Carlo simulation"
            ),
            format!("snr/{label}/monte_carlo_{samples}"),
            format!("snr/{label}/analytical"),
        ),
        (
            "min-MSE per-adder cell assignment of the same convolution over a 3-cell \
             library: prefix-sharing DFS (1 thread) vs naive per-config scan"
                .to_string(),
            format!("optimize/{label}/naive_scan"),
            format!("optimize/{label}/prefix_sharing_t1"),
        ),
        (
            "min-MSE per-adder cell assignment of the same convolution over a 3-cell \
             library: prefix-sharing DFS (4 threads) vs naive per-config scan"
                .to_string(),
            format!("optimize/{label}/naive_scan"),
            format!("optimize/{label}/prefix_sharing_t4"),
        ),
    ];
    let mut speedups = String::new();
    for (i, (workload, baseline, fast)) in speedup_pairs.iter().enumerate() {
        let base_ns = ns_of(results, baseline);
        let fast_ns = ns_of(results, fast);
        let sep = if i + 1 < speedup_pairs.len() { "," } else { "" };
        let _ = writeln!(
            speedups,
            "    {{\"workload\": \"{workload}\", \"baseline\": \"{baseline}\", \
             \"fast\": \"{fast}\", \"baseline_ns\": {base_ns:.1}, \"fast_ns\": {fast_ns:.1}, \
             \"speedup\": {:.2}}}{sep}",
            base_ns / fast_ns
        );
    }

    format!(
        "{{\n  \"generator\": \"cargo bench -p sealpaa-bench --bench datapath_kernels\",\n  \
         \"unit\": \"ns_per_iter is the median wall-clock time of one full workload\",\n  \
         \"note\": \"the analytical row predicts the output-error moments (and SNR) of a \
         3x3 Gaussian-blur convolution built from LPAA 5 adders in one pass over the graph \
         (closed-form moment algebra per node); the Monte-Carlo row estimates the same \
         moments by evaluating {samples} random pixel neighbourhoods gate-accurately. The \
         acceptance suite in crates/propagate/tests/acceptance.rs pins that the two agree \
         within documented dB bounds. The optimize rows search every per-adder cell \
         assignment of the same convolution over a 3-cell candidate library for the \
         provably-best (min-MSE, hence max-SNR) design: prefix-sharing re-uses the \
         propagated signal state of shared graph prefixes, the naive scan re-propagates the \
         whole graph per configuration, and both return bit-identical winners for every \
         thread count. Acceptance: analytical >= 100x Monte-Carlo at 20k samples, \
         prefix-sharing >= 2x the naive scan on one thread\",\n  \
         \"benches\": [\n{benches}  ],\n  \"speedups\": [\n{speedups}  ]\n}}\n"
    )
}

fn main() {
    let mut criterion = Criterion::default();
    bench_snr(&mut criterion);
    bench_optimize(&mut criterion);
    let results = take_results();
    if quick() {
        eprintln!("MICROBENCH_QUICK set: not rewriting BENCH_datapath.json");
        return;
    }
    let (label, ..) = workload();
    let report = render_report(&results, &label, mc_samples());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_datapath.json");
    std::fs::write(path, report).expect("write BENCH_datapath.json");
    println!("wrote {path}");
}
