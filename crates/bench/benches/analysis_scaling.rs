//! Paper claim (Sec. 5): "the execution time is approximately less than 1 ms
//! for any length of multistage adder being analyzed" and the cost scales
//! *linearly* with the number of stages.
//!
//! This bench sweeps the proposed method from 8 to 1024 bits; Criterion's
//! per-width estimates should grow proportionally to N and stay far under a
//! millisecond even at widths no simulation could ever touch.

use sealpaa_bench::microbench::{black_box, BenchmarkId, Criterion};
use sealpaa_bench::{criterion_group, criterion_main};
use sealpaa_cells::{AdderChain, InputProfile, StandardCell};
use sealpaa_core::analyze;

fn bench_analysis_width_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("proposed_method_vs_width");
    for width in [8usize, 16, 32, 64, 128, 256, 512, 1024] {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), width);
        let profile = InputProfile::<f64>::uniform(width);
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, _| {
            b.iter(|| analyze(black_box(&chain), black_box(&profile)).expect("widths match"))
        });
    }
    group.finish();
}

fn bench_analysis_per_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("proposed_method_per_cell_32bit");
    for cell in StandardCell::APPROXIMATE {
        let chain = AdderChain::uniform(cell.cell(), 32);
        let profile = InputProfile::constant(32, 0.1);
        group.bench_function(cell.name(), |b| {
            b.iter(|| analyze(black_box(&chain), black_box(&profile)).expect("widths match"))
        });
    }
    group.finish();
}

fn bench_hybrid_chain(c: &mut Criterion) {
    // Hybrid chains cost the same as homogeneous ones — the method is
    // per-stage.
    let stages: Vec<_> = (0..64)
        .map(|i| StandardCell::APPROXIMATE[i % 7].cell())
        .collect();
    let chain = AdderChain::from_stages(stages);
    let profile = InputProfile::constant(64, 0.3);
    c.bench_function("proposed_method_hybrid_64bit", |b| {
        b.iter(|| analyze(black_box(&chain), black_box(&profile)).expect("widths match"))
    });
}

criterion_group!(
    benches,
    bench_analysis_width_sweep,
    bench_analysis_per_cell,
    bench_hybrid_chain
);
criterion_main!(benches);
