//! Analysis-engine kernels: naive vs incremental design-space exploration,
//! incremental width sweeps, and the small-value rational fast paths — the
//! quantitative record behind `BENCH_analysis.json`.
//!
//! Three groups:
//!
//! * `dse` — the full `C^N` hybrid search at `N = 8` over all 8 standard
//!   cells (16.7M designs) through the pre-PR reference scan (a fresh O(N)
//!   analysis per design) and through the prefix-sharing DFS (one stage
//!   step per tree edge, `Σ C^i ≈ 1.14` steps per design), single- and
//!   multi-threaded. Both return the identical best design — the
//!   differential suite in `crates/core/tests/incremental.rs` pins that.
//! * `width_sweep` — the Fig. 5 exercise (error probability at every width
//!   `1..=16`): a fresh analysis per width (`Θ(N²)` stage steps) vs one
//!   analysis of the widest chain read back through `prefix_success`
//!   (`Θ(N)`).
//! * `rational` — exact-`Rational` analyses (the paper's Table 4 worked
//!   example and a width-8 chain) through the pre-PR arithmetic (the
//!   `*_slowpath` big-integer routines, re-exposed for exactly this
//!   comparison) and through the single-limb/u128 fast paths.
//!
//! Unless `MICROBENCH_QUICK` is set (smoke mode), the run rewrites
//! `BENCH_analysis.json` at the repository root with ns/op for every
//! benchmark and the speedups over each naive baseline. Smoke mode also
//! shrinks the DSE workload to `N = 6` so CI stays fast; the committed
//! JSON always records the full `N = 8` workload.

use std::fmt::Write as _;
use std::ops::{Add, Mul, Sub};

use sealpaa_bench::microbench::{
    black_box, take_results, BenchResult, BenchmarkId, Criterion, Throughput,
};
use sealpaa_cells::{AdderChain, Cell, CellCharacteristics, InputProfile, StandardCell};
use sealpaa_core::analyze;
use sealpaa_explore::{exhaustive_best_reference, exhaustive_best_with, Budget};
use sealpaa_num::{Prob, Rational};

/// All eight standard cells, each carrying power/area characteristics so
/// the budgeted search accepts them. The paper's Table 2 characterises only
/// LPAA 1–5; the accurate cell reuses the DESIGN.md estimate and LPAA 6/7
/// (which Table 2 does not cover) get rough transistor-count
/// extrapolations. The figures only label the workload — the benchmark
/// runs unconstrained, so they never affect the search.
fn all_eight_candidates() -> Vec<Cell> {
    let mut cells: Vec<Cell> = [
        StandardCell::Lpaa1,
        StandardCell::Lpaa2,
        StandardCell::Lpaa3,
        StandardCell::Lpaa4,
        StandardCell::Lpaa5,
    ]
    .iter()
    .map(|c| c.cell())
    .collect();
    cells.push(sealpaa_explore::accurate_cell_with_proxy_costs());
    cells.push(Cell::custom_with_characteristics(
        "LPAA 6 (est.)",
        StandardCell::Lpaa6.truth_table(),
        CellCharacteristics::new(500.0, 3.0),
    ));
    cells.push(Cell::custom_with_characteristics(
        "LPAA 7 (est.)",
        StandardCell::Lpaa7.truth_table(),
        CellCharacteristics::new(400.0, 2.5),
    ));
    cells
}

fn dse_width() -> usize {
    if std::env::var_os("MICROBENCH_QUICK").is_some() {
        6
    } else {
        8
    }
}

fn bench_dse(c: &mut Criterion) {
    let width = dse_width();
    let candidates = all_eight_candidates();
    let profile = InputProfile::<f64>::constant(width, 0.3);
    let budget = Budget::default();
    let designs = (candidates.len() as u64).pow(width as u32);

    let mut group = c.benchmark_group("dse");
    // The naive scan is seconds per iteration at N = 8; a handful of
    // samples keeps the full run in minutes while the median still rejects
    // a one-off outlier.
    group.sample_size(3);
    group.throughput(Throughput::Elements(designs));
    let label = format!("best_w{width}_c8");
    group.bench_function(BenchmarkId::new(label.clone(), "naive"), |b| {
        b.iter(|| {
            exhaustive_best_reference(black_box(&candidates), black_box(&profile), &budget)
                .expect("valid")
        })
    });
    for threads in [1usize, 4] {
        group.bench_function(
            BenchmarkId::new(label.clone(), format!("stepper_t{threads}")),
            |b| {
                b.iter(|| {
                    exhaustive_best_with(
                        black_box(&candidates),
                        black_box(&profile),
                        &budget,
                        threads,
                    )
                    .expect("valid")
                })
            },
        );
    }
    group.finish();
}

fn bench_width_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("width_sweep");
    group.sample_size(10);
    let cell = StandardCell::Lpaa1.cell();
    let profile = InputProfile::<f64>::constant(16, 0.1);
    group.throughput(Throughput::Elements(16));
    group.bench_function(BenchmarkId::new("lpaa1_w16", "naive"), |b| {
        b.iter(|| {
            // A fresh analysis per width — what the Fig. 5 driver did
            // before the prefix readback.
            (1..=16)
                .map(|n| {
                    let chain = AdderChain::uniform(cell.clone(), n);
                    let profile = InputProfile::<f64>::constant(n, 0.1);
                    analyze(&chain, &profile)
                        .expect("valid")
                        .error_probability()
                })
                .collect::<Vec<f64>>()
        })
    });
    group.bench_function(BenchmarkId::new("lpaa1_w16", "incremental"), |b| {
        b.iter(|| {
            // One analysis of the widest chain; every narrower width is a
            // prefix readback (a constant profile makes them identical).
            let chain = AdderChain::uniform(cell.clone(), 16);
            let analysis = analyze(black_box(&chain), black_box(&profile)).expect("valid");
            (1..=16)
                .map(|n| analysis.prefix_error_probability(n - 1))
                .collect::<Vec<f64>>()
        })
    });
    group.finish();
}

/// `Rational` arithmetic as it was before the single-limb/u128 fast paths:
/// every ring operation routed through the retained `*_slowpath` methods.
/// Implementing [`Prob`] over this newtype lets the benchmark run the
/// *current* analysis code over the *pre-PR* arithmetic, so the speedup
/// isolates the number representation.
#[derive(Clone, PartialEq, PartialOrd, Debug)]
struct BaselineRational(Rational);

impl std::fmt::Display for BaselineRational {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl Add for BaselineRational {
    type Output = BaselineRational;
    fn add(self, rhs: BaselineRational) -> BaselineRational {
        BaselineRational(self.0.add_slowpath(&rhs.0))
    }
}

impl Sub for BaselineRational {
    type Output = BaselineRational;
    fn sub(self, rhs: BaselineRational) -> BaselineRational {
        BaselineRational(self.0.sub_slowpath(&rhs.0))
    }
}

impl Mul for BaselineRational {
    type Output = BaselineRational;
    fn mul(self, rhs: BaselineRational) -> BaselineRational {
        BaselineRational(self.0.mul_slowpath(&rhs.0))
    }
}

impl Prob for BaselineRational {
    fn zero() -> Self {
        BaselineRational(Rational::zero())
    }

    fn one() -> Self {
        BaselineRational(Rational::one())
    }

    fn from_ratio(num: u64, den: u64) -> Self {
        BaselineRational(<Rational as Prob>::from_ratio(num, den))
    }

    fn from_f64(value: f64) -> Self {
        BaselineRational(Rational::from_f64(value))
    }

    fn to_f64(&self) -> f64 {
        self.0.to_f64()
    }
}

/// The paper's Table 4 input profile (the worked 4-bit LPAA 1 example) over
/// any `Prob` implementation.
fn table4_profile<T: Prob>() -> InputProfile<T> {
    InputProfile::new(
        vec![
            T::from_ratio(9, 10),
            T::from_ratio(1, 2),
            T::from_ratio(2, 5),
            T::from_ratio(4, 5),
        ],
        vec![
            T::from_ratio(4, 5),
            T::from_ratio(7, 10),
            T::from_ratio(3, 5),
            T::from_ratio(9, 10),
        ],
        T::from_ratio(1, 2),
    )
    .expect("paper profile is valid")
}

fn bench_rational(c: &mut Criterion) {
    let mut group = c.benchmark_group("rational");
    group.sample_size(10);

    // Table 4: the 4-bit LPAA 1 worked example in exact arithmetic.
    let chain4 = AdderChain::uniform(StandardCell::Lpaa1.cell(), 4);
    let baseline4 = table4_profile::<BaselineRational>();
    let fast4 = table4_profile::<Rational>();
    group.throughput(Throughput::Elements(4));
    group.bench_function(BenchmarkId::new("table4_lpaa1_w4", "slowpath"), |b| {
        b.iter(|| {
            analyze(black_box(&chain4), black_box(&baseline4))
                .expect("valid")
                .error_probability()
        })
    });
    group.bench_function(BenchmarkId::new("table4_lpaa1_w4", "fastpath"), |b| {
        b.iter(|| {
            analyze(black_box(&chain4), black_box(&fast4))
                .expect("valid")
                .error_probability()
        })
    });

    // A wider exact analysis: denominators grow with depth, exercising the
    // u128 overflow handoff as well as the single-limb paths.
    let chain8 = AdderChain::uniform(StandardCell::Lpaa3.cell(), 8);
    let baseline8 = InputProfile::<BaselineRational>::constant(8, Prob::from_ratio(3, 10));
    let fast8 = InputProfile::<Rational>::constant(8, Prob::from_ratio(3, 10));
    group.throughput(Throughput::Elements(8));
    group.bench_function(BenchmarkId::new("lpaa3_w8_p0.3", "slowpath"), |b| {
        b.iter(|| {
            analyze(black_box(&chain8), black_box(&baseline8))
                .expect("valid")
                .error_probability()
        })
    });
    group.bench_function(BenchmarkId::new("lpaa3_w8_p0.3", "fastpath"), |b| {
        b.iter(|| {
            analyze(black_box(&chain8), black_box(&fast8))
                .expect("valid")
                .error_probability()
        })
    });
    group.finish();
}

fn ns_of(results: &[BenchResult], name: &str) -> f64 {
    results
        .iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("benchmark {name} did not run"))
        .ns_per_iter
}

fn render_report(results: &[BenchResult]) -> String {
    let mut benches = String::new();
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            benches,
            "    {{\"name\": \"{}\", \"ns_per_iter\": {:.1}}}{sep}",
            r.name, r.ns_per_iter
        );
    }

    let speedup_pairs = [
        (
            "exhaustive best, w8 over all 8 cells (16.7M designs), 1 thread",
            "dse/best_w8_c8/naive",
            "dse/best_w8_c8/stepper_t1",
        ),
        (
            "exhaustive best, w8 over all 8 cells (16.7M designs), 4 threads",
            "dse/best_w8_c8/naive",
            "dse/best_w8_c8/stepper_t4",
        ),
        (
            "Fig. 5 width sweep, lpaa1 widths 1..=16",
            "width_sweep/lpaa1_w16/naive",
            "width_sweep/lpaa1_w16/incremental",
        ),
        (
            "Table 4 worked example, exact rational",
            "rational/table4_lpaa1_w4/slowpath",
            "rational/table4_lpaa1_w4/fastpath",
        ),
        (
            "lpaa3 w8 p=3/10, exact rational",
            "rational/lpaa3_w8_p0.3/slowpath",
            "rational/lpaa3_w8_p0.3/fastpath",
        ),
    ];
    let mut speedups = String::new();
    for (i, (workload, baseline, fast)) in speedup_pairs.iter().enumerate() {
        let base_ns = ns_of(results, baseline);
        let fast_ns = ns_of(results, fast);
        let sep = if i + 1 < speedup_pairs.len() { "," } else { "" };
        let _ = writeln!(
            speedups,
            "    {{\"workload\": \"{workload}\", \"baseline\": \"{baseline}\", \
             \"fast\": \"{fast}\", \"baseline_ns\": {base_ns:.1}, \"fast_ns\": {fast_ns:.1}, \
             \"speedup\": {:.2}}}{sep}",
            base_ns / fast_ns
        );
    }

    format!(
        "{{\n  \"generator\": \"cargo bench -p sealpaa-bench --bench analysis_kernels\",\n  \
         \"unit\": \"ns_per_iter is the median wall-clock time of one full workload\",\n  \
         \"note\": \"the dse baseline re-runs a fresh O(N) analysis per design (the pre-PR \
         scan); the stepper rows walk the prefix-sharing DFS, which pays one stage step per \
         tree edge and merges in lexicographic design order, so its result is byte-identical \
         to the baseline for every thread count. The rational baseline routes every ring \
         operation through the retained big-integer slowpath, isolating the single-limb/u128 \
         fast-path gain. Acceptance: dse stepper >= 5x naive, rational fastpath >= 3x \
         slowpath\",\n  \"benches\": [\n{benches}  ],\n  \"speedups\": [\n{speedups}  ]\n}}\n"
    )
}

fn main() {
    let mut criterion = Criterion::default();
    bench_dse(&mut criterion);
    bench_width_sweep(&mut criterion);
    bench_rational(&mut criterion);
    let results = take_results();
    if std::env::var_os("MICROBENCH_QUICK").is_some() {
        eprintln!("MICROBENCH_QUICK set: not rewriting BENCH_analysis.json");
        return;
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_analysis.json");
    std::fs::write(path, render_report(&results)).expect("write BENCH_analysis.json");
    println!("wrote {path}");
}
