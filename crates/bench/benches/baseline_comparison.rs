//! Paper Table 3 / Sec. 3: the inclusion–exclusion baseline doubles in cost
//! per added stage while the proposed method adds one constant-cost stage.
//! The same contrast holds for GeAr: the 2^k-term analysis of [12] vs our
//! linear DP.

use sealpaa_bench::microbench::{black_box, BenchmarkId, Criterion};
use sealpaa_bench::{criterion_group, criterion_main};
use sealpaa_cells::{AdderChain, InputProfile, StandardCell};
use sealpaa_core::analyze;
use sealpaa_gear::{error_probability, error_probability_inclexcl, GearConfig};
use sealpaa_inclexcl::error_probability as inclexcl_error;

fn bench_inclexcl_vs_proposed(c: &mut Criterion) {
    let mut group = c.benchmark_group("lpaa_error_probability");
    group.sample_size(10);
    for width in [4usize, 8, 12, 16] {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), width);
        let profile = InputProfile::constant(width, 0.1);
        group.bench_with_input(
            BenchmarkId::new("inclusion_exclusion", width),
            &width,
            |b, _| {
                b.iter(|| {
                    inclexcl_error(black_box(&chain), black_box(&profile)).expect("widths match")
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("proposed", width), &width, |b, _| {
            b.iter(|| analyze(black_box(&chain), black_box(&profile)).expect("widths match"))
        });
    }
    group.finish();
}

fn bench_gear_analyses(c: &mut Criterion) {
    let mut group = c.benchmark_group("gear_error_probability");
    group.sample_size(10);
    for n in [8usize, 16, 24] {
        let config = GearConfig::new(n, 2, 2).expect("valid config");
        let pa = vec![0.5f64; n];
        group.bench_with_input(BenchmarkId::new("linear_dp", n), &n, |b, _| {
            b.iter(|| {
                error_probability(black_box(&config), black_box(&pa), black_box(&pa), 0.0)
                    .expect("widths match")
            })
        });
        group.bench_with_input(BenchmarkId::new("inclusion_exclusion", n), &n, |b, _| {
            b.iter(|| {
                error_probability_inclexcl(black_box(&config), black_box(&pa), black_box(&pa), 0.0)
                    .expect("widths match")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inclexcl_vs_proposed, bench_gear_analyses);
criterion_main!(benches);
