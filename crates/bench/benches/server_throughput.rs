//! Daemon request-throughput: what pipelining and the `batch` protocol buy
//! over one-request-at-a-time round-trips — the quantitative record behind
//! `BENCH_server.json`.
//!
//! One group, `throughput`, three ways of asking the daemon the same `n`
//! cache-warm `analyze` questions over a single TCP connection to an
//! in-process server running the event io model:
//!
//! * `serialized` — the classic request/response lockstep: write one line,
//!   block for its response, repeat `n` times. Every request pays a full
//!   loopback round-trip plus a poll-thread wakeup.
//! * `pipelined` — all `n` request lines in one write, then `n` responses
//!   read back (tagged by `id`, so order never matters). The poll thread
//!   drains the whole burst from one readiness event and the round-trip is
//!   paid once.
//! * `batch` — one `batch` request line carrying all `n` sub-requests, one
//!   response line carrying all `n` answers. On top of the single
//!   round-trip, duplicate sub-requests collapse through the result cache
//!   as a group.
//!
//! The requests are cache-warm (the config is analyzed once during setup),
//! so the numbers isolate the connection layer: protocol parsing, cache
//! probes and socket traffic, not adder analysis.
//!
//! Unless `MICROBENCH_QUICK` is set (smoke mode), the run rewrites
//! `BENCH_server.json` at the repository root with ns per n-request
//! workload and the two headline speedups. Smoke mode shrinks `n` so CI
//! stays fast; the committed JSON always records the full workload.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

use sealpaa_bench::microbench::{black_box, take_results, BenchResult, BenchmarkId, Criterion};
use sealpaa_server::json::Json;
#[cfg(target_os = "linux")]
use sealpaa_server::route::{RouteConfig, Router};
use sealpaa_server::server::{IoModel, Server, ServerConfig};

fn quick() -> bool {
    std::env::var_os("MICROBENCH_QUICK").is_some()
}

/// Requests per measured workload. Kept under the daemon's pipeline cap
/// (128 in-flight requests per connection) so the pipelined burst is never
/// throttled.
fn requests_per_iter() -> usize {
    if quick() {
        8
    } else {
        64
    }
}

/// The one question every workload asks `n` times: a 4-bit LPAA 5 chain at
/// p = 0.2. Only the `id` varies, and the cache key ignores it, so after
/// the warm-up every request is a cache hit.
fn analyze_body(id: usize) -> String {
    format!(r#"{{"id":{id},"kind":"analyze","width":4,"cell":"lpaa5","p":0.2}}"#)
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    line: Vec<u8>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to in-process daemon");
        stream.set_nodelay(true).expect("TCP_NODELAY");
        // A batch response for `n` sub-requests is one long line (tens of
        // KB); size the read buffer so draining it is one or two syscalls
        // rather than a default-8KB shuffle.
        Client {
            reader: BufReader::with_capacity(256 * 1024, stream.try_clone().expect("clone stream")),
            writer: stream,
            line: Vec::new(),
        }
    }

    fn send(&mut self, request: &[u8]) {
        self.writer.write_all(request).expect("write request");
    }

    /// Reads one response line and returns its byte length (fed to
    /// `black_box` by callers so the read cannot be elided). Raw bytes, not
    /// UTF-8 — a realistic consumer validates only what it inspects.
    fn read_response(&mut self) -> usize {
        self.line.clear();
        self.reader
            .read_until(b'\n', &mut self.line)
            .expect("read response");
        assert!(!self.line.is_empty(), "daemon closed the connection");
        self.line.len()
    }

    fn round_trip(&mut self, request: &str) -> Json {
        self.send(request.as_bytes());
        self.send(b"\n");
        self.read_response();
        let text = std::str::from_utf8(&self.line).expect("response is UTF-8");
        Json::parse(text.trim_end()).expect("response is JSON")
    }
}

/// `n` request lines, newline-terminated, ready for one `write_all`.
fn pipelined_burst(n: usize) -> Vec<u8> {
    let mut burst = Vec::new();
    for id in 0..n {
        burst.extend_from_slice(analyze_body(id).as_bytes());
        burst.push(b'\n');
    }
    burst
}

/// One `batch` request line carrying `n` analyze sub-requests.
fn batch_line(n: usize) -> Vec<u8> {
    let subs: Vec<String> = (0..n).map(analyze_body).collect();
    let mut line = format!(r#"{{"kind":"batch","requests":[{}]}}"#, subs.join(","));
    line.push('\n');
    line.into_bytes()
}

fn bench_throughput(c: &mut Criterion, addr: SocketAddr) {
    let n = requests_per_iter();
    let mut group = c.benchmark_group("throughput");
    group.sample_size(10);

    let singles: Vec<Vec<u8>> = (0..n)
        .map(|id| {
            let mut line = analyze_body(id).into_bytes();
            line.push(b'\n');
            line
        })
        .collect();
    let mut client = Client::connect(addr);
    group.bench_function(BenchmarkId::new(format!("n{n}"), "serialized"), |b| {
        b.iter(|| {
            let mut bytes = 0usize;
            for line in &singles {
                client.send(line);
                bytes += client.read_response();
            }
            black_box(bytes)
        })
    });

    let burst = pipelined_burst(n);
    let mut client = Client::connect(addr);
    group.bench_function(BenchmarkId::new(format!("n{n}"), "pipelined"), |b| {
        b.iter(|| {
            client.send(&burst);
            let mut bytes = 0usize;
            for _ in 0..n {
                bytes += client.read_response();
            }
            black_box(bytes)
        })
    });

    let batch = batch_line(n);
    let mut client = Client::connect(addr);
    group.bench_function(BenchmarkId::new(format!("n{n}"), "batch"), |b| {
        b.iter(|| {
            client.send(&batch);
            black_box(client.read_response())
        })
    });

    group.finish();
}

/// Distinct cache keys per router workload: twice one backend's cache
/// capacity, so a single backend thrashes while four hold the whole set.
fn router_working_set() -> usize {
    if quick() {
        128
    } else {
        512
    }
}

/// One backend's result-cache capacity in the router scaling workload.
/// Sixteen shards need a few entries each, so even smoke mode keeps this
/// well above the shard count.
fn router_cache_entries() -> usize {
    if quick() {
        96
    } else {
        256
    }
}

/// Monte-Carlo samples per router workload miss. Dialled so a miss costs
/// milliseconds of real simulation while a warm hit is a cache lookup —
/// the contrast the capacity-scaling benchmark measures.
fn router_samples() -> usize {
    if quick() {
        200_000
    } else {
        1_000_000
    }
}

/// The router workload key `i`: a Monte-Carlo simulate whose only
/// variation is the RNG seed, so every `i` is one distinct cache key and
/// a miss costs `router_samples()` bit-true samples.
#[cfg(target_os = "linux")]
fn router_body(i: usize) -> String {
    format!(
        r#"{{"id":{i},"kind":"simulate","width":32,"cell":"lpaa5","samples":{},"seed":{i},"threads":1}}"#,
        router_samples()
    )
}

/// Router cache-capacity scaling (the machine has too few cores for
/// compute parallelism to be the story): the same working set of
/// `router_working_set()` distinct keys is pushed through a router backed
/// by 1 vs 4 daemons. One backend's LRU holds half the working set, so a
/// cycling client thrashes it and every request recomputes; four backends
/// shard the key space by consistent hash and hold all of it, so every
/// request after priming is a cache hit.
#[cfg(target_os = "linux")]
fn bench_router(c: &mut Criterion) {
    let ws = router_working_set();
    let mut group = c.benchmark_group("router");
    group.sample_size(10);

    for backends in [1usize, 4] {
        let mut backend_addrs = Vec::new();
        let mut backend_handles = Vec::new();
        for _ in 0..backends {
            let server = Server::bind(ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                threads: 1,
                cache_entries: router_cache_entries(),
                io_model: IoModel::Event,
                ..Default::default()
            })
            .expect("bind backend");
            backend_addrs.push(server.local_addr());
            backend_handles.push(std::thread::spawn(move || server.run()));
        }
        let router = Router::bind(RouteConfig {
            addr: "127.0.0.1:0".to_owned(),
            backends: backend_addrs.iter().map(|a| a.to_string()).collect(),
            ..RouteConfig::default()
        })
        .expect("bind router");
        let addr = router.local_addr();
        let router_handle = std::thread::spawn(move || router.run());

        let mut burst = Vec::new();
        for i in 0..ws {
            burst.extend_from_slice(router_body(i).as_bytes());
            burst.push(b'\n');
        }
        let mut client = Client::connect(addr);
        let pass = |client: &mut Client| {
            client.send(&burst);
            let mut bytes = 0usize;
            for _ in 0..ws {
                bytes += client.read_response();
            }
            bytes
        };
        // Prime: with 4 backends this loads every key into its shard's
        // cache; with 1 it is simply the first of many thrashing passes.
        pass(&mut client);
        group.bench_function(
            BenchmarkId::new(format!("w{ws}"), format!("backends{backends}")),
            |b| b.iter(|| black_box(pass(&mut client))),
        );

        let mut stop = Client::connect(addr);
        stop.round_trip(r#"{"kind":"shutdown"}"#);
        router_handle
            .join()
            .expect("router thread")
            .expect("router exit");
        for backend in backend_addrs {
            Client::connect(backend).round_trip(r#"{"kind":"shutdown"}"#);
        }
        for handle in backend_handles {
            handle
                .join()
                .expect("backend thread")
                .expect("backend exit");
        }
    }
    group.finish();
}

fn ns_of(results: &[BenchResult], name: &str) -> f64 {
    results
        .iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("benchmark {name} did not run"))
        .ns_per_iter
}

fn render_report(results: &[BenchResult], n: usize) -> String {
    let mut benches = String::new();
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            benches,
            "    {{\"name\": \"{}\", \"ns_per_iter\": {:.1}}}{sep}",
            r.name, r.ns_per_iter
        );
    }

    let ws = router_working_set();
    let mut speedup_pairs = vec![
        (
            format!(
                "{n} cache-warm analyze requests over one TCP connection to the \
                 event-loop daemon: one batch request line vs {n} serialized \
                 request/response round-trips"
            ),
            format!("throughput/n{n}/serialized"),
            format!("throughput/n{n}/batch"),
        ),
        (
            format!(
                "{n} cache-warm analyze requests over one TCP connection to the \
                 event-loop daemon: {n} pipelined request lines in one write vs \
                 {n} serialized request/response round-trips"
            ),
            format!("throughput/n{n}/serialized"),
            format!("throughput/n{n}/pipelined"),
        ),
    ];
    if results.iter().any(|r| r.name.starts_with("router/")) {
        speedup_pairs.push((
            format!(
                "{ws} distinct Monte-Carlo simulate keys pushed through the sealpaa \
                 route gateway each iteration: 4 consistent-hash-sharded backends \
                 (whose caches jointly hold the working set) vs 1 backend (whose LRU \
                 holds half of it and thrashes, re-simulating every key)"
            ),
            format!("router/w{ws}/backends1"),
            format!("router/w{ws}/backends4"),
        ));
    }
    let mut speedups = String::new();
    for (i, (workload, baseline, fast)) in speedup_pairs.iter().enumerate() {
        let base_ns = ns_of(results, baseline);
        let fast_ns = ns_of(results, fast);
        let sep = if i + 1 < speedup_pairs.len() { "," } else { "" };
        let _ = writeln!(
            speedups,
            "    {{\"workload\": \"{workload}\", \"baseline\": \"{baseline}\", \
             \"fast\": \"{fast}\", \"baseline_ns\": {base_ns:.1}, \"fast_ns\": {fast_ns:.1}, \
             \"speedup\": {:.2}}}{sep}",
            base_ns / fast_ns
        );
    }

    format!(
        "{{\n  \"generator\": \"cargo bench -p sealpaa-bench --bench server_throughput\",\n  \
         \"unit\": \"ns_per_iter is the median wall-clock time of one full workload \
         ({n} requests)\",\n  \
         \"note\": \"every workload asks an in-process event-loop daemon the same {n} \
         cache-warm analyze questions over a single TCP_NODELAY loopback connection: \
         serialized writes one request and blocks for its response {n} times; pipelined \
         writes all {n} request lines in one write and reads the {n} id-tagged responses \
         back; batch sends one batch request line carrying all {n} sub-requests and reads \
         one response line. The requests hit the result cache, so the numbers isolate the \
         connection layer (round-trips, poll-thread wakeups, protocol parsing), not adder \
         analysis. Acceptance: batch >= 5x serialized, pipelined >= 3x serialized. The \
         router group pushes {ws} distinct cache keys through the sealpaa route gateway \
         backed by 1 vs 4 event-loop daemons (256-entry caches, 1 worker each, on one \
         CPU): consistent hashing shards the key space, so aggregate cache capacity — \
         and with it cache-miss throughput on a thrashing working set — scales with the \
         backend count. Acceptance: backends4 >= 2x backends1\",\n  \
         \"benches\": [\n{benches}  ],\n  \"speedups\": [\n{speedups}  ]\n}}\n"
    )
}

fn main() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 2,
        io_model: IoModel::default(),
        ..Default::default()
    })
    .expect("bind in-process daemon");
    let addr = server.local_addr();
    let daemon = std::thread::spawn(move || server.run());

    // Warm the cache so every measured request is a hit: the first
    // round-trip computes, the second must already be served from cache.
    let mut warm = Client::connect(addr);
    let first = warm.round_trip(&analyze_body(0));
    assert_eq!(first.get("ok"), Some(&Json::Bool(true)), "warm-up failed");
    let second = warm.round_trip(&analyze_body(1));
    assert_eq!(
        second.get("cached"),
        Some(&Json::Bool(true)),
        "warm-up did not populate the cache"
    );
    drop(warm);

    let mut criterion = Criterion::default();
    bench_throughput(&mut criterion, addr);

    let mut stop = Client::connect(addr);
    stop.round_trip(r#"{"kind":"shutdown"}"#);
    daemon.join().expect("daemon thread").expect("daemon exit");

    #[cfg(target_os = "linux")]
    bench_router(&mut criterion);
    let results = take_results();

    if quick() {
        eprintln!("MICROBENCH_QUICK set: not rewriting BENCH_server.json");
        return;
    }
    let report = render_report(&results, requests_per_iter());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    std::fs::write(path, report).expect("write BENCH_server.json");
    println!("wrote {path}");
}
