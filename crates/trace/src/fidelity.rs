//! Model-fidelity reports: the analytical estimate vs. replay ground truth.
//!
//! The closed loop the crate exists for: estimate an empirical
//! [`InputProfile`] from a trace, run the paper's analysis under it
//! (`analyze` for the first-deviation `P(Error)`, `exact_error_analysis`
//! for the output-value error, `error_magnitude` for the moments,
//! `error_distribution` for the MED when the width allows), then *replay*
//! the same trace and compare. The analysis assumes independent operand
//! bits; the trace's [`independence_violation`] score and the reported gaps
//! quantify what that assumption costs on this workload — near sampling
//! noise on an independent source, structurally non-zero on a correlated
//! one.
//!
//! [`independence_violation`]: crate::TraceStats::independence_violation

use sealpaa_cells::{AdderChain, InputProfile};
use sealpaa_core::{
    analyze, error_distribution, error_magnitude, exact_error_analysis, AnalyzeError,
    MAX_DISTRIBUTION_WIDTH,
};

use crate::format::TraceRecord;
use crate::replay::{replay, ReplayError, ReplayReport};
use crate::stats::TraceStats;

/// Fidelity failures.
#[derive(Debug)]
pub enum FidelityError {
    /// The trace holds no records, so no profile can be estimated.
    EmptyTrace,
    /// The analytical engine rejected the estimated profile.
    Analyze(AnalyzeError),
    /// Replay rejected the chain.
    Replay(ReplayError),
}

impl std::fmt::Display for FidelityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FidelityError::EmptyTrace => write!(f, "cannot run fidelity on an empty trace"),
            FidelityError::Analyze(e) => write!(f, "analysis failed: {e}"),
            FidelityError::Replay(e) => write!(f, "replay failed: {e}"),
        }
    }
}

impl std::error::Error for FidelityError {}

impl From<AnalyzeError> for FidelityError {
    fn from(e: AnalyzeError) -> FidelityError {
        FidelityError::Analyze(e)
    }
}

impl From<ReplayError> for FidelityError {
    fn from(e: ReplayError) -> FidelityError {
        FidelityError::Replay(e)
    }
}

/// Analytical estimates under the empirical profile vs. replay ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityReport {
    /// Chain width.
    pub width: usize,
    /// Records in the trace.
    pub records: u64,
    /// The trace's independence-violation score (see [`TraceStats`]).
    pub independence_violation: f64,
    /// The empirical profile fed to the analytical engine.
    pub profile: InputProfile<f64>,
    /// Ground truth from replaying the trace.
    pub replay: ReplayReport,
    /// `analyze(...)` — the paper's first-deviation `P(Error)`.
    pub analytical_stage_error: f64,
    /// `exact_error_analysis(...).output_error` — the output-value error
    /// probability.
    pub analytical_output_error: f64,
    /// `error_magnitude(...).mean_error_distance` — the bias `E[D]`.
    pub analytical_mean_ed: f64,
    /// `error_magnitude(...).mean_squared_error_distance` — `E[D²]`.
    pub analytical_mse: f64,
    /// `Σ |d| · P(D = d)` from `error_distribution` — the analytical MED;
    /// `None` for widths above [`MAX_DISTRIBUTION_WIDTH`].
    pub analytical_med: Option<f64>,
}

impl FidelityReport {
    /// `|analytical − replayed|` first-deviation error probability.
    pub fn stage_error_gap(&self) -> f64 {
        (self.analytical_stage_error - self.replay.stage_error_rate()).abs()
    }

    /// `|analytical − replayed|` output-value error probability.
    pub fn output_error_gap(&self) -> f64 {
        (self.analytical_output_error - self.replay.output_error_rate()).abs()
    }

    /// `|analytical − replayed|` mean signed error distance.
    pub fn mean_ed_gap(&self) -> f64 {
        (self.analytical_mean_ed - self.replay.mean_error_distance()).abs()
    }

    /// `|analytical − replayed|` mean squared error distance.
    pub fn mse_gap(&self) -> f64 {
        (self.analytical_mse - self.replay.mean_squared_error_distance()).abs()
    }

    /// `|analytical − replayed|` MED, when the analytical MED exists.
    pub fn med_gap(&self) -> Option<f64> {
        self.analytical_med
            .map(|med| (med - self.replay.mean_absolute_error_distance()).abs())
    }
}

/// Runs the full loop — profile estimation, analysis under the estimated
/// profile, bitsliced replay — over one trace.
///
/// # Errors
///
/// Fails on an empty trace, a chain replay cannot handle, or an analytical
/// failure.
pub fn fidelity(
    chain: &AdderChain,
    records: &[TraceRecord],
    threads: usize,
) -> Result<FidelityReport, FidelityError> {
    let replayed = replay(chain, records, threads)?;
    let width = chain.width();
    let stats = TraceStats::from_records(width, records).expect("replay validated the width");
    let profile: InputProfile<f64> = stats
        .empirical_profile()
        .map_err(|_| FidelityError::EmptyTrace)?;
    let analysis = analyze(chain, &profile)?;
    let joint = exact_error_analysis(chain, &profile)?;
    let moments = error_magnitude(chain, &profile)?;
    let analytical_med = if width <= MAX_DISTRIBUTION_WIDTH {
        let dist = error_distribution(chain, &profile)?;
        Some(
            dist.pmf
                .iter()
                .map(|(d, p)| d.unsigned_abs() as f64 * p)
                .sum(),
        )
    } else {
        None
    };
    Ok(FidelityReport {
        width,
        records: replayed.records,
        independence_violation: stats.independence_violation(),
        profile,
        replay: replayed,
        analytical_stage_error: analysis.error_probability(),
        analytical_output_error: joint.output_error,
        analytical_mean_ed: moments.mean_error_distance,
        analytical_mse: moments.mean_squared_error_distance,
        analytical_med,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthKind};
    use sealpaa_cells::StandardCell;

    #[test]
    fn empty_trace_is_rejected() {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 4);
        assert!(matches!(
            fidelity(&chain, &[], 1),
            Err(FidelityError::EmptyTrace)
        ));
    }

    #[test]
    fn accurate_chain_has_zero_everything() {
        let chain = AdderChain::uniform(StandardCell::Accurate.cell(), 8);
        let records = generate(SynthKind::Uniform, 8, 512, 5).expect("valid");
        let report = fidelity(&chain, &records, 1).expect("valid");
        assert_eq!(report.analytical_stage_error, 0.0);
        assert_eq!(report.replay.output_errors, 0);
        assert_eq!(report.stage_error_gap(), 0.0);
        assert_eq!(report.mse_gap(), 0.0);
    }

    #[test]
    fn wide_chains_skip_the_distribution_med() {
        let chain = AdderChain::uniform(StandardCell::Lpaa2.cell(), 24);
        let records = generate(SynthKind::Uniform, 24, 256, 5).expect("valid");
        let report = fidelity(&chain, &records, 1).expect("valid");
        assert!(report.analytical_med.is_none());
        assert!(report.med_gap().is_none());
        let narrow = AdderChain::uniform(StandardCell::Lpaa2.cell(), 8);
        let records = generate(SynthKind::Uniform, 8, 256, 5).expect("valid");
        let report = fidelity(&narrow, &records, 1).expect("valid");
        assert!(report.analytical_med.is_some());
    }
}
