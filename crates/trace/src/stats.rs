//! One-pass streaming bit statistics over an operand trace.
//!
//! The paper's analysis consumes per-bit marginals `P(a_i = 1)`,
//! `P(b_i = 1)` and `P(cin = 1)` and *assumes the bits independent*. This
//! module estimates both halves of that contract from a trace in one pass:
//!
//! * integer counts of each bit variable being set, from which an empirical
//!   [`InputProfile`] is built — exactly (counts stay integers, so the
//!   `Rational` profile is the precise empirical frequency) or in `f64`;
//! * pairwise co-occurrence counts over all `2·width + 1` bit variables,
//!   from which an **independence-violation score** is reported: the largest
//!   absolute gap `|P̂(x ∧ y) − P̂(x)·P̂(y)|` over all variable pairs. For a
//!   truly independent source the score shrinks like `1/√records` (sampling
//!   noise); a persistent plateau is real correlation the analytical model
//!   cannot see, and [`fidelity`](crate::fidelity) quantifies its cost.
//!
//! Memory is `O(width²)` counters; a push costs `O(k²)` where `k` is the
//! number of set bits in the record (sparse workloads profile fast).

use sealpaa_cells::InputProfile;
use sealpaa_num::Prob;

use crate::format::{TraceError, TraceRecord};

/// One of the `2·width + 1` Bernoulli bit variables of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarId {
    /// Bit `i` of operand `a`.
    A(usize),
    /// Bit `i` of operand `b`.
    B(usize),
    /// The carry-in bit.
    Cin,
}

impl std::fmt::Display for VarId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VarId::A(i) => write!(f, "a[{i}]"),
            VarId::B(i) => write!(f, "b[{i}]"),
            VarId::Cin => write!(f, "cin"),
        }
    }
}

/// Streaming per-bit statistics of a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStats {
    width: usize,
    records: u64,
    /// `ones[v]` = number of records in which variable `v` was 1, indexed
    /// `a[0..width]`, then `b[0..width]`, then `cin`.
    ones: Vec<u64>,
    /// Upper-triangular pairwise counts: `pair_ones[pair_index(i, j)]` =
    /// records in which variables `i` and `j` (`i < j`) were both 1.
    pair_ones: Vec<u64>,
}

impl TraceStats {
    /// An empty accumulator for `width`-bit operands.
    ///
    /// # Errors
    ///
    /// Fails if `width` is outside `1..=64`.
    pub fn new(width: usize) -> Result<TraceStats, TraceError> {
        if width == 0 || width > 64 {
            return Err(TraceError::InvalidWidth { width });
        }
        let vars = 2 * width + 1;
        Ok(TraceStats {
            width,
            records: 0,
            ones: vec![0; vars],
            pair_ones: vec![0; vars * (vars - 1) / 2],
        })
    }

    /// Builds statistics over a record slice in one pass.
    ///
    /// # Errors
    ///
    /// Fails if `width` is outside `1..=64`.
    pub fn from_records(width: usize, records: &[TraceRecord]) -> Result<TraceStats, TraceError> {
        let mut stats = TraceStats::new(width)?;
        for r in records {
            stats.push(r);
        }
        Ok(stats)
    }

    /// Folds one record in. Operand bits above the width are ignored.
    pub fn push(&mut self, record: &TraceRecord) {
        let vars = 2 * self.width + 1;
        // Gather the indices of the set variables; `O(set²)` pair updates.
        let mut set = [0usize; 129];
        let mut k = 0;
        let mut a = record.a & mask(self.width);
        while a != 0 {
            set[k] = a.trailing_zeros() as usize;
            k += 1;
            a &= a - 1;
        }
        let mut b = record.b & mask(self.width);
        while b != 0 {
            set[k] = self.width + b.trailing_zeros() as usize;
            k += 1;
            b &= b - 1;
        }
        if record.cin {
            set[k] = vars - 1;
            k += 1;
        }
        for x in 0..k {
            self.ones[set[x]] += 1;
            for y in x + 1..k {
                self.pair_ones[pair_index(vars, set[x], set[y])] += 1;
            }
        }
        self.records += 1;
    }

    /// Folds a whole record stream in.
    pub fn extend<'a>(&mut self, records: impl IntoIterator<Item = &'a TraceRecord>) {
        for r in records {
            self.push(r);
        }
    }

    /// Operand width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of records folded in so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Count of records in which `var` was 1.
    pub fn ones(&self, var: VarId) -> u64 {
        self.ones[self.var_index(var)]
    }

    /// Count of records in which both `x` and `y` were 1.
    ///
    /// # Panics
    ///
    /// Panics if `x == y`.
    pub fn pair_ones(&self, x: VarId, y: VarId) -> u64 {
        let (i, j) = (self.var_index(x), self.var_index(y));
        assert_ne!(i, j, "a pair needs two distinct variables");
        let vars = 2 * self.width + 1;
        self.pair_ones[pair_index(vars, i.min(j), i.max(j))]
    }

    /// The empirical `P̂(var = 1)` (0 when the trace is empty).
    pub fn p(&self, var: VarId) -> f64 {
        if self.records == 0 {
            return 0.0;
        }
        self.ones(var) as f64 / self.records as f64
    }

    /// Empirical independence gap of one pair:
    /// `|P̂(x ∧ y) − P̂(x)·P̂(y)|`.
    ///
    /// # Panics
    ///
    /// Panics if `x == y`.
    pub fn violation(&self, x: VarId, y: VarId) -> f64 {
        if self.records == 0 {
            return 0.0;
        }
        let n = self.records as f64;
        let joint = self.pair_ones(x, y) as f64 / n;
        (joint - self.p(x) * self.p(y)).abs()
    }

    /// The independence-violation score: the largest [`violation`] over all
    /// variable pairs. ~`1/√records` for a truly independent source.
    ///
    /// [`violation`]: Self::violation
    pub fn independence_violation(&self) -> f64 {
        self.max_violation_pair().map_or(0.0, |(_, _, v)| v)
    }

    /// The worst pair and its gap, or `None` for an empty trace.
    pub fn max_violation_pair(&self) -> Option<(VarId, VarId, f64)> {
        if self.records == 0 {
            return None;
        }
        let vars = 2 * self.width + 1;
        let n = self.records as f64;
        let mut worst: Option<(VarId, VarId, f64)> = None;
        for i in 0..vars {
            let pi = self.ones[i] as f64 / n;
            for j in i + 1..vars {
                let joint = self.pair_ones[pair_index(vars, i, j)] as f64 / n;
                let v = (joint - pi * (self.ones[j] as f64 / n)).abs();
                if worst.is_none_or(|(_, _, w)| v > w) {
                    worst = Some((self.var_of(i), self.var_of(j), v));
                }
            }
        }
        worst
    }

    /// The empirical input profile: each marginal is the exact count ratio
    /// `ones / records` in `T` (`Rational` keeps it exact; `f64` rounds
    /// once).
    ///
    /// # Errors
    ///
    /// Fails on an empty trace (frequencies are undefined).
    pub fn empirical_profile<T: Prob>(&self) -> Result<InputProfile<T>, TraceError> {
        if self.records == 0 {
            return Err(TraceError::Header(
                "cannot profile an empty trace".to_owned(),
            ));
        }
        let ratio = |ones: u64| T::from_ratio(ones, self.records);
        let pa: Vec<T> = (0..self.width).map(|i| ratio(self.ones[i])).collect();
        let pb: Vec<T> = (0..self.width)
            .map(|i| ratio(self.ones[self.width + i]))
            .collect();
        let cin = ratio(self.ones[2 * self.width]);
        Ok(InputProfile::new(pa, pb, cin).expect("count ratios lie in [0, 1]"))
    }

    fn var_index(&self, var: VarId) -> usize {
        match var {
            VarId::A(i) => {
                assert!(i < self.width, "a[{i}] is outside the trace width");
                i
            }
            VarId::B(i) => {
                assert!(i < self.width, "b[{i}] is outside the trace width");
                self.width + i
            }
            VarId::Cin => 2 * self.width,
        }
    }

    fn var_of(&self, index: usize) -> VarId {
        if index < self.width {
            VarId::A(index)
        } else if index < 2 * self.width {
            VarId::B(index - self.width)
        } else {
            VarId::Cin
        }
    }
}

fn mask(width: usize) -> u64 {
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Flat index of the unordered pair `i < j` among `vars` variables.
fn pair_index(vars: usize, i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < vars);
    i * (2 * vars - i - 1) / 2 + (j - i - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sealpaa_num::Rational;

    #[test]
    fn pair_index_is_a_bijection() {
        let vars = 9;
        let mut seen = vec![false; vars * (vars - 1) / 2];
        for i in 0..vars {
            for j in i + 1..vars {
                let idx = pair_index(vars, i, j);
                assert!(!seen[idx], "({i},{j}) collides");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn counts_match_hand_computation() {
        let records = [
            TraceRecord::new(0b01, 0b11, true),
            TraceRecord::new(0b01, 0b00, false),
            TraceRecord::new(0b10, 0b01, true),
        ];
        let stats = TraceStats::from_records(2, &records).expect("valid width");
        assert_eq!(stats.records(), 3);
        assert_eq!(stats.ones(VarId::A(0)), 2);
        assert_eq!(stats.ones(VarId::A(1)), 1);
        assert_eq!(stats.ones(VarId::B(0)), 2);
        assert_eq!(stats.ones(VarId::B(1)), 1);
        assert_eq!(stats.ones(VarId::Cin), 2);
        assert_eq!(stats.pair_ones(VarId::A(0), VarId::B(0)), 1);
        assert_eq!(stats.pair_ones(VarId::B(0), VarId::A(0)), 1);
        assert_eq!(stats.pair_ones(VarId::A(0), VarId::Cin), 1);
        assert_eq!(stats.pair_ones(VarId::B(0), VarId::B(1)), 1);
    }

    #[test]
    fn empirical_profile_is_exact_in_rational() {
        let records = [
            TraceRecord::new(0b01, 0b11, true),
            TraceRecord::new(0b01, 0b00, false),
            TraceRecord::new(0b10, 0b01, true),
        ];
        let stats = TraceStats::from_records(2, &records).expect("valid width");
        let profile: InputProfile<Rational> = stats.empirical_profile().expect("non-empty");
        assert_eq!(*profile.pa(0), Rational::from_ratio(2, 3));
        assert_eq!(*profile.pa(1), Rational::from_ratio(1, 3));
        assert_eq!(*profile.pb(0), Rational::from_ratio(2, 3));
        assert_eq!(*profile.p_cin(), Rational::from_ratio(2, 3));
        let f: InputProfile<f64> = stats.empirical_profile().expect("non-empty");
        assert_eq!(*f.pa(0), 2.0 / 3.0);
    }

    #[test]
    fn empty_trace_has_no_profile() {
        let stats = TraceStats::new(4).expect("valid width");
        assert!(stats.empirical_profile::<f64>().is_err());
        assert_eq!(stats.independence_violation(), 0.0);
        assert!(stats.max_violation_pair().is_none());
    }

    #[test]
    fn perfectly_correlated_bits_score_high() {
        // a[0] == b[0] in every record: joint 0.5, product 0.25, gap 0.25.
        let records: Vec<TraceRecord> = (0..100)
            .map(|i| TraceRecord::new(i & 1, i & 1, false))
            .collect();
        let stats = TraceStats::from_records(1, &records).expect("valid width");
        assert_eq!(stats.violation(VarId::A(0), VarId::B(0)), 0.25);
        let (x, y, v) = stats.max_violation_pair().expect("non-empty");
        assert_eq!((x, y), (VarId::A(0), VarId::B(0)));
        assert_eq!(v, 0.25);
    }

    #[test]
    fn independent_bits_score_near_zero() {
        // A deterministic de-correlated pattern: every 2-bit combination of
        // (a[0], b[0]) appears equally often, so every pairwise gap is 0.
        let records: Vec<TraceRecord> = (0..400u64)
            .map(|i| TraceRecord::new(i & 1, (i >> 1) & 1, false))
            .collect();
        let stats = TraceStats::from_records(1, &records).expect("valid width");
        assert_eq!(stats.independence_violation(), 0.0);
    }

    #[test]
    fn invalid_widths_rejected() {
        assert!(TraceStats::new(0).is_err());
        assert!(TraceStats::new(65).is_err());
        assert!(TraceStats::new(64).is_ok());
    }
}
