//! Workload traces for approximate-adder analysis: ingestion, streaming
//! bit-statistics profiling, synthetic generators, and replay validation.
//!
//! The paper's analytical engine is exact *given* per-bit input
//! probabilities — but real error-tolerant workloads (audio streams, image
//! gradients) have strongly non-uniform, correlated operand distributions
//! that nobody wants to type in by hand. This crate closes the loop between
//! an application's actual additions and the analysis:
//!
//! 1. **Trace formats** ([`format`]) — a versioned NDJSON record stream
//!    (`{"a":13,"b":77,"cin":1}` under a `{"sealpaa_trace":1,"width":N}`
//!    header) plus a compact binary framing, both with bounded streaming
//!    readers.
//! 2. **Streaming statistics** ([`stats`]) — one pass over the trace counts
//!    per-bit ones and pairwise co-occurrences, yielding an empirical
//!    [`InputProfile`] (exact `Rational` from integer counts, or `f64`) and
//!    an independence-violation score that measures how far the workload is
//!    from the model's independent-bits assumption.
//! 3. **Synthetic workloads** ([`synth`]) — deterministic uniform,
//!    Gaussian-sum, random-walk ("audio-like") and sparse image-gradient
//!    generators seeded on the in-repo xoshiro256++ PRNG.
//! 4. **Replay** ([`replay`](mod@replay)) — ground-truth error rate, MED and
//!    MSE of a trace through an [`AdderChain`], 64 records per pass via the
//!    bitsliced kernels, bit-for-bit identical to the scalar oracle for
//!    every thread count.
//! 5. **Fidelity** ([`fidelity`](mod@fidelity)) — the analytical estimates
//!    under the estimated profile side by side with replay ground truth,
//!    quantifying the independence-assumption gap per workload.
//!
//! # Examples
//!
//! ```
//! use sealpaa_cells::{AdderChain, StandardCell};
//! use sealpaa_trace::{fidelity, generate, SynthKind};
//!
//! // An "audio-like" workload through an 8-bit LPAA 2 adder.
//! let records = generate(SynthKind::RandomWalk, 8, 4096, 7)?;
//! let chain = AdderChain::uniform(StandardCell::Lpaa2.cell(), 8);
//! let report = fidelity(&chain, &records, 1)?;
//! // Consecutive audio samples are correlated, which the analytical model
//! // cannot see — the trace reports a clear independence violation.
//! assert!(report.independence_violation > 0.05);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`InputProfile`]: sealpaa_cells::InputProfile
//! [`AdderChain`]: sealpaa_cells::AdderChain

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fidelity;
pub mod format;
pub mod replay;
pub mod stats;
pub mod synth;

pub use fidelity::{fidelity, FidelityError, FidelityReport};
pub use format::{
    read_binary, read_ndjson, write_binary, write_ndjson, BinaryReader, NdjsonReader, TraceError,
    TraceLimits, TraceRecord, BINARY_MAGIC, BINARY_VERSION, TRACE_VERSION,
};
pub use replay::{
    replay, replay_scalar, replay_with_backend, ReplayError, ReplayReport, MAX_REPLAY_WIDTH,
};
pub use stats::{TraceStats, VarId};
pub use synth::{generate, ParseSynthKindError, SynthKind, SynthTrace};
