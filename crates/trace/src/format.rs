//! The versioned operand-trace formats and their bounded streaming readers.
//!
//! A *trace* is an ordered stream of addition operands — the additions an
//! application actually performed — from which the profiler estimates the
//! per-bit input statistics the paper's analysis consumes. Two encodings
//! carry the same data:
//!
//! * **NDJSON** (human-friendly, line-oriented): a header line
//!   `{"sealpaa_trace":1,"width":8}` followed by one record per line,
//!   `{"a":13,"b":77}` or `{"a":13,"b":77,"cin":1}`. Only flat objects of
//!   unsigned integers (and `true`/`false` for `cin`) are part of the
//!   grammar, so the reader needs no general JSON machinery.
//! * **Binary** (compact): the magic `SPTB`, a format version byte, the
//!   width, a record count, then fixed-size records (little-endian operands
//!   plus a flags byte).
//!
//! Both readers are *bounded*: memory use is independent of the input size
//! (one line / one record at a time), NDJSON lines longer than
//! [`TraceLimits::max_line_bytes`] are rejected without being buffered, and
//! both stop with an error after [`TraceLimits::max_records`] records.

use std::io::{BufRead, Read, Write};

/// NDJSON header version this crate reads and writes.
pub const TRACE_VERSION: u64 = 1;

/// Magic bytes opening a binary trace.
pub const BINARY_MAGIC: [u8; 4] = *b"SPTB";

/// Binary format version this crate reads and writes.
pub const BINARY_VERSION: u8 = 1;

/// One traced addition: the two operands and the carry-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceRecord {
    /// First operand.
    pub a: u64,
    /// Second operand.
    pub b: u64,
    /// Carry-in bit.
    pub cin: bool,
}

impl TraceRecord {
    /// Builds a record.
    pub fn new(a: u64, b: u64, cin: bool) -> TraceRecord {
        TraceRecord { a, b, cin }
    }
}

/// Resource bounds for the streaming readers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceLimits {
    /// Maximum accepted NDJSON line length in bytes; longer lines error out
    /// without ever being buffered whole.
    pub max_line_bytes: usize,
    /// Maximum number of records a reader yields before erroring.
    pub max_records: u64,
}

impl Default for TraceLimits {
    fn default() -> TraceLimits {
        TraceLimits {
            max_line_bytes: 1 << 16,
            max_records: 1 << 32,
        }
    }
}

/// Everything that can go wrong reading or writing a trace.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The header line/block is malformed or has the wrong version.
    Header(String),
    /// A record is malformed; `line` is 1-based (the header is line 1).
    Record {
        /// 1-based line (NDJSON) or record-plus-header ordinal (binary).
        line: u64,
        /// What was wrong.
        message: String,
    },
    /// An NDJSON line exceeded [`TraceLimits::max_line_bytes`].
    LineTooLong {
        /// 1-based line number.
        line: u64,
        /// The configured limit.
        limit: usize,
    },
    /// The stream holds more than [`TraceLimits::max_records`] records.
    TooManyRecords {
        /// The configured limit.
        limit: u64,
    },
    /// The width is outside `1..=64`.
    InvalidWidth {
        /// The offending width.
        width: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Header(msg) => write!(f, "trace header: {msg}"),
            TraceError::Record { line, message } => write!(f, "trace line {line}: {message}"),
            TraceError::LineTooLong { line, limit } => {
                write!(f, "trace line {line} exceeds {limit} bytes")
            }
            TraceError::TooManyRecords { limit } => {
                write!(f, "trace holds more than {limit} records")
            }
            TraceError::InvalidWidth { width } => {
                write!(f, "trace width must be 1..=64, got {width}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> TraceError {
        TraceError::Io(e)
    }
}

fn check_width(width: usize) -> Result<(), TraceError> {
    if width == 0 || width > 64 {
        return Err(TraceError::InvalidWidth { width });
    }
    Ok(())
}

fn width_mask(width: usize) -> u64 {
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Writes a trace in NDJSON form. Operand bits above `width` are masked off.
///
/// # Errors
///
/// Fails on an invalid width or an I/O error.
pub fn write_ndjson<W: Write>(
    mut out: W,
    width: usize,
    records: impl IntoIterator<Item = TraceRecord>,
) -> Result<(), TraceError> {
    check_width(width)?;
    let mask = width_mask(width);
    writeln!(
        out,
        "{{\"sealpaa_trace\":{TRACE_VERSION},\"width\":{width}}}"
    )?;
    for r in records {
        if r.cin {
            writeln!(
                out,
                "{{\"a\":{},\"b\":{},\"cin\":1}}",
                r.a & mask,
                r.b & mask
            )?;
        } else {
            writeln!(out, "{{\"a\":{},\"b\":{}}}", r.a & mask, r.b & mask)?;
        }
    }
    Ok(())
}

/// Writes a trace in the compact binary framing. Operand bits above `width`
/// are masked off.
///
/// # Errors
///
/// Fails on an invalid width or an I/O error.
pub fn write_binary<W: Write>(
    mut out: W,
    width: usize,
    records: &[TraceRecord],
) -> Result<(), TraceError> {
    check_width(width)?;
    let mask = width_mask(width);
    let nb = width.div_ceil(8);
    out.write_all(&BINARY_MAGIC)?;
    out.write_all(&[BINARY_VERSION, width as u8])?;
    out.write_all(&(records.len() as u64).to_le_bytes())?;
    for r in records {
        out.write_all(&(r.a & mask).to_le_bytes()[..nb])?;
        out.write_all(&(r.b & mask).to_le_bytes()[..nb])?;
        out.write_all(&[u8::from(r.cin)])?;
    }
    Ok(())
}

/// Parses a flat JSON object of unsigned-integer (or `true`/`false`) fields
/// — the only object shape the trace grammar admits.
fn parse_flat_object(line: &str) -> Result<Vec<(&str, u64)>, String> {
    let inner = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("expected a JSON object")?;
    let mut pairs = Vec::new();
    let mut rest = inner.trim();
    if rest.is_empty() {
        return Ok(pairs);
    }
    loop {
        let after_quote = rest
            .strip_prefix('"')
            .ok_or("expected a quoted field name")?;
        let end = after_quote.find('"').ok_or("unterminated field name")?;
        let key = &after_quote[..end];
        rest = after_quote[end + 1..]
            .trim_start()
            .strip_prefix(':')
            .ok_or("expected ':' after the field name")?
            .trim_start();
        let (value, remainder) = if let Some(r) = rest.strip_prefix("true") {
            (1u64, r)
        } else if let Some(r) = rest.strip_prefix("false") {
            (0u64, r)
        } else {
            let digits = rest.len() - rest.trim_start_matches(|c: char| c.is_ascii_digit()).len();
            if digits == 0 {
                return Err(format!("field {key:?} must be an unsigned integer"));
            }
            let value: u64 = rest[..digits]
                .parse()
                .map_err(|_| format!("field {key:?} does not fit in 64 bits"))?;
            (value, &rest[digits..])
        };
        pairs.push((key, value));
        rest = remainder.trim_start();
        if rest.is_empty() {
            return Ok(pairs);
        }
        rest = rest
            .strip_prefix(',')
            .ok_or("expected ',' between fields")?
            .trim_start();
    }
}

/// Reads one `\n`-terminated line into `buf` without ever holding more than
/// `limit` bytes, so a newline-free flood cannot balloon memory. Returns
/// `false` at clean EOF.
fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    limit: usize,
    line: u64,
) -> Result<bool, TraceError> {
    buf.clear();
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(!buf.is_empty());
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if buf.len() + pos > limit {
                    return Err(TraceError::LineTooLong { line, limit });
                }
                buf.extend_from_slice(&chunk[..pos]);
                reader.consume(pos + 1);
                return Ok(true);
            }
            None => {
                let take = chunk.len();
                if buf.len() + take > limit {
                    return Err(TraceError::LineTooLong { line, limit });
                }
                buf.extend_from_slice(chunk);
                reader.consume(take);
            }
        }
    }
}

/// Decodes one record object against the trace width.
fn record_from_pairs(
    pairs: &[(&str, u64)],
    mask: u64,
    line: u64,
) -> Result<TraceRecord, TraceError> {
    let fail = |message: String| TraceError::Record { line, message };
    let mut a = None;
    let mut b = None;
    let mut cin = None;
    for &(key, value) in pairs {
        let slot = match key {
            "a" => &mut a,
            "b" => &mut b,
            "cin" => &mut cin,
            other => return Err(fail(format!("unknown field {other:?}"))),
        };
        if slot.replace(value).is_some() {
            return Err(fail(format!("duplicate field {key:?}")));
        }
    }
    let a = a.ok_or_else(|| fail("missing field \"a\"".to_owned()))?;
    let b = b.ok_or_else(|| fail("missing field \"b\"".to_owned()))?;
    for (key, value) in [("a", a), ("b", b)] {
        if value & !mask != 0 {
            return Err(fail(format!(
                "field {key:?} value {value} exceeds the trace width"
            )));
        }
    }
    let cin = match cin {
        None | Some(0) => false,
        Some(1) => true,
        Some(other) => return Err(fail(format!("field \"cin\" must be 0 or 1, got {other}"))),
    };
    Ok(TraceRecord { a, b, cin })
}

/// A bounded streaming NDJSON trace reader: yields records one line at a
/// time without buffering the stream.
#[derive(Debug)]
pub struct NdjsonReader<R: BufRead> {
    reader: R,
    width: usize,
    mask: u64,
    limits: TraceLimits,
    /// 1-based line number of the *next* line to read.
    line: u64,
    yielded: u64,
    buf: Vec<u8>,
    done: bool,
}

impl<R: BufRead> NdjsonReader<R> {
    /// Opens a reader with default [`TraceLimits`], parsing the header line.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a malformed/unsupported header.
    pub fn new(reader: R) -> Result<NdjsonReader<R>, TraceError> {
        NdjsonReader::with_limits(reader, TraceLimits::default())
    }

    /// Opens a reader with explicit limits, parsing the header line.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a malformed/unsupported header.
    pub fn with_limits(mut reader: R, limits: TraceLimits) -> Result<NdjsonReader<R>, TraceError> {
        let mut buf = Vec::new();
        if !read_bounded_line(&mut reader, &mut buf, limits.max_line_bytes, 1)? {
            return Err(TraceError::Header("empty stream".to_owned()));
        }
        let text = std::str::from_utf8(&buf)
            .map_err(|_| TraceError::Header("header is not UTF-8".to_owned()))?;
        let pairs = parse_flat_object(text).map_err(TraceError::Header)?;
        let mut version = None;
        let mut width = None;
        for (key, value) in pairs {
            match key {
                "sealpaa_trace" => version = Some(value),
                "width" => width = Some(value),
                other => {
                    return Err(TraceError::Header(format!("unknown field {other:?}")));
                }
            }
        }
        match version {
            Some(TRACE_VERSION) => {}
            Some(v) => {
                return Err(TraceError::Header(format!(
                    "unsupported version {v} (this reader speaks version {TRACE_VERSION})"
                )))
            }
            None => {
                return Err(TraceError::Header(
                    "missing field \"sealpaa_trace\"".to_owned(),
                ))
            }
        }
        let width =
            width.ok_or_else(|| TraceError::Header("missing field \"width\"".to_owned()))? as usize;
        check_width(width)?;
        Ok(NdjsonReader {
            reader,
            width,
            mask: width_mask(width),
            limits,
            line: 2,
            yielded: 0,
            buf,
            done: false,
        })
    }

    /// The operand width declared by the header.
    pub fn width(&self) -> usize {
        self.width
    }

    fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        loop {
            let line = self.line;
            if !read_bounded_line(
                &mut self.reader,
                &mut self.buf,
                self.limits.max_line_bytes,
                line,
            )? {
                return Ok(None);
            }
            self.line += 1;
            if self.buf.iter().all(u8::is_ascii_whitespace) {
                continue; // blank lines separate nothing, but are tolerated
            }
            if self.yielded == self.limits.max_records {
                return Err(TraceError::TooManyRecords {
                    limit: self.limits.max_records,
                });
            }
            let text = std::str::from_utf8(&self.buf).map_err(|_| TraceError::Record {
                line,
                message: "line is not UTF-8".to_owned(),
            })?;
            let pairs =
                parse_flat_object(text).map_err(|message| TraceError::Record { line, message })?;
            let record = record_from_pairs(&pairs, self.mask, line)?;
            self.yielded += 1;
            return Ok(Some(record));
        }
    }
}

impl<R: BufRead> Iterator for NdjsonReader<R> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.next_record() {
            Ok(Some(record)) => Some(Ok(record)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// A streaming reader for the compact binary framing. Record sizes are fixed
/// by the header, so memory use is bounded by construction.
#[derive(Debug)]
pub struct BinaryReader<R: Read> {
    reader: R,
    width: usize,
    mask: u64,
    nb: usize,
    remaining: u64,
    /// Ordinal of the next record, for error messages (header = 1).
    ordinal: u64,
    done: bool,
}

impl<R: Read> BinaryReader<R> {
    /// Opens a reader with default [`TraceLimits`], parsing the header.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or a malformed/unsupported header.
    pub fn new(reader: R) -> Result<BinaryReader<R>, TraceError> {
        BinaryReader::with_limits(reader, TraceLimits::default())
    }

    /// Opens a reader with explicit limits, parsing the header.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, a malformed/unsupported header, or a declared
    /// record count beyond [`TraceLimits::max_records`].
    pub fn with_limits(mut reader: R, limits: TraceLimits) -> Result<BinaryReader<R>, TraceError> {
        let mut header = [0u8; 14];
        reader
            .read_exact(&mut header)
            .map_err(|e| TraceError::Header(format!("short header: {e}")))?;
        if header[..4] != BINARY_MAGIC {
            return Err(TraceError::Header("bad magic (want SPTB)".to_owned()));
        }
        if header[4] != BINARY_VERSION {
            return Err(TraceError::Header(format!(
                "unsupported version {} (this reader speaks version {BINARY_VERSION})",
                header[4]
            )));
        }
        let width = header[5] as usize;
        check_width(width)?;
        let count = u64::from_le_bytes(header[6..14].try_into().expect("8 header bytes"));
        if count > limits.max_records {
            return Err(TraceError::TooManyRecords {
                limit: limits.max_records,
            });
        }
        Ok(BinaryReader {
            reader,
            width,
            mask: width_mask(width),
            nb: width.div_ceil(8),
            remaining: count,
            ordinal: 2,
            done: false,
        })
    }

    /// The operand width declared by the header.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Records the header still promises.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let line = self.ordinal;
        let fail = |message: String| TraceError::Record { line, message };
        let mut body = [0u8; 17]; // 2 × 8 operand bytes + 1 flags byte max
        let len = 2 * self.nb + 1;
        self.reader
            .read_exact(&mut body[..len])
            .map_err(|e| fail(format!("short record: {e}")))?;
        let word = |lo: usize| {
            let mut bytes = [0u8; 8];
            bytes[..self.nb].copy_from_slice(&body[lo..lo + self.nb]);
            u64::from_le_bytes(bytes)
        };
        let a = word(0);
        let b = word(self.nb);
        let flags = body[len - 1];
        for (key, value) in [("a", a), ("b", b)] {
            if value & !self.mask != 0 {
                return Err(fail(format!(
                    "field {key:?} value {value} exceeds the trace width"
                )));
            }
        }
        if flags > 1 {
            return Err(fail(format!("flags byte must be 0 or 1, got {flags}")));
        }
        self.remaining -= 1;
        self.ordinal += 1;
        Ok(Some(TraceRecord {
            a,
            b,
            cin: flags == 1,
        }))
    }
}

impl<R: Read> Iterator for BinaryReader<R> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.next_record() {
            Ok(Some(record)) => Some(Ok(record)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Convenience: reads a whole NDJSON trace into memory, returning
/// `(width, records)`.
///
/// # Errors
///
/// Propagates any reader error.
pub fn read_ndjson<R: BufRead>(reader: R) -> Result<(usize, Vec<TraceRecord>), TraceError> {
    let reader = NdjsonReader::new(reader)?;
    let width = reader.width();
    let records = reader.collect::<Result<Vec<_>, _>>()?;
    Ok((width, records))
}

/// Convenience: reads a whole binary trace into memory, returning
/// `(width, records)`.
///
/// # Errors
///
/// Propagates any reader error.
pub fn read_binary<R: Read>(reader: R) -> Result<(usize, Vec<TraceRecord>), TraceError> {
    let reader = BinaryReader::new(reader)?;
    let width = reader.width();
    let records = reader.collect::<Result<Vec<_>, _>>()?;
    Ok((width, records))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord::new(13, 77, false),
            TraceRecord::new(0, 255, true),
            TraceRecord::new(200, 3, false),
        ]
    }

    #[test]
    fn ndjson_round_trip() {
        let mut buf = Vec::new();
        write_ndjson(&mut buf, 8, sample()).expect("write");
        let (width, records) = read_ndjson(buf.as_slice()).expect("read");
        assert_eq!(width, 8);
        assert_eq!(records, sample());
    }

    #[test]
    fn binary_round_trip() {
        for width in [1usize, 7, 8, 9, 33, 64] {
            let mask = width_mask(width);
            let records: Vec<TraceRecord> = sample()
                .into_iter()
                .map(|r| TraceRecord::new(r.a & mask, r.b & mask, r.cin))
                .collect();
            let mut buf = Vec::new();
            write_binary(&mut buf, width, &records).expect("write");
            let (got_width, got) = read_binary(buf.as_slice()).expect("read");
            assert_eq!(got_width, width);
            assert_eq!(got, records, "width {width}");
        }
    }

    #[test]
    fn ndjson_accepts_whitespace_and_bool_cin() {
        let text = "{\"sealpaa_trace\": 1, \"width\": 4}\n{ \"a\": 3 , \"b\": 9, \"cin\": true }\n\n{\"cin\":false,\"b\":1,\"a\":2}\n";
        let (width, records) = read_ndjson(text.as_bytes()).expect("read");
        assert_eq!(width, 4);
        assert_eq!(
            records,
            vec![TraceRecord::new(3, 9, true), TraceRecord::new(2, 1, false)]
        );
    }

    #[test]
    fn ndjson_rejects_bad_headers() {
        for (text, needle) in [
            ("", "empty"),
            ("{\"width\":4}\n", "sealpaa_trace"),
            ("{\"sealpaa_trace\":2,\"width\":4}\n", "version 2"),
            ("{\"sealpaa_trace\":1}\n", "width"),
            ("{\"sealpaa_trace\":1,\"width\":0}\n", "1..=64"),
            ("{\"sealpaa_trace\":1,\"width\":65}\n", "1..=64"),
            (
                "{\"sealpaa_trace\":1,\"width\":4,\"x\":1}\n",
                "unknown field",
            ),
            ("width=4\n", "JSON object"),
        ] {
            let err = read_ndjson(text.as_bytes()).expect_err(text).to_string();
            assert!(err.contains(needle), "{text:?}: {err} (wanted {needle})");
        }
    }

    #[test]
    fn ndjson_rejects_bad_records() {
        for (record, needle) in [
            ("{\"a\":1}", "\"b\""),
            ("{\"b\":1}", "\"a\""),
            ("{\"a\":1,\"b\":2,\"c\":3}", "unknown field"),
            ("{\"a\":1,\"a\":2,\"b\":3}", "duplicate"),
            ("{\"a\":16,\"b\":0}", "exceeds the trace width"),
            ("{\"a\":1,\"b\":2,\"cin\":2}", "0 or 1"),
            ("{\"a\":-1,\"b\":2}", "unsigned integer"),
            ("{\"a\":1.5,\"b\":2}", "expected ','"),
            ("{\"a\":99999999999999999999,\"b\":2}", "64 bits"),
        ] {
            let text = format!("{{\"sealpaa_trace\":1,\"width\":4}}\n{record}\n");
            let err = read_ndjson(text.as_bytes()).expect_err(record).to_string();
            assert!(err.contains("line 2"), "{record:?}: {err}");
            assert!(err.contains(needle), "{record:?}: {err} (wanted {needle})");
        }
    }

    #[test]
    fn ndjson_line_limit_is_enforced_while_reading() {
        // A newline-free flood: the reader must fail at the limit without
        // buffering the whole stream.
        let mut text = b"{\"sealpaa_trace\":1,\"width\":4}\n".to_vec();
        text.resize(text.len() + 4096, b'x');
        let reader = NdjsonReader::with_limits(
            text.as_slice(),
            TraceLimits {
                max_line_bytes: 128,
                max_records: 1 << 32,
            },
        )
        .expect("header fits");
        let err = reader
            .collect::<Result<Vec<_>, _>>()
            .expect_err("flood rejected");
        assert!(
            matches!(err, TraceError::LineTooLong { limit: 128, .. }),
            "{err}"
        );
    }

    #[test]
    fn record_limits_are_enforced() {
        let limits = TraceLimits {
            max_line_bytes: 1 << 16,
            max_records: 2,
        };
        let mut buf = Vec::new();
        write_ndjson(&mut buf, 8, sample()).expect("write");
        let err = NdjsonReader::with_limits(buf.as_slice(), limits)
            .expect("header")
            .collect::<Result<Vec<_>, _>>()
            .expect_err("over the record limit");
        assert!(
            matches!(err, TraceError::TooManyRecords { limit: 2 }),
            "{err}"
        );

        let mut buf = Vec::new();
        write_binary(&mut buf, 8, &sample()).expect("write");
        let err = BinaryReader::with_limits(buf.as_slice(), limits).expect_err("header rejects");
        assert!(
            matches!(err, TraceError::TooManyRecords { limit: 2 }),
            "{err}"
        );
    }

    #[test]
    fn binary_rejects_corruption() {
        let mut good = Vec::new();
        write_binary(&mut good, 8, &sample()).expect("write");

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(read_binary(bad_magic.as_slice())
            .expect_err("magic")
            .to_string()
            .contains("magic"));

        let mut bad_version = good.clone();
        bad_version[4] = 9;
        assert!(read_binary(bad_version.as_slice())
            .expect_err("version")
            .to_string()
            .contains("version 9"));

        let mut truncated = good.clone();
        truncated.truncate(good.len() - 1);
        assert!(read_binary(truncated.as_slice())
            .expect_err("truncation")
            .to_string()
            .contains("short record"));

        let mut bad_flags = good.clone();
        let last = bad_flags.len() - 1;
        bad_flags[last] = 7;
        assert!(read_binary(bad_flags.as_slice())
            .expect_err("flags")
            .to_string()
            .contains("flags"));
    }

    #[test]
    fn writers_mask_out_of_range_operands() {
        let wide = vec![TraceRecord::new(0x1ff, 0x100, false)];
        let mut buf = Vec::new();
        write_ndjson(&mut buf, 8, wide.clone()).expect("write");
        let (_, records) = read_ndjson(buf.as_slice()).expect("read");
        assert_eq!(records, vec![TraceRecord::new(0xff, 0, false)]);

        let mut buf = Vec::new();
        write_binary(&mut buf, 8, &wide).expect("write");
        let (_, records) = read_binary(buf.as_slice()).expect("read");
        assert_eq!(records, vec![TraceRecord::new(0xff, 0, false)]);
    }

    #[test]
    fn invalid_widths_rejected() {
        for width in [0usize, 65] {
            assert!(matches!(
                write_ndjson(Vec::new(), width, []),
                Err(TraceError::InvalidWidth { .. })
            ));
            assert!(matches!(
                write_binary(Vec::new(), width, &[]),
                Err(TraceError::InvalidWidth { .. })
            ));
        }
    }
}
