//! Deterministic synthetic workload generators.
//!
//! Real error-tolerant workloads feed adders strongly non-uniform operand
//! distributions; these generators reproduce four archetypes offline, seeded
//! on the in-repo xoshiro256++ PRNG so every trace is reproducible from
//! `(kind, width, seed)` alone:
//!
//! * [`SynthKind::Uniform`] — every operand bit (and the carry-in) is an
//!   independent fair coin. The per-bit independence assumption of the
//!   analytical model holds *exactly* here, which makes this the calibration
//!   workload for [`fidelity`](crate::fidelity).
//! * [`SynthKind::GaussianSum`] — operands are averages of four uniform
//!   draws (central-limit bell around mid-range), concentrating values and
//!   correlating the high bits.
//! * [`SynthKind::RandomWalk`] — an "audio-like" stream: a clamped random
//!   walk where each record adds the previous sample to the next one, so the
//!   two operands are strongly correlated (the adversarial case for the
//!   independence assumption).
//! * [`SynthKind::ImageGradient`] — sparse small-magnitude values with
//!   occasional full-range "edges", mimicking image-gradient operands: low
//!   bits active, high bits rare but bursty.

use std::str::FromStr;

use sealpaa_sim::Xoshiro256pp;

use crate::format::{TraceError, TraceRecord};

/// The synthetic workload families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthKind {
    /// Independent fair-coin bits (independence holds exactly).
    Uniform,
    /// Average of four uniform draws: bell-shaped values.
    GaussianSum,
    /// Clamped random walk; operands are consecutive samples.
    RandomWalk,
    /// Sparse gradients with occasional full-range edges.
    ImageGradient,
}

impl SynthKind {
    /// Every generator, in wire-name order.
    pub const ALL: [SynthKind; 4] = [
        SynthKind::Uniform,
        SynthKind::GaussianSum,
        SynthKind::RandomWalk,
        SynthKind::ImageGradient,
    ];

    /// The stable wire/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            SynthKind::Uniform => "uniform",
            SynthKind::GaussianSum => "gaussian-sum",
            SynthKind::RandomWalk => "random-walk",
            SynthKind::ImageGradient => "image-gradient",
        }
    }
}

impl std::fmt::Display for SynthKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error for unknown generator names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSynthKindError(String);

impl std::fmt::Display for ParseSynthKindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown generator {:?} (expected uniform, gaussian-sum, random-walk or image-gradient)",
            self.0
        )
    }
}

impl std::error::Error for ParseSynthKindError {}

impl FromStr for SynthKind {
    type Err = ParseSynthKindError;

    fn from_str(s: &str) -> Result<SynthKind, ParseSynthKindError> {
        SynthKind::ALL
            .into_iter()
            .find(|k| s.eq_ignore_ascii_case(k.name()))
            .ok_or_else(|| ParseSynthKindError(s.to_owned()))
    }
}

/// An infinite, deterministic stream of synthetic trace records.
#[derive(Debug, Clone)]
pub struct SynthTrace {
    kind: SynthKind,
    mask: u64,
    rng: Xoshiro256pp,
    /// Random-walk sample carried between records.
    walk: u64,
    /// Random-walk step amplitude.
    amplitude: u64,
    /// Image-gradient "smooth" value mask (the low quarter of the bits).
    low_mask: u64,
}

impl SynthTrace {
    /// Creates a generator. The stream is fully determined by
    /// `(kind, width, seed)`.
    ///
    /// # Errors
    ///
    /// Fails if `width` is outside `1..=64`.
    pub fn new(kind: SynthKind, width: usize, seed: u64) -> Result<SynthTrace, TraceError> {
        if width == 0 || width > 64 {
            return Err(TraceError::InvalidWidth { width });
        }
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let low_bits = (width / 4).max(1);
        Ok(SynthTrace {
            kind,
            mask,
            rng: Xoshiro256pp::seed_from_u64(seed),
            walk: mask >> 1,
            amplitude: (mask >> 4).max(1),
            low_mask: (1u64 << low_bits) - 1,
        })
    }

    /// The next record (the stream never ends).
    pub fn next_record(&mut self) -> TraceRecord {
        match self.kind {
            SynthKind::Uniform => TraceRecord {
                a: self.rng.next_u64() & self.mask,
                b: self.rng.next_u64() & self.mask,
                cin: self.rng.next_u64() & 1 == 1,
            },
            SynthKind::GaussianSum => TraceRecord {
                a: self.gaussian(),
                b: self.gaussian(),
                cin: false,
            },
            SynthKind::RandomWalk => {
                let prev = self.walk;
                let span = 2 * self.amplitude + 1;
                let delta = (self.rng.next_u64() % span) as i128 - self.amplitude as i128;
                self.walk = (prev as i128 + delta).clamp(0, self.mask as i128) as u64;
                TraceRecord {
                    a: prev,
                    b: self.walk,
                    cin: false,
                }
            }
            SynthKind::ImageGradient => TraceRecord {
                a: self.gradient(),
                b: self.gradient(),
                cin: false,
            },
        }
    }

    /// Integer average of four uniform draws (kept in `u128` so width 64
    /// cannot overflow).
    fn gaussian(&mut self) -> u64 {
        let sum: u128 = (0..4)
            .map(|_| u128::from(self.rng.next_u64() & self.mask))
            .sum();
        (sum >> 2) as u64
    }

    /// Mostly small magnitudes; a full-range "edge" once in 16 draws.
    fn gradient(&mut self) -> u64 {
        let edge = self.rng.next_u64() & 0xF == 0;
        let raw = self.rng.next_u64();
        if edge {
            raw & self.mask
        } else {
            raw & self.low_mask
        }
    }
}

impl Iterator for SynthTrace {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        Some(self.next_record())
    }
}

/// Generates `records` synthetic records in memory.
///
/// # Errors
///
/// Fails if `width` is outside `1..=64`.
pub fn generate(
    kind: SynthKind,
    width: usize,
    records: usize,
    seed: u64,
) -> Result<Vec<TraceRecord>, TraceError> {
    Ok(SynthTrace::new(kind, width, seed)?.take(records).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn names_round_trip() {
        for kind in SynthKind::ALL {
            assert_eq!(kind.name().parse::<SynthKind>().expect("known"), kind);
        }
        assert!("white-noise".parse::<SynthKind>().is_err());
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        for kind in SynthKind::ALL {
            let x = generate(kind, 12, 256, 42).expect("valid");
            let y = generate(kind, 12, 256, 42).expect("valid");
            let z = generate(kind, 12, 256, 43).expect("valid");
            assert_eq!(x, y, "{kind}");
            assert_ne!(x, z, "{kind}: different seeds must differ");
        }
    }

    #[test]
    fn operands_respect_the_width() {
        for kind in SynthKind::ALL {
            for width in [1usize, 7, 33, 64] {
                let mask = if width == 64 {
                    u64::MAX
                } else {
                    (1u64 << width) - 1
                };
                for r in generate(kind, width, 128, 7).expect("valid") {
                    assert_eq!(r.a & !mask, 0, "{kind} w{width}");
                    assert_eq!(r.b & !mask, 0, "{kind} w{width}");
                }
            }
        }
    }

    #[test]
    fn uniform_is_nearly_independent_and_balanced() {
        let records = generate(SynthKind::Uniform, 8, 1 << 14, 1).expect("valid");
        let stats = TraceStats::from_records(8, &records).expect("valid");
        for i in 0..8 {
            assert!((stats.p(crate::VarId::A(i)) - 0.5).abs() < 0.02, "a[{i}]");
        }
        // Pure sampling noise: ~1/√n.
        assert!(stats.independence_violation() < 0.02);
    }

    #[test]
    fn random_walk_correlates_the_operands() {
        let records = generate(SynthKind::RandomWalk, 8, 1 << 14, 1).expect("valid");
        let stats = TraceStats::from_records(8, &records).expect("valid");
        // Consecutive samples share their high bits almost always.
        assert!(stats.independence_violation() > 0.1);
    }

    #[test]
    fn image_gradient_is_sparse_in_the_high_bits() {
        let records = generate(SynthKind::ImageGradient, 8, 1 << 14, 1).expect("valid");
        let stats = TraceStats::from_records(8, &records).expect("valid");
        // MSB only set on edge draws (1/16 of them, half of those set it).
        assert!(stats.p(crate::VarId::A(7)) < 0.1);
        assert!(stats.p(crate::VarId::A(0)) > 0.3);
    }

    #[test]
    fn invalid_widths_rejected() {
        assert!(SynthTrace::new(SynthKind::Uniform, 0, 1).is_err());
        assert!(SynthTrace::new(SynthKind::Uniform, 65, 1).is_err());
    }
}
