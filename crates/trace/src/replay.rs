//! Ground-truth trace replay through the bitsliced SIMD kernels.
//!
//! Replay answers "what error did this adder *actually* produce on this
//! workload": every trace record is evaluated through the approximate chain
//! and the accurate reference at once, one SIMD word of records (64–512
//! lanes, following the runtime-detected [`Backend`]) per pass, via the
//! chain's fused `CompiledKernel::eval_diff`. Each 64-record subgroup of a
//! batch is transposed into `u64` bit-planes with [`pack_lanes_into`] (a
//! block-swap 64×64 bit-matrix transpose), the subgroup planes are
//! assembled into wide words, the fused pass yields the mismatch and
//! first-deviation words, and [`error_distances64`] extracts the signed
//! error distance of every mismatching lane.
//!
//! All accumulators are **integers** (`i128`/`u128` sums of exact per-record
//! error distances), so the report is associative under merging: the
//! multithreaded replay is bit-for-bit identical for every thread count
//! *and every backend*, and to the scalar per-record oracle
//! [`replay_scalar`] — the differential suite pins this.

use sealpaa_cells::{
    biased_distance_lanes, dispatch, error_distances64, pack_lanes_into, AdderChain, Backend,
    CompiledChain, CompiledKernel, FaInput, SimdKernel, SimdWord, TruthTable,
};

use crate::format::TraceRecord;

/// The widest chain replay supports. The binding constraint is the exact
/// squared-error accumulator: one record contributes up to `4^(width+1)` to
/// [`ReplayReport::sum_sq_ed`], and with the default reader bound of `2^32`
/// records the running `u128` sum stays overflow-free only for
/// `width ≤ 47` (`2·48 + 32 < 128`). Exactness is what makes replay
/// bit-for-bit identical across thread counts, so the bound is enforced
/// rather than saturated away.
pub const MAX_REPLAY_WIDTH: usize = 47;

/// Replay failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayError {
    /// The chain is wider than [`MAX_REPLAY_WIDTH`].
    WidthTooLarge {
        /// The chain width.
        width: usize,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::WidthTooLarge { width } => {
                write!(
                    f,
                    "replay supports widths up to {MAX_REPLAY_WIDTH}, got {width}"
                )
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// Aggregate ground truth of one replayed trace. All sums are exact
/// integers; the rate/moment accessors divide once, at read time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayReport {
    /// Chain width the trace was replayed through.
    pub width: usize,
    /// Records replayed.
    pub records: u64,
    /// Records whose output value (sum bits + carry-out) was wrong.
    pub output_errors: u64,
    /// Records on which some stage deviated along the accurate carry chain
    /// (the paper's first-deviation semantics).
    pub stage_errors: u64,
    /// `Σ (approx − exact)` over all records (signed, exact).
    pub sum_ed: i128,
    /// `Σ |approx − exact|` over all records.
    pub sum_abs_ed: u128,
    /// `Σ (approx − exact)²` over all records.
    pub sum_sq_ed: u128,
    /// `max |approx − exact|` over all records.
    pub max_abs_ed: u64,
}

impl ReplayReport {
    fn empty(width: usize) -> ReplayReport {
        ReplayReport {
            width,
            records: 0,
            output_errors: 0,
            stage_errors: 0,
            sum_ed: 0,
            sum_abs_ed: 0,
            sum_sq_ed: 0,
            max_abs_ed: 0,
        }
    }

    /// Folds another (contiguous) report in; integer sums make this
    /// associative, hence thread-count invariant.
    fn absorb(&mut self, other: &ReplayReport) {
        self.records += other.records;
        self.output_errors += other.output_errors;
        self.stage_errors += other.stage_errors;
        self.sum_ed += other.sum_ed;
        self.sum_abs_ed += other.sum_abs_ed;
        self.sum_sq_ed += other.sum_sq_ed;
        self.max_abs_ed = self.max_abs_ed.max(other.max_abs_ed);
    }

    /// Fraction of records with a wrong output value (0 for an empty trace).
    pub fn output_error_rate(&self) -> f64 {
        self.rate(self.output_errors)
    }

    /// Fraction of records with a stage deviation — the paper's `P(Error)`
    /// semantics (0 for an empty trace).
    pub fn stage_error_rate(&self) -> f64 {
        self.rate(self.stage_errors)
    }

    /// Mean signed error distance (bias), `Σ ED / records`.
    pub fn mean_error_distance(&self) -> f64 {
        if self.records == 0 {
            return 0.0;
        }
        self.sum_ed as f64 / self.records as f64
    }

    /// Mean absolute error distance (MED), `Σ |ED| / records`.
    pub fn mean_absolute_error_distance(&self) -> f64 {
        if self.records == 0 {
            return 0.0;
        }
        self.sum_abs_ed as f64 / self.records as f64
    }

    /// Mean squared error distance (MSE), `Σ ED² / records`.
    pub fn mean_squared_error_distance(&self) -> f64 {
        if self.records == 0 {
            return 0.0;
        }
        self.sum_sq_ed as f64 / self.records as f64
    }

    fn rate(&self, count: u64) -> f64 {
        if self.records == 0 {
            return 0.0;
        }
        count as f64 / self.records as f64
    }
}

/// The machine's available parallelism (1 if undeterminable). Replay is
/// thread-count invariant, so clamping worker counts here changes nothing
/// but scheduling overhead.
fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn check_width(chain: &AdderChain) -> Result<u64, ReplayError> {
    let width = chain.width();
    if width > MAX_REPLAY_WIDTH {
        return Err(ReplayError::WidthTooLarge { width });
    }
    Ok((1u64 << width) - 1)
}

/// One worker's share of a replay, dispatched to the selected backend's
/// word type.
struct ReplayWorker<'a> {
    compiled: &'a CompiledChain,
    mask: u64,
    records: &'a [TraceRecord],
}

impl SimdKernel for ReplayWorker<'_> {
    type Out = ReplayReport;

    #[inline(always)]
    fn run<W: SimdWord>(self) -> ReplayReport {
        replay_span(&self.compiled.kernel::<W>(), self.mask, self.records)
    }
}

/// Replays one contiguous span of records through the compiled kernel,
/// `W::LANES` lanes at a time.
#[inline(always)]
fn replay_span<W: SimdWord>(
    kernel: &CompiledKernel<W>,
    mask: u64,
    records: &[TraceRecord],
) -> ReplayReport {
    let width = kernel.width();
    let mut report = ReplayReport::empty(width);
    let mut approx = vec![W::zero(); width];
    let mut exact = vec![W::zero(); width];
    let mut a_planes = vec![W::zero(); width];
    let mut b_planes = vec![W::zero(); width];
    // Per-subword staging: `*_sub[s * width + i]` is bit-plane `i` of the
    // 64-record subgroup `s`; `pack_lanes_into` fills it via a block-swap
    // transpose and the wide planes are assembled subword by subword.
    let mut a_sub = vec![0u64; W::WORDS * width];
    let mut b_sub = vec![0u64; W::WORDS * width];
    debug_assert!(W::WORDS <= 8);
    let mut a_vals = [0u64; 64];
    let mut b_vals = [0u64; 64];
    let mut sub_approx = vec![0u64; width];
    let mut sub_exact = vec![0u64; width];
    let mut lane_dist = [W::zero(); 64];
    let offset = (1i64 << (width + 1)) - 1;
    for batch in records.chunks(W::LANES) {
        let lanes = batch.len();
        let lane_mask = W::tail_mask(lanes);
        let mut cin_sub = [0u64; 8];
        for (s, group) in batch.chunks(64).enumerate() {
            for (l, r) in group.iter().enumerate() {
                a_vals[l] = r.a & mask;
                b_vals[l] = r.b & mask;
                cin_sub[s] |= u64::from(r.cin) << l;
            }
            let planes = s * width..(s + 1) * width;
            pack_lanes_into(&a_vals[..group.len()], &mut a_sub[planes.clone()]);
            pack_lanes_into(&b_vals[..group.len()], &mut b_sub[planes]);
        }
        // Subgroups past the tail stay at their previous contents; the
        // lane mask removes them from every count below, so only the
        // staged planes of populated subgroups need assembling.
        let groups = lanes.div_ceil(64);
        for i in 0..width {
            a_planes[i] = W::from_fn(|s| if s < groups { a_sub[s * width + i] } else { 0 });
            b_planes[i] = W::from_fn(|s| if s < groups { b_sub[s * width + i] } else { 0 });
        }
        let cin_word = W::from_fn(|s| cin_sub[s]);
        let diff = kernel.eval_diff(&a_planes, &b_planes, cin_word, &mut approx, &mut exact);
        let mismatch = diff.mismatch & lane_mask;
        report.records += lanes as u64;
        report.output_errors += mismatch.count_ones();
        report.stage_errors += (diff.deviated & lane_mask).count_ones();
        if !mismatch.any() {
            continue;
        }
        // Dense fast path: compute every lane's biased error distance in
        // plane space (ripple subtract + wide transpose), then accumulate
        // without a mask — a *correct* lane's biased distance is exactly
        // `offset`, so its `d = 0` contributes nothing to any sum. Tail
        // batches are excluded because lanes past the span's end carry
        // stale planes whose distances must not be counted.
        if lanes == W::LANES && mismatch.count_ones() as usize * 4 >= W::LANES {
            biased_distance_lanes(
                &approx,
                diff.approx_cout,
                &exact,
                diff.exact_cout,
                &mut lane_dist,
            );
            for row in lane_dist.iter() {
                let row = *row;
                for s in 0..W::WORDS {
                    let d = row.word(s) as i64 - offset;
                    let abs = u128::from(d.unsigned_abs());
                    report.sum_ed += i128::from(d);
                    report.sum_abs_ed += abs;
                    report.sum_sq_ed += abs * abs;
                    report.max_abs_ed = report.max_abs_ed.max(d.unsigned_abs());
                }
            }
            continue;
        }
        let mut ed = [0i64; 64];
        for s in 0..W::WORDS {
            let mm = mismatch.word(s);
            if mm == 0 {
                continue;
            }
            for i in 0..width {
                sub_approx[i] = approx[i].word(s);
                sub_exact[i] = exact[i].word(s);
            }
            error_distances64(
                &sub_approx,
                diff.approx_cout.word(s),
                &sub_exact,
                diff.exact_cout.word(s),
                mm,
                &mut ed,
            );
            let mut left = mm;
            while left != 0 {
                let lane = left.trailing_zeros() as usize;
                left &= left - 1;
                let d = ed[lane];
                let abs = u128::from(d.unsigned_abs());
                report.sum_ed += i128::from(d);
                report.sum_abs_ed += abs;
                report.sum_sq_ed += abs * abs;
                report.max_abs_ed = report.max_abs_ed.max(d.unsigned_abs());
            }
        }
    }
    report
}

/// Replays a trace through the bitsliced kernels, optionally on several
/// worker threads. The result is bit-for-bit identical for every thread
/// count and SIMD backend (integer accumulation over an order-independent
/// merge) and to [`replay_scalar`]. Operand bits above the chain width are
/// ignored.
///
/// # Errors
///
/// Fails if the chain is wider than [`MAX_REPLAY_WIDTH`].
pub fn replay(
    chain: &AdderChain,
    records: &[TraceRecord],
    threads: usize,
) -> Result<ReplayReport, ReplayError> {
    replay_with_backend(chain, records, threads, None)
}

/// [`replay`] with an explicit SIMD backend: `None` uses
/// [`Backend::active`] (runtime detection, overridable through the
/// `SEALPAA_SIMD` environment variable). Because every accumulator is an
/// exact integer, the report does not depend on the backend — the
/// differential suite pins all backends byte-identical.
///
/// # Errors
///
/// Fails if the chain is wider than [`MAX_REPLAY_WIDTH`].
pub fn replay_with_backend(
    chain: &AdderChain,
    records: &[TraceRecord],
    threads: usize,
    backend: Option<Backend>,
) -> Result<ReplayReport, ReplayError> {
    let mask = check_width(chain)?;
    let backend = backend.unwrap_or_else(Backend::active);
    let compiled = CompiledChain::compile(chain);
    let batches = records.len().div_ceil(64);
    // Replay is thread-count invariant, so oversubscribing past the
    // machine's cores can only add scheduling overhead (the `_t4 > _t1`
    // regression in BENCH_trace.json) — clamp to available parallelism.
    let threads = threads
        .clamp(1, 64)
        .min(available_threads())
        .min(batches.max(1));
    let worker = |span: &[TraceRecord]| {
        dispatch(
            backend,
            ReplayWorker {
                compiled: &compiled,
                mask,
                records: span,
            },
        )
    };
    if threads == 1 {
        return Ok(worker(records));
    }
    // Contiguous 64-record-aligned spans per worker, merged in span order.
    let spans: Vec<&[TraceRecord]> = (0..threads)
        .map(|t| {
            let lo = (t * batches / threads) * 64;
            let hi = (((t + 1) * batches / threads) * 64).min(records.len());
            &records[lo..hi]
        })
        .collect();
    let mut report = ReplayReport::empty(chain.width());
    std::thread::scope(|scope| {
        let handles: Vec<_> = spans
            .into_iter()
            .map(|span| {
                let worker = &worker;
                scope.spawn(move || worker(span))
            })
            .collect();
        for handle in handles {
            report.absorb(&handle.join().expect("replay worker panicked"));
        }
    });
    Ok(report)
}

/// The scalar per-record replay oracle: [`AdderChain::add`] and a truth-table
/// walk per record. Slow, obviously correct — the differential baseline for
/// [`replay`] and the benchmark reference.
///
/// # Errors
///
/// Fails if the chain is wider than [`MAX_REPLAY_WIDTH`].
pub fn replay_scalar(
    chain: &AdderChain,
    records: &[TraceRecord],
) -> Result<ReplayReport, ReplayError> {
    let mask = check_width(chain)?;
    let accurate = TruthTable::accurate();
    let mut report = ReplayReport::empty(chain.width());
    for r in records {
        let (a, b) = (r.a & mask, r.b & mask);
        let approx = chain.add(a, b, r.cin);
        let exact = chain.accurate_sum(a, b, r.cin);
        report.records += 1;
        let d = approx.error_distance(exact);
        if d != 0 {
            report.output_errors += 1;
            let abs = u128::from(d.unsigned_abs());
            report.sum_ed += i128::from(d);
            report.sum_abs_ed += abs;
            report.sum_sq_ed += abs * abs;
            report.max_abs_ed = report.max_abs_ed.max(d.unsigned_abs());
        }
        // First-deviation walk along the accurate carry chain.
        let mut carry = r.cin;
        for (i, cell) in chain.iter().enumerate() {
            let input = FaInput::new((a >> i) & 1 == 1, (b >> i) & 1 == 1, carry);
            if cell.truth_table().eval(input) != accurate.eval(input) {
                report.stage_errors += 1;
                break;
            }
            carry = accurate.eval(input).carry_out;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthKind};
    use sealpaa_cells::StandardCell;

    #[test]
    fn replay_rejects_overwide_chains() {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 48);
        assert_eq!(
            replay(&chain, &[], 1),
            Err(ReplayError::WidthTooLarge { width: 48 })
        );
        assert!(replay_scalar(&chain, &[]).is_err());
    }

    #[test]
    fn empty_trace_reports_zeroes() {
        let chain = AdderChain::uniform(StandardCell::Lpaa2.cell(), 8);
        let report = replay(&chain, &[], 4).expect("valid");
        assert_eq!(report.records, 0);
        assert_eq!(report.output_error_rate(), 0.0);
        assert_eq!(report.mean_squared_error_distance(), 0.0);
    }

    #[test]
    fn accurate_chain_never_errs() {
        let chain = AdderChain::uniform(StandardCell::Accurate.cell(), 16);
        let records = generate(SynthKind::Uniform, 16, 1000, 3).expect("valid");
        let report = replay(&chain, &records, 2).expect("valid");
        assert_eq!(report.records, 1000);
        assert_eq!(report.output_errors, 0);
        assert_eq!(report.stage_errors, 0);
        assert_eq!(report.max_abs_ed, 0);
    }

    #[test]
    fn hand_checked_single_record() {
        // LPAA 1 width 1: a=1, b=1, cin=0 → approximate sum drops the carry
        // logic's row; verify against the scalar chain directly.
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 1);
        let rec = TraceRecord::new(1, 1, false);
        let approx = chain.add(1, 1, false);
        let exact = chain.accurate_sum(1, 1, false);
        let expect = approx.error_distance(exact);
        let report = replay(&chain, &[rec], 1).expect("valid");
        assert_eq!(report.records, 1);
        assert_eq!(report.sum_ed, i128::from(expect));
        assert_eq!(report.output_errors, u64::from(expect != 0));
    }

    #[test]
    fn partial_batches_match_full_batches() {
        // 100 records = one full 64-lane batch + a 36-lane tail.
        let chain = AdderChain::uniform(StandardCell::Lpaa3.cell(), 10);
        let records = generate(SynthKind::GaussianSum, 10, 100, 9).expect("valid");
        let fast = replay(&chain, &records, 1).expect("valid");
        let oracle = replay_scalar(&chain, &records).expect("valid");
        assert_eq!(fast, oracle);
    }

    #[test]
    fn every_backend_is_byte_identical_to_scalar() {
        // The tentpole byte-identity contract on the replay path: every
        // available backend, every thread count, awkward record counts
        // (tails shorter than a subword, shorter than the wide word).
        let chain = AdderChain::uniform(StandardCell::Lpaa5.cell(), 12);
        for count in [1usize, 63, 64, 65, 200, 513] {
            let records = generate(SynthKind::Uniform, 12, count, 17).expect("valid");
            let oracle = replay_scalar(&chain, &records).expect("valid");
            for backend in Backend::available() {
                for threads in [1usize, 2, 7] {
                    let r = replay_with_backend(&chain, &records, threads, Some(backend))
                        .expect("valid");
                    assert_eq!(r, oracle, "{backend} t{threads} n{count}");
                }
            }
        }
    }
}
