//! The trace-replay differential suite: the bitsliced 64-lane replay must be
//! bit-for-bit identical to the scalar per-record oracle, for every workload
//! family, chain shape, and thread count. `ReplayReport` derives `Eq` over
//! pure integer accumulators, so `assert_eq!` really is bit-for-bit.

use sealpaa_cells::{AdderChain, Cell, StandardCell};
use sealpaa_sim::SplitMix64;
use sealpaa_trace::{generate, replay, replay_scalar, SynthKind, TraceRecord};

fn random_hybrid(rng: &mut SplitMix64, width: usize) -> AdderChain {
    let stages: Vec<Cell> = (0..width)
        .map(|_| {
            let pick = (rng.next_u64() % StandardCell::ALL.len() as u64) as usize;
            StandardCell::ALL[pick].cell()
        })
        .collect();
    AdderChain::from_stages(stages)
}

#[test]
fn bitsliced_replay_matches_scalar_oracle_on_every_workload() {
    for cell in StandardCell::ALL {
        for kind in SynthKind::ALL {
            let width = 11;
            let chain = AdderChain::uniform(cell.cell(), width);
            let records = generate(kind, width, 1000, 0xDAC17).expect("valid");
            let fast = replay(&chain, &records, 1).expect("valid");
            let oracle = replay_scalar(&chain, &records).expect("valid");
            assert_eq!(fast, oracle, "{cell} on {kind}");
        }
    }
}

#[test]
fn bitsliced_replay_matches_scalar_oracle_on_random_hybrids() {
    let mut rng = SplitMix64::new(0x7ACE);
    for trial in 0..20 {
        let width = 1 + (rng.next_u64() % 20) as usize;
        let chain = random_hybrid(&mut rng, width);
        let records = generate(SynthKind::RandomWalk, width, 777, rng.next_u64()).expect("valid");
        let fast = replay(&chain, &records, 1).expect("valid");
        let oracle = replay_scalar(&chain, &records).expect("valid");
        assert_eq!(fast, oracle, "trial {trial}: {chain}");
    }
}

#[test]
fn replay_is_deterministic_across_thread_counts() {
    let width = 13;
    let chain = AdderChain::lsb_approximate(
        StandardCell::Lpaa5.cell(),
        StandardCell::Accurate.cell(),
        7,
        width,
    );
    // A record count that is not a multiple of 64 nor of any thread count,
    // so span boundaries land everywhere.
    let records = generate(SynthKind::GaussianSum, width, 10_007, 99).expect("valid");
    let reference = replay(&chain, &records, 1).expect("valid");
    assert_eq!(reference, replay_scalar(&chain, &records).expect("valid"));
    for threads in [2usize, 3, 4, 7, 8, 16, 64] {
        let got = replay(&chain, &records, threads).expect("valid");
        assert_eq!(got, reference, "{threads} threads");
    }
}

#[test]
fn replay_handles_cin_and_width_edges() {
    // Width 1 and the replay ceiling, with carry-ins exercised.
    let mut rng = SplitMix64::new(5);
    for width in [1usize, 2, 47] {
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let chain = AdderChain::uniform(StandardCell::Lpaa6.cell(), width);
        let records: Vec<TraceRecord> = (0..300)
            .map(|_| {
                TraceRecord::new(
                    rng.next_u64() & mask,
                    rng.next_u64() & mask,
                    rng.next_u64() & 1 == 1,
                )
            })
            .collect();
        let fast = replay(&chain, &records, 4).expect("valid");
        let oracle = replay_scalar(&chain, &records).expect("valid");
        assert_eq!(fast, oracle, "width {width}");
    }
}

#[test]
fn replay_rates_agree_with_monte_carlo_on_matching_profiles() {
    // A uniform synthetic trace is exactly the Monte-Carlo p=0.5 regime; the
    // two independently-built engines must land on the same error rate to
    // within sampling noise.
    let width = 10;
    let chain = AdderChain::uniform(StandardCell::Lpaa2.cell(), width);
    let records = generate(SynthKind::Uniform, width, 1 << 16, 11).expect("valid");
    let report = replay(&chain, &records, 4).expect("valid");
    let profile = sealpaa_cells::InputProfile::<f64>::uniform(width);
    let config = sealpaa_sim::MonteCarloConfig {
        samples: 1 << 16,
        seed: 0xFEED,
        threads: 1,
        backend: None,
    };
    let mc = sealpaa_sim::monte_carlo(&chain, &profile, config).expect("valid");
    assert!(
        (report.output_error_rate() - mc.metrics.error_probability).abs() < 0.02,
        "replay {} vs monte-carlo {}",
        report.output_error_rate(),
        mc.metrics.error_probability
    );
}
