//! Model-fidelity acceptance tests: under an *independent-bit* synthetic
//! trace the analytical estimate (fed the estimated empirical profile) must
//! match replay ground truth to within sampling noise; under a *correlated*
//! trace the independence assumption is genuinely violated and the report
//! must say so.

use sealpaa_cells::{AdderChain, StandardCell};
use sealpaa_trace::{fidelity, generate, SynthKind};

/// 2^16 records put one standard error of an estimated probability at
/// ~0.002; 0.01 is five sigma of headroom without masking real model bugs.
const RECORDS: usize = 1 << 16;
const TOLERANCE: f64 = 0.01;

#[test]
fn analytical_estimates_match_replay_on_independent_bits() {
    // The uniform generator draws every operand bit (and cin) as an
    // independent fair coin — exactly the analytical model's world.
    for cell in [
        StandardCell::Lpaa1,
        StandardCell::Lpaa3,
        StandardCell::Lpaa5,
    ] {
        let width = 8;
        let chain = AdderChain::uniform(cell.cell(), width);
        let records = generate(SynthKind::Uniform, width, RECORDS, 0xFACE).expect("valid");
        let report = fidelity(&chain, &records, 4).expect("valid");
        // Independence really holds: the violation score is pure sampling
        // noise, ~1/√records.
        assert!(
            report.independence_violation < 0.02,
            "{cell}: violation {}",
            report.independence_violation
        );
        assert!(
            report.stage_error_gap() < TOLERANCE,
            "{cell}: stage error gap {} (analytical {} vs replayed {})",
            report.stage_error_gap(),
            report.analytical_stage_error,
            report.replay.stage_error_rate()
        );
        assert!(
            report.output_error_gap() < TOLERANCE,
            "{cell}: output error gap {}",
            report.output_error_gap()
        );
        // The moments scale with the error magnitude (up to ~2^width), so
        // normalize by the trace's mean absolute error distance.
        let scale = report.replay.mean_absolute_error_distance().max(1.0);
        assert!(
            report.mean_ed_gap() / scale < 0.05,
            "{cell}: bias gap {} at scale {scale}",
            report.mean_ed_gap()
        );
        let med_gap = report.med_gap().expect("width 8 has a distribution MED");
        assert!(
            med_gap / scale < 0.05,
            "{cell}: MED gap {med_gap} at scale {scale}"
        );
        let mse_scale = report.replay.mean_squared_error_distance().max(1.0);
        assert!(
            report.mse_gap() / mse_scale < 0.1,
            "{cell}: MSE gap {} at scale {mse_scale}",
            report.mse_gap()
        );
    }
}

#[test]
fn correlated_workload_reports_a_nonzero_documented_gap() {
    // Random-walk audio: operand b is operand a plus a small step, so the
    // operands are strongly correlated. The profiler must flag it, and the
    // analytical error probability (which assumes independence) must be
    // measurably off the replayed ground truth — this gap is the documented
    // independence-assumption cost, not a bug.
    let width = 8;
    let chain = AdderChain::uniform(StandardCell::Lpaa2.cell(), width);
    let records = generate(SynthKind::RandomWalk, width, RECORDS, 0xFACE).expect("valid");
    let report = fidelity(&chain, &records, 4).expect("valid");
    assert!(
        report.independence_violation > 0.05,
        "violation {}",
        report.independence_violation
    );
    // The gap is structural: far above the ~0.002 sampling noise floor of
    // 2^16 records.
    assert!(
        report.output_error_gap() > 0.01,
        "correlated trace should defeat the independence assumption, gap {}",
        report.output_error_gap()
    );
}

#[test]
fn fidelity_is_thread_count_invariant() {
    let width = 8;
    let chain = AdderChain::uniform(StandardCell::Lpaa4.cell(), width);
    let records = generate(SynthKind::ImageGradient, width, 4096, 21).expect("valid");
    let one = fidelity(&chain, &records, 1).expect("valid");
    for threads in [2usize, 5, 8] {
        let many = fidelity(&chain, &records, threads).expect("valid");
        // The replay half is integer-exact; the analytical half is a pure
        // function of the profile. The whole report must match exactly.
        assert_eq!(one, many, "{threads} threads");
    }
}
