//! A minimal JSON writer (no external dependencies) for machine-readable
//! CLI output.

use std::fmt::Write as _;

/// A JSON value assembled programmatically.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (kept for completeness of the JSON data model; the CLI's own
    /// documents currently never need it outside tests).
    #[allow(dead_code)]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (rendered via Rust's shortest-round-trip `f64`
    /// formatting; non-finite values render as `null` per JSON's rules).
    Number(f64),
    /// A string (escaped on render).
    String(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for an object builder.
    pub fn object() -> JsonObject {
        JsonObject::default()
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::String(s) => {
                out.push('"');
                for ch in s.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::String(key.clone()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Number(n)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::String(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::String(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Number(n as f64)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Self {
        Json::Array(items)
    }
}

/// An insertion-ordered JSON object builder.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JsonObject {
    fields: Vec<(String, Json)>,
}

impl JsonObject {
    /// Adds a field; returns `self` for chaining.
    pub fn field(mut self, key: impl Into<String>, value: impl Into<Json>) -> Self {
        self.fields.push((key.into(), value.into()));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> Json {
        Json::Object(self.fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Number(0.25).render(), "0.25");
        assert_eq!(Json::Number(f64::NAN).render(), "null");
        assert_eq!(Json::from("hi").render(), "\"hi\"");
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(s.render(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn objects_and_arrays_compose() {
        let value = Json::object()
            .field("name", "LPAA 1")
            .field("error", 0.125)
            .field(
                "stages",
                Json::Array(vec![Json::from(1usize), Json::from(2usize)]),
            )
            .field("exact", false)
            .build();
        assert_eq!(
            value.render(),
            "{\"name\":\"LPAA 1\",\"error\":0.125,\"stages\":[1,2],\"exact\":false}"
        );
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(Json::object().build().render(), "{}");
        assert_eq!(Json::Array(Vec::new()).render(), "[]");
    }
}
