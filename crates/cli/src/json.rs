//! The CLI's machine-readable output model. The implementation lives in
//! [`sealpaa_server::json`] so the server's wire protocol and the CLI's
//! `--json` output share one writer (and the server adds a parser on top);
//! this module re-exports it under the CLI's historical path.

pub use sealpaa_server::json::Json;
