//! The `sealpaa` binary: a thin wrapper around [`sealpaa_cli::run`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match sealpaa_cli::run(&args, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("{err}");
            ExitCode::from(2)
        }
    }
}
