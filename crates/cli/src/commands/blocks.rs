//! `sealpaa blocks` — block-based adder family: analytical error-distance
//! distributions and heterogeneous design-space exploration.

use std::io::Write;

use sealpaa_blocks::{error_distance_distribution, exhaustive_distance_histogram, BlockConfig};
use sealpaa_explore::{
    accurate_cell_with_proxy_costs, best_block_design, block_pareto_front, enumerate_block_designs,
    BlockBudget, BlockObjective, BlockSearchSpace,
};
use sealpaa_sim::default_threads;

use crate::args::{parse_cell, parse_profile, ParsedArgs};
use crate::error::CliError;

const HELP: &str = "\
usage: sealpaa blocks <subcommand> [options]

Block-based approximate adders: arbitrary per-block widths, carry-prediction
depths, and cells (generalizing GeAr's fixed R/P scheme), with exact
analytical error-distance distributions.

subcommands:
  analyze   ED statistics of one configuration
  sweep     enumerate every in-budget heterogeneous configuration
  pareto    the (mean |ED|, power, area) Pareto frontier of a space

analyze options:
  --config SPEC       'width:depth:cell,...' LSB-first (required), e.g.
                      '4:0:accurate,4:2:lpaa1'
  --p/--pa/--pb/--cin input probabilities, as in `sealpaa analyze`
  --distribution      print the full ED probability mass function
  --cdf               print the ED cumulative distribution function
  --exhaustive        confirm against exhaustive simulation of all operand
                      pairs (requires the default uniform profile)

sweep/pareto options:
  --width N           adder width (required)
  --widths A,B,..     allowed block widths (default 2,4)
  --depths A,B,..     allowed prediction depths (default 0,1,2)
  --cells A,B,..      allowed cells (default lpaa1,lpaa2,lpaa5,accurate;
                      'accurate' uses the estimated costs from DESIGN.md)
  --p/--pa/--pb/--cin input probabilities
  --budget-power X    maximum summed power in nW
  --budget-area X     maximum summed area in GE
  --max-window L      maximum single-block window length (delay proxy)
  --objective OBJ     mean-ed | mse | error-rate (default mean-ed)
  --top K             sweep: print only the K best designs (default 10)
  --threads T         worker threads (default: all cores; results are
                      identical for any T)";

/// Runs the command.
///
/// # Errors
///
/// Returns [`CliError`] on bad options or analysis failure.
pub fn run<W: Write>(tokens: &[String], out: &mut W) -> Result<(), CliError> {
    let Some(sub) = tokens.first() else {
        return Err(CliError::usage(HELP));
    };
    let rest = &tokens[1..];
    match sub.as_str() {
        "--help" | "help" => {
            writeln!(out, "{HELP}")?;
            Ok(())
        }
        "analyze" => analyze(rest, out),
        "sweep" => sweep(rest, out, false),
        "pareto" => sweep(rest, out, true),
        other => Err(CliError::usage(format!(
            "unknown blocks subcommand {other:?}\n\n{HELP}"
        ))),
    }
}

fn analyze<W: Write>(tokens: &[String], out: &mut W) -> Result<(), CliError> {
    if tokens.iter().any(|t| t == "--help") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let args = ParsedArgs::parse(
        tokens,
        &["config", "p", "pa", "pb", "cin"],
        &["distribution", "cdf", "exhaustive"],
    )?;
    let config: BlockConfig = args.require("config").map_err(|_| {
        let raw = args.option("config").unwrap_or("");
        match raw.parse::<BlockConfig>() {
            Err(e) if !raw.is_empty() => CliError::usage(format!("--config: {e}")),
            _ => CliError::usage("--config is required ('width:depth:cell,...')"),
        }
    })?;
    let width = config.width();
    let profile = parse_profile(&args, width)?;
    let dist = error_distance_distribution(&config, &profile).map_err(CliError::analysis)?;

    writeln!(out, "config        : {config}")?;
    writeln!(out, "width         : {width}")?;
    writeln!(out, "max window    : {} bits", config.max_window_len())?;
    writeln!(out, "P(error)      : {:.10}", dist.error_rate())?;
    writeln!(out, "E[D]          : {:.6}", dist.mean())?;
    writeln!(out, "E[|D|]        : {:.6}", dist.mean_absolute())?;
    writeln!(out, "E[D^2]        : {:.6}", dist.mean_squared())?;
    if width <= 62 {
        writeln!(
            out,
            "NMED          : {:.3e}",
            dist.normalized_mean_absolute(width)
        )?;
    }
    writeln!(out, "max |D|       : {}", dist.max_absolute())?;
    writeln!(out, "support       : {} distances", dist.pmf.len())?;
    if args.flag("distribution") {
        writeln!(out, "\nPMF:")?;
        for (d, p) in &dist.pmf {
            writeln!(out, "  P(D = {d:>8}) = {p:.10}")?;
        }
    }
    if args.flag("cdf") {
        writeln!(out, "\nCDF:")?;
        for (d, p) in dist.cdf() {
            writeln!(out, "  P(D <= {d:>7}) = {p:.10}")?;
        }
    }
    if args.flag("exhaustive") {
        let uniform = (0..width).all(|i| *profile.pa(i) == 0.5 && *profile.pb(i) == 0.5)
            && *profile.p_cin() == 0.5;
        if !uniform {
            return Err(CliError::usage(
                "--exhaustive counts all operand pairs uniformly; drop --p/--pa/--pb/--cin",
            ));
        }
        let report = exhaustive_distance_histogram(&config).map_err(CliError::analysis)?;
        let reference = report.to_distribution::<f64>();
        let matches = reference.pmf == dist.pmf;
        writeln!(
            out,
            "\nexhaustive    : {} cases, {} bit-adds — analytical PMF {}",
            report.work.cases,
            report.work.bit_additions,
            if matches { "CONFIRMED" } else { "MISMATCH" }
        )?;
        if !matches {
            return Err(CliError::analysis(
                "analytical distribution disagrees with exhaustive simulation",
            ));
        }
    }
    Ok(())
}

fn sweep<W: Write>(tokens: &[String], out: &mut W, pareto: bool) -> Result<(), CliError> {
    if tokens.iter().any(|t| t == "--help") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let args = ParsedArgs::parse(
        tokens,
        &[
            "width",
            "widths",
            "depths",
            "cells",
            "p",
            "pa",
            "pb",
            "cin",
            "budget-power",
            "budget-area",
            "max-window",
            "objective",
            "top",
            "threads",
        ],
        &[],
    )?;
    let width: usize = args.require("width")?;
    if width == 0 {
        return Err(CliError::usage("--width must be at least 1"));
    }
    let profile = parse_profile(&args, width)?;
    let widths = parse_usize_list(&args, "widths", &[2, 4])?;
    let depths = parse_usize_list(&args, "depths", &[0, 1, 2])?;
    let cells = match args.option("cells") {
        None => vec![
            parse_cell("lpaa1")?,
            parse_cell("lpaa2")?,
            parse_cell("lpaa5")?,
            accurate_cell_with_proxy_costs(),
        ],
        Some(list) => list
            .split(',')
            .map(|name| {
                if name.eq_ignore_ascii_case("accurate") || name.eq_ignore_ascii_case("accufa") {
                    Ok(accurate_cell_with_proxy_costs())
                } else {
                    parse_cell(name)
                }
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    let space = BlockSearchSpace::new(&widths, &depths, &cells).map_err(CliError::analysis)?;
    let budget = BlockBudget {
        max_power_nw: parse_optional(&args, "budget-power")?,
        max_area_ge: parse_optional(&args, "budget-area")?,
        max_window_len: parse_optional(&args, "max-window")?,
    };
    let objective = match args.option("objective").unwrap_or("mean-ed") {
        "mean-ed" => BlockObjective::MeanAbsolute,
        "mse" => BlockObjective::MeanSquared,
        "error-rate" => BlockObjective::ErrorRate,
        other => {
            return Err(CliError::usage(format!(
                "--objective: unknown objective {other:?} (mean-ed, mse, error-rate)"
            )))
        }
    };
    let threads = args.get_or("threads", default_threads())?;

    writeln!(
        out,
        "space: widths {:?}, depths {:?}, cells [{}] — {} tilings of width {width}",
        space.widths(),
        space.predictions(),
        space
            .cells()
            .iter()
            .map(|c| c.name().to_owned())
            .collect::<Vec<_>>()
            .join(", "),
        space.design_count(width)
    )?;

    if pareto {
        let designs = enumerate_block_designs(&space, &profile, &budget, threads)
            .map_err(CliError::analysis)?;
        let total = designs.len();
        let front = block_pareto_front(designs);
        writeln!(out, "Pareto frontier over (E|D|, power, area):")?;
        for design in &front {
            writeln!(out, "  {design}")?;
        }
        writeln!(
            out,
            "({} of {total} in-budget designs survive)",
            front.len()
        )?;
        return Ok(());
    }

    let best = best_block_design(&space, &profile, &budget, objective, threads)
        .map_err(CliError::analysis)?;
    match best {
        None => {
            writeln!(out, "no configuration fits the budget")?;
            return Ok(());
        }
        Some(design) => writeln!(out, "best : {design}")?,
    }
    let top: usize = args.get_or("top", 10)?;
    let mut designs =
        enumerate_block_designs(&space, &profile, &budget, threads).map_err(CliError::analysis)?;
    let total = designs.len();
    designs.sort_by(|a, b| {
        objective
            .of(&a.evaluation)
            .total_cmp(&objective.of(&b.evaluation))
    });
    writeln!(
        out,
        "\ntop {} of {total} in-budget designs:",
        top.min(total)
    )?;
    for design in designs.iter().take(top) {
        writeln!(out, "  {design}")?;
    }
    Ok(())
}

fn parse_usize_list(
    args: &ParsedArgs,
    key: &str,
    default: &[usize],
) -> Result<Vec<usize>, CliError> {
    match args.option(key) {
        None => Ok(default.to_vec()),
        Some(raw) => raw
            .split(',')
            .map(|v| {
                v.trim()
                    .parse()
                    .map_err(|_| CliError::usage(format!("--{key}: cannot parse {raw:?}")))
            })
            .collect(),
    }
}

fn parse_optional<T: std::str::FromStr>(
    args: &ParsedArgs,
    key: &str,
) -> Result<Option<T>, CliError> {
    match args.option(key) {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| CliError::usage(format!("--{key}: cannot parse {raw:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(tokens: &[&str]) -> Result<String, CliError> {
        let tokens: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn analyze_reports_statistics() {
        let s =
            run_to_string(&["analyze", "--config", "4:0:accurate,4:2:accurate"]).expect("valid");
        assert!(s.contains("blocks(N=8)"), "{s}");
        // Uniform inputs: the carry into bit 4 is 1 w.p. 1/2 and the depth-2
        // predictor misses it w.p. 1/4, so P(error) = 1/8 exactly.
        assert!(s.contains("P(error)      : 0.1250000000"), "{s}");
    }

    #[test]
    fn analyze_exhaustive_confirms() {
        let s = run_to_string(&[
            "analyze",
            "--config",
            "4:0:accurate,2:1:lpaa1,2:2:accurate",
            "--exhaustive",
        ])
        .expect("valid");
        assert!(s.contains("CONFIRMED"), "{s}");
    }

    #[test]
    fn analyze_exhaustive_rejects_biased_profile() {
        let err = run_to_string(&[
            "analyze",
            "--config",
            "4:0:accurate",
            "--p",
            "0.3",
            "--exhaustive",
        ]);
        assert!(err.is_err());
    }

    #[test]
    fn analyze_distribution_and_cdf() {
        let s = run_to_string(&[
            "analyze",
            "--config",
            "2:0:accurate,2:0:accurate",
            "--distribution",
            "--cdf",
        ])
        .expect("valid");
        assert!(s.contains("PMF:"), "{s}");
        assert!(s.contains("CDF:"), "{s}");
        assert!(s.contains("P(D ="), "{s}");
    }

    #[test]
    fn analyze_rejects_bad_config() {
        let err = run_to_string(&["analyze", "--config", "4:9:accurate"]);
        assert!(err.is_err());
        let err = run_to_string(&["analyze"]);
        assert!(err.is_err());
    }

    #[test]
    fn sweep_lists_best_and_top() {
        let s = run_to_string(&[
            "sweep",
            "--width",
            "4",
            "--widths",
            "2,4",
            "--depths",
            "0,1",
            "--cells",
            "lpaa5,accurate",
        ])
        .expect("valid");
        assert!(s.contains("best :"), "{s}");
        assert!(s.contains("in-budget designs:"), "{s}");
    }

    #[test]
    fn sweep_budget_can_be_infeasible() {
        let s = run_to_string(&[
            "sweep",
            "--width",
            "4",
            "--cells",
            "lpaa1",
            "--budget-power",
            "0",
        ])
        .expect("valid");
        assert!(s.contains("no configuration fits the budget"), "{s}");
    }

    #[test]
    fn pareto_lists_frontier() {
        let s = run_to_string(&[
            "pareto",
            "--width",
            "4",
            "--widths",
            "2,4",
            "--depths",
            "0,1",
            "--cells",
            "lpaa2,lpaa5",
        ])
        .expect("valid");
        assert!(s.contains("Pareto frontier"), "{s}");
        assert!(s.contains("designs survive"), "{s}");
    }

    #[test]
    fn sweep_thread_count_does_not_change_output() {
        let base = &["sweep", "--width", "6", "--depths", "0,1,2", "--top", "5"];
        let mut outputs = Vec::new();
        for threads in ["1", "3"] {
            let tokens: Vec<&str> = base
                .iter()
                .chain(&["--threads", threads])
                .copied()
                .collect();
            outputs.push(run_to_string(&tokens).expect("valid"));
        }
        assert_eq!(outputs[0], outputs[1]);
    }

    #[test]
    fn help_prints_usage() {
        let s = run_to_string(&["--help"]).expect("valid");
        assert!(s.contains("usage: sealpaa blocks"));
        let s = run_to_string(&["analyze", "--help"]).expect("valid");
        assert!(s.contains("usage: sealpaa blocks"));
    }

    #[test]
    fn unknown_subcommand_rejected() {
        assert!(run_to_string(&["bogus"]).is_err());
        assert!(run_to_string(&[]).is_err());
    }
}
