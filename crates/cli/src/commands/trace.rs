//! `sealpaa trace` — workload traces: synthesis, profiling, replay, and
//! model-fidelity reports.

use std::io::Write;

use sealpaa_cells::AdderChain;
use sealpaa_trace::{
    fidelity, generate, replay_with_backend, write_binary, write_ndjson, SynthKind, TraceRecord,
    TraceStats, VarId,
};

use crate::args::{parse_chain_cells, ParsedArgs};
use crate::error::CliError;

const HELP: &str = "\
usage: sealpaa trace <subcommand> [options]

subcommands:
  synth     generate a synthetic workload trace
  profile   stream a trace into per-bit statistics and an empirical profile
  replay    ground-truth error metrics of a trace through an adder
  fidelity  analytical estimates (under the estimated profile) vs replay

trace sources (profile, replay, fidelity):
  --input FILE    read an operand trace (NDJSON; add --binary for binary)
  --synth KIND    generate one in memory instead: uniform, gaussian-sum,
                  random-walk, or image-gradient (needs --width; honours
                  --records and --seed)

common options:
  --width N       operand width (required with --synth)
  --records M     number of records to generate (default 65536)
  --seed S        generator seed (default 0)
  --binary        read/write the compact binary framing instead of NDJSON

synth options:
  --kind KIND     workload family (required; same names as --synth)
  --out FILE      write the trace to FILE instead of standard output

replay/fidelity options:
  --cell/--cells  adder under test, as in `sealpaa analyze` (required)
  --threads T     worker threads for the bitsliced replay (default: cores)
  --backend B     SIMD backend for replay (replay only): u64, u64x2, avx2,
                  avx512 (default: widest available; see `sealpaa simd`)";

/// Runs the command.
///
/// # Errors
///
/// Returns [`CliError`] on bad options, unreadable traces, or analysis
/// failure.
pub fn run<W: Write>(tokens: &[String], out: &mut W) -> Result<(), CliError> {
    let Some(sub) = tokens.first() else {
        return Err(CliError::usage(HELP));
    };
    let rest = &tokens[1..];
    match sub.as_str() {
        "--help" | "help" => {
            writeln!(out, "{HELP}")?;
            Ok(())
        }
        "synth" => synth(rest, out),
        "profile" => profile(rest, out),
        "replay" => replay_cmd(rest, out),
        "fidelity" => fidelity_cmd(rest, out),
        other => Err(CliError::usage(format!(
            "unknown trace subcommand {other:?}\n\n{HELP}"
        ))),
    }
}

/// Loads the trace records from `--input FILE` or synthesizes them from
/// `--synth KIND`, returning `(width, records)`.
fn load_records(args: &ParsedArgs) -> Result<(usize, Vec<TraceRecord>), CliError> {
    match (args.option("input"), args.option("synth")) {
        (Some(path), None) => {
            let file = std::fs::File::open(path)
                .map_err(|e| CliError::analysis(format!("cannot open {path}: {e}")))?;
            let reader = std::io::BufReader::new(file);
            if args.flag("binary") {
                sealpaa_trace::read_binary(reader).map_err(CliError::analysis)
            } else {
                sealpaa_trace::read_ndjson(reader).map_err(CliError::analysis)
            }
        }
        (None, Some(kind)) => {
            let kind: SynthKind = kind
                .parse()
                .map_err(|_| CliError::usage(format!("--synth: unknown workload {kind:?}")))?;
            let width: usize = args.require("width")?;
            let records: usize = args.get_or("records", 1 << 16)?;
            let seed: u64 = args.get_or("seed", 0)?;
            let records = generate(kind, width, records, seed).map_err(CliError::analysis)?;
            Ok((width, records))
        }
        (None, None) => Err(CliError::usage("one of --input or --synth is required")),
        (Some(_), Some(_)) => Err(CliError::usage(
            "--input and --synth are mutually exclusive",
        )),
    }
}

fn synth<W: Write>(tokens: &[String], out: &mut W) -> Result<(), CliError> {
    if tokens.iter().any(|t| t == "--help") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let args = ParsedArgs::parse(
        tokens,
        &["kind", "width", "records", "seed", "out"],
        &["binary"],
    )?;
    let kind: SynthKind = args.require("kind")?;
    let width: usize = args.require("width")?;
    let records: usize = args.get_or("records", 1 << 16)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let trace = generate(kind, width, records, seed).map_err(CliError::analysis)?;
    let emit = |sink: &mut dyn Write| -> Result<(), CliError> {
        if args.flag("binary") {
            write_binary(sink, width, &trace).map_err(CliError::analysis)
        } else {
            write_ndjson(sink, width, trace.iter().copied()).map_err(CliError::analysis)
        }
    };
    match args.option("out") {
        Some(path) => {
            let mut file = std::io::BufWriter::new(
                std::fs::File::create(path)
                    .map_err(|e| CliError::analysis(format!("cannot create {path}: {e}")))?,
            );
            emit(&mut file)?;
            file.flush()?;
            writeln!(
                out,
                "wrote {records} {kind} records (width {width}) to {path}"
            )?;
        }
        None => emit(out)?,
    }
    Ok(())
}

fn profile<W: Write>(tokens: &[String], out: &mut W) -> Result<(), CliError> {
    if tokens.iter().any(|t| t == "--help") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let args = ParsedArgs::parse(
        tokens,
        &["input", "synth", "width", "records", "seed"],
        &["binary"],
    )?;
    let (width, records) = load_records(&args)?;
    let stats = TraceStats::from_records(width, &records).map_err(CliError::analysis)?;
    writeln!(out, "trace: {} records, width {width}", stats.records())?;
    writeln!(out, "\n{:>4}  {:>10}  {:>10}", "bit", "P(a=1)", "P(b=1)")?;
    for bit in 0..width {
        writeln!(
            out,
            "{bit:>4}  {:>10.6}  {:>10.6}",
            stats.p(VarId::A(bit)),
            stats.p(VarId::B(bit))
        )?;
    }
    writeln!(out, "P(cin=1)               : {:.6}", stats.p(VarId::Cin))?;
    match stats.max_violation_pair() {
        Some((x, y, score)) => writeln!(
            out,
            "independence violation : {score:.6} (worst pair {x} ~ {y})"
        )?,
        None => writeln!(out, "independence violation : n/a (empty trace)")?,
    }
    Ok(())
}

/// Parses the adder chain and thread count shared by `replay` and
/// `fidelity`, using the trace's own width.
fn parse_chain_and_threads(
    args: &ParsedArgs,
    width: usize,
) -> Result<(AdderChain, usize), CliError> {
    let chain = AdderChain::from_stages(parse_chain_cells(args, width)?);
    let threads: usize = args.get_or("threads", sealpaa_sim::default_threads())?;
    Ok((chain, threads))
}

const SOURCE_AND_CHAIN_OPTIONS: [&str; 8] = [
    "input", "synth", "width", "records", "seed", "cell", "cells", "threads",
];

const REPLAY_OPTIONS: [&str; 9] = [
    "input", "synth", "width", "records", "seed", "cell", "cells", "threads", "backend",
];

fn replay_cmd<W: Write>(tokens: &[String], out: &mut W) -> Result<(), CliError> {
    if tokens.iter().any(|t| t == "--help") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let args = ParsedArgs::parse(tokens, &REPLAY_OPTIONS, &["binary"])?;
    let backend = match args.option("backend") {
        Some(name) => Some(
            name.parse::<sealpaa_sim::Backend>()
                .map_err(|e| CliError::usage(format!("--backend: {e}")))?,
        ),
        None => None,
    };
    let (width, records) = load_records(&args)?;
    let (chain, threads) = parse_chain_and_threads(&args, width)?;
    let report =
        replay_with_backend(&chain, &records, threads, backend).map_err(CliError::analysis)?;
    writeln!(out, "adder: {chain}")?;
    writeln!(out, "records                : {}", report.records)?;
    writeln!(
        out,
        "output error rate      : {:.6} ({} records)",
        report.output_error_rate(),
        report.output_errors
    )?;
    writeln!(
        out,
        "stage error rate       : {:.6} ({} records)",
        report.stage_error_rate(),
        report.stage_errors
    )?;
    writeln!(
        out,
        "E[D]   (bias)          : {:+.6}",
        report.mean_error_distance()
    )?;
    writeln!(
        out,
        "E[|D|] (MED)           : {:.6}",
        report.mean_absolute_error_distance()
    )?;
    writeln!(
        out,
        "E[D^2] (MSE)           : {:.6}",
        report.mean_squared_error_distance()
    )?;
    writeln!(out, "max |D|                : {}", report.max_abs_ed)?;
    Ok(())
}

fn fidelity_cmd<W: Write>(tokens: &[String], out: &mut W) -> Result<(), CliError> {
    if tokens.iter().any(|t| t == "--help") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let args = ParsedArgs::parse(tokens, &SOURCE_AND_CHAIN_OPTIONS, &["binary"])?;
    let (width, records) = load_records(&args)?;
    let (chain, threads) = parse_chain_and_threads(&args, width)?;
    let report = fidelity(&chain, &records, threads).map_err(CliError::analysis)?;
    writeln!(out, "adder: {chain}")?;
    writeln!(out, "records                : {}", report.records)?;
    writeln!(
        out,
        "independence violation : {:.6}",
        report.independence_violation
    )?;
    writeln!(
        out,
        "\n{:<22}  {:>12}  {:>12}  {:>10}",
        "metric", "analytical", "replayed", "gap"
    )?;
    let mut row = |name: &str, analytical: f64, replayed: f64| -> std::io::Result<()> {
        writeln!(
            out,
            "{name:<22}  {analytical:>12.6}  {replayed:>12.6}  {:>10.6}",
            (analytical - replayed).abs()
        )
    };
    row(
        "P(stage error)",
        report.analytical_stage_error,
        report.replay.stage_error_rate(),
    )?;
    row(
        "P(output error)",
        report.analytical_output_error,
        report.replay.output_error_rate(),
    )?;
    row(
        "E[D] (bias)",
        report.analytical_mean_ed,
        report.replay.mean_error_distance(),
    )?;
    if let Some(med) = report.analytical_med {
        row(
            "E[|D|] (MED)",
            med,
            report.replay.mean_absolute_error_distance(),
        )?;
    }
    row(
        "E[D^2] (MSE)",
        report.analytical_mse,
        report.replay.mean_squared_error_distance(),
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(tokens: &[&str]) -> Result<String, CliError> {
        let tokens: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("sealpaa-cli-trace-{}-{name}", std::process::id()));
        path
    }

    #[test]
    fn help_prints_usage() {
        let s = run_to_string(&["--help"]).expect("valid");
        assert!(s.contains("usage: sealpaa trace"));
        assert!(run_to_string(&[]).is_err());
        assert!(run_to_string(&["bogus"]).is_err());
    }

    #[test]
    fn synth_emits_ndjson_to_stdout() {
        let s = run_to_string(&[
            "synth",
            "--kind",
            "uniform",
            "--width",
            "4",
            "--records",
            "3",
            "--seed",
            "1",
        ])
        .expect("valid");
        assert!(s.contains("\"sealpaa_trace\":1"), "{s}");
        assert_eq!(s.lines().count(), 4, "{s}");
    }

    #[test]
    fn synth_profile_round_trip_through_a_file() {
        let path = temp_path("roundtrip.ndjson");
        let path_str = path.to_str().expect("utf8 path");
        let s = run_to_string(&[
            "synth",
            "--kind",
            "image-gradient",
            "--width",
            "8",
            "--records",
            "256",
            "--out",
            path_str,
        ])
        .expect("valid");
        assert!(s.contains("wrote 256 image-gradient records"), "{s}");
        let s = run_to_string(&["profile", "--input", path_str]).expect("valid");
        std::fs::remove_file(&path).expect("cleanup");
        assert!(s.contains("trace: 256 records, width 8"), "{s}");
        assert!(s.contains("independence violation"), "{s}");
    }

    #[test]
    fn binary_round_trip_replays() {
        let path = temp_path("roundtrip.bin");
        let path_str = path.to_str().expect("utf8 path");
        run_to_string(&[
            "synth",
            "--kind",
            "uniform",
            "--width",
            "6",
            "--records",
            "128",
            "--binary",
            "--out",
            path_str,
        ])
        .expect("valid");
        let s = run_to_string(&[
            "replay",
            "--input",
            path_str,
            "--binary",
            "--cell",
            "lpaa2",
            "--threads",
            "2",
        ])
        .expect("valid");
        std::fs::remove_file(&path).expect("cleanup");
        assert!(s.contains("records                : 128"), "{s}");
        assert!(s.contains("output error rate"), "{s}");
    }

    #[test]
    fn replay_output_is_identical_on_every_backend() {
        let run_backend = |name: &str| {
            run_to_string(&[
                "replay",
                "--synth",
                "random-walk",
                "--width",
                "10",
                "--records",
                "1000",
                "--cell",
                "lpaa5",
                "--backend",
                name,
            ])
            .expect("valid")
        };
        let baseline = run_backend("u64");
        for backend in sealpaa_sim::Backend::available() {
            assert_eq!(run_backend(backend.name()), baseline, "{backend}");
        }
        assert!(run_to_string(&[
            "replay",
            "--synth",
            "uniform",
            "--width",
            "4",
            "--cell",
            "lpaa1",
            "--backend",
            "bogus"
        ])
        .is_err());
    }

    #[test]
    fn fidelity_on_synthetic_trace() {
        let s = run_to_string(&[
            "fidelity",
            "--synth",
            "random-walk",
            "--width",
            "8",
            "--records",
            "4096",
            "--cell",
            "lpaa2",
            "--threads",
            "1",
        ])
        .expect("valid");
        assert!(s.contains("independence violation"), "{s}");
        assert!(s.contains("P(output error)"), "{s}");
        assert!(s.contains("E[|D|] (MED)"), "{s}");
    }

    #[test]
    fn replay_of_accurate_chain_never_errs() {
        let s = run_to_string(&[
            "replay",
            "--synth",
            "gaussian-sum",
            "--width",
            "10",
            "--records",
            "512",
            "--cell",
            "accurate",
        ])
        .expect("valid");
        assert!(s.contains("output error rate      : 0.000000"), "{s}");
    }

    #[test]
    fn source_must_be_exactly_one() {
        assert!(run_to_string(&["replay", "--cell", "lpaa1"]).is_err());
        assert!(
            run_to_string(&["profile", "--input", "x", "--synth", "uniform", "--width", "4"])
                .is_err()
        );
        assert!(run_to_string(&["profile", "--synth", "nonsense", "--width", "4"]).is_err());
    }
}
