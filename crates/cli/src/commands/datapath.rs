//! `sealpaa datapath` — analytical datapath SNR prediction, simulation,
//! model fitting, and per-adder-node optimization.

use std::io::Write;

use sealpaa_cells::Cell;
use sealpaa_datapath::{Datapath, Signal};
use sealpaa_explore::{accurate_cell_with_proxy_costs, best_datapath_assignment, Budget};
use sealpaa_propagate::{check_against_monte_carlo, fit_and_check, predict, topologies};
use sealpaa_sim::default_threads;
use sealpaa_trace::{generate, SynthKind};

use crate::args::{parse_cell, ParsedArgs};
use crate::error::CliError;
use crate::json::Json;

const HELP: &str = "\
usage: sealpaa datapath <estimate|simulate|fit|optimize> [options]

Composes per-adder error models through a whole datapath graph and
predicts the output error moments and SNR analytically — no simulation in
the loop (and `simulate` for Monte-Carlo ground truth when wanted).

topology options (all actions):
  --topology KIND  fir | conv2d | multiplier (default fir)
  --cell NAME      the adder cell every add node uses (default lpaa5)
  --coeffs LIST    fir taps, comma separated (default 1,2,1)
  --kernel SPEC    conv2d rows, ';' separated (default 1,2,1;2,4,2;1,2,1)
  --width N        input/sample/pixel bits (default 8)
  --p X            P(bit = 1) for every input bit (default 0.5)

estimate:
  --pmf            also compose the full output error PMF (narrow adders)
simulate:
  --samples N      Monte-Carlo samples (default 20000)
  --seed S         RNG seed (default 1)
fit:
  --synth KIND     stream generator: uniform | gaussian-sum | random-walk |
                   image-gradient (default gaussian-sum)
  --length N       stream length (default 20000)
  --seed S         generator seed (default 1)
optimize:
  --candidates A,B,.. candidate cells per adder node (default
                      lpaa1,lpaa2,lpaa5,accurate; 'accurate' uses the
                      estimated costs from DESIGN.md)
  --budget-power X    maximum summed adder power in nW
  --budget-area X     maximum summed adder area in GE
  --threads T         worker threads (default: all cores; results are
                      identical for any T)

common:
  --json           machine-readable output";

fn parse_kernel(spec: &str) -> Result<Vec<Vec<u64>>, CliError> {
    spec.split(';')
        .map(|row| {
            row.split(',')
                .map(|t| {
                    t.parse()
                        .map_err(|_| CliError::usage(format!("--kernel: cannot parse {t:?}")))
                })
                .collect()
        })
        .collect()
}

/// Builds the requested topology and the per-bit input model.
#[allow(clippy::type_complexity)] // one bundle, used by all four actions
fn build(
    args: &ParsedArgs,
) -> Result<(Datapath, Signal, Vec<(String, Vec<f64>)>, usize), CliError> {
    let cell = parse_cell(args.option("cell").unwrap_or("lpaa5"))?;
    let width: usize = args.get_or("width", 8)?;
    if !(1..=32).contains(&width) {
        return Err(CliError::usage("--width must be 1..=32"));
    }
    let p: f64 = args.get_or("p", 0.5)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(CliError::usage("--p must be within [0, 1]"));
    }
    let topology = args.option("topology").unwrap_or("fir");
    let topo = match topology {
        "fir" => {
            let coeffs: Vec<u64> = args
                .option("coeffs")
                .unwrap_or("1,2,1")
                .split(',')
                .map(|t| {
                    t.parse()
                        .map_err(|_| CliError::usage(format!("--coeffs: cannot parse {t:?}")))
                })
                .collect::<Result<_, _>>()?;
            if coeffs.is_empty() || coeffs.iter().all(|&c| c == 0) {
                return Err(CliError::usage("--coeffs needs a non-zero tap"));
            }
            topologies::fir(&cell, &coeffs, width).map_err(CliError::analysis)?
        }
        "conv2d" => {
            let kernel = parse_kernel(args.option("kernel").unwrap_or("1,2,1;2,4,2;1,2,1"))?;
            let cols = kernel.first().map_or(0, Vec::len);
            if cols == 0 || kernel.iter().any(|r| r.len() != cols) {
                return Err(CliError::usage("--kernel rows must be non-empty and equal"));
            }
            if kernel.iter().flatten().all(|&c| c == 0) {
                return Err(CliError::usage("--kernel needs a non-zero coefficient"));
            }
            topologies::conv2d(&cell, &kernel, width).map_err(CliError::analysis)?
        }
        "multiplier" => topologies::multiplier(&cell, width).map_err(CliError::analysis)?,
        other => {
            return Err(CliError::usage(format!(
                "--topology must be fir, conv2d or multiplier, got {other:?}"
            )))
        }
    };
    let inputs: Vec<(String, Vec<f64>)> = topo
        .inputs
        .iter()
        .map(|name| {
            let bits = topo
                .datapath
                .signals()
                .find(|&s| matches!(topo.datapath.kind(s), sealpaa_datapath::NodeKind::Input { name: n } if n == name))
                .map(|s| topo.datapath.width(s))
                .unwrap_or(width);
            (name.clone(), vec![p; bits])
        })
        .collect();
    Ok((topo.datapath, topo.output, inputs, width))
}

fn as_refs(inputs: &[(String, Vec<f64>)]) -> Vec<(&str, Vec<f64>)> {
    inputs
        .iter()
        .map(|(n, b)| (n.as_str(), b.clone()))
        .collect()
}

fn db_or_none(value: Option<f64>) -> Json {
    match value {
        Some(db) => Json::Number(db),
        None => Json::Null,
    }
}

fn db_or_text(value: Option<f64>) -> String {
    match value {
        Some(db) => format!("{db:.2} dB"),
        None => "undefined (error-free)".to_owned(),
    }
}

const TOPOLOGY_OPTIONS: [&str; 6] = ["topology", "cell", "coeffs", "kernel", "width", "p"];

/// Runs the command.
///
/// # Errors
///
/// Returns [`CliError`] on unknown actions, bad options, or graphs the
/// engines reject.
pub fn run<W: Write>(tokens: &[String], out: &mut W) -> Result<(), CliError> {
    if tokens.iter().any(|t| t == "--help") || tokens.is_empty() {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let action = tokens[0].as_str();
    let rest = &tokens[1..];
    match action {
        "estimate" => estimate(rest, out),
        "simulate" => simulate(rest, out),
        "fit" => fit(rest, out),
        "optimize" => optimize(rest, out),
        other => Err(CliError::usage(format!(
            "unknown datapath action {other:?}\n\n{HELP}"
        ))),
    }
}

fn estimate<W: Write>(tokens: &[String], out: &mut W) -> Result<(), CliError> {
    let args = ParsedArgs::parse(tokens, &TOPOLOGY_OPTIONS, &["json", "pmf"])?;
    let (dp, output, inputs, _) = build(&args)?;
    let refs = as_refs(&inputs);
    let p = predict(&dp, output, &refs, args.flag("pmf")).map_err(CliError::analysis)?;
    let m = &p.moments;
    if args.flag("json") {
        let mut obj = Json::object()
            .field("mse", m.error_second)
            .field("mean_error", m.error_mean)
            .field("signal_power", m.value_second)
            .field("snr_db", db_or_none(m.snr_db()))
            .field("any_adder_error", m.any_adder_error())
            .field(
                "adders",
                Json::Array(
                    m.adders
                        .iter()
                        .map(|a| {
                            Json::object()
                                .field("signal", a.signal.index())
                                .field("error_probability", a.error_probability)
                                .field("mean", a.mean)
                                .field("second", a.second)
                                .build()
                        })
                        .collect(),
                ),
            );
        if let Some(pmf) = &p.pmf {
            obj = obj
                .field("pmf_points", pmf.points().len())
                .field("pmf_truncated_mass", pmf.truncated_mass())
                .field("pmf_max_abs_error", pmf.max_absolute_error());
        }
        writeln!(out, "{}", obj.build().render())?;
        return Ok(());
    }
    writeln!(out, "adders         : {}", m.adders.len())?;
    writeln!(out, "predicted MSE  : {:.4}", m.error_second)?;
    writeln!(out, "predicted bias : {:+.4}", m.error_mean)?;
    writeln!(out, "signal power   : {:.4}", m.value_second)?;
    writeln!(out, "predicted SNR  : {}", db_or_text(m.snr_db()))?;
    writeln!(out, "any adder errs : {:.4}", m.any_adder_error())?;
    for a in &m.adders {
        writeln!(
            out,
            "  adder @#{:<3} P(err)={:.4}  E[D]={:+.3}  E[D^2]={:.3}",
            a.signal.index(),
            a.error_probability,
            a.mean,
            a.second
        )?;
    }
    if let Some(pmf) = &p.pmf {
        writeln!(
            out,
            "error PMF      : {} points, max |D| {}, truncated mass {:.2e}",
            pmf.points().len(),
            pmf.max_absolute_error(),
            pmf.truncated_mass()
        )?;
    }
    Ok(())
}

fn simulate<W: Write>(tokens: &[String], out: &mut W) -> Result<(), CliError> {
    let mut options = TOPOLOGY_OPTIONS.to_vec();
    options.extend(["samples", "seed"]);
    let args = ParsedArgs::parse(tokens, &options, &["json"])?;
    let (dp, output, inputs, _) = build(&args)?;
    let samples: u64 = args.get_or("samples", 20_000)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let refs = as_refs(&inputs);
    let f =
        check_against_monte_carlo(&dp, output, &refs, samples, seed).map_err(CliError::analysis)?;
    if args.flag("json") {
        writeln!(
            out,
            "{}",
            Json::object()
                .field("samples", f.measured.samples)
                .field("predicted_mse", f.predicted.error_second)
                .field("measured_mse", f.measured.mse)
                .field("predicted_snr_db", db_or_none(f.predicted.snr_db()))
                .field("measured_snr_db", db_or_none(f.measured.snr_db()))
                .field("snr_gap_db", db_or_none(f.snr_gap_db()))
                .field("measured_error_rate", f.measured.error_rate)
                .build()
                .render()
        )?;
        return Ok(());
    }
    writeln!(out, "samples        : {}", f.measured.samples)?;
    writeln!(out, "predicted MSE  : {:.4}", f.predicted.error_second)?;
    writeln!(out, "measured MSE   : {:.4}", f.measured.mse)?;
    writeln!(out, "predicted SNR  : {}", db_or_text(f.predicted.snr_db()))?;
    writeln!(out, "measured SNR   : {}", db_or_text(f.measured.snr_db()))?;
    match f.snr_gap_db() {
        Some(gap) => writeln!(out, "SNR gap        : {gap:+.2} dB")?,
        None => writeln!(out, "SNR gap        : undefined")?,
    }
    writeln!(out, "error rate     : {:.4}", f.measured.error_rate)?;
    Ok(())
}

fn fit<W: Write>(tokens: &[String], out: &mut W) -> Result<(), CliError> {
    let mut options = TOPOLOGY_OPTIONS.to_vec();
    options.extend(["synth", "length", "seed"]);
    let args = ParsedArgs::parse(tokens, &options, &["json"])?;
    let (dp, output, _, width) = build(&args)?;
    let synth: SynthKind = args
        .option("synth")
        .unwrap_or("gaussian-sum")
        .parse()
        .map_err(CliError::analysis)?;
    let length: usize = args.get_or("length", 20_000)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let values: Vec<u64> = generate(synth, width, length, seed)
        .map_err(CliError::analysis)?
        .into_iter()
        .map(|r| r.a)
        .collect();
    let (fits, f) = fit_and_check(&dp, output, &values).map_err(CliError::analysis)?;
    if args.flag("json") {
        writeln!(
            out,
            "{}",
            Json::object()
                .field(
                    "inputs",
                    Json::Array(
                        fits.iter()
                            .map(|fit| {
                                Json::object()
                                    .field("name", fit.name.as_str())
                                    .field(
                                        "bits",
                                        Json::Array(
                                            fit.bits.iter().map(|&b| Json::Number(b)).collect(),
                                        ),
                                    )
                                    .field("independence_violation", fit.independence_violation)
                                    .build()
                            })
                            .collect(),
                    ),
                )
                .field("predicted_snr_db", db_or_none(f.predicted.snr_db()))
                .field("measured_snr_db", db_or_none(f.measured.snr_db()))
                .field("snr_gap_db", db_or_none(f.snr_gap_db()))
                .build()
                .render()
        )?;
        return Ok(());
    }
    writeln!(out, "stream         : {synth} x {length}")?;
    for fit in &fits {
        writeln!(
            out,
            "  input {:<6} p(bit)={}  indep. violation {:.4}",
            fit.name,
            fit.bits
                .iter()
                .map(|b| format!("{b:.2}"))
                .collect::<Vec<_>>()
                .join(","),
            fit.independence_violation
        )?;
    }
    writeln!(out, "predicted SNR  : {}", db_or_text(f.predicted.snr_db()))?;
    writeln!(out, "replayed SNR   : {}", db_or_text(f.measured.snr_db()))?;
    match f.snr_gap_db() {
        Some(gap) => writeln!(out, "SNR gap        : {gap:+.2} dB")?,
        None => writeln!(out, "SNR gap        : undefined")?,
    }
    Ok(())
}

fn optimize<W: Write>(tokens: &[String], out: &mut W) -> Result<(), CliError> {
    let mut options = TOPOLOGY_OPTIONS.to_vec();
    options.extend(["candidates", "budget-power", "budget-area", "threads"]);
    let args = ParsedArgs::parse(tokens, &options, &["json"])?;
    let (dp, output, inputs, _) = build(&args)?;
    let candidates: Vec<Cell> = match args.option("candidates") {
        None => vec![
            parse_cell("lpaa1")?,
            parse_cell("lpaa2")?,
            parse_cell("lpaa5")?,
            accurate_cell_with_proxy_costs(),
        ],
        Some(list) => list
            .split(',')
            .map(|name| {
                if name.eq_ignore_ascii_case("accurate") || name.eq_ignore_ascii_case("accufa") {
                    Ok(accurate_cell_with_proxy_costs())
                } else {
                    parse_cell(name)
                }
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    let parse_cap = |key: &str| -> Result<Option<f64>, CliError> {
        match args.option(key) {
            None => Ok(None),
            Some(v) => Ok(Some(v.parse().map_err(|_| {
                CliError::usage(format!("--{key}: cannot parse {v:?}"))
            })?)),
        }
    };
    let budget = Budget {
        max_power_nw: parse_cap("budget-power")?,
        max_area_ge: parse_cap("budget-area")?,
    };
    let threads = args.get_or("threads", default_threads())?;
    let refs = as_refs(&inputs);
    let best = best_datapath_assignment(&dp, output, &refs, &candidates, &budget, threads)
        .map_err(CliError::analysis)?;
    if args.flag("json") {
        let body = match &best {
            None => Json::object().field("feasible", false).build(),
            Some(design) => Json::object()
                .field("feasible", true)
                .field(
                    "cells",
                    Json::Array(
                        design
                            .cells
                            .iter()
                            .map(|c| Json::String(c.name().to_owned()))
                            .collect(),
                    ),
                )
                .field("mse", design.evaluation.mse)
                .field("power_nw", design.evaluation.power_nw)
                .field("area_ge", design.evaluation.area_ge)
                .field("snr_db", db_or_none(design.snr_db()))
                .build(),
        };
        writeln!(out, "{}", body.render())?;
        return Ok(());
    }
    match best {
        None => writeln!(out, "no assignment fits the budget")?,
        Some(design) => {
            writeln!(
                out,
                "best assignment ({} adders): {}",
                design.cells.len(),
                design
                    .cells
                    .iter()
                    .map(|c| c.name().to_owned())
                    .collect::<Vec<_>>()
                    .join(", ")
            )?;
            writeln!(out, "predicted MSE  : {:.4}", design.evaluation.mse)?;
            writeln!(out, "predicted SNR  : {}", db_or_text(design.snr_db()))?;
            writeln!(
                out,
                "cost           : {:.0} nW, {:.2} GE",
                design.evaluation.power_nw, design.evaluation.area_ge
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(tokens: &[&str]) -> Result<String, CliError> {
        let tokens: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn estimate_reports_snr_and_adders() {
        let s =
            run_to_string(&["estimate", "--cell", "lpaa5", "--coeffs", "1,2,1"]).expect("valid");
        assert!(s.contains("predicted SNR"), "{s}");
        assert!(s.contains("adder @#"), "{s}");
    }

    #[test]
    fn estimate_json_is_parseable() {
        let s = run_to_string(&["estimate", "--json", "--pmf"]).expect("valid");
        let doc = Json::parse(&s).expect("valid JSON");
        assert!(doc.get("snr_db").is_some());
        assert!(doc.get("pmf_points").is_some());
    }

    #[test]
    fn estimate_of_accurate_datapath_is_error_free() {
        let s = run_to_string(&["estimate", "--cell", "accurate"]).expect("valid");
        assert!(s.contains("undefined (error-free)"), "{s}");
    }

    #[test]
    fn simulate_reports_gap() {
        let s =
            run_to_string(&["simulate", "--samples", "2000", "--cell", "lpaa2"]).expect("valid");
        assert!(s.contains("SNR gap"), "{s}");
    }

    #[test]
    fn fit_reports_fitted_bits() {
        let s = run_to_string(&["fit", "--length", "3000", "--cell", "lpaa6"]).expect("valid");
        assert!(s.contains("indep. violation"), "{s}");
        assert!(s.contains("replayed SNR"), "{s}");
    }

    #[test]
    fn optimize_with_tight_power_budget_picks_free_cells() {
        let s = run_to_string(&[
            "optimize",
            "--coeffs",
            "1,1",
            "--candidates",
            "lpaa1,lpaa5",
            "--budget-power",
            "0",
        ])
        .expect("valid");
        // Only LPAA 5 (0 nW) fits a zero budget.
        assert!(s.contains("LPAA 5"), "{s}");
        assert!(!s.contains("LPAA 1"), "{s}");
    }

    #[test]
    fn optimize_is_thread_count_invariant() {
        let base = ["optimize", "--coeffs", "1,2,1", "--width", "6"];
        let mut outputs = Vec::new();
        for threads in ["1", "3"] {
            let tokens: Vec<&str> = base
                .iter()
                .chain(&["--threads", threads])
                .copied()
                .collect();
            outputs.push(run_to_string(&tokens).expect("valid"));
        }
        assert_eq!(outputs[0], outputs[1]);
    }

    #[test]
    fn multiplier_topology_estimates() {
        let s = run_to_string(&[
            "estimate",
            "--topology",
            "multiplier",
            "--width",
            "4",
            "--cell",
            "lpaa1",
        ])
        .expect("valid");
        assert!(s.contains("predicted SNR"), "{s}");
    }

    #[test]
    fn conv2d_topology_estimates() {
        let s = run_to_string(&[
            "estimate",
            "--topology",
            "conv2d",
            "--kernel",
            "1,2;2,4",
            "--cell",
            "lpaa6",
        ])
        .expect("valid");
        assert!(s.contains("predicted SNR"), "{s}");
    }

    #[test]
    fn unknown_action_rejected() {
        assert!(run_to_string(&["frobnicate"]).is_err());
        assert!(run_to_string(&["estimate", "--topology", "nope"]).is_err());
    }

    #[test]
    fn help_prints_usage() {
        let s = run_to_string(&["--help"]).expect("valid");
        assert!(s.contains("usage: sealpaa datapath"));
    }
}
