//! `sealpaa verilog` — emit structural Verilog.

use std::io::Write;

use sealpaa_cells::AdderChain;
use sealpaa_gear::GearConfig;
use sealpaa_hdl::{cell_verilog, chain_verilog, gear_verilog};

use crate::args::{parse_cell, parse_chain_cells, ParsedArgs};
use crate::error::CliError;

const HELP: &str = "\
usage: sealpaa verilog (--cell NAME | --width N --cell NAME | --width N --cells A,B,... | --gear N,R,P)

Emits structural Verilog (two-level synthesis of the truth tables).

forms:
  --cell NAME                       one single-bit cell module
  --width N --cell NAME             an N-bit homogeneous ripple chain
  --width N --cells A,B,...         an N-bit hybrid ripple chain
  --gear N,R,P                      a GeAr(N, R, P) adder";

/// Runs the command.
///
/// # Errors
///
/// Returns [`CliError`] on bad options.
pub fn run<W: Write>(tokens: &[String], out: &mut W) -> Result<(), CliError> {
    if tokens.iter().any(|t| t == "--help") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let args = ParsedArgs::parse(tokens, &["cell", "cells", "width", "gear"], &[])?;
    if let Some(spec) = args.option("gear") {
        let parts: Vec<&str> = spec.split(',').collect();
        if parts.len() != 3 {
            return Err(CliError::usage("--gear expects N,R,P"));
        }
        let parse = |s: &str| -> Result<usize, CliError> {
            s.parse()
                .map_err(|_| CliError::usage(format!("--gear: cannot parse {s:?}")))
        };
        let config = GearConfig::new(parse(parts[0])?, parse(parts[1])?, parse(parts[2])?)
            .map_err(CliError::analysis)?;
        write!(out, "{}", gear_verilog(&config))?;
        return Ok(());
    }
    match args.option("width") {
        None => {
            let cell = parse_cell(
                args.option("cell")
                    .ok_or_else(|| CliError::usage("--cell, --width, or --gear is required"))?,
            )?;
            write!(out, "{}", cell_verilog(&cell))?;
        }
        Some(width) => {
            let width: usize = width
                .parse()
                .map_err(|_| CliError::usage(format!("--width: cannot parse {width:?}")))?;
            if width == 0 {
                return Err(CliError::usage("--width must be at least 1"));
            }
            let chain = AdderChain::from_stages(parse_chain_cells(&args, width)?);
            write!(out, "{}", chain_verilog(&chain))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(tokens: &[&str]) -> Result<String, CliError> {
        let tokens: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn single_cell_module() {
        let s = run_to_string(&["--cell", "lpaa5"]).expect("valid");
        assert!(s.contains("module lpaa_5"), "{s}");
        assert!(s.contains("assign sum = b;"), "{s}");
    }

    #[test]
    fn chain_module() {
        let s = run_to_string(&["--width", "4", "--cell", "lpaa1"]).expect("valid");
        assert!(s.contains("module approx_adder_4"), "{s}");
    }

    #[test]
    fn hybrid_chain_module() {
        let s = run_to_string(&["--width", "2", "--cells", "lpaa6,accurate"]).expect("valid");
        assert!(s.contains("LPAA 6, AccuFA"), "{s}");
    }

    #[test]
    fn gear_module() {
        let s = run_to_string(&["--gear", "8,2,2"]).expect("valid");
        assert!(s.contains("module gear_n8_r2_p2"), "{s}");
    }

    #[test]
    fn malformed_gear_rejected() {
        assert!(run_to_string(&["--gear", "8,2"]).is_err());
        assert!(run_to_string(&["--gear", "9,2,2"]).is_err());
    }

    #[test]
    fn help_prints_usage() {
        let s = run_to_string(&["--help"]).expect("valid");
        assert!(s.contains("usage: sealpaa verilog"));
    }
}
