//! `sealpaa fir` — approximate FIR filter quality on a synthetic stream.

use std::io::Write;

use sealpaa_datapath::FirFilter;

use crate::args::{parse_cell, ParsedArgs};
use crate::error::CliError;

const HELP: &str = "\
usage: sealpaa fir --cell NAME --taps C0,C1,... [options]

Runs a constant-coefficient FIR filter (every addition through approximate
adder chains) over a synthetic noisy-sine stream and reports PSNR-style
quality against the exact filter.

options:
  --cell NAME      the accumulator cell (required)
  --taps LIST      unsigned coefficients, comma separated (required)
  --sample-bits N  input sample width (default 8)
  --length N       stream length (default 10000)";

/// Runs the command.
///
/// # Errors
///
/// Returns [`CliError`] on bad options or an accumulator that would exceed
/// the evaluation width.
pub fn run<W: Write>(tokens: &[String], out: &mut W) -> Result<(), CliError> {
    if tokens.iter().any(|t| t == "--help") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let args = ParsedArgs::parse(tokens, &["cell", "taps", "sample-bits", "length"], &[])?;
    let cell = parse_cell(
        args.option("cell")
            .ok_or_else(|| CliError::usage("--cell is required"))?,
    )?;
    let taps: Vec<u64> = args
        .option("taps")
        .ok_or_else(|| CliError::usage("--taps is required"))?
        .split(',')
        .map(|t| {
            t.parse()
                .map_err(|_| CliError::usage(format!("--taps: cannot parse {t:?}")))
        })
        .collect::<Result<_, _>>()?;
    let sample_bits: usize = args.get_or("sample-bits", 8)?;
    if !(1..=32).contains(&sample_bits) {
        return Err(CliError::usage("--sample-bits must be 1..=32"));
    }
    let length: usize = args.get_or("length", 10_000)?;

    let fir = FirFilter::new(cell.clone(), &taps, sample_bits).map_err(CliError::analysis)?;
    // Deterministic noisy sine in the sample range.
    let peak = (1u64 << sample_bits) - 1;
    let samples: Vec<u64> = (0..length)
        .map(|i| {
            let clean = 0.5 + 0.35 * (i as f64 / 37.0).sin();
            let noise = 0.1 * ((i as f64 * 977.0).sin());
            ((clean + noise).clamp(0.0, 1.0) * peak as f64) as u64
        })
        .collect();
    let q = fir.quality(&samples);
    writeln!(
        out,
        "filter       : {} taps {:?}, {} accumulator",
        fir.taps(),
        taps,
        cell.name()
    )?;
    writeln!(out, "outputs      : {}", q.outputs)?;
    writeln!(
        out,
        "wrong outputs: {} ({:.4})",
        q.wrong_outputs,
        q.wrong_outputs as f64 / q.outputs.max(1) as f64
    )?;
    writeln!(out, "MSE          : {:.4}", q.mse)?;
    match q.psnr_db {
        None => writeln!(out, "PSNR         : identical (error-free)")?,
        Some(db) => writeln!(out, "PSNR         : {db:.2} dB")?,
    }
    writeln!(out, "max |error|  : {}", q.max_absolute_error)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(tokens: &[&str]) -> Result<String, CliError> {
        let tokens: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn exact_filter_is_error_free() {
        let s = run_to_string(&["--cell", "accurate", "--taps", "1,2,1", "--length", "500"])
            .expect("valid");
        assert!(s.contains("PSNR         : identical (error-free)"), "{s}");
    }

    #[test]
    fn approximate_filter_reports_finite_psnr() {
        let s = run_to_string(&["--cell", "lpaa5", "--taps", "1,2,1", "--length", "500"])
            .expect("valid");
        assert!(s.contains("dB"), "{s}");
    }

    #[test]
    fn missing_required_options_rejected() {
        assert!(run_to_string(&["--cell", "lpaa1"]).is_err());
        assert!(run_to_string(&["--taps", "1,1"]).is_err());
        assert!(run_to_string(&["--cell", "lpaa1", "--taps", "x"]).is_err());
    }

    #[test]
    fn help_prints_usage() {
        let s = run_to_string(&["--help"]).expect("valid");
        assert!(s.contains("usage: sealpaa fir"));
    }
}
