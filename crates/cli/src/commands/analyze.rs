//! `sealpaa analyze` — the paper's analytical method.

use std::io::Write;

use sealpaa_cells::AdderChain;
use sealpaa_core::{analyze_instrumented, exact_error_analysis};
use sealpaa_num::Prob;

use crate::args::{parse_chain_cells, parse_profile, parse_profile_rational, ParsedArgs};
use crate::error::CliError;
use crate::json::Json;

const HELP: &str = "\
usage: sealpaa analyze --width N (--cell NAME | --cells A,B,...) [options]

Computes P(error) of a multi-bit adder with the paper's recursive method.

options:
  --width N       number of stages (required)
  --cell NAME     homogeneous chain of NAME (accurate, lpaa1..lpaa7, or a
                  custom truth table SSSSSSSS/CCCCCCCC)
  --cells A,B,..  hybrid chain, one cell per stage, LSB first
  --p P           constant P(bit = 1) for all inputs (default 0.5)
  --pa L / --pb L per-bit probability lists, comma separated
  --cin P         carry-in probability (default: --p)
  --trace         print the per-stage carry recursion (paper Table 4 style)
  --exact         run in exact rational arithmetic and print the fraction
  --joint         also run the exact joint-chain DP (output-value semantics)
  --ops           print the operation counts (paper Table 8 discussion)
  --json          emit a machine-readable JSON object instead of text";

/// Runs the command.
///
/// # Errors
///
/// Returns [`CliError`] on bad options or analysis failure.
pub fn run<W: Write>(tokens: &[String], out: &mut W) -> Result<(), CliError> {
    if tokens.iter().any(|t| t == "--help") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let args = ParsedArgs::parse(
        tokens,
        &["width", "cell", "cells", "p", "pa", "pb", "cin"],
        &["trace", "exact", "joint", "ops", "json"],
    )?;
    let width: usize = args.require("width")?;
    if width == 0 {
        return Err(CliError::usage("--width must be at least 1"));
    }
    let chain = AdderChain::from_stages(parse_chain_cells(&args, width)?);

    if args.flag("json") {
        let profile = parse_profile(&args, width)?;
        let analysis = sealpaa_core::analyze(&chain, &profile).map_err(CliError::analysis)?;
        let stages: Vec<Json> = analysis
            .stages()
            .iter()
            .map(|s| {
                Json::object()
                    .field("stage", s.stage)
                    .field("cell", chain.stage(s.stage).name())
                    .field("p_carry_and_success", *s.carry_out.p_carry_and_success())
                    .field(
                        "p_not_carry_and_success",
                        *s.carry_out.p_not_carry_and_success(),
                    )
                    .field("success_through", s.success_through)
                    .build()
            })
            .collect();
        let doc = Json::object()
            .field("adder", chain.to_string())
            .field("width", width)
            .field("error_probability", analysis.error_probability())
            .field("success_probability", analysis.success_probability())
            .field("stages", stages)
            .build();
        writeln!(out, "{}", doc.render())?;
        return Ok(());
    }

    writeln!(out, "adder: {chain}")?;
    if args.flag("exact") {
        // Probabilities are re-parsed as exact rationals ("0.9" stays 9/10)
        // so the printed fractions are human-sized.
        let exact_profile = parse_profile_rational(&args, width)?;
        let (analysis, ops) =
            analyze_instrumented(&chain, &exact_profile).map_err(CliError::analysis)?;
        writeln!(
            out,
            "P(error)   = {} = {}",
            analysis.error_probability(),
            analysis.error_probability().to_decimal(10)
        )?;
        writeln!(
            out,
            "P(success) = {} = {}",
            analysis.success_probability(),
            analysis.success_probability().to_decimal(10)
        )?;
        if args.flag("trace") {
            print_trace(out, &analysis)?;
        }
        if args.flag("ops") {
            writeln!(out, "operations: {ops}")?;
        }
    } else {
        let profile = parse_profile(&args, width)?;
        let (analysis, ops) = analyze_instrumented(&chain, &profile).map_err(CliError::analysis)?;
        writeln!(out, "P(error)   = {:.10}", analysis.error_probability())?;
        writeln!(out, "P(success) = {:.10}", analysis.success_probability())?;
        if args.flag("trace") {
            print_trace(out, &analysis)?;
        }
        if args.flag("ops") {
            writeln!(out, "operations: {ops}")?;
        }
    }
    if args.flag("joint") {
        let profile = parse_profile(&args, width)?;
        let joint = exact_error_analysis(&chain, &profile).map_err(CliError::analysis)?;
        writeln!(
            out,
            "output-value P(error) = {:.10} (first-deviation {:.10})",
            joint.output_error, joint.stage_error
        )?;
    }
    Ok(())
}

fn print_trace<W: Write, T: Prob>(
    out: &mut W,
    analysis: &sealpaa_core::Analysis<T>,
) -> Result<(), CliError> {
    writeln!(
        out,
        "\n{:>5}  {:>10}  {:>10}  {:>12}  {:>12}  {:>12}",
        "stage", "P(A)", "P(B)", "P(C̄next∩S)", "P(Cnext∩S)", "P(Succ..i)"
    )?;
    for stage in analysis.stages() {
        writeln!(
            out,
            "{:>5}  {:>10.6}  {:>10.6}  {:>12.6}  {:>12.6}  {:>12.6}",
            stage.stage,
            stage.pa.to_f64(),
            stage.pb.to_f64(),
            stage.carry_out.p_not_carry_and_success().to_f64(),
            stage.carry_out.p_carry_and_success().to_f64(),
            stage.success_through.to_f64(),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(tokens: &[&str]) -> Result<String, CliError> {
        let tokens: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn table7_value_via_cli() {
        let s = run_to_string(&["--width", "2", "--cell", "lpaa1", "--p", "0.1"])
            .expect("valid invocation");
        assert!(s.contains("P(error)   = 0.3078"), "{s}");
    }

    #[test]
    fn exact_mode_prints_fraction() {
        let s = run_to_string(&["--width", "2", "--cell", "lpaa5", "--p", "0.5", "--exact"])
            .expect("valid invocation");
        assert!(s.contains('/'), "expected a fraction in:\n{s}");
    }

    #[test]
    fn trace_prints_one_row_per_stage() {
        let s = run_to_string(&["--width", "4", "--cell", "lpaa1", "--p", "0.5", "--trace"])
            .expect("valid invocation");
        assert!(s.contains("P(Succ..i)"));
        assert_eq!(
            s.lines()
                .filter(|l| l.trim_start().starts_with(|c: char| c.is_ascii_digit()))
                .count(),
            4
        );
    }

    #[test]
    fn hybrid_chain_via_cells() {
        let s = run_to_string(&["--width", "2", "--cells", "lpaa6,lpaa5", "--joint"])
            .expect("valid invocation");
        assert!(s.contains("output-value P(error)"));
    }

    #[test]
    fn ops_flag_prints_counts() {
        let s =
            run_to_string(&["--width", "8", "--cell", "lpaa2", "--ops"]).expect("valid invocation");
        assert!(s.contains("operations: 128 mul"), "{s}");
    }

    #[test]
    fn json_output_is_machine_readable() {
        let s = run_to_string(&["--width", "2", "--cell", "lpaa1", "--p", "0.1", "--json"])
            .expect("valid invocation");
        assert!(s.starts_with('{'), "{s}");
        assert!(s.contains("\"error_probability\":0.3077999"), "{s}");
        assert!(s.contains("\"stages\":["), "{s}");
    }

    #[test]
    fn missing_width_rejected() {
        assert!(run_to_string(&["--cell", "lpaa1"]).is_err());
        assert!(run_to_string(&["--width", "0", "--cell", "lpaa1"]).is_err());
    }

    #[test]
    fn help_prints_usage() {
        let s = run_to_string(&["--help"]).expect("help always works");
        assert!(s.contains("usage: sealpaa analyze"));
    }
}
