//! `sealpaa route` — run the consistent-hash gateway in front of N daemons.

use std::io::Write;

use crate::args::ParsedArgs;
use crate::error::CliError;

const HELP: &str = "\
usage: sealpaa route --backends A:P,B:P[,...] [options]

Runs the shard router (Linux only): clients speak the exact `sealpaa serve`
protocol to one address, and every request is placed on a backend daemon by
consistent-hashing its canonical cache key. Equivalent requests from any
client land on the same backend, so the fleet's result caches shard the key
space instead of duplicating it — aggregate cache capacity grows with the
backend count. Requests without a cacheable key (inline profile traces) are
spread round-robin. Batch envelopes are fanned out per backend and
reassembled into the single response the client expects.

Backends are health-checked every --health-interval-ms: lost ones are
removed from the ring (their in-flight requests get structured errors, new
traffic re-routes) and re-dialed until they return. With no healthy backend
the router sheds each request with a structured error.

A {\"kind\":\"shutdown\"} request stops the router (draining in-flight
requests first); the backend daemons keep running.

options:
  --addr A:P            TCP listen address (default 127.0.0.1:4527; port 0
                        picks an ephemeral port and prints it)
  --backends LIST       comma-separated backend daemon addresses (required)
  --max-connections N   concurrent client connection cap; connections past
                        it get a structured 'overloaded' error and are
                        closed (default 256, 0 disables)
  --max-line-bytes N    request-line length limit, enforced while reading
                        (default 1048576)
  --write-timeout-ms N  a client that stops reading its responses for this
                        long is disconnected (default 60000, 0 disables)
  --health-interval-ms N
                        backend probe-and-reconnect cadence (default 2000)";

/// Runs the command.
///
/// # Errors
///
/// Returns [`CliError`] on bad options, on non-Linux platforms, or if the
/// listen address cannot be bound.
pub fn run<W: Write>(tokens: &[String], out: &mut W) -> Result<(), CliError> {
    if tokens.iter().any(|t| t == "--help") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let args = ParsedArgs::parse(
        tokens,
        &[
            "addr",
            "backends",
            "max-connections",
            "max-line-bytes",
            "write-timeout-ms",
            "health-interval-ms",
        ],
        &[],
    )?;
    serve_platform(&args, out)
}

#[cfg(target_os = "linux")]
fn serve_platform<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), CliError> {
    use sealpaa_server::protocol::MAX_LINE_BYTES;
    use sealpaa_server::route::{RouteConfig, Router};

    let backends: Vec<String> = args
        .option("backends")
        .ok_or_else(|| CliError::usage("--backends is required"))?
        .split(',')
        .map(str::trim)
        .filter(|b| !b.is_empty())
        .map(str::to_owned)
        .collect();
    if backends.is_empty() {
        return Err(CliError::usage("--backends lists no addresses"));
    }
    let config = RouteConfig {
        addr: args.get_or("addr", "127.0.0.1:4527".to_owned())?,
        backends,
        max_connections: args.get_or("max-connections", 256usize)?,
        max_line_bytes: args.get_or("max-line-bytes", MAX_LINE_BYTES)?,
        write_timeout_ms: args.get_or("write-timeout-ms", 60_000u64)?,
        health_interval_ms: args.get_or("health-interval-ms", 2_000u64)?,
    };
    if config.max_line_bytes == 0 {
        return Err(CliError::usage("--max-line-bytes must be at least 1"));
    }
    let router = Router::bind(config).map_err(|e| CliError::usage(format!("cannot bind: {e}")))?;
    writeln!(out, "sealpaa-router listening on {}", router.local_addr())?;
    out.flush()?;
    router.run()?;
    writeln!(out, "sealpaa-router stopped")?;
    Ok(())
}

#[cfg(not(target_os = "linux"))]
fn serve_platform<W: Write>(_args: &ParsedArgs, _out: &mut W) -> Result<(), CliError> {
    Err(CliError::usage(
        "sealpaa route needs the epoll event loop and is Linux-only",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(tokens: &[&str]) -> Result<String, CliError> {
        let tokens: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn help_prints_usage() {
        let s = run_to_string(&["--help"]).expect("help always works");
        assert!(s.contains("usage: sealpaa route"));
        assert!(s.contains("--backends"));
        assert!(s.contains("--health-interval-ms"));
        assert!(s.contains("consistent-hashing"));
    }

    #[test]
    fn rejects_bad_options() {
        assert!(run_to_string(&[]).is_err(), "--backends is required");
        assert!(
            run_to_string(&["--backends", ","]).is_err(),
            "an empty backend list"
        );
        assert!(run_to_string(&["--port", "80"]).is_err(), "unknown option");
        #[cfg(target_os = "linux")]
        assert!(
            run_to_string(&["--backends", "127.0.0.1:1", "--max-line-bytes", "0"]).is_err(),
            "a zero line limit"
        );
    }
}
