//! `sealpaa magnitude` — error-distance moments and distribution.

use std::io::Write;

use sealpaa_cells::AdderChain;
use sealpaa_core::{error_distribution, error_magnitude, worst_case_error, MAX_DISTRIBUTION_WIDTH};

use crate::args::{parse_chain_cells, parse_profile, ParsedArgs};
use crate::error::CliError;

const HELP: &str = "\
usage: sealpaa magnitude --width N (--cell NAME | --cells A,B,...) [options]

Exact error-distance statistics of the adder (an extension beyond the
paper): bias E[D], RMS, variance, and optionally the full distribution.

options:
  --width N       number of stages (required)
  --cell/--cells  as in `sealpaa analyze`
  --p/--pa/--pb/--cin  input probabilities, as in `sealpaa analyze`
  --distribution  print the complete error PMF (widths up to 20)
  --tail B        also print P(|D| > B)
  --worst-case    print the exact error extremes with witness operands";

/// Runs the command.
///
/// # Errors
///
/// Returns [`CliError`] on bad options or analysis failure.
pub fn run<W: Write>(tokens: &[String], out: &mut W) -> Result<(), CliError> {
    if tokens.iter().any(|t| t == "--help") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let args = ParsedArgs::parse(
        tokens,
        &["width", "cell", "cells", "p", "pa", "pb", "cin", "tail"],
        &["distribution", "worst-case"],
    )?;
    let width: usize = args.require("width")?;
    if width == 0 {
        return Err(CliError::usage("--width must be at least 1"));
    }
    let chain = AdderChain::from_stages(parse_chain_cells(&args, width)?);
    let profile = parse_profile(&args, width)?;
    writeln!(out, "adder: {chain}")?;

    let moments = error_magnitude(&chain, &profile).map_err(CliError::analysis)?;
    writeln!(
        out,
        "E[D]   (bias)     : {:+.6}",
        moments.mean_error_distance
    )?;
    writeln!(
        out,
        "E[D^2]            : {:.6}",
        moments.mean_squared_error_distance
    )?;
    writeln!(out, "Var[D]            : {:.6}", moments.variance())?;
    writeln!(
        out,
        "RMS error distance: {:.6}",
        moments.rms_error_distance()
    )?;

    if args.flag("worst-case") {
        let wc = worst_case_error(&chain).map_err(CliError::analysis)?;
        writeln!(
            out,
            "worst overshoot   : {:+} at a={:#x} b={:#x} cin={}",
            wc.max_error, wc.max_witness.a, wc.max_witness.b, wc.max_witness.carry_in as u8
        )?;
        writeln!(
            out,
            "worst undershoot  : {:+} at a={:#x} b={:#x} cin={}",
            wc.min_error, wc.min_witness.a, wc.min_witness.b, wc.min_witness.carry_in as u8
        )?;
    }

    let need_pmf = args.flag("distribution") || args.option("tail").is_some();
    if need_pmf {
        if width > MAX_DISTRIBUTION_WIDTH {
            return Err(CliError::usage(format!(
                "--distribution/--tail support widths up to {MAX_DISTRIBUTION_WIDTH}"
            )));
        }
        let dist = error_distribution(&chain, &profile).map_err(CliError::analysis)?;
        if let Some(bound) = args.option("tail") {
            let bound: u64 = bound
                .parse()
                .map_err(|_| CliError::usage(format!("--tail: cannot parse {bound:?}")))?;
            writeln!(
                out,
                "P(|D| > {bound})        : {:.8}",
                dist.tail_beyond(bound)
            )?;
        }
        if args.flag("distribution") {
            writeln!(out, "\n{:>12}  probability", "D")?;
            for (d, p) in &dist.pmf {
                writeln!(out, "{d:>12}  {p:.8}")?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(tokens: &[&str]) -> Result<String, CliError> {
        let tokens: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn moments_of_single_stage_lpaa1() {
        let s = run_to_string(&["--width", "1", "--cell", "lpaa1", "--p", "0.5"]).expect("valid");
        assert!(s.contains("E[D]   (bias)     : +0.000000"), "{s}");
        assert!(s.contains("E[D^2]            : 0.250000"), "{s}");
        assert!(s.contains("RMS error distance: 0.500000"), "{s}");
    }

    #[test]
    fn distribution_lists_support_points() {
        let s =
            run_to_string(&["--width", "1", "--cell", "lpaa1", "--distribution"]).expect("valid");
        assert!(s.contains("-1"), "{s}");
        assert!(s.contains("0.12500000"), "{s}");
    }

    #[test]
    fn tail_probability() {
        let s = run_to_string(&["--width", "2", "--cell", "lpaa5", "--tail", "1"]).expect("valid");
        assert!(s.contains("P(|D| > 1)"), "{s}");
    }

    #[test]
    fn distribution_width_cap() {
        assert!(run_to_string(&["--width", "21", "--cell", "lpaa1", "--distribution"]).is_err());
    }

    #[test]
    fn worst_case_flag_prints_witnesses() {
        let s = run_to_string(&["--width", "4", "--cell", "lpaa1", "--worst-case"]).expect("valid");
        assert!(s.contains("worst overshoot"), "{s}");
        assert!(s.contains("cin="), "{s}");
    }

    #[test]
    fn help_prints_usage() {
        let s = run_to_string(&["--help"]).expect("valid");
        assert!(s.contains("usage: sealpaa magnitude"));
    }
}
