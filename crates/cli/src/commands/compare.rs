//! `sealpaa compare` — the full per-cell scorecard, side by side.

use std::io::Write;

use sealpaa_cells::StandardCell;
use sealpaa_explore::score_cells;

use crate::args::{parse_cell, parse_profile, ParsedArgs};
use crate::error::CliError;

const HELP: &str = "\
usage: sealpaa compare --width N [options]

Scores candidate cells side by side as homogeneous N-bit chains: error
probability (the paper's metric), bias and RMS error distance, the exact
worst-case error, and power/area where published.

options:
  --width N            adder width, 1..=63 (required)
  --candidates A,B,..  cells to compare (default: all standard cells)
  --p/--pa/--pb/--cin  input probabilities, as in `sealpaa analyze`";

/// Runs the command.
///
/// # Errors
///
/// Returns [`CliError`] on bad options.
pub fn run<W: Write>(tokens: &[String], out: &mut W) -> Result<(), CliError> {
    if tokens.iter().any(|t| t == "--help") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let args = ParsedArgs::parse(
        tokens,
        &["width", "candidates", "p", "pa", "pb", "cin"],
        &[],
    )?;
    let width: usize = args.require("width")?;
    if !(1..=63).contains(&width) {
        return Err(CliError::usage("--width must be 1..=63"));
    }
    let profile = parse_profile(&args, width)?;
    let candidates = match args.option("candidates") {
        None => StandardCell::ALL.iter().map(|c| c.cell()).collect(),
        Some(list) => list
            .split(',')
            .map(parse_cell)
            .collect::<Result<Vec<_>, _>>()?,
    };
    let scores = score_cells(&candidates, &profile);

    writeln!(
        out,
        "{:<14} {:>10} {:>12} {:>12} {:>14} {:>10} {:>9}",
        "cell", "P(error)", "bias E[D]", "RMS(D)", "worst case", "power(nW)", "area(GE)"
    )?;
    for s in &scores {
        let power = s
            .power_nw
            .map(|p| format!("{p:.0}"))
            .unwrap_or_else(|| "n/a".to_owned());
        let area = s
            .area_ge
            .map(|a| format!("{a:.2}"))
            .unwrap_or_else(|| "n/a".to_owned());
        writeln!(
            out,
            "{:<14} {:>10.6} {:>+12.2} {:>12.2} {:>+14} {:>10} {:>9}",
            s.cell.name(),
            s.error_probability,
            s.mean_error_distance,
            s.rms_error_distance,
            s.worst_case_error,
            power,
            area,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(tokens: &[&str]) -> Result<String, CliError> {
        let tokens: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn compares_all_cells_by_default() {
        let s = run_to_string(&["--width", "6", "--p", "0.1"]).expect("valid");
        for cell in ["AccuFA", "LPAA 1", "LPAA 7"] {
            assert!(s.contains(cell), "missing {cell} in:\n{s}");
        }
        assert!(s.contains("worst case"), "{s}");
    }

    #[test]
    fn custom_candidate_subset() {
        let s = run_to_string(&["--width", "4", "--candidates", "lpaa5,lpaa6"]).expect("valid");
        assert!(s.contains("LPAA 5") && s.contains("LPAA 6"), "{s}");
        assert!(!s.contains("LPAA 1"), "{s}");
    }

    #[test]
    fn width_limit_enforced() {
        assert!(run_to_string(&["--width", "64"]).is_err());
        assert!(run_to_string(&["--width", "0"]).is_err());
    }

    #[test]
    fn help_prints_usage() {
        let s = run_to_string(&["--help"]).expect("valid");
        assert!(s.contains("usage: sealpaa compare"));
    }
}
