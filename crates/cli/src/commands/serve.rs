//! `sealpaa serve` — run the analysis-as-a-service daemon.

use std::io::Write;

use sealpaa_server::protocol::MAX_LINE_BYTES;
use sealpaa_server::server::{run_stdio, IoModel, Server, ServerConfig};

use crate::args::ParsedArgs;
use crate::error::CliError;

const HELP: &str = "\
usage: sealpaa serve [options]

Runs the analysis daemon: newline-delimited JSON requests in, newline-
delimited JSON responses out. Request kinds: analyze, simulate, compare,
gear, blocks, dse, profile, batch, stats, shutdown. Results are cached
under a canonicalized adder configuration, so equivalent requests are
answered without recomputation. A batch request answers many sub-requests
in one response; under the event io model, requests on one connection may
also be pipelined (responses are tagged by the client-supplied id).

Example session (see docs/SERVER.md for the full protocol):

  {\"id\":1,\"kind\":\"analyze\",\"width\":8,\"cell\":\"lpaa1\",\"p\":0.1}
  {\"id\":2,\"kind\":\"stats\"}
  {\"id\":3,\"kind\":\"shutdown\"}

options:
  --addr A:P            TCP listen address (default 127.0.0.1:4517; port 0
                        picks an ephemeral port and prints it)
  --threads N           analysis worker threads (default 4)
  --cache-entries N     result-cache capacity, 0 disables caching (default 1024)
  --queue-capacity N    bounded job-queue capacity (default 64)
  --max-connections N   concurrent TCP connection cap; connections past it
                        get a structured 'overloaded' error and are closed
                        (default 256, 0 disables)
  --max-line-bytes N    request-line length limit, enforced while reading
                        (default 1048576)
  --idle-timeout-ms N   per-connection read deadline: an idle connection is
                        answered with a timeout error and closed
                        (default 60000, 0 disables; TCP only)
  --write-timeout-ms N  per-connection write deadline: a peer that stops
                        reading its responses is disconnected
                        (default 60000, 0 disables; TCP only)
  --cache-snapshot F    persist the result cache to file F (atomic
                        write-then-rename) and reload it on start, so a
                        restarted daemon answers warm; a corrupt or
                        truncated file is reported and ignored (cold start)
  --snapshot-interval-ms N
                        how often a dirty cache is re-persisted while
                        serving (default 30000); the cache is always
                        persisted once more on graceful shutdown
  --io-model M          TCP connection-serving model: 'event' (one epoll
                        poll thread multiplexes every socket; supports
                        request pipelining; Linux only) or 'threads' (one
                        blocking reader thread per connection); default
                        event on Linux, threads elsewhere
  --trace               emit one NDJSON access-log line per request to
                        stderr (timestamp-free fields, byte-reproducible)
  --stdio               serve stdin/stdout instead of TCP (one-shot
                        pipelines); end-of-input shuts the daemon down
                        gracefully

Stop a TCP daemon with a {\"kind\":\"shutdown\"} request: it stops accepting,
finishes every job already queued, then exits.";

/// Runs the command.
///
/// # Errors
///
/// Returns [`CliError`] on bad options or if the listen address cannot be
/// bound.
pub fn run<W: Write>(tokens: &[String], out: &mut W) -> Result<(), CliError> {
    if tokens.iter().any(|t| t == "--help") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let args = ParsedArgs::parse(
        tokens,
        &[
            "addr",
            "threads",
            "cache-entries",
            "queue-capacity",
            "max-connections",
            "max-line-bytes",
            "idle-timeout-ms",
            "write-timeout-ms",
            "cache-snapshot",
            "snapshot-interval-ms",
            "io-model",
        ],
        &["stdio", "trace"],
    )?;
    let config = ServerConfig {
        addr: args.get_or("addr", "127.0.0.1:4517".to_owned())?,
        threads: args.get_or("threads", 4usize)?,
        cache_entries: args.get_or("cache-entries", 1024usize)?,
        queue_capacity: args.get_or("queue-capacity", 64usize)?,
        max_connections: args.get_or("max-connections", 256usize)?,
        max_line_bytes: args.get_or("max-line-bytes", MAX_LINE_BYTES)?,
        idle_timeout_ms: args.get_or("idle-timeout-ms", 60_000u64)?,
        write_timeout_ms: args.get_or("write-timeout-ms", 60_000u64)?,
        cache_snapshot: args.option("cache-snapshot").map(str::to_owned),
        snapshot_interval_ms: args.get_or("snapshot-interval-ms", 30_000u64)?,
        trace: args.flag("trace"),
        io_model: args.get_or("io-model", IoModel::default())?,
    };
    if config.threads == 0 {
        return Err(CliError::usage("--threads must be at least 1"));
    }
    if config.queue_capacity == 0 {
        return Err(CliError::usage("--queue-capacity must be at least 1"));
    }
    if config.max_line_bytes == 0 {
        return Err(CliError::usage("--max-line-bytes must be at least 1"));
    }

    if args.flag("stdio") {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let mut output = stdout.lock();
        run_stdio(&config, stdin.lock(), &mut output)?;
        return Ok(());
    }

    let server = Server::bind(config).map_err(|e| CliError::usage(format!("cannot bind: {e}")))?;
    writeln!(out, "sealpaa-server listening on {}", server.local_addr())?;
    out.flush()?;
    server.run()?;
    writeln!(out, "sealpaa-server stopped")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(tokens: &[&str]) -> Result<String, CliError> {
        let tokens: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn help_prints_usage() {
        let s = run_to_string(&["--help"]).expect("help always works");
        assert!(s.contains("usage: sealpaa serve"));
        assert!(s.contains("--cache-entries"));
        assert!(s.contains("--max-connections"));
        assert!(s.contains("--idle-timeout-ms"));
        assert!(s.contains("--cache-snapshot"));
        assert!(s.contains("--snapshot-interval-ms"));
        assert!(s.contains("--trace"));
        assert!(s.contains("--io-model"));
        assert!(s.contains("batch"));
    }

    #[test]
    fn rejects_bad_options() {
        assert!(run_to_string(&["--threads", "0"]).is_err());
        assert!(run_to_string(&["--port", "80"]).is_err(), "unknown option");
        assert!(
            run_to_string(&["--addr", "definitely not an address"]).is_err(),
            "unbindable address"
        );
        assert!(run_to_string(&["--queue-capacity", "0"]).is_err());
        assert!(run_to_string(&["--max-line-bytes", "0"]).is_err());
        assert!(
            run_to_string(&["--idle-timeout-ms", "forever"]).is_err(),
            "non-numeric deadline"
        );
        assert!(
            run_to_string(&["--io-model", "fibers"]).is_err(),
            "unknown io model"
        );
    }
}
