//! `sealpaa simulate` — exhaustive or Monte-Carlo simulation.

use std::io::Write;

use sealpaa_cells::AdderChain;
use sealpaa_sim::{
    default_threads, exhaustive_with_backend, monte_carlo, Backend, MonteCarloConfig,
};

use crate::args::{parse_chain_cells, parse_profile, ParsedArgs};
use crate::error::CliError;

const HELP: &str = "\
usage: sealpaa simulate --width N (--cell NAME | --cells A,B,...) [options]

Bit-true simulation of the adder, either exhaustive over all 2^(2N+1) input
combinations (small N; this is the blow-up of paper Fig. 1) or Monte-Carlo.

options:
  --width N       number of stages (required)
  --cell/--cells  as in `sealpaa analyze`
  --p/--pa/--pb/--cin  input probabilities, as in `sealpaa analyze`
  --exhaustive    enumerate every input combination (default if N <= 10)
  --samples M     Monte-Carlo with M samples (default 1000000 when N > 10)
  --seed S        Monte-Carlo RNG seed (default 0xDAC17ADD)
  --threads T     worker threads for both modes (default: all available
                  cores; Monte-Carlo results are deterministic per
                  (seed, threads, backend) triple, exhaustive results for
                  any T and backend)
  --backend B     SIMD backend for the bitsliced kernels: u64, u64x2,
                  avx2, avx512 (default: widest available; see
                  `sealpaa simd`)";

/// Runs the command.
///
/// # Errors
///
/// Returns [`CliError`] on bad options or simulation failure.
pub fn run<W: Write>(tokens: &[String], out: &mut W) -> Result<(), CliError> {
    if tokens.iter().any(|t| t == "--help") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let args = ParsedArgs::parse(
        tokens,
        &[
            "width", "cell", "cells", "p", "pa", "pb", "cin", "samples", "seed", "threads",
            "backend",
        ],
        &["exhaustive"],
    )?;
    let width: usize = args.require("width")?;
    if width == 0 {
        return Err(CliError::usage("--width must be at least 1"));
    }
    let chain = AdderChain::from_stages(parse_chain_cells(&args, width)?);
    let profile = parse_profile(&args, width)?;
    writeln!(out, "adder: {chain}")?;

    let threads = args.get_or("threads", default_threads())?;
    let backend = match args.option("backend") {
        Some(name) => Some(
            name.parse::<Backend>()
                .map_err(|e| CliError::usage(format!("--backend: {e}")))?,
        ),
        None => None,
    };
    let use_exhaustive =
        args.flag("exhaustive") || (args.option("samples").is_none() && width <= 10);
    if use_exhaustive {
        let report = exhaustive_with_backend(&chain, &profile, threads, backend)
            .map_err(CliError::analysis)?;
        writeln!(
            out,
            "mode              : exhaustive ({} cases)",
            report.cases
        )?;
        writeln!(out, "erroneous cases   : {}", report.error_cases)?;
        writeln!(
            out,
            "P(output error)   : {:.10}",
            report.output_error_probability
        )?;
        writeln!(
            out,
            "P(stage error)    : {:.10} (the paper's semantics)",
            report.stage_error_probability
        )?;
        writeln!(out, "quality           : {}", report.metrics)?;
    } else {
        let config = MonteCarloConfig {
            samples: args.get_or("samples", 1_000_000u64)?,
            seed: args.get_or("seed", MonteCarloConfig::default().seed)?,
            threads,
            backend,
        };
        let report = monte_carlo(&chain, &profile, config).map_err(CliError::analysis)?;
        writeln!(
            out,
            "mode              : Monte-Carlo ({} samples)",
            report.samples
        )?;
        writeln!(out, "erroneous samples : {}", report.error_samples)?;
        writeln!(
            out,
            "P(output error)   : {:.6} ± {:.6} (1σ)",
            report.error_probability(),
            report.standard_error
        )?;
        writeln!(out, "quality           : {}", report.metrics)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(tokens: &[&str]) -> Result<String, CliError> {
        let tokens: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn exhaustive_by_default_for_small_widths() {
        let s = run_to_string(&["--width", "3", "--cell", "lpaa1"]).expect("valid");
        assert!(s.contains("exhaustive (128 cases)"), "{s}");
        assert!(s.contains("P(stage error)"));
    }

    #[test]
    fn monte_carlo_with_samples() {
        let s = run_to_string(&[
            "--width",
            "12",
            "--cell",
            "lpaa6",
            "--p",
            "0.1",
            "--samples",
            "5000",
        ])
        .expect("valid");
        assert!(s.contains("Monte-Carlo (5000 samples)"), "{s}");
    }

    #[test]
    fn threaded_monte_carlo_runs() {
        let s = run_to_string(&[
            "--width",
            "12",
            "--cell",
            "lpaa1",
            "--p",
            "0.1",
            "--samples",
            "8000",
            "--threads",
            "4",
        ])
        .expect("valid");
        assert!(s.contains("Monte-Carlo (8000 samples)"), "{s}");
    }

    #[test]
    fn accurate_cell_never_errs() {
        let s = run_to_string(&["--width", "4", "--cell", "accurate"]).expect("valid");
        assert!(s.contains("erroneous cases   : 0"));
    }

    #[test]
    fn help_prints_usage() {
        let s = run_to_string(&["--help"]).expect("valid");
        assert!(s.contains("usage: sealpaa simulate"));
    }
}
