//! One module per subcommand.

pub mod analyze;
pub mod blocks;
pub mod cells;
pub mod compare;
pub mod datapath;
pub mod dse;
pub mod fir;
pub mod gear;
pub mod magnitude;
pub mod multiplier;
pub mod route;
pub mod serve;
pub mod simd;
pub mod simulate;
pub mod sweep;
pub mod trace;
pub mod verilog;
