//! `sealpaa gear` — GeAr low-latency adder analysis.

use std::io::Write;

use sealpaa_gear::{
    block_error_probabilities, error_probability, error_probability_block_independent,
    error_probability_inclexcl, pareto_front, score_configs, GearConfig,
};

use crate::args::ParsedArgs;
use crate::error::CliError;

const HELP: &str = "\
usage: sealpaa gear --n N (--r R --overlap P | --pareto) [options]

Exact error probability of a GeAr(N, R, P) low-latency adder (paper
Sec. 2.2) via the linear-time DP, with optional baselines.

options:
  --n N           operand width (required)
  --r R           result bits per sub-adder (required)
  --overlap P     prediction/overlap bits per sub-adder (required)
  --p P           constant P(bit = 1) for all inputs (default 0.5)
  --cin P         external carry-in probability (default 0)
  --baselines     also evaluate the 2^k-term inclusion-exclusion expansion
                  and the block-independence approximation
  --blocks        also print each fallible sub-adder's P(E_j)
  --pareto        score every valid (R, P) configuration of width N and
                  print the error/latency/area Pareto frontier";

/// Runs the command.
///
/// # Errors
///
/// Returns [`CliError`] on bad options or invalid configurations.
pub fn run<W: Write>(tokens: &[String], out: &mut W) -> Result<(), CliError> {
    if tokens.iter().any(|t| t == "--help") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let args = ParsedArgs::parse(
        tokens,
        &["n", "r", "overlap", "p", "cin"],
        &["baselines", "blocks", "pareto"],
    )?;
    let n: usize = args.require("n")?;
    let p: f64 = args.get_or("p", 0.5)?;
    let cin: f64 = args.get_or("cin", 0.0)?;
    if args.flag("pareto") {
        let designs = score_configs(n, p).map_err(CliError::analysis)?;
        let total = designs.len();
        let front = pareto_front(designs);
        writeln!(
            out,
            "Pareto frontier over (error, latency, area) at p = {p}:"
        )?;
        for design in &front {
            writeln!(out, "  {design}")?;
        }
        writeln!(out, "({} of {total} configurations survive)", front.len())?;
        return Ok(());
    }
    let r: usize = args.require("r")?;
    let overlap: usize = args.require("overlap")?;
    let config = GearConfig::new(n, r, overlap).map_err(CliError::analysis)?;

    let pa = vec![p; n];
    let exact = error_probability(&config, &pa, &pa, cin).map_err(CliError::analysis)?;
    writeln!(out, "config      : {config}")?;
    writeln!(
        out,
        "sub-adders  : {} of length {}",
        config.block_count(),
        config.sub_adder_length()
    )?;
    writeln!(out, "P(error)    : {exact:.10} (exact, linear DP)")?;
    if args.flag("blocks") {
        let blocks =
            block_error_probabilities(&config, &pa, &pa, cin).map_err(CliError::analysis)?;
        for (j, e) in blocks.iter().enumerate() {
            writeln!(out, "  block {}: P(E) = {e:.10}", j + 1)?;
        }
    }
    if args.flag("baselines") {
        let (ie, terms) =
            error_probability_inclexcl(&config, &pa, &pa, cin).map_err(CliError::analysis)?;
        let indep = error_probability_block_independent(&config, &pa, &pa, cin)
            .map_err(CliError::analysis)?;
        writeln!(out, "incl-excl   : {ie:.10} ({terms} subset terms)")?;
        writeln!(out, "independent : {indep:.10} (approximation)")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(tokens: &[&str]) -> Result<String, CliError> {
        let tokens: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn basic_gear_analysis() {
        let s = run_to_string(&["--n", "8", "--r", "2", "--overlap", "2"]).expect("valid");
        assert!(s.contains("GeAr(N=8, R=2, P=2)"), "{s}");
        assert!(s.contains("sub-adders  : 3 of length 4"), "{s}");
    }

    #[test]
    fn baselines_agree() {
        let s = run_to_string(&["--n", "8", "--r", "2", "--overlap", "2", "--baselines"])
            .expect("valid");
        let exact_line = s.lines().find(|l| l.starts_with("P(error)")).expect("line");
        let ie_line = s
            .lines()
            .find(|l| l.starts_with("incl-excl"))
            .expect("line");
        let grab = |l: &str| -> f64 {
            l.split(':')
                .nth(1)
                .expect("value")
                .trim()
                .split(' ')
                .next()
                .expect("num")
                .parse()
                .expect("f64")
        };
        assert!((grab(exact_line) - grab(ie_line)).abs() < 1e-9);
    }

    #[test]
    fn invalid_tiling_rejected() {
        assert!(run_to_string(&["--n", "9", "--r", "2", "--overlap", "2"]).is_err());
    }

    #[test]
    fn pareto_mode_lists_frontier() {
        let s = run_to_string(&["--n", "12", "--pareto"]).expect("valid");
        assert!(s.contains("Pareto frontier"), "{s}");
        assert!(s.contains("configurations survive"), "{s}");
    }

    #[test]
    fn blocks_flag_lists_per_block_errors() {
        let s =
            run_to_string(&["--n", "8", "--r", "2", "--overlap", "2", "--blocks"]).expect("valid");
        assert!(s.contains("block 1: P(E)"), "{s}");
        assert!(s.contains("block 2: P(E)"), "{s}");
    }

    #[test]
    fn help_prints_usage() {
        let s = run_to_string(&["--help"]).expect("valid");
        assert!(s.contains("usage: sealpaa gear"));
    }
}
