//! `sealpaa cells` — dump the standard cell library.

use std::io::Write;

use sealpaa_cells::StandardCell;
use sealpaa_core::MklMatrices;

use crate::args::ParsedArgs;
use crate::error::CliError;

const HELP: &str = "\
usage: sealpaa cells [--tables]

Lists the standard cell library: error-case counts, published power/area
(paper Table 2) and the derived M/K/L analysis matrices (paper Table 5).

options:
  --tables   additionally print each cell's full truth table";

/// Runs the command.
///
/// # Errors
///
/// Returns [`CliError`] on bad options or output failure.
pub fn run<W: Write>(tokens: &[String], out: &mut W) -> Result<(), CliError> {
    if tokens.iter().any(|t| t == "--help") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let args = ParsedArgs::parse(tokens, &[], &["tables"])?;
    writeln!(
        out,
        "{:<8} {:>11} {:>10} {:>9}  {:<26} {:<26} L",
        "cell", "error-cases", "power(nW)", "area(GE)", "M", "K"
    )?;
    for cell in StandardCell::ALL {
        let mkl = MklMatrices::from_truth_table(&cell.truth_table());
        let (power, area) = match cell.characteristics() {
            Some(c) => (format!("{}", c.power_nw), format!("{}", c.area_ge)),
            None => ("n/a".to_owned(), "n/a".to_owned()),
        };
        writeln!(
            out,
            "{:<8} {:>11} {:>10} {:>9}  {:<26} {:<26} {:?}",
            cell.name(),
            cell.truth_table().error_case_count(),
            power,
            area,
            format!("{:?}", mkl.m_bits()),
            format!("{:?}", mkl.k_bits()),
            mkl.l_bits(),
        )?;
    }
    if args.flag("tables") {
        for cell in StandardCell::ALL {
            writeln!(
                out,
                "\n{} (rows marked * deviate from AccuFA):",
                cell.name()
            )?;
            write!(out, "{}", cell.truth_table())?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(tokens: &[&str]) -> String {
        let tokens: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out).expect("command succeeds");
        String::from_utf8(out).expect("utf8 output")
    }

    #[test]
    fn lists_all_cells() {
        let s = run_to_string(&[]);
        for name in ["AccuFA", "LPAA 1", "LPAA 7"] {
            assert!(s.contains(name), "missing {name}");
        }
        assert!(s.contains("771"));
    }

    #[test]
    fn tables_flag_prints_truth_tables() {
        let s = run_to_string(&["--tables"]);
        assert!(s.contains("A B C | S Co"));
        assert!(s.matches("A B C | S Co").count() >= 8);
    }

    #[test]
    fn help_short_circuits() {
        let s = run_to_string(&["--help"]);
        assert!(s.contains("usage: sealpaa cells"));
    }

    #[test]
    fn unknown_option_rejected() {
        let tokens = vec!["--bogus".to_owned()];
        assert!(run(&tokens, &mut Vec::new()).is_err());
    }
}
