//! `sealpaa sweep` — approximate-LSB sweep.

use std::io::Write;

use sealpaa_explore::{accurate_cell_with_proxy_costs, lsb_sweep, lsb_sweep_verified};
use sealpaa_sim::default_threads;

use crate::args::{parse_cell, parse_profile, ParsedArgs};
use crate::error::CliError;

const HELP: &str = "\
usage: sealpaa sweep --width N --cell NAME [options]

Sweeps k = 0..N approximate least-significant stages (NAME cells below,
accurate cells above) and reports the quality/power trade-off curve.

options:
  --width N       total adder width (required)
  --cell NAME     the approximate cell for the LSBs (required)
  --p/--pa/--pb/--cin  input probabilities, as in `sealpaa analyze`
  --verify        cross-check every point by exhaustive bit-true simulation
                  (paper Table 6; widths up to 16) and print the simulated
                  error probability and the residual |analytical - simulated|
  --threads T     worker threads for --verify (default: all available cores;
                  the result is identical for any T)

The accurate MSB cells use the estimated characteristics documented in
DESIGN.md (the paper's Table 2 covers LPAA 1-5 only).";

/// Runs the command.
///
/// # Errors
///
/// Returns [`CliError`] on bad options or when the chosen cell has no
/// power/area characteristics.
pub fn run<W: Write>(tokens: &[String], out: &mut W) -> Result<(), CliError> {
    if tokens.iter().any(|t| t == "--help") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let args = ParsedArgs::parse(
        tokens,
        &["width", "cell", "p", "pa", "pb", "cin", "threads"],
        &["verify"],
    )?;
    let width: usize = args.require("width")?;
    if width == 0 {
        return Err(CliError::usage("--width must be at least 1"));
    }
    let cell = parse_cell(
        args.option("cell")
            .ok_or_else(|| CliError::usage("--cell is required"))?,
    )?;
    let profile = parse_profile(&args, width)?;

    writeln!(
        out,
        "LSB sweep: {} below AccuFA (est.), width {width}",
        cell.name()
    )?;
    if args.flag("verify") {
        let threads = args.get_or("threads", default_threads())?;
        let points = lsb_sweep_verified(
            cell.clone(),
            accurate_cell_with_proxy_costs(),
            &profile,
            threads,
        )
        .map_err(CliError::analysis)?;
        writeln!(
            out,
            "{:>2}  {:>12}  {:>12}  {:>9}  {:>10}  {:>9}  {:>10}  {:>10}",
            "k", "P(error)", "P(sim)", "|resid|", "power(nW)", "area(GE)", "bias E[D]", "RMS(D)"
        )?;
        for vp in &points {
            let point = &vp.point;
            writeln!(
                out,
                "{:>2}  {:>12.8}  {:>12.8}  {:>9.1e}  {:>10.0}  {:>9.2}  {:>+10.4}  {:>10.4}",
                point.approximate_bits,
                point.evaluation.error_probability,
                vp.report.stage_error_probability,
                vp.deviation(),
                point.evaluation.power_nw,
                point.evaluation.area_ge,
                point.mean_error_distance,
                point.rms_error_distance,
            )?;
        }
        writeln!(
            out,
            "verified: {} points, exhaustive bit-true simulation, {} threads",
            points.len(),
            threads
        )?;
        return Ok(());
    }

    let points = lsb_sweep(cell.clone(), accurate_cell_with_proxy_costs(), &profile)
        .map_err(CliError::analysis)?;
    writeln!(
        out,
        "{:>2}  {:>12}  {:>10}  {:>9}  {:>10}  {:>10}",
        "k", "P(error)", "power(nW)", "area(GE)", "bias E[D]", "RMS(D)"
    )?;
    for point in &points {
        writeln!(
            out,
            "{:>2}  {:>12.8}  {:>10.0}  {:>9.2}  {:>+10.4}  {:>10.4}",
            point.approximate_bits,
            point.evaluation.error_probability,
            point.evaluation.power_nw,
            point.evaluation.area_ge,
            point.mean_error_distance,
            point.rms_error_distance,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(tokens: &[&str]) -> Result<String, CliError> {
        let tokens: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn sweep_has_width_plus_one_rows() {
        let s = run_to_string(&["--width", "6", "--cell", "lpaa5", "--p", "0.5"]).expect("valid");
        let data_rows = s
            .lines()
            .filter(|l| {
                l.trim_start()
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit())
            })
            .count();
        assert_eq!(data_rows, 7);
    }

    #[test]
    fn k0_row_is_exact() {
        let s = run_to_string(&["--width", "4", "--cell", "lpaa1", "--p", "0.5"]).expect("valid");
        let first = s
            .lines()
            .find(|l| l.trim_start().starts_with('0'))
            .expect("k=0 row");
        assert!(first.contains("0.00000000"), "{first}");
    }

    #[test]
    fn verified_sweep_reports_small_residuals() {
        let s = run_to_string(&[
            "--width",
            "6",
            "--cell",
            "lpaa2",
            "--p",
            "0.3",
            "--verify",
            "--threads",
            "2",
        ])
        .expect("valid");
        assert!(s.contains("P(sim)"), "{s}");
        assert!(s.contains("verified: 7 points"), "{s}");
        assert!(s.contains("2 threads"), "{s}");
    }

    #[test]
    fn verified_sweep_rejects_infeasible_width() {
        assert!(run_to_string(&["--width", "17", "--cell", "lpaa1", "--verify"]).is_err());
    }

    #[test]
    fn missing_cell_rejected() {
        assert!(run_to_string(&["--width", "4"]).is_err());
    }

    #[test]
    fn help_prints_usage() {
        let s = run_to_string(&["--help"]).expect("valid");
        assert!(s.contains("usage: sealpaa sweep"));
    }
}
