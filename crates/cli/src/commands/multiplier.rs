//! `sealpaa multiplier` — approximate shift-add multiplier quality.

use std::io::Write;

use sealpaa_datapath::ShiftAddMultiplier;

use crate::args::{parse_cell, ParsedArgs};
use crate::error::CliError;

const HELP: &str = "\
usage: sealpaa multiplier --width N --cell NAME [options]

Quality of a width x width shift-add multiplier whose partial products are
accumulated through approximate adder chains.

options:
  --width N       operand width in bits, 1..=31 (required)
  --cell NAME     the accumulator cell (required)
  --samples M     Monte-Carlo samples (default 100000)
  --seed S        RNG seed (default 42)";

/// Runs the command.
///
/// # Errors
///
/// Returns [`CliError`] on bad options.
pub fn run<W: Write>(tokens: &[String], out: &mut W) -> Result<(), CliError> {
    if tokens.iter().any(|t| t == "--help") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let args = ParsedArgs::parse(tokens, &["width", "cell", "samples", "seed"], &[])?;
    let width: usize = args.require("width")?;
    if !(1..=31).contains(&width) {
        return Err(CliError::usage("--width must be 1..=31"));
    }
    let cell = parse_cell(
        args.option("cell")
            .ok_or_else(|| CliError::usage("--cell is required"))?,
    )?;
    let samples: u64 = args.get_or("samples", 100_000)?;
    let seed: u64 = args.get_or("seed", 42)?;

    let multiplier = ShiftAddMultiplier::new(cell.clone(), width);
    let q = multiplier.quality(samples, seed);
    writeln!(
        out,
        "multiplier : {width}x{width} shift-add, {} accumulator",
        cell.name()
    )?;
    writeln!(out, "samples    : {}", q.samples)?;
    writeln!(out, "error rate : {:.6}", q.error_rate)?;
    writeln!(out, "MRED       : {:.6}", q.mean_relative_error)?;
    writeln!(out, "max |error|: {}", q.max_absolute_error)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(tokens: &[&str]) -> Result<String, CliError> {
        let tokens: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn accurate_multiplier_reports_zero_error() {
        let s = run_to_string(&["--width", "6", "--cell", "accurate", "--samples", "2000"])
            .expect("valid");
        assert!(s.contains("error rate : 0.000000"), "{s}");
    }

    #[test]
    fn approximate_multiplier_reports_nonzero_error() {
        let s = run_to_string(&["--width", "8", "--cell", "lpaa6", "--samples", "2000"])
            .expect("valid");
        assert!(!s.contains("error rate : 0.000000"), "{s}");
        assert!(s.contains("MRED"), "{s}");
    }

    #[test]
    fn width_limits() {
        assert!(run_to_string(&["--width", "32", "--cell", "lpaa1"]).is_err());
        assert!(run_to_string(&["--width", "0", "--cell", "lpaa1"]).is_err());
    }

    #[test]
    fn help_prints_usage() {
        let s = run_to_string(&["--help"]).expect("valid");
        assert!(s.contains("usage: sealpaa multiplier"));
    }
}
