//! `sealpaa simd` — SIMD backend and sampler diagnostics.
//!
//! Bench JSONs and bug reports are only attributable when the kernel
//! backend they ran on is known; this command prints what this machine
//! detects, what the `SEALPAA_SIMD` override (or a `--backend` flag)
//! selects, and which entropy path the pooled Bernoulli sampler takes for
//! a given input probability.

use std::io::Write;

use sealpaa_cells::simd::{Backend, ForcedBackend, BACKEND_ENV_VAR};
use sealpaa_sim::{plan_kind, quantize_p53, PlanKind};

use crate::args::ParsedArgs;
use crate::error::CliError;
use crate::json::Json;

const HELP: &str = "\
usage: sealpaa simd [options]

Report the SIMD kernel backends this machine offers, which one simulation
commands will use, and the pooled Bernoulli sampler's entropy path for a
given input probability. Backends: u64 (portable SWAR), u64x2 (portable
2-word), avx2 (256-bit), avx512 (512-bit).

The active backend honours the SEALPAA_SIMD environment variable; all
simulation engines produce byte-identical exhaustive/replay/histogram
results on every backend.

options:
  --p P    input probability to classify for the sampler (default 0.5)
  --json   machine-readable output";

fn plan_description(kind: PlanKind) -> String {
    match kind {
        PlanKind::Degenerate => "degenerate (constant plane, no randomness)".to_string(),
        PlanKind::MaskComposition(words) => format!(
            "mask-composition ({words} random word{} per plane, exact)",
            if words == 1 { "" } else { "s" }
        ),
        PlanKind::Adaptive => "adaptive expansion (~log2(lanes)+2 words per plane)".to_string(),
    }
}

fn plan_name(kind: PlanKind) -> &'static str {
    match kind {
        PlanKind::Degenerate => "degenerate",
        PlanKind::MaskComposition(_) => "mask_composition",
        PlanKind::Adaptive => "adaptive",
    }
}

/// Runs the command.
///
/// # Errors
///
/// Returns [`CliError`] on bad options.
pub fn run<W: Write>(tokens: &[String], out: &mut W) -> Result<(), CliError> {
    if tokens.iter().any(|t| t == "--help") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let args = ParsedArgs::parse(tokens, &["p"], &["json"])?;
    let p: f64 = args.get_or("p", 0.5)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(CliError::usage("--p must be within [0, 1]"));
    }
    let q = quantize_p53(p);
    let kind = plan_kind(q);

    let detected = Backend::detect();
    let forced = Backend::forced_setting();
    // `Backend::active()` panics on an invalid override (simulations must
    // not silently fall back to a different kernel); diagnostics instead
    // *report* the problem.
    let (active, note) = match forced {
        ForcedBackend::Unset => (Some(detected), None),
        ForcedBackend::Forced(b) => (Some(*b), None),
        ForcedBackend::Unavailable(b) => (
            None,
            Some(format!(
                "{BACKEND_ENV_VAR} forces {b}, which this machine cannot run"
            )),
        ),
        ForcedBackend::Invalid(value) => (
            None,
            Some(format!(
                "{BACKEND_ENV_VAR}={value:?} does not name a backend"
            )),
        ),
    };

    if args.flag("json") {
        let backends: Vec<Json> = Backend::ALL
            .into_iter()
            .map(|b| {
                Json::object()
                    .field("name", b.name())
                    .field("lanes", b.lanes())
                    .field("available", b.is_available())
                    .build()
            })
            .collect();
        // Flat duplicate of the available subset of `backends`: shell
        // consumers (scripts/ci.sh iterates the differential suites once
        // per backend) can extract it with one sed instead of walking the
        // nested array.
        let available_names: Vec<Json> = Backend::available()
            .into_iter()
            .map(|b| Json::from(b.name()))
            .collect();
        let mut obj = Json::object()
            .field("backends", backends)
            .field("available_names", available_names)
            .field("detected", detected.name())
            .field(
                "active",
                active.map_or(Json::Null, |b| Json::from(b.name())),
            )
            .field(
                "forced",
                match forced {
                    ForcedBackend::Unset => Json::Null,
                    ForcedBackend::Forced(b) | ForcedBackend::Unavailable(b) => {
                        Json::from(b.name())
                    }
                    ForcedBackend::Invalid(value) => Json::from(value.clone()),
                },
            )
            .field(
                "sampler",
                Json::object()
                    .field("p", p)
                    .field("plan", plan_name(kind))
                    .build(),
            );
        if let Some(note) = &note {
            obj = obj.field("note", note.clone());
        }
        writeln!(out, "{}", obj.build().render())?;
        return Ok(());
    }

    writeln!(out, "backends:")?;
    for b in Backend::ALL {
        writeln!(
            out,
            "  {:<6} {:>3} lanes  {}",
            b.name(),
            b.lanes(),
            if b.is_available() {
                "available"
            } else {
                "not available on this machine"
            }
        )?;
    }
    writeln!(out, "detected          : {}", detected.name())?;
    match active {
        Some(b) => writeln!(out, "active            : {}", b.name())?,
        None => writeln!(out, "active            : (error, see below)")?,
    }
    match forced {
        ForcedBackend::Unset => {
            writeln!(out, "{BACKEND_ENV_VAR:<18}: unset")?;
        }
        ForcedBackend::Forced(b) => {
            writeln!(out, "{BACKEND_ENV_VAR:<18}: {}", b.name())?;
        }
        ForcedBackend::Unavailable(_) | ForcedBackend::Invalid(_) => {
            writeln!(
                out,
                "{BACKEND_ENV_VAR:<18}: {}",
                note.as_deref().unwrap_or("invalid")
            )?;
        }
    }
    writeln!(out, "sampler p={p:<7}: {}", plan_description(kind))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(tokens: &[&str]) -> Result<String, CliError> {
        let tokens: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn reports_backends_and_active() {
        let s = run_to_string(&[]).expect("valid");
        assert!(s.contains("u64     64 lanes  available"), "{s}");
        assert!(s.contains("detected"), "{s}");
        assert!(s.contains("active"), "{s}");
        assert!(
            s.contains("mask-composition (1 random word per plane"),
            "{s}"
        );
    }

    #[test]
    fn classifies_sampler_plans() {
        let s = run_to_string(&["--p", "0.1"]).expect("valid");
        assert!(s.contains("adaptive expansion"), "{s}");
        let s = run_to_string(&["--p", "0.1875"]).expect("valid");
        assert!(s.contains("mask-composition (4 random words"), "{s}");
        let s = run_to_string(&["--p", "0"]).expect("valid");
        assert!(s.contains("degenerate"), "{s}");
    }

    #[test]
    fn json_output_is_parseable_and_schema_stable() {
        let s = run_to_string(&["--json", "--p", "0.25"]).expect("valid");
        let parsed = Json::parse(&s).expect("valid json");
        let backends = parsed
            .get("backends")
            .and_then(Json::as_array)
            .expect("array");
        assert_eq!(backends.len(), 4);
        assert_eq!(backends[0].get("name").and_then(Json::as_str), Some("u64"));
        assert_eq!(
            backends[0].get("available").and_then(Json::as_bool),
            Some(true)
        );
        assert!(parsed.get("detected").and_then(Json::as_str).is_some());
        let names = parsed
            .get("available_names")
            .and_then(Json::as_array)
            .expect("available_names array");
        assert_eq!(names[0].as_str(), Some("u64"));
        let sampler = parsed.get("sampler").expect("sampler");
        assert_eq!(
            sampler.get("plan").and_then(Json::as_str),
            Some("mask_composition")
        );
    }

    #[test]
    fn rejects_out_of_range_p() {
        assert!(run_to_string(&["--p", "1.5"]).is_err());
    }

    #[test]
    fn help_prints_usage() {
        let s = run_to_string(&["--help"]).expect("valid");
        assert!(s.contains("usage: sealpaa simd"));
    }
}
