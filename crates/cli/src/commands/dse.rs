//! `sealpaa dse` — budgeted hybrid-adder design-space exploration.

use std::io::Write;

use sealpaa_explore::{
    accurate_cell_with_proxy_costs, exhaustive_best_with, exhaustive_designs, local_search_best,
    pareto_front, Budget,
};
use sealpaa_sim::default_threads;

use crate::args::{parse_cell, parse_profile, ParsedArgs};
use crate::error::CliError;

const HELP: &str = "\
usage: sealpaa dse --width N [options]

Searches per-stage cell assignments (paper Sec. 5's hybrid adders) for the
minimum error probability under an optional power/area budget.

options:
  --width N           adder width (required)
  --candidates A,B,.. candidate cells (default lpaa1,lpaa2,lpaa5,accurate;
                      'accurate' uses the estimated costs from DESIGN.md)
  --p/--pa/--pb/--cin input probabilities, as in `sealpaa analyze`
  --budget-power X    maximum total power in nW
  --budget-area X     maximum total area in GE
  --local             use hill-climbing instead of exhaustive enumeration
                      (required for large widths/candidate sets)
  --pareto            print the error/power/area Pareto frontier
  --threads T         worker threads for the exhaustive search (default: all
                      available cores; results are identical for any T)";

/// Runs the command.
///
/// # Errors
///
/// Returns [`CliError`] on bad options, uncosted candidate cells, or an
/// enumeration that exceeds the size cap (use `--local`).
pub fn run<W: Write>(tokens: &[String], out: &mut W) -> Result<(), CliError> {
    if tokens.iter().any(|t| t == "--help") {
        writeln!(out, "{HELP}")?;
        return Ok(());
    }
    let args = ParsedArgs::parse(
        tokens,
        &[
            "width",
            "candidates",
            "p",
            "pa",
            "pb",
            "cin",
            "budget-power",
            "budget-area",
            "threads",
        ],
        &["local", "pareto"],
    )?;
    let width: usize = args.require("width")?;
    if width == 0 {
        return Err(CliError::usage("--width must be at least 1"));
    }
    let profile = parse_profile(&args, width)?;
    let candidates = match args.option("candidates") {
        None => vec![
            parse_cell("lpaa1")?,
            parse_cell("lpaa2")?,
            parse_cell("lpaa5")?,
            accurate_cell_with_proxy_costs(),
        ],
        Some(list) => list
            .split(',')
            .map(|name| {
                if name.eq_ignore_ascii_case("accurate") || name.eq_ignore_ascii_case("accufa") {
                    Ok(accurate_cell_with_proxy_costs())
                } else {
                    parse_cell(name)
                }
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    let budget = Budget {
        max_power_nw: match args.option("budget-power") {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| CliError::usage(format!("--budget-power: cannot parse {v:?}")))?,
            ),
        },
        max_area_ge: match args.option("budget-area") {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| CliError::usage(format!("--budget-area: cannot parse {v:?}")))?,
            ),
        },
    };

    writeln!(
        out,
        "candidates: {}",
        candidates
            .iter()
            .map(|c| c.name().to_owned())
            .collect::<Vec<_>>()
            .join(", ")
    )?;
    let threads = args.get_or("threads", default_threads())?;
    let best = if args.flag("local") {
        local_search_best(&candidates, &profile, &budget).map_err(CliError::analysis)?
    } else {
        exhaustive_best_with(&candidates, &profile, &budget, threads).map_err(CliError::analysis)?
    };
    match best {
        None => writeln!(out, "no design fits the budget")?,
        Some(design) => {
            writeln!(out, "best design: {design}")?;
        }
    }
    if args.flag("pareto") {
        let designs =
            exhaustive_designs(&candidates, &profile, threads).map_err(CliError::analysis)?;
        let front = pareto_front(designs);
        writeln!(out, "\nPareto frontier ({} designs):", front.len())?;
        for design in front {
            writeln!(out, "  {design}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(tokens: &[&str]) -> Result<String, CliError> {
        let tokens: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&tokens, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn unconstrained_search_finds_accurate_chain() {
        let s = run_to_string(&["--width", "3", "--p", "0.3"]).expect("valid");
        assert!(s.contains("best design"), "{s}");
        assert!(s.contains("AccuFA (est.)"), "{s}");
    }

    #[test]
    fn tight_budget_forces_cheap_cells() {
        let s =
            run_to_string(&["--width", "3", "--p", "0.3", "--budget-power", "0"]).expect("valid");
        // Only LPAA 5 (0 nW) chains fit a zero budget.
        assert!(s.contains("LPAA 5, LPAA 5, LPAA 5"), "{s}");
    }

    #[test]
    fn local_matches_reasonably() {
        let s = run_to_string(&["--width", "4", "--p", "0.2", "--local"]).expect("valid");
        assert!(s.contains("best design"), "{s}");
    }

    #[test]
    fn pareto_flag_prints_frontier() {
        let s = run_to_string(&["--width", "2", "--pareto"]).expect("valid");
        assert!(s.contains("Pareto frontier"), "{s}");
    }

    #[test]
    fn custom_candidates() {
        let s = run_to_string(&["--width", "2", "--candidates", "lpaa3,lpaa5"]).expect("valid");
        assert!(s.contains("candidates: LPAA 3, LPAA 5"), "{s}");
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let base = &["--width", "4", "--p", "0.3", "--pareto"];
        let mut outputs = Vec::new();
        for threads in ["1", "2", "3"] {
            let tokens: Vec<&str> = base
                .iter()
                .chain(&["--threads", threads])
                .copied()
                .collect();
            outputs.push(run_to_string(&tokens).expect("valid"));
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
    }

    #[test]
    fn help_prints_usage() {
        let s = run_to_string(&["--help"]).expect("valid");
        assert!(s.contains("usage: sealpaa dse"));
    }
}
