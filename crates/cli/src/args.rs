//! A small, dependency-free `--key value` argument parser.

use std::collections::BTreeMap;

use sealpaa_cells::{Cell, InputProfile, StandardCell, TruthTable};
use sealpaa_num::Rational;

use crate::error::CliError;

/// Parsed command arguments: `--key value` options (also accepted as
/// `--key=value`) and bare `--flag`s, validated against the command's
/// declared vocabulary.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl ParsedArgs {
    /// Parses `tokens` against the declared `options` and `flags`.
    ///
    /// # Errors
    ///
    /// Rejects unknown keys, missing option values, and positional tokens.
    pub fn parse(tokens: &[String], options: &[&str], flags: &[&str]) -> Result<Self, CliError> {
        let mut parsed = ParsedArgs::default();
        let mut i = 0;
        while i < tokens.len() {
            let token = &tokens[i];
            let Some(stripped) = token.strip_prefix("--") else {
                return Err(CliError::usage(format!(
                    "unexpected positional argument {token:?}"
                )));
            };
            let (key, inline_value) = match stripped.split_once('=') {
                Some((k, v)) => (k.to_owned(), Some(v.to_owned())),
                None => (stripped.to_owned(), None),
            };
            if flags.contains(&key.as_str()) {
                if inline_value.is_some() {
                    return Err(CliError::usage(format!("flag --{key} takes no value")));
                }
                parsed.flags.push(key);
                i += 1;
            } else if options.contains(&key.as_str()) {
                let value = match inline_value {
                    Some(v) => v,
                    None => {
                        i += 1;
                        tokens
                            .get(i)
                            .cloned()
                            .ok_or_else(|| CliError::usage(format!("--{key} needs a value")))?
                    }
                };
                if parsed.options.insert(key.clone(), value).is_some() {
                    return Err(CliError::usage(format!("--{key} given twice")));
                }
                i += 1;
            } else {
                return Err(CliError::usage(format!("unknown option --{key}")));
            }
        }
        Ok(parsed)
    }

    /// The raw value of `--key`, if given.
    pub fn option(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// `true` if `--flag` was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// A required option, parsed.
    ///
    /// # Errors
    ///
    /// Fails if missing or unparseable.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, CliError> {
        let raw = self
            .option(key)
            .ok_or_else(|| CliError::usage(format!("--{key} is required")))?;
        raw.parse()
            .map_err(|_| CliError::usage(format!("--{key}: cannot parse {raw:?}")))
    }

    /// An optional option with a default, parsed.
    ///
    /// # Errors
    ///
    /// Fails only if the option is present but unparseable.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.option(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError::usage(format!("--{key}: cannot parse {raw:?}"))),
        }
    }
}

/// Resolves a cell name: `accurate`, `lpaa1` … `lpaa7`, or a custom truth
/// table written as 16 sum/carry bits `SSSSSSSS/CCCCCCCC` in row order
/// (row 0 = `A=B=Cin=0` first, leftmost character).
///
/// # Errors
///
/// Fails on unknown names or malformed table strings.
pub fn parse_cell(spec: &str) -> Result<Cell, CliError> {
    if let Ok(std_cell) = spec.parse::<StandardCell>() {
        return Ok(std_cell.cell());
    }
    if spec.contains('/') {
        let table: TruthTable = spec.parse().map_err(CliError::analysis)?;
        return Ok(Cell::custom(format!("custom({spec})"), table));
    }
    Err(CliError::usage(format!(
        "unknown cell {spec:?} (use accurate, lpaa1..lpaa7, or SSSSSSSS/CCCCCCCC)"
    )))
}

/// Builds the per-bit input profile from `--width`, plus either a constant
/// `--p` or per-bit `--pa`/`--pb` comma lists, with optional `--cin`.
///
/// # Errors
///
/// Fails if the specification is inconsistent or out of range.
pub fn parse_profile(args: &ParsedArgs, width: usize) -> Result<InputProfile<f64>, CliError> {
    let parse_list = |key: &str| -> Result<Option<Vec<f64>>, CliError> {
        match args.option(key) {
            None => Ok(None),
            Some(raw) => {
                let values: Result<Vec<f64>, _> = raw.split(',').map(str::parse).collect();
                let values = values
                    .map_err(|_| CliError::usage(format!("--{key}: cannot parse {raw:?}")))?;
                if values.len() != width {
                    return Err(CliError::usage(format!(
                        "--{key} lists {} values but --width is {width}",
                        values.len()
                    )));
                }
                Ok(Some(values))
            }
        }
    };
    let p: f64 = args.get_or("p", 0.5)?;
    let pa = parse_list("pa")?.unwrap_or_else(|| vec![p; width]);
    let pb = parse_list("pb")?.unwrap_or_else(|| vec![p; width]);
    let cin: f64 = args.get_or("cin", p)?;
    InputProfile::new(pa, pb, cin).map_err(CliError::analysis)
}

/// Like [`parse_profile`], but parses the probability strings as *exact*
/// rationals (`0.9` stays `9/10`; `1/3` is accepted), for `--exact` mode.
///
/// # Errors
///
/// Fails if the specification is inconsistent or out of range.
pub fn parse_profile_rational(
    args: &ParsedArgs,
    width: usize,
) -> Result<InputProfile<Rational>, CliError> {
    let parse_one = |key: &str, raw: &str| -> Result<Rational, CliError> {
        raw.parse()
            .map_err(|_| CliError::usage(format!("--{key}: cannot parse {raw:?}")))
    };
    let parse_list = |key: &str| -> Result<Option<Vec<Rational>>, CliError> {
        match args.option(key) {
            None => Ok(None),
            Some(raw) => {
                let values: Result<Vec<Rational>, CliError> =
                    raw.split(',').map(|v| parse_one(key, v)).collect();
                let values = values?;
                if values.len() != width {
                    return Err(CliError::usage(format!(
                        "--{key} lists {} values but --width is {width}",
                        values.len()
                    )));
                }
                Ok(Some(values))
            }
        }
    };
    let p = match args.option("p") {
        Some(raw) => parse_one("p", raw)?,
        None => Rational::from_ratio(1, 2),
    };
    let pa = parse_list("pa")?.unwrap_or_else(|| vec![p.clone(); width]);
    let pb = parse_list("pb")?.unwrap_or_else(|| vec![p.clone(); width]);
    let cin = match args.option("cin") {
        Some(raw) => parse_one("cin", raw)?,
        None => p,
    };
    InputProfile::new(pa, pb, cin).map_err(CliError::analysis)
}

/// Resolves `--cell NAME` or `--cells a,b,c` (per-stage, LSB first) into the
/// per-stage cell list for `width` stages.
///
/// # Errors
///
/// Fails if neither/both are given or a name is unknown.
pub fn parse_chain_cells(args: &ParsedArgs, width: usize) -> Result<Vec<Cell>, CliError> {
    match (args.option("cell"), args.option("cells")) {
        (Some(one), None) => Ok(vec![parse_cell(one)?; width]),
        (None, Some(many)) => {
            let cells: Result<Vec<Cell>, CliError> = many.split(',').map(parse_cell).collect();
            let cells = cells?;
            if cells.len() != width {
                return Err(CliError::usage(format!(
                    "--cells lists {} cells but --width is {width}",
                    cells.len()
                )));
            }
            Ok(cells)
        }
        (None, None) => Err(CliError::usage("one of --cell or --cells is required")),
        (Some(_), Some(_)) => Err(CliError::usage("--cell and --cells are mutually exclusive")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_options_and_flags() {
        let a = ParsedArgs::parse(
            &toks("--width 8 --exact --p=0.25"),
            &["width", "p"],
            &["exact"],
        )
        .expect("valid");
        assert_eq!(a.option("width"), Some("8"));
        assert_eq!(a.option("p"), Some("0.25"));
        assert!(a.flag("exact"));
        assert!(!a.flag("trace"));
    }

    #[test]
    fn rejects_unknown_and_duplicates() {
        assert!(ParsedArgs::parse(&toks("--bogus 1"), &["width"], &[]).is_err());
        assert!(ParsedArgs::parse(&toks("--width 1 --width 2"), &["width"], &[]).is_err());
        assert!(ParsedArgs::parse(&toks("positional"), &["width"], &[]).is_err());
        assert!(ParsedArgs::parse(&toks("--width"), &["width"], &[]).is_err());
        assert!(ParsedArgs::parse(&toks("--exact=1"), &[], &["exact"]).is_err());
    }

    #[test]
    fn require_and_get_or() {
        let a = ParsedArgs::parse(&toks("--width 8"), &["width", "p"], &[]).expect("valid");
        assert_eq!(a.require::<usize>("width").expect("present"), 8);
        assert!(a.require::<usize>("p").is_err());
        assert_eq!(a.get_or::<f64>("p", 0.5).expect("default"), 0.5);
    }

    #[test]
    fn cell_names_resolve() {
        assert_eq!(parse_cell("lpaa1").expect("known").name(), "LPAA 1");
        assert_eq!(parse_cell("LPAA3").expect("known").name(), "LPAA 3");
        assert_eq!(parse_cell("accurate").expect("known").name(), "AccuFA");
        assert_eq!(parse_cell("accufa").expect("known").name(), "AccuFA");
        assert!(parse_cell("lpaa9").is_err());
    }

    #[test]
    fn custom_truth_table_cell() {
        // The accurate adder written out by hand: sum = 01101001… pattern.
        let accurate = TruthTable::accurate();
        let mut sum = String::new();
        let mut carry = String::new();
        for i in 0..8 {
            let out = accurate.rows()[i];
            sum.push(if out.sum { '1' } else { '0' });
            carry.push(if out.carry_out { '1' } else { '0' });
        }
        let cell = parse_cell(&format!("{sum}/{carry}")).expect("valid table");
        assert!(cell.truth_table().is_accurate());
        assert!(parse_cell("0110/01").is_err());
        assert!(parse_cell("0110100x/00010111").is_err());
    }

    #[test]
    fn profile_constant_and_per_bit() {
        let a = ParsedArgs::parse(&toks("--p 0.1"), &["p", "pa", "pb", "cin"], &[]).expect("ok");
        let profile = parse_profile(&a, 3).expect("valid");
        assert_eq!(*profile.pa(2), 0.1);
        assert_eq!(*profile.p_cin(), 0.1);

        let a = ParsedArgs::parse(
            &toks("--pa 0.1,0.2,0.3 --pb 0.4,0.5,0.6 --cin 0.9"),
            &["p", "pa", "pb", "cin"],
            &[],
        )
        .expect("ok");
        let profile = parse_profile(&a, 3).expect("valid");
        assert_eq!(*profile.pb(1), 0.5);
        assert_eq!(*profile.p_cin(), 0.9);
    }

    #[test]
    fn profile_length_mismatch_rejected() {
        let a =
            ParsedArgs::parse(&toks("--pa 0.1,0.2"), &["p", "pa", "pb", "cin"], &[]).expect("ok");
        assert!(parse_profile(&a, 3).is_err());
    }

    #[test]
    fn chain_cells_resolution() {
        let a = ParsedArgs::parse(&toks("--cell lpaa2"), &["cell", "cells"], &[]).expect("ok");
        let cells = parse_chain_cells(&a, 4).expect("valid");
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[3].name(), "LPAA 2");

        let a = ParsedArgs::parse(&toks("--cells lpaa1,accurate"), &["cell", "cells"], &[])
            .expect("ok");
        let cells = parse_chain_cells(&a, 2).expect("valid");
        assert_eq!(cells[1].name(), "AccuFA");

        let a = ParsedArgs::parse(&toks("--cells lpaa1"), &["cell", "cells"], &[]).expect("ok");
        assert!(parse_chain_cells(&a, 2).is_err());

        let a = ParsedArgs::parse(&[], &["cell", "cells"], &[]).expect("ok");
        assert!(parse_chain_cells(&a, 2).is_err());
    }
}
