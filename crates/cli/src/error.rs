//! The CLI's error type.

use std::fmt;

/// Anything that can go wrong while running a CLI command.
#[derive(Debug)]
pub enum CliError {
    /// The user asked for something malformed; the message includes usage.
    Usage(String),
    /// A downstream analysis rejected the request.
    Analysis(String),
    /// Output could not be written.
    Io(std::io::Error),
}

impl CliError {
    /// Builds a usage error.
    pub fn usage(message: impl Into<String>) -> Self {
        CliError::Usage(message.into())
    }

    /// Builds an analysis-failure error.
    pub fn analysis(message: impl fmt::Display) -> Self {
        CliError::Analysis(message.to_string())
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Analysis(m) => write!(f, "analysis failed: {m}"),
            CliError::Io(e) => write!(f, "output failed: {e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(CliError::usage("u").to_string(), "u");
        assert!(CliError::analysis("boom").to_string().contains("boom"));
        let io = CliError::from(std::io::Error::other("x"));
        assert!(io.to_string().contains("output failed"));
    }
}
