//! The `sealpaa` command-line tool: the paper's error analyses without
//! writing any Rust.
//!
//! ```text
//! sealpaa cells                               # the cell library + M/K/L
//! sealpaa analyze  --cell lpaa1 --width 16 --p 0.1 --trace
//! sealpaa simulate --cell lpaa6 --width 8 --p 0.1 --samples 100000
//! sealpaa magnitude --cell lpaa5 --width 8 --p 0.5 --distribution
//! sealpaa gear     --n 16 --r 2 --overlap 2 --p 0.5
//! sealpaa sweep    --cell lpaa5 --width 8 --p 0.5
//! sealpaa dse      --width 6 --p 0.3 --budget-power 3000
//! ```
//!
//! All command logic lives in this library (writing to any `io::Write`) so
//! the test suite can drive it end to end; `src/main.rs` is a thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;
mod error;
mod json;

pub use args::ParsedArgs;
pub use error::CliError;

use std::io::Write;

/// Top-level usage text.
pub const USAGE: &str = "\
usage: sealpaa <command> [options]

commands:
  cells       list the standard cell library (truth tables, M/K/L, power/area)
  compare     per-cell scorecard: P(error), bias, RMS, worst case, power/area
  analyze     error probability of a (hybrid) multi-bit adder (the paper's method)
  simulate    exhaustive or Monte-Carlo simulation of the same adder
  magnitude   error-distance moments and (optionally) the full distribution
  gear        error probability of a GeAr low-latency adder
  blocks      block-based adders: exact ED distributions, sweeps, Pareto DSE
  sweep       approximate-LSB sweep: quality vs power trade-off curve
  dse         budgeted hybrid-adder design-space exploration
  multiplier  quality of an approximate shift-add multiplier
  fir         quality of an approximate FIR filter on a synthetic stream
  datapath    analytical datapath SNR: estimate, fit models, optimize cells
  verilog     emit structural Verilog for a cell, chain, or GeAr adder
  trace       workload traces: synthesize, profile, replay, model fidelity
  serve       analysis-as-a-service daemon (JSON over TCP or stdio)
  route       consistent-hash gateway sharding requests over serve daemons
  simd        SIMD backend diagnostics: detected, active, forced, sampler plans
  help        show this message

run `sealpaa <command> --help` for the command's options";

/// Executes one CLI invocation. `args` excludes the program name.
///
/// # Errors
///
/// Returns [`CliError`] on unknown commands, malformed options, or analysis
/// errors; the caller decides how to render it (the binary prints it to
/// stderr and exits non-zero).
pub fn run<W: Write>(args: &[String], out: &mut W) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::usage(USAGE));
    };
    let rest = &args[1..];
    match command.as_str() {
        "cells" => commands::cells::run(rest, out),
        "compare" => commands::compare::run(rest, out),
        "analyze" => commands::analyze::run(rest, out),
        "simulate" => commands::simulate::run(rest, out),
        "magnitude" => commands::magnitude::run(rest, out),
        "gear" => commands::gear::run(rest, out),
        "blocks" => commands::blocks::run(rest, out),
        "sweep" => commands::sweep::run(rest, out),
        "dse" => commands::dse::run(rest, out),
        "multiplier" => commands::multiplier::run(rest, out),
        "fir" => commands::fir::run(rest, out),
        "datapath" => commands::datapath::run(rest, out),
        "verilog" => commands::verilog::run(rest, out),
        "trace" => commands::trace::run(rest, out),
        "serve" => commands::serve::run(rest, out),
        "route" => commands::route::run(rest, out),
        "simd" => commands::simd::run(rest, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown command {other:?}\n\n{USAGE}"
        ))),
    }
}
