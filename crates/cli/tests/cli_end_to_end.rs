//! End-to-end tests that execute the compiled `sealpaa` binary.

use std::process::Command;

fn sealpaa(args: &[&str]) -> (String, String, Option<i32>) {
    let output = Command::new(env!("CARGO_BIN_EXE_sealpaa"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8(output.stdout).expect("utf8 stdout"),
        String::from_utf8(output.stderr).expect("utf8 stderr"),
        output.status.code(),
    )
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let (_, stderr, code) = sealpaa(&[]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("usage: sealpaa"));
}

#[test]
fn unknown_command_fails() {
    let (_, stderr, code) = sealpaa(&["frobnicate"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown command"));
}

#[test]
fn help_succeeds() {
    let (stdout, _, code) = sealpaa(&["help"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("commands:"));
}

#[test]
fn full_paper_workflow() {
    // Table 4's example through the real binary, exact mode.
    let (stdout, _, code) = sealpaa(&[
        "analyze",
        "--width",
        "4",
        "--cell",
        "lpaa1",
        "--pa",
        "0.9,0.5,0.4,0.8",
        "--pb",
        "0.8,0.7,0.6,0.9",
        "--cin",
        "0.5",
        "--exact",
    ]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("184619/250000"), "{stdout}");
    assert!(stdout.contains("0.7384760000"), "{stdout}");
}

#[test]
fn analyze_and_simulate_agree() {
    let analyze = sealpaa(&["analyze", "--width", "4", "--cell", "lpaa6", "--p", "0.25"]).0;
    let simulate = sealpaa(&[
        "simulate",
        "--width",
        "4",
        "--cell",
        "lpaa6",
        "--p",
        "0.25",
        "--exhaustive",
    ])
    .0;
    let grab = |s: &str, prefix: &str| -> f64 {
        s.lines()
            .find(|l| l.starts_with(prefix))
            .unwrap_or_else(|| panic!("missing {prefix} in {s}"))
            .split(&[':', '='][..])
            .nth(1)
            .expect("value")
            .trim()
            .split(' ')
            .next()
            .expect("number")
            .parse()
            .expect("f64")
    };
    let analytical = grab(&analyze, "P(error)");
    let simulated = grab(&simulate, "P(stage error)");
    assert!((analytical - simulated).abs() < 1e-9);
}

#[test]
fn gear_command_runs() {
    let (stdout, _, code) = sealpaa(&[
        "gear",
        "--n",
        "16",
        "--r",
        "4",
        "--overlap",
        "4",
        "--baselines",
    ]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("GeAr(N=16, R=4, P=4)"));
    assert!(stdout.contains("incl-excl"));
}

#[test]
fn sweep_command_runs() {
    let (stdout, _, code) = sealpaa(&["sweep", "--width", "4", "--cell", "lpaa5"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("LSB sweep"));
}

#[test]
fn dse_command_runs() {
    let (stdout, _, code) =
        sealpaa(&["dse", "--width", "3", "--p", "0.2", "--budget-power", "600"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("best design"), "{stdout}");
}

#[test]
fn magnitude_with_distribution() {
    let (stdout, _, code) = sealpaa(&[
        "magnitude",
        "--width",
        "2",
        "--cell",
        "lpaa1",
        "--distribution",
        "--tail",
        "2",
    ]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("RMS error distance"));
    assert!(stdout.contains("P(|D| > 2)"));
}

#[test]
fn multiplier_command_runs() {
    let (stdout, _, code) = sealpaa(&[
        "multiplier",
        "--width",
        "6",
        "--cell",
        "lpaa6",
        "--samples",
        "2000",
    ]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("MRED"), "{stdout}");
}

#[test]
fn fir_command_runs() {
    let (stdout, _, code) = sealpaa(&[
        "fir", "--cell", "lpaa6", "--taps", "1,2,1", "--length", "300",
    ]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("PSNR"), "{stdout}");
}

#[test]
fn verilog_command_emits_module() {
    let (stdout, _, code) =
        sealpaa(&["verilog", "--width", "3", "--cells", "lpaa1,lpaa5,accurate"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("module approx_adder_3"), "{stdout}");
    assert!(stdout.trim_end().ends_with("endmodule"), "{stdout}");
}

#[test]
fn custom_truth_table_cell_via_binary() {
    // The accurate adder expressed as a custom table: zero error.
    let (stdout, _, code) = sealpaa(&[
        "analyze",
        "--width",
        "3",
        "--cell",
        "01101001/00010111",
        "--p",
        "0.5",
    ]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("P(error)   = 0.0000000000"), "{stdout}");
}
