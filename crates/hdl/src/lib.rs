//! Structural Verilog emission for approximate adders.
//!
//! The paper's library targets design automation ("design automation of
//! complex approximate computing processors, and high-level synthesis");
//! this crate closes that loop for a Rust workflow: any cell in the library
//! (or any custom truth table) is synthesized to two-level logic, and
//! ripple chains and GeAr adders are emitted as structural Verilog.
//!
//! Trustworthiness without an external simulator: the emitted text is
//! generated from a [`Netlist`] that this crate can also *evaluate in Rust*
//! — the tests prove, exhaustively and by property, that the netlist
//! computes exactly what the truth tables / `AdderChain` / `GearAdder`
//! models compute, so the Verilog (a direct rendering of the same netlist)
//! carries the same behaviour modulo syntax.
//!
//! * [`SumOfProducts`] — two-level synthesis of a truth-table output,
//! * [`Netlist`] / [`cell_netlist`] / [`chain_netlist`] /
//!   [`gear_netlist`] — evaluable gate-level models,
//! * [`cell_verilog`] / [`chain_verilog`] / [`gear_verilog`] — the
//!   emitted `.v` text.
//!
//! # Examples
//!
//! ```
//! use sealpaa_cells::StandardCell;
//! use sealpaa_hdl::cell_verilog;
//!
//! let v = cell_verilog(&StandardCell::Lpaa1.cell());
//! assert!(v.contains("module lpaa_1"));
//! assert!(v.contains("input  wire a, b, cin;"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod netlist;
mod sop;
mod verilog;

pub use netlist::{cell_netlist, chain_netlist, gear_netlist, Net, Netlist};
pub use sop::SumOfProducts;
pub use verilog::{cell_verilog, chain_verilog, gear_verilog, module_name};
