//! An evaluable gate-level netlist — the single source from which Verilog is
//! rendered, so behavioural tests on the netlist vouch for the emitted text.

use std::collections::BTreeMap;

use sealpaa_cells::{AdderChain, Cell, TruthTable};
use sealpaa_gear::GearConfig;

use crate::sop::SumOfProducts;

/// A handle to one net (gate output) in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Net(usize);

#[derive(Debug, Clone)]
pub(crate) enum Gate {
    Input(String),
    Const(bool),
    Not(Net),
    And(Vec<Net>),
    Or(Vec<Net>),
}

/// A combinational gate-level netlist with named inputs and outputs.
///
/// Gates only reference earlier nets, so the list is topologically ordered
/// by construction and evaluation is a single pass.
///
/// # Examples
///
/// ```
/// use sealpaa_cells::StandardCell;
/// use sealpaa_hdl::cell_netlist;
///
/// let netlist = cell_netlist(&StandardCell::Lpaa1.cell());
/// let out = netlist.eval(&[("a", true), ("b", true), ("cin", true)]);
/// assert_eq!(out["sum"], true);
/// assert_eq!(out["cout"], true);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    gates: Vec<Gate>,
    outputs: Vec<(String, Net)>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Declares a primary input.
    pub fn input(&mut self, name: impl Into<String>) -> Net {
        self.push(Gate::Input(name.into()))
    }

    /// A constant driver.
    pub fn constant(&mut self, value: bool) -> Net {
        self.push(Gate::Const(value))
    }

    /// An inverter.
    pub fn not(&mut self, a: Net) -> Net {
        self.push(Gate::Not(a))
    }

    /// An N-input AND (1-input collapses to a buffer of the operand).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn and(&mut self, inputs: Vec<Net>) -> Net {
        assert!(!inputs.is_empty(), "AND needs at least one input");
        if inputs.len() == 1 {
            inputs[0]
        } else {
            self.push(Gate::And(inputs))
        }
    }

    /// An N-input OR (1-input collapses to a buffer of the operand).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn or(&mut self, inputs: Vec<Net>) -> Net {
        assert!(!inputs.is_empty(), "OR needs at least one input");
        if inputs.len() == 1 {
            inputs[0]
        } else {
            self.push(Gate::Or(inputs))
        }
    }

    /// Names a net as a primary output.
    pub fn mark_output(&mut self, name: impl Into<String>, net: Net) {
        self.outputs.push((name.into(), net));
    }

    /// Number of logic gates (NOT/AND/OR; inputs and constants excluded).
    pub fn gate_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, Gate::Not(_) | Gate::And(_) | Gate::Or(_)))
            .count()
    }

    /// The primary input names, in declaration order.
    pub fn input_names(&self) -> Vec<&str> {
        self.gates
            .iter()
            .filter_map(|g| match g {
                Gate::Input(name) => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }

    /// The primary outputs `(name, net)`, in declaration order.
    pub fn outputs(&self) -> &[(String, Net)] {
        &self.outputs
    }

    pub(crate) fn gates(&self) -> &[Gate] {
        &self.gates
    }

    pub(crate) fn net_index(net: Net) -> usize {
        net.0
    }

    /// Evaluates the netlist. Unbound inputs default to `false`.
    ///
    /// # Panics
    ///
    /// Panics if `assignments` names an input that does not exist.
    pub fn eval(&self, assignments: &[(&str, bool)]) -> BTreeMap<String, bool> {
        for (name, _) in assignments {
            assert!(self.input_names().contains(name), "no input named {name:?}");
        }
        let mut values: Vec<bool> = Vec::with_capacity(self.gates.len());
        for gate in &self.gates {
            let v = match gate {
                Gate::Input(name) => assignments
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| *v)
                    .unwrap_or(false),
                Gate::Const(v) => *v,
                Gate::Not(a) => !values[a.0],
                Gate::And(ins) => ins.iter().all(|n| values[n.0]),
                Gate::Or(ins) => ins.iter().any(|n| values[n.0]),
            };
            values.push(v);
        }
        self.outputs
            .iter()
            .map(|(name, net)| (name.clone(), values[net.0]))
            .collect()
    }

    fn push(&mut self, gate: Gate) -> Net {
        self.gates.push(gate);
        Net(self.gates.len() - 1)
    }
}

/// Appends the two-level logic of one cell to `netlist`, returning
/// `(sum, carry_out)` nets.
fn synthesize_cell(
    netlist: &mut Netlist,
    table: &TruthTable,
    a: Net,
    b: Net,
    cin: Net,
) -> (Net, Net) {
    let na = netlist.not(a);
    let nb = netlist.not(b);
    let ncin = netlist.not(cin);
    let mut build = |sop: &SumOfProducts| -> Net {
        match sop.constant() {
            Some(v) => netlist.constant(v),
            None => {
                let mut products = Vec::new();
                for term in sop.terms() {
                    let mut lits = Vec::new();
                    for (net, inv, polarity) in
                        [(a, na, term.a), (b, nb, term.b), (cin, ncin, term.cin)]
                    {
                        match polarity {
                            Some(true) => lits.push(net),
                            Some(false) => lits.push(inv),
                            None => {}
                        }
                    }
                    products.push(netlist.and(lits));
                }
                netlist.or(products)
            }
        }
    };
    let sum = build(&SumOfProducts::for_sum(table));
    let carry = build(&SumOfProducts::for_carry(table));
    (sum, carry)
}

/// Gate-level netlist of one single-bit cell: inputs `a`, `b`, `cin`;
/// outputs `sum`, `cout`.
pub fn cell_netlist(cell: &Cell) -> Netlist {
    let mut netlist = Netlist::new();
    let a = netlist.input("a");
    let b = netlist.input("b");
    let cin = netlist.input("cin");
    let (sum, cout) = synthesize_cell(&mut netlist, cell.truth_table(), a, b, cin);
    netlist.mark_output("sum", sum);
    netlist.mark_output("cout", cout);
    netlist
}

/// Gate-level netlist of an N-bit (possibly hybrid) ripple chain: inputs
/// `a0..`, `b0..`, `cin`; outputs `s0..`, `cout`.
pub fn chain_netlist(chain: &AdderChain) -> Netlist {
    let mut netlist = Netlist::new();
    let a: Vec<Net> = (0..chain.width())
        .map(|i| netlist.input(format!("a{i}")))
        .collect();
    let b: Vec<Net> = (0..chain.width())
        .map(|i| netlist.input(format!("b{i}")))
        .collect();
    let mut carry = netlist.input("cin");
    for (i, cell) in chain.iter().enumerate() {
        let (sum, cout) = synthesize_cell(&mut netlist, cell.truth_table(), a[i], b[i], carry);
        netlist.mark_output(format!("s{i}"), sum);
        carry = cout;
    }
    netlist.mark_output("cout", carry);
    netlist
}

/// Gate-level netlist of a GeAr adder built from accurate full adders in
/// each parallel sub-adder (paper Fig. 2): inputs `a0..`, `b0..`, `cin`;
/// outputs `s0..`, `cout`. The carry-in feeds sub-adder 0 only.
pub fn gear_netlist(config: &GearConfig) -> Netlist {
    let mut netlist = Netlist::new();
    let n = config.width();
    let a: Vec<Net> = (0..n).map(|i| netlist.input(format!("a{i}"))).collect();
    let b: Vec<Net> = (0..n).map(|i| netlist.input(format!("b{i}"))).collect();
    let cin = netlist.input("cin");
    let zero = netlist.constant(false);
    let accurate = TruthTable::accurate();
    let mut final_carry = zero;
    for block in 0..config.block_count() {
        let window = config.block_window(block);
        let mut carry = if block == 0 { cin } else { zero };
        let mut sums = Vec::new();
        for bit in window.clone() {
            let (sum, cout) = synthesize_cell(&mut netlist, &accurate, a[bit], b[bit], carry);
            sums.push((bit, sum));
            carry = cout;
        }
        for (bit, sum) in sums {
            if config.block_result_bits(block).contains(&bit) {
                netlist.mark_output(format!("s{bit}"), sum);
            }
        }
        if block == config.block_count() - 1 {
            final_carry = carry;
        }
    }
    netlist.mark_output("cout", final_carry);
    netlist
}

#[cfg(test)]
mod tests {
    use super::*;
    use sealpaa_cells::{FaInput, StandardCell};
    use sealpaa_gear::GearAdder;

    #[test]
    fn cell_netlists_match_truth_tables_exhaustively() {
        for cell in StandardCell::ALL {
            let netlist = cell_netlist(&cell.cell());
            for input in FaInput::all() {
                let out = netlist.eval(&[("a", input.a), ("b", input.b), ("cin", input.carry_in)]);
                let expect = cell.truth_table().eval(input);
                assert_eq!(out["sum"], expect.sum, "{cell} sum {input}");
                assert_eq!(out["cout"], expect.carry_out, "{cell} cout {input}");
            }
        }
    }

    fn bind<'a>(names: &'a [String], value: u64) -> impl Iterator<Item = (&'a str, bool)> + 'a {
        names
            .iter()
            .enumerate()
            .map(move |(i, n)| (n.as_str(), (value >> i) & 1 == 1))
    }

    #[test]
    fn chain_netlist_matches_functional_model_exhaustively() {
        let chain = AdderChain::from_stages(vec![
            StandardCell::Lpaa1.cell(),
            StandardCell::Lpaa6.cell(),
            StandardCell::Accurate.cell(),
            StandardCell::Lpaa5.cell(),
        ]);
        let netlist = chain_netlist(&chain);
        let a_names: Vec<String> = (0..4).map(|i| format!("a{i}")).collect();
        let b_names: Vec<String> = (0..4).map(|i| format!("b{i}")).collect();
        for a in 0..16u64 {
            for b in 0..16u64 {
                for cin in [false, true] {
                    let mut assignments: Vec<(&str, bool)> =
                        bind(&a_names, a).chain(bind(&b_names, b)).collect();
                    assignments.push(("cin", cin));
                    let out = netlist.eval(&assignments);
                    let expect = chain.add(a, b, cin);
                    for i in 0..4 {
                        assert_eq!(
                            out[&format!("s{i}")],
                            (expect.sum_bits() >> i) & 1 == 1,
                            "s{i} at {a}+{b}+{cin}"
                        );
                    }
                    assert_eq!(out["cout"], expect.carry_out(), "{a}+{b}+{cin}");
                }
            }
        }
    }

    #[test]
    fn gear_netlist_matches_functional_model_exhaustively() {
        let config = GearConfig::new(6, 2, 2).expect("valid config");
        let netlist = gear_netlist(&config);
        let adder = GearAdder::new(config);
        let a_names: Vec<String> = (0..6).map(|i| format!("a{i}")).collect();
        let b_names: Vec<String> = (0..6).map(|i| format!("b{i}")).collect();
        for a in 0..64u64 {
            for b in 0..64u64 {
                for cin in [false, true] {
                    let mut assignments: Vec<(&str, bool)> =
                        bind(&a_names, a).chain(bind(&b_names, b)).collect();
                    assignments.push(("cin", cin));
                    let out = netlist.eval(&assignments);
                    let (sum, carry) = adder.add(a, b, cin);
                    for i in 0..6 {
                        assert_eq!(
                            out[&format!("s{i}")],
                            (sum >> i) & 1 == 1,
                            "s{i} at {a}+{b}+{cin}"
                        );
                    }
                    assert_eq!(out["cout"], carry, "{a}+{b}+{cin}");
                }
            }
        }
    }

    #[test]
    fn gate_counts_reflect_cell_simplicity() {
        let exact = cell_netlist(&StandardCell::Accurate.cell()).gate_count();
        let lpaa5 = cell_netlist(&StandardCell::Lpaa5.cell()).gate_count();
        assert!(lpaa5 < exact, "LPAA 5 ({lpaa5}) vs AccuFA ({exact})");
        // LPAA 5 is pure wiring: only the shared input inverters remain.
        assert!(lpaa5 <= 3);
    }

    #[test]
    fn unbound_inputs_default_low() {
        let netlist = cell_netlist(&StandardCell::Accurate.cell());
        let out = netlist.eval(&[("a", true)]);
        assert!(out["sum"]);
        assert!(!out["cout"]);
    }

    #[test]
    #[should_panic(expected = "no input named")]
    fn unknown_input_panics() {
        let netlist = cell_netlist(&StandardCell::Accurate.cell());
        let _ = netlist.eval(&[("bogus", true)]);
    }

    #[test]
    fn input_names_and_outputs_are_ordered() {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 2);
        let netlist = chain_netlist(&chain);
        assert_eq!(netlist.input_names(), ["a0", "a1", "b0", "b1", "cin"]);
        let outs: Vec<&str> = netlist.outputs().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(outs, ["s0", "s1", "cout"]);
    }
}
