//! Two-level (sum-of-products) synthesis of a single-bit adder output.

use std::fmt;

use sealpaa_cells::{FaInput, TruthTable};

/// One product term over the three full-adder inputs: for each input, an
/// optional required polarity (`None` = don't care).
///
/// Terms produced by the minimizer never have all three entries `None`
/// unless the function is constant-1 (represented by a single all-`None`
/// term).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProductTerm {
    /// Required value of `A`, if constrained.
    pub a: Option<bool>,
    /// Required value of `B`, if constrained.
    pub b: Option<bool>,
    /// Required value of `Cin`, if constrained.
    pub cin: Option<bool>,
}

impl ProductTerm {
    /// `true` if the input combination satisfies the term.
    pub fn covers(&self, input: FaInput) -> bool {
        self.a.is_none_or(|v| v == input.a)
            && self.b.is_none_or(|v| v == input.b)
            && self.cin.is_none_or(|v| v == input.carry_in)
    }

    /// Number of literals in the term.
    pub fn literals(&self) -> usize {
        [self.a, self.b, self.cin].iter().flatten().count()
    }
}

/// A sum-of-products cover of one output column of a truth table, minimized
/// by a small exact Quine–McCluskey pass (3 variables, so the prime-implicant
/// table is tiny).
///
/// # Examples
///
/// ```
/// use sealpaa_cells::{StandardCell, TruthTable};
/// use sealpaa_hdl::SumOfProducts;
///
/// // The accurate carry-out is the majority function: 3 terms of 2 literals.
/// let carry = SumOfProducts::for_carry(&TruthTable::accurate());
/// assert_eq!(carry.terms().len(), 3);
/// assert_eq!(carry.literal_count(), 6);
///
/// // LPAA 5's carry-out is just A: one single-literal term.
/// let lpaa5 = SumOfProducts::for_carry(&StandardCell::Lpaa5.truth_table());
/// assert_eq!(lpaa5.literal_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SumOfProducts {
    terms: Vec<ProductTerm>,
    constant: Option<bool>,
}

impl SumOfProducts {
    /// Synthesizes the sum output of a truth table.
    pub fn for_sum(table: &TruthTable) -> Self {
        SumOfProducts::from_fn(|input| table.eval(input).sum)
    }

    /// Synthesizes the carry-out output of a truth table.
    pub fn for_carry(table: &TruthTable) -> Self {
        SumOfProducts::from_fn(|input| table.eval(input).carry_out)
    }

    /// Synthesizes an arbitrary 3-input function.
    pub fn from_fn(f: impl Fn(FaInput) -> bool) -> Self {
        let minterms: Vec<FaInput> = FaInput::all().filter(|&i| f(i)).collect();
        if minterms.is_empty() {
            return SumOfProducts {
                terms: Vec::new(),
                constant: Some(false),
            };
        }
        if minterms.len() == 8 {
            return SumOfProducts {
                terms: Vec::new(),
                constant: Some(true),
            };
        }
        // Enumerate all 26 possible non-trivial cubes (3^3 − 1 polarity
        // patterns), keep those entirely inside the on-set, then pick a
        // minimal cover greedily by coverage then literal count. With only
        // 8 minterms the greedy pick is exact for these functions' sizes.
        let on = |input: FaInput| f(input);
        let mut cubes = Vec::new();
        let choices = [None, Some(false), Some(true)];
        for &a in &choices {
            for &b in &choices {
                for &cin in &choices {
                    let term = ProductTerm { a, b, cin };
                    let covered: Vec<FaInput> =
                        FaInput::all().filter(|&i| term.covers(i)).collect();
                    if !covered.is_empty() && covered.iter().all(|&i| on(i)) {
                        cubes.push(term);
                    }
                }
            }
        }
        let mut remaining: Vec<FaInput> = minterms;
        let mut cover = Vec::new();
        while !remaining.is_empty() {
            let best = cubes
                .iter()
                .max_by_key(|t| {
                    let coverage = remaining.iter().filter(|&&i| t.covers(i)).count();
                    // Prefer wide coverage; break ties toward fewer literals.
                    (coverage, 3usize.saturating_sub(t.literals()))
                })
                .copied()
                .expect("the minterm cubes always remain available");
            remaining.retain(|&i| !best.covers(i));
            cover.push(best);
        }
        SumOfProducts {
            terms: cover,
            constant: None,
        }
    }

    /// The product terms (empty iff the function is constant).
    pub fn terms(&self) -> &[ProductTerm] {
        &self.terms
    }

    /// `Some(value)` if the function is constant.
    pub fn constant(&self) -> Option<bool> {
        self.constant
    }

    /// Evaluates the cover on an input combination.
    pub fn eval(&self, input: FaInput) -> bool {
        match self.constant {
            Some(v) => v,
            None => self.terms.iter().any(|t| t.covers(input)),
        }
    }

    /// Total literal count — the classic two-level area proxy.
    pub fn literal_count(&self) -> usize {
        self.terms.iter().map(ProductTerm::literals).sum()
    }

    /// Renders the cover as a Verilog boolean expression over nets
    /// `a`, `b`, `cin`.
    pub fn to_verilog_expr(&self) -> String {
        match self.constant {
            Some(true) => "1'b1".to_owned(),
            Some(false) => "1'b0".to_owned(),
            None => {
                let terms: Vec<String> = self
                    .terms
                    .iter()
                    .map(|t| {
                        let mut lits = Vec::new();
                        for (name, polarity) in [("a", t.a), ("b", t.b), ("cin", t.cin)] {
                            match polarity {
                                Some(true) => lits.push(name.to_owned()),
                                Some(false) => lits.push(format!("~{name}")),
                                None => {}
                            }
                        }
                        if lits.is_empty() {
                            "1'b1".to_owned()
                        } else if lits.len() == 1 {
                            lits.pop().expect("one literal")
                        } else {
                            format!("({})", lits.join(" & "))
                        }
                    })
                    .collect();
                terms.join(" | ")
            }
        }
    }
}

impl fmt::Display for SumOfProducts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_verilog_expr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sealpaa_cells::StandardCell;

    #[test]
    fn synthesis_is_exact_for_every_standard_cell_output() {
        for cell in StandardCell::ALL {
            let table = cell.truth_table();
            let sum = SumOfProducts::for_sum(&table);
            let carry = SumOfProducts::for_carry(&table);
            for input in FaInput::all() {
                assert_eq!(sum.eval(input), table.eval(input).sum, "{cell} sum {input}");
                assert_eq!(
                    carry.eval(input),
                    table.eval(input).carry_out,
                    "{cell} carry {input}"
                );
            }
        }
    }

    #[test]
    fn constant_functions_are_detected() {
        let zero = SumOfProducts::from_fn(|_| false);
        assert_eq!(zero.constant(), Some(false));
        assert_eq!(zero.to_verilog_expr(), "1'b0");
        let one = SumOfProducts::from_fn(|_| true);
        assert_eq!(one.constant(), Some(true));
        assert_eq!(one.literal_count(), 0);
    }

    #[test]
    fn majority_synthesizes_to_three_two_literal_terms() {
        let carry = SumOfProducts::for_carry(&TruthTable::accurate());
        assert_eq!(carry.terms().len(), 3);
        assert!(carry.terms().iter().all(|t| t.literals() == 2));
    }

    #[test]
    fn xor3_requires_four_minterms() {
        // Parity has no cube larger than a single minterm.
        let sum = SumOfProducts::for_sum(&TruthTable::accurate());
        assert_eq!(sum.terms().len(), 4);
        assert_eq!(sum.literal_count(), 12);
    }

    #[test]
    fn pass_through_cells_become_single_literals() {
        // LPAA 5: sum = b, carry = a.
        let t = StandardCell::Lpaa5.truth_table();
        assert_eq!(SumOfProducts::for_sum(&t).to_verilog_expr(), "b");
        assert_eq!(SumOfProducts::for_carry(&t).to_verilog_expr(), "a");
    }

    #[test]
    fn literal_count_tracks_cell_simplicity() {
        // Approximate cells must not need more literals than the exact
        // adder — that is the entire point of LPAA design.
        let exact = SumOfProducts::for_sum(&TruthTable::accurate()).literal_count()
            + SumOfProducts::for_carry(&TruthTable::accurate()).literal_count();
        for cell in StandardCell::APPROXIMATE {
            let t = cell.truth_table();
            let total = SumOfProducts::for_sum(&t).literal_count()
                + SumOfProducts::for_carry(&t).literal_count();
            assert!(total <= exact, "{cell}: {total} vs exact {exact}");
        }
    }

    #[test]
    fn verilog_expression_shape() {
        let carry = SumOfProducts::for_carry(&TruthTable::accurate());
        let expr = carry.to_verilog_expr();
        assert_eq!(expr.matches('|').count(), 2);
        assert!(expr.contains('&'));
    }
}
