//! Property tests: the synthesized logic is equivalent to the behavioural
//! model for *arbitrary* truth tables and chains, not just the library's.
//!
//! Random tables come from the workspace's seeded xoshiro256++ generator, so
//! failures replay deterministically.

use sealpaa_cells::{AdderChain, Cell, FaInput, StandardCell, TruthTable};
use sealpaa_hdl::{cell_netlist, cell_verilog, chain_netlist, SumOfProducts};
use sealpaa_sim::Xoshiro256pp;

/// Randomized trials per property.
const CASES: u64 = 128;

fn rand_table(rng: &mut Xoshiro256pp) -> TruthTable {
    let bits = rng.next_u64();
    TruthTable::from_bits(bits as u8, (bits >> 8) as u8)
}

#[test]
fn sop_synthesis_is_exact_for_random_tables() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xB001);
    for _ in 0..CASES {
        let table = rand_table(&mut rng);
        let sum = SumOfProducts::for_sum(&table);
        let carry = SumOfProducts::for_carry(&table);
        for input in FaInput::all() {
            assert_eq!(sum.eval(input), table.eval(input).sum);
            assert_eq!(carry.eval(input), table.eval(input).carry_out);
        }
    }
}

#[test]
fn netlist_matches_table_for_random_cells() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xB002);
    for _ in 0..CASES {
        let table = rand_table(&mut rng);
        let cell = Cell::custom("random", table);
        let netlist = cell_netlist(&cell);
        for input in FaInput::all() {
            let out = netlist.eval(&[("a", input.a), ("b", input.b), ("cin", input.carry_in)]);
            let expect = table.eval(input);
            assert_eq!(out["sum"], expect.sum);
            assert_eq!(out["cout"], expect.carry_out);
        }
    }
}

#[test]
fn random_hybrid_chain_netlists_match_functional_model() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xB003);
    for case in 0..CASES {
        let width = 1 + rng.next_below(3) as usize;
        let chain = AdderChain::from_stages(
            (0..width)
                .map(|i| Cell::custom(format!("r{i}"), rand_table(&mut rng)))
                .collect(),
        );
        let a = rng.next_u64();
        let b = rng.next_u64();
        let cin = rng.next_bool(0.5);
        let netlist = chain_netlist(&chain);
        let a_names: Vec<String> = (0..width).map(|i| format!("a{i}")).collect();
        let b_names: Vec<String> = (0..width).map(|i| format!("b{i}")).collect();
        let mut assignments: Vec<(&str, bool)> = Vec::new();
        for (i, n) in a_names.iter().enumerate() {
            assignments.push((n.as_str(), (a >> i) & 1 == 1));
        }
        for (i, n) in b_names.iter().enumerate() {
            assignments.push((n.as_str(), (b >> i) & 1 == 1));
        }
        assignments.push(("cin", cin));
        let out = netlist.eval(&assignments);
        let expect = chain.add(a, b, cin);
        for i in 0..width {
            assert_eq!(
                out[&format!("s{i}")],
                (expect.sum_bits() >> i) & 1 == 1,
                "case {case}: sum bit {i}"
            );
        }
        assert_eq!(out["cout"], expect.carry_out(), "case {case}");
    }
}

#[test]
fn literal_count_never_exceeds_minterm_expansion() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xB004);
    for _ in 0..CASES {
        let table = rand_table(&mut rng);
        for sop in [
            SumOfProducts::for_sum(&table),
            SumOfProducts::for_carry(&table),
        ] {
            let minterms = FaInput::all().filter(|&i| sop.eval(i)).count();
            assert!(sop.literal_count() <= minterms * 3);
        }
    }
}

#[test]
fn verilog_for_every_standard_cell_is_emitted() {
    for cell in StandardCell::ALL {
        let v = cell_verilog(&cell.cell());
        assert!(v.starts_with("// "), "{cell}");
        assert!(v.contains("endmodule"), "{cell}");
    }
}
