//! Property tests: the synthesized logic is equivalent to the behavioural
//! model for *arbitrary* truth tables and chains, not just the library's.

use proptest::prelude::*;
use sealpaa_cells::{AdderChain, Cell, FaInput, StandardCell, TruthTable};
use sealpaa_hdl::{cell_netlist, cell_verilog, chain_netlist, SumOfProducts};

fn any_table() -> impl Strategy<Value = TruthTable> {
    (any::<u8>(), any::<u8>()).prop_map(|(s, c)| TruthTable::from_bits(s, c))
}

proptest! {
    #[test]
    fn sop_synthesis_is_exact_for_random_tables(table in any_table()) {
        let sum = SumOfProducts::for_sum(&table);
        let carry = SumOfProducts::for_carry(&table);
        for input in FaInput::all() {
            prop_assert_eq!(sum.eval(input), table.eval(input).sum);
            prop_assert_eq!(carry.eval(input), table.eval(input).carry_out);
        }
    }

    #[test]
    fn netlist_matches_table_for_random_cells(table in any_table()) {
        let cell = Cell::custom("random", table);
        let netlist = cell_netlist(&cell);
        for input in FaInput::all() {
            let out = netlist.eval(&[
                ("a", input.a),
                ("b", input.b),
                ("cin", input.carry_in),
            ]);
            let expect = table.eval(input);
            prop_assert_eq!(out["sum"], expect.sum);
            prop_assert_eq!(out["cout"], expect.carry_out);
        }
    }

    #[test]
    fn random_hybrid_chain_netlists_match_functional_model(
        tables in prop::collection::vec(any_table(), 1..=3),
        a in any::<u64>(),
        b in any::<u64>(),
        cin in any::<bool>(),
    ) {
        let chain = AdderChain::from_stages(
            tables
                .iter()
                .enumerate()
                .map(|(i, t)| Cell::custom(format!("r{i}"), *t))
                .collect(),
        );
        let width = chain.width();
        let netlist = chain_netlist(&chain);
        let a_names: Vec<String> = (0..width).map(|i| format!("a{i}")).collect();
        let b_names: Vec<String> = (0..width).map(|i| format!("b{i}")).collect();
        let mut assignments: Vec<(&str, bool)> = Vec::new();
        for (i, n) in a_names.iter().enumerate() {
            assignments.push((n.as_str(), (a >> i) & 1 == 1));
        }
        for (i, n) in b_names.iter().enumerate() {
            assignments.push((n.as_str(), (b >> i) & 1 == 1));
        }
        assignments.push(("cin", cin));
        let out = netlist.eval(&assignments);
        let expect = chain.add(a, b, cin);
        for i in 0..width {
            prop_assert_eq!(out[&format!("s{i}")], (expect.sum_bits() >> i) & 1 == 1);
        }
        prop_assert_eq!(out["cout"], expect.carry_out());
    }

    #[test]
    fn literal_count_never_exceeds_minterm_expansion(table in any_table()) {
        for sop in [SumOfProducts::for_sum(&table), SumOfProducts::for_carry(&table)] {
            let minterms = FaInput::all()
                .filter(|&i| sop.eval(i))
                .count();
            prop_assert!(sop.literal_count() <= minterms * 3);
        }
    }
}

#[test]
fn verilog_for_every_standard_cell_is_emitted() {
    for cell in StandardCell::ALL {
        let v = cell_verilog(&cell.cell());
        assert!(v.starts_with("// "), "{cell}");
        assert!(v.contains("endmodule"), "{cell}");
    }
}
