//! Analytical error propagation through approximate-adder datapaths.
//!
//! The paper's closing observation — "the analysis complexity will further
//! aggravate when these adders form an accelerator data path" — is this
//! crate's subject. Where [`sealpaa_datapath::estimate`] composes error
//! *probabilities*, this crate composes full error *random variables*:
//! every signal carries `(E[D], E[D²])` for its error `D = approx − exact`
//! plus `(E[V], E[V²])` for its exact value, so the output's predicted
//! MSE, SNR and PSNR come out of one linear-time graph walk — no
//! simulation in the loop.
//!
//! * [`propagate_moments`] / [`predict`] — the engine, generic over
//!   [`Prob`](sealpaa_num::Prob) (exact `Rational` runs included), with an
//!   optional full output-error PMF ([`ErrorPmf`]) whose truncation is
//!   accounted, never silent.
//! * [`GraphStepper`] — the incremental, prefix-sharing form a per-node
//!   cell search drives.
//! * [`brute_force_moments`] / [`exact_tree_moments`] — exact reference
//!   engines the consistency tests pin the fast path against.
//! * [`fit_inputs`] / [`fit_and_check`] / [`check_against_monte_carlo`] —
//!   model fitting from value streams and fidelity reports against
//!   bit-true replay or Monte-Carlo ground truth.
//! * [`topologies`] — FIR, conv2d and array-multiplier graph builders.
//!
//! # Examples
//!
//! ```
//! use sealpaa_cells::StandardCell;
//! use sealpaa_propagate::{propagate_moments, topologies};
//!
//! // A 3-tap FIR on 8-bit samples, every adder LPAA 5.
//! let topo = topologies::fir(&StandardCell::Lpaa5.cell(), &[1, 2, 1], 8)?;
//! let uniform = vec![0.5; 8];
//! let inputs: Vec<(&str, Vec<f64>)> = topo
//!     .inputs
//!     .iter()
//!     .map(|n| (n.as_str(), uniform.clone()))
//!     .collect();
//! let p = propagate_moments(&topo.datapath, topo.output, &inputs)?;
//! let snr = p.snr_db().expect("approximate adders err");
//! assert!(snr > 0.0 && snr < 100.0);
//! # Ok::<(), sealpaa_propagate::PropagateError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
mod exact;
mod fit;
pub mod topologies;

mod model;

pub use engine::{
    predict, propagate_moments, AdderErrorModel, GraphStepper, MomentPrediction, Prediction,
    SignalState,
};
pub use error::PropagateError;
pub use exact::{
    brute_force_moments, exact_tree_moments, ExactMoments, MAX_EXACT_INPUT_BITS, MAX_EXACT_STATES,
};
pub use fit::{
    check_against_monte_carlo, fit_and_check, fit_input, fit_inputs, monte_carlo, replay,
    DatapathFidelity, FittedInput, ReplayQuality,
};
pub use model::{ErrorPmf, MAX_PMF_SUPPORT};
pub use topologies::Topology;
