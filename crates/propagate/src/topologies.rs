//! Canonical datapath topologies for the propagation engine.
//!
//! The paper motivates its analysis with DSP accelerators: FIR filters,
//! image convolution, array multipliers. These builders express those
//! structures as explicit [`Datapath`] graphs — constant multiplies as
//! shift-adds over set coefficient bits, multi-operand sums as balanced
//! adder trees (the CSA-tree shape), a bitwise multiplier as gated,
//! shifted partial products — so the engine can predict their output SNR
//! analytically and a search can assign a cell per adder node.

use sealpaa_cells::{AdderChain, Cell};
use sealpaa_datapath::{Datapath, DatapathError, Signal};

/// A built datapath with its designated output and input names in
/// declaration order.
#[derive(Debug, Clone)]
pub struct Topology {
    /// The graph.
    pub datapath: Datapath,
    /// The output signal predictions and replays should target.
    pub output: Signal,
    /// Input names, in declaration order.
    pub inputs: Vec<String>,
}

/// Sums `terms` through a balanced tree of `cell` adders and returns the
/// root. Each adder is sized to its wider operand (output grows one bit
/// per level, holding the carry).
///
/// # Errors
///
/// [`DatapathError`] if a sum would exceed the 63-bit evaluation limit.
///
/// # Panics
///
/// Panics if `terms` is empty.
pub fn accumulate(
    dp: &mut Datapath,
    cell: &Cell,
    terms: &[Signal],
) -> Result<Signal, DatapathError> {
    assert!(!terms.is_empty(), "cannot accumulate zero terms");
    let mut level: Vec<Signal> = terms.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut pairs = level.chunks_exact(2);
        for pair in &mut pairs {
            let width = dp.width(pair[0]).max(dp.width(pair[1]));
            let chain = AdderChain::uniform(cell.clone(), width);
            next.push(dp.add(pair[0], pair[1], chain)?);
        }
        next.extend(pairs.remainder().iter().copied());
        level = next;
    }
    Ok(level[0])
}

/// Multiplies `x` by the constant `k` as shift-adds over `k`'s set bits
/// (the multiplier-less constant multiply hardware actually uses). `k = 0`
/// yields a 1-bit constant zero; a power of two is a pure shift with no
/// adders.
///
/// # Errors
///
/// [`DatapathError`] if an intermediate would exceed the 63-bit limit.
pub fn mul_const(
    dp: &mut Datapath,
    cell: &Cell,
    x: Signal,
    k: u64,
) -> Result<Signal, DatapathError> {
    if k == 0 {
        return Ok(dp.constant(0, 1));
    }
    let mut terms = Vec::new();
    for bit in 0..64 {
        if (k >> bit) & 1 == 1 {
            terms.push(if bit == 0 { x } else { dp.shl(x, bit)? });
        }
    }
    accumulate(dp, cell, &terms)
}

/// A constant-coefficient FIR filter `y = Σ_t coeff[t] · x_t` over
/// `sample_width`-bit samples, every addition through `cell` chains.
/// Inputs are named `x0`, `x1`, … (tap order: `x_t` is the sample the
/// `t`-th coefficient multiplies).
///
/// # Errors
///
/// [`DatapathError::TooWide`] if the worst-case sum exceeds the 63-bit
/// limit.
///
/// # Panics
///
/// Panics if `coefficients` is empty or all-zero, or `sample_width` is 0
/// (the [`FirFilter`](sealpaa_datapath::FirFilter) conventions).
pub fn fir(
    cell: &Cell,
    coefficients: &[u64],
    sample_width: usize,
) -> Result<Topology, DatapathError> {
    assert!(!coefficients.is_empty(), "a FIR filter needs taps");
    assert!(sample_width > 0, "samples need at least one bit");
    assert!(
        coefficients.iter().any(|&c| c > 0),
        "at least one coefficient must be non-zero"
    );
    let mut dp = Datapath::new();
    let mut inputs = Vec::new();
    let mut terms = Vec::new();
    for (t, &coeff) in coefficients.iter().enumerate() {
        if coeff == 0 {
            continue;
        }
        let name = format!("x{t}");
        let x = dp.input(&name, sample_width);
        inputs.push(name);
        terms.push(mul_const(&mut dp, cell, x, coeff)?);
    }
    let output = accumulate(&mut dp, cell, &terms)?;
    Ok(Topology {
        datapath: dp,
        output,
        inputs,
    })
}

/// A 2-D convolution tap `y = Σ kernel[ky][kx] · p_{ky,kx}` over
/// `pixel_bits`-bit pixels — one output pixel of
/// [`Conv2d`](sealpaa_datapath::Conv2d), as an explicit graph. Inputs are
/// named `p{ky}_{kx}` for each non-zero kernel coefficient.
///
/// # Errors
///
/// [`DatapathError::TooWide`] if the worst-case sum exceeds the 63-bit
/// limit.
///
/// # Panics
///
/// Panics if the kernel is empty, ragged, or all-zero, or `pixel_bits` is
/// 0.
pub fn conv2d(
    cell: &Cell,
    kernel: &[Vec<u64>],
    pixel_bits: usize,
) -> Result<Topology, DatapathError> {
    assert!(!kernel.is_empty(), "a kernel needs rows");
    assert!(pixel_bits > 0, "pixels need at least one bit");
    let cols = kernel[0].len();
    assert!(
        cols > 0 && kernel.iter().all(|row| row.len() == cols),
        "kernel rows must be non-empty and equally long"
    );
    assert!(
        kernel.iter().flatten().any(|&c| c > 0),
        "at least one kernel coefficient must be non-zero"
    );
    let mut dp = Datapath::new();
    let mut inputs = Vec::new();
    let mut terms = Vec::new();
    for (ky, row) in kernel.iter().enumerate() {
        for (kx, &coeff) in row.iter().enumerate() {
            if coeff == 0 {
                continue;
            }
            let name = format!("p{ky}_{kx}");
            let pixel = dp.input(&name, pixel_bits);
            inputs.push(name);
            terms.push(mul_const(&mut dp, cell, pixel, coeff)?);
        }
    }
    let output = accumulate(&mut dp, cell, &terms)?;
    Ok(Topology {
        datapath: dp,
        output,
        inputs,
    })
}

/// An array-style `width × width` multiplier: partial product `i` is `x`
/// gated by the 1-bit input `y{i}` and shifted left by `i`, all partial
/// products summed through a balanced `cell` tree. Inputs are `x`
/// (`width` bits) then `y0`, …, `y{width−1}` (1 bit each).
///
/// # Errors
///
/// [`DatapathError::TooWide`] if the product exceeds the 63-bit limit.
///
/// # Panics
///
/// Panics if `width` is 0.
pub fn multiplier(cell: &Cell, width: usize) -> Result<Topology, DatapathError> {
    assert!(width > 0, "a multiplier needs at least one bit");
    let mut dp = Datapath::new();
    let x = dp.input("x", width);
    let mut inputs = vec!["x".to_string()];
    let mut terms = Vec::new();
    for i in 0..width {
        let name = format!("y{i}");
        let y = dp.input(&name, 1);
        inputs.push(name);
        let gated = dp.gate(x, y)?;
        terms.push(if i == 0 { gated } else { dp.shl(gated, i)? });
    }
    let output = accumulate(&mut dp, cell, &terms)?;
    Ok(Topology {
        datapath: dp,
        output,
        inputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sealpaa_cells::StandardCell;

    #[test]
    fn fir_matches_direct_convolution_when_exact() {
        let topo = fir(&StandardCell::Accurate.cell(), &[3, 1, 2], 8).expect("fits");
        let out = topo
            .datapath
            .evaluate(&[("x0", 10), ("x1", 20), ("x2", 30)])
            .expect("inputs cover")
            .value(topo.output);
        assert_eq!(out, 3 * 10 + 20 + 2 * 30);
    }

    #[test]
    fn fir_skips_zero_coefficients() {
        let topo = fir(&StandardCell::Accurate.cell(), &[1, 0, 2], 4).expect("fits");
        assert_eq!(topo.inputs, vec!["x0", "x2"]);
    }

    #[test]
    fn conv2d_matches_direct_sum_when_exact() {
        let kernel = vec![vec![1u64, 2], vec![2, 4]];
        let topo = conv2d(&StandardCell::Accurate.cell(), &kernel, 8).expect("fits");
        let out = topo
            .datapath
            .evaluate(&[("p0_0", 1), ("p0_1", 2), ("p1_0", 3), ("p1_1", 4)])
            .expect("inputs cover")
            .value(topo.output);
        assert_eq!(out, 1 + 2 * 2 + 2 * 3 + 4 * 4);
    }

    #[test]
    fn multiplier_matches_product_when_exact() {
        let topo = multiplier(&StandardCell::Accurate.cell(), 4).expect("fits");
        for (x, y) in [(5u64, 11u64), (15, 15), (0, 7), (9, 0)] {
            let mut pairs = vec![("x", x)];
            let names: Vec<String> = (0..4).map(|i| format!("y{i}")).collect();
            for (i, name) in names.iter().enumerate() {
                pairs.push((name.as_str(), (y >> i) & 1));
            }
            let out = topo
                .datapath
                .evaluate(&pairs)
                .expect("inputs cover")
                .value(topo.output);
            assert_eq!(out, x * y, "x={x} y={y}");
        }
    }

    #[test]
    fn mul_const_power_of_two_is_pure_shift() {
        let mut dp = Datapath::new();
        let x = dp.input("x", 4);
        let y = mul_const(&mut dp, &StandardCell::Lpaa1.cell(), x, 8).expect("fits");
        let estimate = sealpaa_datapath::estimate(&dp, &[("x", vec![0.5; 4])]).expect("valid");
        assert!(estimate.adders.is_empty(), "no adders for 8·x");
        assert_eq!(dp.evaluate(&[("x", 5)]).expect("covered").value(y), 40);
    }

    #[test]
    fn mul_const_zero_is_constant_zero() {
        let mut dp = Datapath::new();
        let x = dp.input("x", 4);
        let y = mul_const(&mut dp, &StandardCell::Lpaa1.cell(), x, 0).expect("fits");
        assert_eq!(dp.evaluate(&[("x", 5)]).expect("covered").value(y), 0);
    }
}
