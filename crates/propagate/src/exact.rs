//! Exact reference engines for the fast moment propagation.
//!
//! Two independent ground truths, both generic over [`Prob`] so they run
//! in exact [`Rational`](sealpaa_num::Rational) arithmetic:
//!
//! * [`brute_force_moments`] — enumerates *every* input assignment,
//!   evaluates the datapath bit-true, and accumulates the output error's
//!   exact law. Exponential in total input bits; capped at
//!   [`MAX_EXACT_INPUT_BITS`].
//! * [`exact_tree_moments`] — propagates the exact *joint* distribution of
//!   `(approximate value, exact value)` per signal. Operand independence
//!   holds whenever every signal in the output's cone feeds at most one
//!   node (a tree), so on trees this is exact — and usually exponentially
//!   cheaper than enumeration.
//!
//! Agreement of the two on tree-shaped graphs (and of the fast engine with
//! them where its assumptions hold exactly) is pinned by the crate's
//! consistency tests.

use std::collections::BTreeMap;

use sealpaa_datapath::{Datapath, DatapathError, NodeKind, Signal};
use sealpaa_num::Prob;

use crate::engine::validated_input_bits;
use crate::error::PropagateError;

/// Cap on total input bits for [`brute_force_moments`].
pub const MAX_EXACT_INPUT_BITS: usize = 22;

/// Cap on a signal's joint support in [`exact_tree_moments`].
pub const MAX_EXACT_STATES: usize = 1 << 20;

/// Exact moments of the output error distance.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactMoments<T> {
    /// `P(D ≠ 0)`.
    pub error_probability: T,
    /// `E[D]`.
    pub mean: T,
    /// `E[D²]`.
    pub second: T,
}

/// Accumulates `(weight, signed distance)` pairs into exact moments.
struct MomentAccumulator<T> {
    error_probability: T,
    mean_pos: T,
    mean_neg: T,
    second: T,
}

impl<T: Prob> MomentAccumulator<T> {
    fn new() -> Self {
        MomentAccumulator {
            error_probability: T::zero(),
            mean_pos: T::zero(),
            mean_neg: T::zero(),
            second: T::zero(),
        }
    }

    fn record(&mut self, weight: T, approx: u64, exact: u64) {
        if approx == exact {
            return;
        }
        let magnitude = T::from_ratio(approx.abs_diff(exact), 1);
        self.error_probability = self.error_probability.clone() + weight.clone();
        if approx > exact {
            self.mean_pos = self.mean_pos.clone() + weight.clone() * magnitude.clone();
        } else {
            self.mean_neg = self.mean_neg.clone() + weight.clone() * magnitude.clone();
        }
        self.second = self.second.clone() + weight * magnitude.clone() * magnitude;
    }

    fn finish(self) -> ExactMoments<T> {
        ExactMoments {
            error_probability: self.error_probability,
            mean: self.mean_pos - self.mean_neg,
            second: self.second,
        }
    }
}

/// Enumerates every input assignment and returns the output error's exact
/// moments.
///
/// # Errors
///
/// * wrapped [`DatapathError`] on input/signal mismatches,
/// * [`PropagateError::TooManyInputBits`] if the inputs total more than
///   [`MAX_EXACT_INPUT_BITS`] bits.
pub fn brute_force_moments<T: Prob>(
    dp: &Datapath,
    output: Signal,
    inputs: &[(&str, Vec<T>)],
) -> Result<ExactMoments<T>, PropagateError> {
    if output.index() >= dp.len() {
        return Err(DatapathError::UnknownSignal {
            index: output.index(),
        }
        .into());
    }
    let bits_by_node = validated_input_bits(dp, inputs)?;
    // Inputs in declaration order, with their validated bit probabilities.
    let mut named: Vec<(String, Vec<T>)> = Vec::new();
    for signal in dp.signals() {
        if let NodeKind::Input { name } = dp.kind(signal) {
            let bits = bits_by_node[signal.index()]
                .clone()
                .expect("validated above");
            named.push((name.to_string(), bits));
        }
    }
    let total_bits: usize = named.iter().map(|(_, bits)| bits.len()).sum();
    if total_bits > MAX_EXACT_INPUT_BITS {
        return Err(PropagateError::TooManyInputBits {
            bits: total_bits,
            max: MAX_EXACT_INPUT_BITS,
        });
    }
    let mut acc = MomentAccumulator::new();
    for assignment in 0u64..(1u64 << total_bits) {
        let mut weight = T::one();
        let mut cursor = 0usize;
        let mut pairs: Vec<(&str, u64)> = Vec::with_capacity(named.len());
        for (name, bits) in &named {
            let value = (assignment >> cursor) & ((1u64 << bits.len()) - 1);
            cursor += bits.len();
            for (i, p) in bits.iter().enumerate() {
                let factor = if (value >> i) & 1 == 1 {
                    p.clone()
                } else {
                    p.complement()
                };
                weight = weight * factor;
            }
            pairs.push((name.as_str(), value));
        }
        if weight.is_zero() {
            continue;
        }
        let approx = dp.evaluate(&pairs)?.value(output);
        let exact = dp.evaluate_exact(&pairs)?.value(output);
        acc.record(weight, approx, exact);
    }
    Ok(acc.finish())
}

/// Propagates the exact joint `(approximate, exact)` distribution through a
/// tree-shaped cone and returns the output error's exact moments.
///
/// # Errors
///
/// * wrapped [`DatapathError`] on input/signal mismatches,
/// * [`PropagateError::NotATree`] if a signal in the output's cone feeds
///   more than one node,
/// * [`PropagateError::SupportTooLarge`] if a joint support would exceed
///   [`MAX_EXACT_STATES`].
pub fn exact_tree_moments<T: Prob>(
    dp: &Datapath,
    output: Signal,
    inputs: &[(&str, Vec<T>)],
) -> Result<ExactMoments<T>, PropagateError> {
    if output.index() >= dp.len() {
        return Err(DatapathError::UnknownSignal {
            index: output.index(),
        }
        .into());
    }
    let bits_by_node = validated_input_bits(dp, inputs)?;
    let signals: Vec<Signal> = dp.signals().collect();

    // The output's cone, and the fan-out of every signal within it.
    let mut in_cone = vec![false; dp.len()];
    in_cone[output.index()] = true;
    let mut uses = vec![0usize; dp.len()];
    for &signal in signals.iter().rev() {
        if !in_cone[signal.index()] {
            continue;
        }
        let operands: &[Signal] = match dp.kind(signal) {
            NodeKind::Input { .. } | NodeKind::Const { .. } => &[],
            NodeKind::Shl { a, .. } => &[a],
            NodeKind::Gate { a, bit } => &[a, bit],
            NodeKind::Add { a, b, .. } => &[a, b],
        };
        for &op in operands {
            in_cone[op.index()] = true;
            uses[op.index()] += 1;
            if uses[op.index()] > 1 {
                return Err(PropagateError::NotATree { signal: op.index() });
            }
        }
    }

    type Joint<T> = BTreeMap<(u64, u64), T>;
    fn bump<T: Prob>(map: &mut Joint<T>, key: (u64, u64), weight: T) {
        let entry = map.entry(key).or_insert_with(T::zero);
        *entry = entry.clone() + weight;
    }
    fn check_cap<T>(map: &Joint<T>) -> Result<(), PropagateError> {
        if map.len() > MAX_EXACT_STATES {
            return Err(PropagateError::SupportTooLarge {
                states: map.len(),
                max: MAX_EXACT_STATES,
            });
        }
        Ok(())
    }

    let mut joints: Vec<Option<Joint<T>>> = vec![None; dp.len()];
    for &signal in &signals {
        if !in_cone[signal.index()] {
            continue;
        }
        let joint = match dp.kind(signal) {
            NodeKind::Input { .. } => {
                let bits = bits_by_node[signal.index()]
                    .as_ref()
                    .expect("validated above");
                let mut map = Joint::new();
                for value in 0u64..(1u64 << bits.len()) {
                    let mut weight = T::one();
                    for (i, p) in bits.iter().enumerate() {
                        let factor = if (value >> i) & 1 == 1 {
                            p.clone()
                        } else {
                            p.complement()
                        };
                        weight = weight * factor;
                    }
                    if !weight.is_zero() {
                        map.insert((value, value), weight);
                    }
                }
                map
            }
            NodeKind::Const { value } => {
                let mut map = Joint::new();
                map.insert((value, value), T::one());
                map
            }
            NodeKind::Shl { a, amount } => {
                let source = joints[a.index()].take().expect("operand before use");
                source
                    .into_iter()
                    .map(|((approx, exact), w)| ((approx << amount, exact << amount), w))
                    .collect()
            }
            NodeKind::Gate { a, bit } => {
                let data = joints[a.index()].take().expect("operand before use");
                let control = joints[bit.index()].take().expect("operand before use");
                let mut map = Joint::new();
                for ((da, de), wd) in &data {
                    for ((ca, ce), wc) in &control {
                        let weight = wd.clone() * wc.clone();
                        if weight.is_zero() {
                            continue;
                        }
                        let approx = if ca & 1 == 1 { *da } else { 0 };
                        let exact = if ce & 1 == 1 { *de } else { 0 };
                        bump(&mut map, (approx, exact), weight);
                    }
                }
                map
            }
            NodeKind::Add { a, b, chain } => {
                let left = joints[a.index()].take().expect("operand before use");
                let right = joints[b.index()].take().expect("operand before use");
                let mut map = Joint::new();
                for ((la, le), wl) in &left {
                    for ((ra, re), wr) in &right {
                        let weight = wl.clone() * wr.clone();
                        if weight.is_zero() {
                            continue;
                        }
                        let approx = chain.add(*la, *ra, false).value();
                        let exact = le + re;
                        bump(&mut map, (approx, exact), weight);
                    }
                }
                map
            }
        };
        check_cap(&joint)?;
        joints[signal.index()] = Some(joint);
    }

    let joint = joints[output.index()].take().expect("output is in cone");
    let mut acc = MomentAccumulator::new();
    for ((approx, exact), weight) in joint {
        acc.record(weight, approx, exact);
    }
    Ok(acc.finish())
}
