//! The moment-propagation engine.
//!
//! Every signal carries an error random variable `D = approx − exact`. The
//! engine propagates `(E[D], E[D²])` — plus the exact value's `(E[V],
//! E[V²])` for SNR — node by node:
//!
//! * **Add** — `D_out = D_a + D_b + D_adder` exactly, where `D_adder` is the
//!   adder's own injected error on its actual operands. Means add by
//!   linearity; second moments use operand independence
//!   (`E[D_a·D_b] = E[D_a]·E[D_b]`), exact on tree-shaped cones. `D_adder`'s
//!   own moments come from the paper's per-adder machinery
//!   ([`error_magnitude`]) under the *propagated marginal* bit
//!   probabilities with bit independence assumed — the same approximation
//!   [`sealpaa_datapath::estimate`] documents.
//! * **Shl k** — `D` scales by `2^k`, `D²` by `4^k`. Exact.
//! * **Gate** — `D_out = B·D_a` for the control bit `B`; requires an
//!   error-free control (`E[D²] = 0` on the control signal), then
//!   `E[D_out] = p·E[D_a]`, `E[D_out²] = p·E[D_a²]`.
//! * **Input / Const** — error-free.
//!
//! Everything is generic over [`Prob`], so the whole pipeline runs in
//! exact [`Rational`](sealpaa_num::Rational) arithmetic when wanted; the
//! consistency tests pin the engine against brute-force enumeration that
//! way.

use sealpaa_cells::{AdderChain, Cell, InputProfile};
use sealpaa_core::{
    analyze, error_distribution, error_magnitude, signal_probabilities, MAX_DISTRIBUTION_WIDTH,
};
use sealpaa_datapath::{Datapath, DatapathError, NodeKind, Signal};
use sealpaa_num::Prob;

use crate::error::PropagateError;
use crate::model::ErrorPmf;

/// Clamps a probability-like value into `[0, 1]`.
fn clamp01<T: Prob>(v: T) -> T {
    if v < T::zero() {
        T::zero()
    } else if T::one() < v {
        T::one()
    } else {
        v
    }
}

/// `2^e` as a `T`, by repeated doubling (safe past `u64` range).
fn pow2<T: Prob>(e: usize) -> T {
    let two = T::from_ratio(2, 1);
    let mut acc = T::one();
    for _ in 0..e {
        acc = acc * two.clone();
    }
    acc
}

/// Pads a bit-probability vector with zeros up to `width`.
fn pad_bits<T: Prob>(bits: &[T], width: usize) -> Vec<T> {
    let mut padded = bits.to_vec();
    while padded.len() < width {
        padded.push(T::zero());
    }
    padded
}

/// Validates named per-bit probabilities against a datapath's inputs and
/// returns them indexed by node (Some only at input nodes).
pub(crate) fn validated_input_bits<T: Prob>(
    dp: &Datapath,
    inputs: &[(&str, Vec<T>)],
) -> Result<Vec<Option<Vec<T>>>, PropagateError> {
    for (name, _) in inputs {
        if !dp.input_names().any(|n| n == *name) {
            return Err(DatapathError::UnknownInput {
                name: (*name).to_string(),
            }
            .into());
        }
    }
    let mut by_node = vec![None; dp.len()];
    for signal in dp.signals() {
        if let NodeKind::Input { name } = dp.kind(signal) {
            let Some((_, bits)) = inputs.iter().find(|(n, _)| *n == name) else {
                return Err(DatapathError::MissingInput {
                    name: name.to_string(),
                }
                .into());
            };
            let in_range = |p: &T| T::zero() <= *p && *p <= T::one();
            if bits.len() != dp.width(signal) || !bits.iter().all(in_range) {
                return Err(DatapathError::BadProbabilities {
                    name: name.to_string(),
                }
                .into());
            }
            by_node[signal.index()] = Some(bits.clone());
        }
    }
    Ok(by_node)
}

/// Propagated state of one signal.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalState<T> {
    /// Marginal `P(bit = 1)` of the approximate signal, LSB first.
    pub bits: Vec<T>,
    /// `E[D]` — mean signed error distance.
    pub error_mean: T,
    /// `E[D²]` — second moment of the error distance.
    pub error_second: T,
    /// `E[V]` — mean of the exact (error-free) value.
    pub value_mean: T,
    /// `E[V²]` — second moment of the exact value.
    pub value_second: T,
}

/// The error model of one adder node under its propagated operands.
#[derive(Debug, Clone, PartialEq)]
pub struct AdderErrorModel<T> {
    /// The adder's output signal.
    pub signal: Signal,
    /// `P(D_adder ≠ 0)` — the paper's per-adder error probability.
    pub error_probability: T,
    /// `E[D_adder]` — the adder's own injected bias.
    pub mean: T,
    /// `E[D_adder²]`.
    pub second: T,
}

/// Incremental, prefix-sharing propagation through a datapath.
///
/// Nodes are consumed in index order via [`push`](GraphStepper::push);
/// [`truncate`](GraphStepper::truncate) rewinds to a shorter prefix so a
/// search over per-adder cell assignments can share all work on common
/// prefixes (the same idiom as the cell-level
/// [`PrefixStepper`](sealpaa_core::PrefixStepper)).
#[derive(Debug, Clone)]
pub struct GraphStepper<'a, T: Prob> {
    dp: &'a Datapath,
    signals: Vec<Signal>,
    input_bits: Vec<Option<Vec<T>>>,
    states: Vec<SignalState<T>>,
    adders: Vec<AdderErrorModel<T>>,
}

impl<'a, T: Prob> GraphStepper<'a, T> {
    /// Builds a stepper over `dp` with named per-bit input probabilities.
    ///
    /// # Errors
    ///
    /// [`DatapathError::UnknownInput`] / [`DatapathError::MissingInput`] /
    /// [`DatapathError::BadProbabilities`] (wrapped) on name or range
    /// mismatches.
    pub fn new(dp: &'a Datapath, inputs: &[(&str, Vec<T>)]) -> Result<Self, PropagateError> {
        let input_bits = validated_input_bits(dp, inputs)?;
        Ok(GraphStepper {
            dp,
            signals: dp.signals().collect(),
            input_bits,
            states: Vec::with_capacity(dp.len()),
            adders: Vec::new(),
        })
    }

    /// Number of nodes propagated so far.
    pub fn depth(&self) -> usize {
        self.states.len()
    }

    /// Whether every node has been propagated.
    pub fn is_complete(&self) -> bool {
        self.depth() == self.dp.len()
    }

    /// The next node to be pushed, if any.
    pub fn next_signal(&self) -> Option<Signal> {
        self.signals.get(self.depth()).copied()
    }

    /// Whether the next node is an adder (and so accepts a substitution).
    pub fn next_is_adder(&self) -> bool {
        matches!(
            self.next_signal().map(|s| self.dp.kind(s)),
            Some(NodeKind::Add { .. })
        )
    }

    /// The propagated state of an already-pushed signal.
    ///
    /// # Panics
    ///
    /// Panics if the signal has not been pushed yet.
    pub fn state(&self, signal: Signal) -> &SignalState<T> {
        &self.states[signal.index()]
    }

    /// Per-adder models pushed so far, in node order.
    pub fn adders(&self) -> &[AdderErrorModel<T>] {
        &self.adders
    }

    /// Rewinds the stepper to `depth` pushed nodes.
    ///
    /// # Panics
    ///
    /// Panics if `depth` exceeds the current depth.
    pub fn truncate(&mut self, depth: usize) {
        assert!(depth <= self.depth(), "cannot truncate forwards");
        self.states.truncate(depth);
        while self
            .adders
            .last()
            .is_some_and(|m| m.signal.index() >= depth)
        {
            self.adders.pop();
        }
    }

    /// Propagates the next node. For adder nodes, `substitute` replaces the
    /// node's chain with a uniform chain of the given cell at the same
    /// width (the per-node assignment a datapath search explores);
    /// non-adder nodes ignore it.
    ///
    /// # Errors
    ///
    /// * [`PropagateError::ErrorfulGateControl`] if a gate's control signal
    ///   carries error,
    /// * wrapped analysis/profile errors (unreachable for well-formed
    ///   graphs).
    ///
    /// # Panics
    ///
    /// Panics if the stepper is already complete.
    pub fn push(&mut self, substitute: Option<&Cell>) -> Result<(), PropagateError> {
        let signal = self.next_signal().expect("stepper already complete");
        let state = match self.dp.kind(signal) {
            NodeKind::Input { .. } => {
                let bits = self.input_bits[signal.index()]
                    .clone()
                    .expect("input bits validated at construction");
                let mut mean = T::zero();
                let mut variance = T::zero();
                for (i, p) in bits.iter().enumerate() {
                    let weight: T = pow2(i);
                    mean = mean + p.clone() * weight.clone();
                    // Var(p·2^i) = p(1−p)·4^i for an independent bit.
                    variance = variance + p.clone() * p.complement() * weight.clone() * weight;
                }
                let second = mean.clone() * mean.clone() + variance;
                SignalState {
                    bits,
                    error_mean: T::zero(),
                    error_second: T::zero(),
                    value_mean: mean,
                    value_second: second,
                }
            }
            NodeKind::Const { value } => {
                let width = self.dp.width(signal);
                let bits = (0..width)
                    .map(|i| {
                        if (value >> i) & 1 == 1 {
                            T::one()
                        } else {
                            T::zero()
                        }
                    })
                    .collect();
                let mean = T::from_ratio(value, 1);
                SignalState {
                    bits,
                    error_mean: T::zero(),
                    error_second: T::zero(),
                    value_mean: mean.clone(),
                    value_second: mean.clone() * mean,
                }
            }
            NodeKind::Shl { a, amount } => {
                let a = &self.states[a.index()];
                let mut bits = vec![T::zero(); amount];
                bits.extend(a.bits.iter().cloned());
                let scale: T = pow2(amount);
                let scale_sq = scale.clone() * scale.clone();
                SignalState {
                    bits,
                    error_mean: a.error_mean.clone() * scale.clone(),
                    error_second: a.error_second.clone() * scale_sq.clone(),
                    value_mean: a.value_mean.clone() * scale,
                    value_second: a.value_second.clone() * scale_sq,
                }
            }
            NodeKind::Gate { a, bit } => {
                let control = &self.states[bit.index()];
                if !control.error_second.is_zero() {
                    return Err(PropagateError::ErrorfulGateControl {
                        signal: signal.index(),
                    });
                }
                let p = clamp01(control.bits[0].clone());
                let a = &self.states[a.index()];
                SignalState {
                    bits: a.bits.iter().map(|b| b.clone() * p.clone()).collect(),
                    error_mean: a.error_mean.clone() * p.clone(),
                    error_second: a.error_second.clone() * p.clone(),
                    value_mean: a.value_mean.clone() * p.clone(),
                    value_second: a.value_second.clone() * p,
                }
            }
            NodeKind::Add { a, b, chain } => {
                let width = chain.width();
                let substituted;
                let chain = match substitute {
                    Some(cell) => {
                        substituted = AdderChain::uniform(cell.clone(), width);
                        &substituted
                    }
                    None => chain,
                };
                let sa = &self.states[a.index()];
                let sb = &self.states[b.index()];
                let pa: Vec<T> = pad_bits(&sa.bits, width).into_iter().map(clamp01).collect();
                let pb: Vec<T> = pad_bits(&sb.bits, width).into_iter().map(clamp01).collect();
                let profile = InputProfile::new(pa, pb, T::zero())?;
                let analysis = analyze(chain, &profile)?;
                let magnitude = error_magnitude(chain, &profile)?;
                let marginals = signal_probabilities(chain, &profile)?;
                let mut bits: Vec<T> = marginals.sum.into_iter().map(clamp01).collect();
                bits.push(clamp01(marginals.carry[width].clone()));
                let (ma, mb) = (sa.error_mean.clone(), sb.error_mean.clone());
                let md = magnitude.mean_error_distance.clone();
                let sd = magnitude.mean_squared_error_distance.clone();
                let two = T::from_ratio(2, 1);
                let error_mean = ma.clone() + mb.clone() + md.clone();
                let cross = ma.clone() * mb.clone() + md.clone() * (ma + mb);
                let error_second = sa.error_second.clone()
                    + sb.error_second.clone()
                    + sd.clone()
                    + two.clone() * cross;
                let value_mean = sa.value_mean.clone() + sb.value_mean.clone();
                let value_second = sa.value_second.clone()
                    + sb.value_second.clone()
                    + two * sa.value_mean.clone() * sb.value_mean.clone();
                self.adders.push(AdderErrorModel {
                    signal,
                    error_probability: analysis.error_probability(),
                    mean: md,
                    second: sd,
                });
                SignalState {
                    bits,
                    error_mean,
                    error_second,
                    value_mean,
                    value_second,
                }
            }
        };
        self.states.push(state);
        Ok(())
    }

    /// Pushes every remaining node without substitutions.
    pub fn run_to_end(&mut self) -> Result<(), PropagateError> {
        while !self.is_complete() {
            self.push(None)?;
        }
        Ok(())
    }

    /// Assembles the prediction for an already-pushed output signal.
    ///
    /// # Errors
    ///
    /// [`DatapathError::UnknownSignal`] (wrapped) if the signal is out of
    /// range or not yet pushed.
    pub fn prediction(&self, output: Signal) -> Result<MomentPrediction<T>, PropagateError> {
        if output.index() >= self.depth() {
            return Err(DatapathError::UnknownSignal {
                index: output.index(),
            }
            .into());
        }
        let s = &self.states[output.index()];
        Ok(MomentPrediction {
            output,
            error_mean: s.error_mean.clone(),
            error_second: s.error_second.clone(),
            value_mean: s.value_mean.clone(),
            value_second: s.value_second.clone(),
            adders: self.adders.clone(),
        })
    }
}

impl<'a> GraphStepper<'a, f64> {
    /// Composes the full output error PMF by convolving per-adder
    /// distributions along the graph (f64 only; requires a completed run
    /// *without* substitutions — the graph's own chains are used).
    ///
    /// # Errors
    ///
    /// [`PropagateError::PmfUnavailable`] if an ancestor adder is wider
    /// than [`MAX_DISTRIBUTION_WIDTH`] or a shift overflows the support.
    pub(crate) fn error_pmf(&self, output: Signal) -> Result<ErrorPmf, PropagateError> {
        let mut pmfs: Vec<Option<ErrorPmf>> = Vec::with_capacity(self.depth());
        for &signal in &self.signals[..self.depth()] {
            let pmf = match self.dp.kind(signal) {
                NodeKind::Input { .. } | NodeKind::Const { .. } => Some(ErrorPmf::delta()),
                NodeKind::Shl { a, amount } => pmfs[a.index()]
                    .as_ref()
                    .and_then(|p| p.scale(1i64 << amount)),
                NodeKind::Gate { a, bit } => pmfs[a.index()]
                    .as_ref()
                    .map(|p| p.gate(self.states[bit.index()].bits[0])),
                NodeKind::Add { a, b, chain } => {
                    if chain.width() > MAX_DISTRIBUTION_WIDTH {
                        None
                    } else {
                        match (&pmfs[a.index()], &pmfs[b.index()]) {
                            (Some(pa), Some(pb)) => {
                                let width = chain.width();
                                let bits_a: Vec<f64> =
                                    pad_bits(&self.states[a.index()].bits, width)
                                        .into_iter()
                                        .map(clamp01)
                                        .collect();
                                let bits_b: Vec<f64> =
                                    pad_bits(&self.states[b.index()].bits, width)
                                        .into_iter()
                                        .map(clamp01)
                                        .collect();
                                let profile = InputProfile::new(bits_a, bits_b, 0.0)?;
                                let own = error_distribution(chain, &profile)?;
                                let own = ErrorPmf::from_points(own.pmf);
                                Some(pa.convolve(pb).convolve(&own))
                            }
                            _ => None,
                        }
                    }
                }
            };
            pmfs.push(pmf);
        }
        pmfs.get(output.index())
            .cloned()
            .flatten()
            .ok_or(PropagateError::PmfUnavailable {
                signal: output.index(),
            })
    }
}

/// Predicted output error and signal moments.
#[derive(Debug, Clone, PartialEq)]
pub struct MomentPrediction<T> {
    /// The predicted output signal.
    pub output: Signal,
    /// `E[D]` of the output error.
    pub error_mean: T,
    /// `E[D²]` of the output error — the predicted MSE.
    pub error_second: T,
    /// `E[V]` of the exact output value.
    pub value_mean: T,
    /// `E[V²]` of the exact output value — the predicted signal power.
    pub value_second: T,
    /// Per-adder error models, in node order.
    pub adders: Vec<AdderErrorModel<T>>,
}

impl<T: Prob> MomentPrediction<T> {
    /// `Var(D) = E[D²] − E[D]²`.
    pub fn error_variance(&self) -> T {
        self.error_second.clone() - self.error_mean.clone() * self.error_mean.clone()
    }

    /// `√E[D²]` — the predicted RMS error distance.
    pub fn rms_error(&self) -> f64 {
        self.error_second.to_f64().max(0.0).sqrt()
    }

    /// Predicted `SNR = 10·log10(E[V²] / E[D²])` in dB.
    ///
    /// `None` when the ratio is not a finite number: an error-free
    /// datapath (`E[D²] = 0`) or a zero-power signal — the same convention
    /// as [`Image::psnr_against`](sealpaa_datapath::Image::psnr_against).
    pub fn snr_db(&self) -> Option<f64> {
        let mse = self.error_second.to_f64();
        let power = self.value_second.to_f64();
        (mse > 0.0 && power > 0.0).then(|| 10.0 * (power / mse).log10())
    }

    /// Predicted `PSNR = 10·log10(peak² / E[D²])` in dB against a known
    /// peak signal value; `None` under the same conditions as
    /// [`snr_db`](MomentPrediction::snr_db).
    pub fn psnr_db(&self, peak: u64) -> Option<f64> {
        let mse = self.error_second.to_f64();
        (mse > 0.0 && peak > 0).then(|| 10.0 * ((peak as f64).powi(2) / mse).log10())
    }

    /// `1 − Π (1 − pᵢ)` over the per-adder error probabilities — the same
    /// union-style proxy as
    /// [`DatapathEstimate::any_adder_error`](sealpaa_datapath::DatapathEstimate).
    pub fn any_adder_error(&self) -> f64 {
        1.0 - self
            .adders
            .iter()
            .map(|m| 1.0 - m.error_probability.to_f64().clamp(0.0, 1.0))
            .product::<f64>()
    }
}

/// Propagates error and value moments to `output` under named per-bit
/// input probabilities, in any [`Prob`] arithmetic.
///
/// # Errors
///
/// Wrapped [`DatapathError`] on name/range/signal mismatches,
/// [`PropagateError::ErrorfulGateControl`] on gates fed by errorful
/// controls.
pub fn propagate_moments<T: Prob>(
    dp: &Datapath,
    output: Signal,
    inputs: &[(&str, Vec<T>)],
) -> Result<MomentPrediction<T>, PropagateError> {
    let mut stepper = GraphStepper::new(dp, inputs)?;
    stepper.run_to_end()?;
    stepper.prediction(output)
}

/// A complete f64 prediction: moments plus (optionally) the full PMF.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Propagated moments and per-adder models.
    pub moments: MomentPrediction<f64>,
    /// The composed output error PMF, when requested and representable.
    pub pmf: Option<ErrorPmf>,
}

/// Propagates moments in f64 and, if `want_pmf`, composes the full output
/// error PMF (only representable when every adder in the cone is at most
/// [`MAX_DISTRIBUTION_WIDTH`] bits wide).
///
/// # Errors
///
/// As [`propagate_moments`]; additionally
/// [`PropagateError::PmfUnavailable`] if `want_pmf` and the PMF cannot be
/// composed.
pub fn predict(
    dp: &Datapath,
    output: Signal,
    inputs: &[(&str, Vec<f64>)],
    want_pmf: bool,
) -> Result<Prediction, PropagateError> {
    let mut stepper = GraphStepper::new(dp, inputs)?;
    stepper.run_to_end()?;
    let moments = stepper.prediction(output)?;
    let pmf = if want_pmf {
        Some(stepper.error_pmf(output)?)
    } else {
        None
    };
    Ok(Prediction { moments, pmf })
}
