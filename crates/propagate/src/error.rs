//! Error type for the propagation engine.

use std::fmt;

use sealpaa_cells::ProfileError;
use sealpaa_core::AnalyzeError;
use sealpaa_datapath::DatapathError;

/// Errors produced by the propagation, exact-reference and fitting layers.
#[derive(Debug, Clone, PartialEq)]
pub enum PropagateError {
    /// A graph-level error (unknown input, bad probabilities, …).
    Datapath(DatapathError),
    /// A per-adder analysis error (width mismatch).
    Analysis(AnalyzeError),
    /// An operand profile could not be built.
    Profile(ProfileError),
    /// A gate node's control signal carries error. The engine models gates
    /// as exact pass/zero switches; an errorful control would make the
    /// output error depend on the control's *joint* law, which the
    /// moment-propagation semantics cannot express.
    ErrorfulGateControl {
        /// The gate node's output signal index.
        signal: usize,
    },
    /// The exact tree engine requires every signal in the output's cone to
    /// feed at most one node; this signal has fan-out above one.
    NotATree {
        /// The shared signal's index.
        signal: usize,
    },
    /// Brute-force enumeration over the inputs would be too large.
    TooManyInputBits {
        /// Total input bits requested.
        bits: usize,
        /// The supported maximum.
        max: usize,
    },
    /// The exact tree engine's joint support grew past its cap.
    SupportTooLarge {
        /// States the offending signal would need.
        states: usize,
        /// The supported maximum.
        max: usize,
    },
    /// No full error PMF exists for this signal (an ancestor adder is wider
    /// than [`MAX_DISTRIBUTION_WIDTH`](sealpaa_core::MAX_DISTRIBUTION_WIDTH)
    /// or a shift overflowed the PMF's key range).
    PmfUnavailable {
        /// The signal's index.
        signal: usize,
    },
    /// A trace fit was asked for with no samples.
    EmptyTrace,
    /// A value stream is too short to cover every datapath input once.
    StreamTooShort {
        /// Values needed (one per input).
        needed: usize,
        /// Values supplied.
        got: usize,
    },
}

impl fmt::Display for PropagateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropagateError::Datapath(e) => write!(f, "{e}"),
            PropagateError::Analysis(e) => write!(f, "{e}"),
            PropagateError::Profile(e) => write!(f, "{e}"),
            PropagateError::ErrorfulGateControl { signal } => write!(
                f,
                "gate #{signal} is controlled by a signal that carries error; \
                 moment propagation requires error-free gate controls"
            ),
            PropagateError::NotATree { signal } => write!(
                f,
                "signal #{signal} fans out to more than one node; the exact \
                 engine only handles tree-shaped cones"
            ),
            PropagateError::TooManyInputBits { bits, max } => write!(
                f,
                "brute-force enumeration over {bits} input bits exceeds the \
                 {max}-bit cap"
            ),
            PropagateError::SupportTooLarge { states, max } => write!(
                f,
                "exact joint support needs {states} states, above the {max} cap"
            ),
            PropagateError::PmfUnavailable { signal } => write!(
                f,
                "no full error PMF for signal #{signal}: an ancestor adder is \
                 too wide or a shift overflowed the support"
            ),
            PropagateError::EmptyTrace => write!(f, "cannot fit a model from an empty trace"),
            PropagateError::StreamTooShort { needed, got } => write!(
                f,
                "value stream has {got} samples but the datapath needs at \
                 least {needed} (one per input)"
            ),
        }
    }
}

impl std::error::Error for PropagateError {}

impl From<DatapathError> for PropagateError {
    fn from(e: DatapathError) -> Self {
        PropagateError::Datapath(e)
    }
}

impl From<AnalyzeError> for PropagateError {
    fn from(e: AnalyzeError) -> Self {
        PropagateError::Analysis(e)
    }
}

impl From<ProfileError> for PropagateError {
    fn from(e: ProfileError) -> Self {
        PropagateError::Profile(e)
    }
}
