//! Bounded-support error PMFs with explicit truncation accounting.
//!
//! The moment engine ([`propagate_moments`](crate::propagate_moments))
//! carries only means and second moments — cheap at any width. When every
//! adder in a cone is narrow enough for the paper's full distribution
//! recursion, the engine can additionally compose the *complete* output
//! error PMF by convolving per-adder distributions. Supports multiply under
//! convolution, so the PMF is truncated to [`MAX_PMF_SUPPORT`] points:
//! lowest-mass points are dropped first and the dropped probability is
//! reported, never silently lost.

use std::collections::BTreeMap;

/// Maximum number of support points kept in a composed [`ErrorPmf`].
///
/// Convolution truncates past this bound, dropping the lowest-mass points
/// and accumulating their probability into
/// [`ErrorPmf::truncated_mass`].
pub const MAX_PMF_SUPPORT: usize = 4096;

/// A probability mass function over signed error distances with bounded
/// support.
///
/// Invariants: points are sorted by error distance, each mass is
/// non-negative, and the retained masses sum to at most one. Whatever the
/// retained points do not cover is reported by
/// [`truncated_mass`](ErrorPmf::truncated_mass) — composition never
/// renormalises, so downstream consumers can bound how much of the law
/// they are not seeing.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorPmf {
    points: Vec<(i64, f64)>,
}

impl ErrorPmf {
    /// The error-free distribution: all mass at distance zero.
    pub fn delta() -> ErrorPmf {
        ErrorPmf {
            points: vec![(0, 1.0)],
        }
    }

    /// Builds a PMF from `(distance, mass)` points (any order, duplicate
    /// distances are merged). Truncates to [`MAX_PMF_SUPPORT`] if needed.
    ///
    /// # Panics
    ///
    /// Panics if a mass is negative or not finite.
    pub fn from_points(points: impl IntoIterator<Item = (i64, f64)>) -> ErrorPmf {
        let mut map = BTreeMap::new();
        for (d, m) in points {
            assert!(
                m.is_finite() && m >= 0.0,
                "PMF masses must be finite and non-negative"
            );
            *map.entry(d).or_insert(0.0) += m;
        }
        ErrorPmf::from_map(map)
    }

    fn from_map(map: BTreeMap<i64, f64>) -> ErrorPmf {
        let mut points: Vec<(i64, f64)> = map.into_iter().filter(|&(_, m)| m > 0.0).collect();
        if points.len() > MAX_PMF_SUPPORT {
            // Drop the lowest-mass points first; ties broken towards
            // keeping small distances (deterministic regardless of input
            // order).
            points.sort_by(|a, b| {
                b.1.total_cmp(&a.1)
                    .then_with(|| a.0.unsigned_abs().cmp(&b.0.unsigned_abs()))
                    .then_with(|| a.0.cmp(&b.0))
            });
            points.truncate(MAX_PMF_SUPPORT);
            points.sort_by_key(|&(d, _)| d);
        }
        ErrorPmf { points }
    }

    /// The retained `(distance, mass)` points, sorted by distance.
    pub fn points(&self) -> &[(i64, f64)] {
        &self.points
    }

    /// Probability mass dropped by truncation: `1 − Σ retained`.
    ///
    /// Zero (up to rounding) when the support never exceeded
    /// [`MAX_PMF_SUPPORT`].
    pub fn truncated_mass(&self) -> f64 {
        (1.0 - self.points.iter().map(|&(_, m)| m).sum::<f64>()).max(0.0)
    }

    /// Retained mass at an exact distance.
    pub fn probability_of(&self, distance: i64) -> f64 {
        self.points
            .binary_search_by_key(&distance, |&(d, _)| d)
            .map(|i| self.points[i].1)
            .unwrap_or(0.0)
    }

    /// `P(distance ≠ 0)`, counting truncated mass as error (truncation
    /// never drops the zero point before all non-zero points of equal
    /// mass, and dropped mass belongs to *some* distance).
    pub fn error_probability(&self) -> f64 {
        (1.0 - self.probability_of(0)).clamp(0.0, 1.0)
    }

    /// Mean of the retained mass.
    pub fn mean(&self) -> f64 {
        self.points.iter().map(|&(d, m)| d as f64 * m).sum()
    }

    /// Second moment of the retained mass.
    pub fn second_moment(&self) -> f64 {
        self.points
            .iter()
            .map(|&(d, m)| (d as f64) * (d as f64) * m)
            .sum()
    }

    /// Largest absolute retained distance.
    pub fn max_absolute_error(&self) -> u64 {
        self.points
            .iter()
            .map(|&(d, _)| d.unsigned_abs())
            .max()
            .unwrap_or(0)
    }

    /// The distribution of the sum of two independent errors.
    pub fn convolve(&self, other: &ErrorPmf) -> ErrorPmf {
        let mut map = BTreeMap::new();
        for &(da, ma) in &self.points {
            for &(db, mb) in &other.points {
                let (Some(d), m) = (da.checked_add(db), ma * mb) else {
                    continue;
                };
                if m > 0.0 {
                    *map.entry(d).or_insert(0.0) += m;
                }
            }
        }
        ErrorPmf::from_map(map)
    }

    /// The distribution of `factor · D`. Returns `None` if a scaled
    /// distance overflows `i64`.
    pub fn scale(&self, factor: i64) -> Option<ErrorPmf> {
        let mut points = Vec::with_capacity(self.points.len());
        for &(d, m) in &self.points {
            points.push((d.checked_mul(factor)?, m));
        }
        Some(ErrorPmf::from_points(points))
    }

    /// The distribution of `B · D` for an independent Bernoulli `B` with
    /// `P(B = 1) = p`: each point scaled by `p`, plus `1 − p` at zero.
    pub fn gate(&self, p: f64) -> ErrorPmf {
        let p = p.clamp(0.0, 1.0);
        let mut map = BTreeMap::new();
        map.insert(0, 1.0 - p);
        for &(d, m) in &self.points {
            *map.entry(d).or_insert(0.0) += p * m;
        }
        ErrorPmf::from_map(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_has_no_error() {
        let d = ErrorPmf::delta();
        assert_eq!(d.error_probability(), 0.0);
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.truncated_mass(), 0.0);
    }

    #[test]
    fn convolution_adds_means_and_supports() {
        let a = ErrorPmf::from_points([(0, 0.5), (2, 0.5)]);
        let b = ErrorPmf::from_points([(-1, 0.25), (0, 0.75)]);
        let c = a.convolve(&b);
        assert!((c.mean() - (1.0 - 0.25)).abs() < 1e-12);
        assert!((c.probability_of(1) - 0.125).abs() < 1e-12);
        assert!((c.points().iter().map(|&(_, m)| m).sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scale_multiplies_distances() {
        let a = ErrorPmf::from_points([(1, 0.5), (-2, 0.5)]);
        let s = a.scale(4).expect("no overflow");
        assert_eq!(s.probability_of(4), 0.5);
        assert_eq!(s.probability_of(-8), 0.5);
        assert!(a.scale(i64::MAX).is_none());
    }

    #[test]
    fn gate_mixes_with_zero() {
        let a = ErrorPmf::from_points([(3, 1.0)]);
        let g = a.gate(0.25);
        assert!((g.probability_of(0) - 0.75).abs() < 1e-12);
        assert!((g.probability_of(3) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn truncation_keeps_heaviest_points_and_reports_mass() {
        // 2·MAX_PMF_SUPPORT points: heavy half and light half.
        let n = MAX_PMF_SUPPORT as i64;
        let heavy = 0.9 / n as f64;
        let light = 0.1 / n as f64;
        let points = (0..n)
            .map(|i| (i, heavy))
            .chain((0..n).map(|i| (n + i, light)));
        let pmf = ErrorPmf::from_points(points);
        assert_eq!(pmf.points().len(), MAX_PMF_SUPPORT);
        assert!(
            (pmf.truncated_mass() - 0.1).abs() < 1e-9,
            "{}",
            pmf.truncated_mass()
        );
        // All heavy points survived.
        assert!(pmf.probability_of(0) > 0.0);
        assert!(pmf.probability_of(n - 1) > 0.0);
        assert_eq!(pmf.probability_of(n), 0.0);
    }

    #[test]
    fn duplicate_points_merge() {
        let pmf = ErrorPmf::from_points([(1, 0.25), (1, 0.25), (0, 0.5)]);
        assert_eq!(pmf.probability_of(1), 0.5);
        assert_eq!(pmf.points().len(), 2);
    }
}
