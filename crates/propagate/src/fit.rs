//! Model fitting from traces and fidelity reporting.
//!
//! The analytical engine consumes per-bit Bernoulli probabilities. This
//! module closes the loop with measured data: it fits those probabilities
//! from value streams (via [`sealpaa_trace::TraceStats`], reporting how
//! badly the bit-independence assumption is violated), replays the same
//! stream bit-true through the datapath for ground truth, and packages
//! prediction-vs-measurement gaps as a [`DatapathFidelity`] report.

use sealpaa_datapath::{Datapath, DatapathError, NodeKind, Signal};
use sealpaa_sim::Xoshiro256pp;
use sealpaa_trace::{TraceRecord, TraceStats, VarId};

use crate::engine::{propagate_moments, validated_input_bits, MomentPrediction};
use crate::error::PropagateError;

/// A fitted per-bit Bernoulli model for one datapath input.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedInput {
    /// The input's name.
    pub name: String,
    /// Fitted `P(bit = 1)`, LSB first, one entry per input bit.
    pub bits: Vec<f64>,
    /// Samples the fit used.
    pub samples: u64,
    /// Worst absolute gap `|P(x ∧ y) − P(x)·P(y)|` over bit pairs — how
    /// badly the engine's bit-independence assumption is violated by this
    /// stream (0 = perfectly independent).
    pub independence_violation: f64,
}

/// Fits a per-bit model for one `width`-bit input from a value stream.
///
/// # Errors
///
/// [`PropagateError::EmptyTrace`] if `values` is empty.
pub fn fit_input(name: &str, width: usize, values: &[u64]) -> Result<FittedInput, PropagateError> {
    if values.is_empty() {
        return Err(PropagateError::EmptyTrace);
    }
    let records: Vec<TraceRecord> = values
        .iter()
        .map(|&v| TraceRecord::new(v, 0, false))
        .collect();
    let stats =
        TraceStats::from_records(width, &records).expect("datapath widths are within 1..=64");
    Ok(FittedInput {
        name: name.to_string(),
        bits: (0..width).map(|i| stats.p(VarId::A(i))).collect(),
        samples: stats.records(),
        independence_violation: stats.independence_violation(),
    })
}

/// The datapath's inputs in declaration order, as `(name, width)`.
fn declared_inputs(dp: &Datapath) -> Vec<(String, usize)> {
    dp.signals()
        .filter_map(|s| match dp.kind(s) {
            NodeKind::Input { name } => Some((name.to_string(), dp.width(s))),
            _ => None,
        })
        .collect()
}

/// Fits every datapath input from one value stream using a sliding window:
/// with `n` inputs, input `k` sees `values[k .. k + values.len() − n + 1]`
/// — the same alignment [`replay`] uses, so a fit and its ground truth
/// describe the same data.
///
/// # Errors
///
/// [`PropagateError::StreamTooShort`] if the stream cannot cover every
/// input once.
pub fn fit_inputs(dp: &Datapath, values: &[u64]) -> Result<Vec<FittedInput>, PropagateError> {
    let inputs = declared_inputs(dp);
    if values.len() < inputs.len() {
        return Err(PropagateError::StreamTooShort {
            needed: inputs.len(),
            got: values.len(),
        });
    }
    let window = values.len() - inputs.len() + 1;
    inputs
        .iter()
        .enumerate()
        .map(|(k, (name, width))| {
            let mask = if *width >= 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let slice: Vec<u64> = values[k..k + window].iter().map(|v| v & mask).collect();
            fit_input(name, *width, &slice)
        })
        .collect()
}

/// Measured output quality from a bit-true run against the exact
/// reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayQuality {
    /// Outputs compared.
    pub samples: u64,
    /// Fraction of outputs that differed from the exact reference.
    pub error_rate: f64,
    /// Mean signed error distance `E[D]`.
    pub mean_error: f64,
    /// Mean squared error distance `E[D²]`.
    pub mse: f64,
    /// Mean squared exact output `E[V²]`.
    pub signal_power: f64,
}

impl ReplayQuality {
    /// Measured `SNR = 10·log10(E[V²] / E[D²])` in dB; `None` for an
    /// error-free run or a zero-power signal (the
    /// [`Image::psnr_against`](sealpaa_datapath::Image::psnr_against)
    /// convention).
    pub fn snr_db(&self) -> Option<f64> {
        (self.mse > 0.0 && self.signal_power > 0.0)
            .then(|| 10.0 * (self.signal_power / self.mse).log10())
    }

    /// `√E[D²]`.
    pub fn rms_error(&self) -> f64 {
        self.mse.max(0.0).sqrt()
    }
}

/// Streams output samples through an accumulator shared by [`replay`] and
/// [`monte_carlo`].
struct QualityAccumulator {
    samples: u64,
    wrong: u64,
    sum_d: f64,
    sum_d2: f64,
    sum_v2: f64,
}

impl QualityAccumulator {
    fn new() -> Self {
        QualityAccumulator {
            samples: 0,
            wrong: 0,
            sum_d: 0.0,
            sum_d2: 0.0,
            sum_v2: 0.0,
        }
    }

    fn record(&mut self, approx: u64, exact: u64) {
        self.samples += 1;
        let d = approx as f64 - exact as f64;
        if approx != exact {
            self.wrong += 1;
        }
        self.sum_d += d;
        self.sum_d2 += d * d;
        self.sum_v2 += (exact as f64) * (exact as f64);
    }

    fn finish(self) -> ReplayQuality {
        let n = self.samples.max(1) as f64;
        ReplayQuality {
            samples: self.samples,
            error_rate: self.wrong as f64 / n,
            mean_error: self.sum_d / n,
            mse: self.sum_d2 / n,
            signal_power: self.sum_v2 / n,
        }
    }
}

/// Replays a value stream bit-true through the datapath (sliding-window
/// alignment, see [`fit_inputs`]) and measures the output against the
/// exact reference.
///
/// # Errors
///
/// [`PropagateError::StreamTooShort`] if the stream cannot cover every
/// input once; wrapped [`DatapathError`] on evaluation failures.
pub fn replay(
    dp: &Datapath,
    output: Signal,
    values: &[u64],
) -> Result<ReplayQuality, PropagateError> {
    if output.index() >= dp.len() {
        return Err(DatapathError::UnknownSignal {
            index: output.index(),
        }
        .into());
    }
    let inputs = declared_inputs(dp);
    if values.len() < inputs.len() {
        return Err(PropagateError::StreamTooShort {
            needed: inputs.len(),
            got: values.len(),
        });
    }
    let window = values.len() - inputs.len() + 1;
    let mut acc = QualityAccumulator::new();
    for w in 0..window {
        let pairs: Vec<(&str, u64)> = inputs
            .iter()
            .enumerate()
            .map(|(k, (name, width))| {
                let mask = if *width >= 64 {
                    u64::MAX
                } else {
                    (1u64 << width) - 1
                };
                (name.as_str(), values[k + w] & mask)
            })
            .collect();
        let approx = dp.evaluate(&pairs)?.value(output);
        let exact = dp.evaluate_exact(&pairs)?.value(output);
        acc.record(approx, exact);
    }
    Ok(acc.finish())
}

/// Monte-Carlo ground truth: draws inputs bit-by-bit from the same
/// per-bit Bernoulli model the analytical engine consumes and measures the
/// output against the exact reference.
///
/// # Errors
///
/// Wrapped [`DatapathError`] on input/signal mismatches.
pub fn monte_carlo(
    dp: &Datapath,
    output: Signal,
    inputs: &[(&str, Vec<f64>)],
    samples: u64,
    seed: u64,
) -> Result<ReplayQuality, PropagateError> {
    if output.index() >= dp.len() {
        return Err(DatapathError::UnknownSignal {
            index: output.index(),
        }
        .into());
    }
    let bits_by_node = validated_input_bits(dp, inputs)?;
    let named: Vec<(String, Vec<f64>)> = dp
        .signals()
        .filter_map(|s| match dp.kind(s) {
            NodeKind::Input { name } => Some((
                name.to_string(),
                bits_by_node[s.index()].clone().expect("validated above"),
            )),
            _ => None,
        })
        .collect();
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut acc = QualityAccumulator::new();
    for _ in 0..samples {
        let pairs: Vec<(&str, u64)> = named
            .iter()
            .map(|(name, bits)| {
                let mut value = 0u64;
                for (i, &p) in bits.iter().enumerate() {
                    if rng.next_bool(p) {
                        value |= 1 << i;
                    }
                }
                (name.as_str(), value)
            })
            .collect();
        let approx = dp.evaluate(&pairs)?.value(output);
        let exact = dp.evaluate_exact(&pairs)?.value(output);
        acc.record(approx, exact);
    }
    Ok(acc.finish())
}

/// An analytical prediction next to its measured ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct DatapathFidelity {
    /// The analytical prediction.
    pub predicted: MomentPrediction<f64>,
    /// The measured quality.
    pub measured: ReplayQuality,
}

impl DatapathFidelity {
    /// `predicted SNR − measured SNR` in dB; `None` if either side is
    /// undefined (error-free or zero-power).
    pub fn snr_gap_db(&self) -> Option<f64> {
        Some(self.predicted.snr_db()? - self.measured.snr_db()?)
    }

    /// `predicted MSE / measured MSE`; `None` for an error-free
    /// measurement.
    pub fn mse_ratio(&self) -> Option<f64> {
        (self.measured.mse > 0.0).then(|| self.predicted.error_second / self.measured.mse)
    }
}

/// Fits per-input models from a value stream, predicts analytically, and
/// replays the same stream for ground truth — the full
/// fit-predict-validate loop in one call.
///
/// # Errors
///
/// As [`fit_inputs`], [`propagate_moments`] and [`replay`].
pub fn fit_and_check(
    dp: &Datapath,
    output: Signal,
    values: &[u64],
) -> Result<(Vec<FittedInput>, DatapathFidelity), PropagateError> {
    let fits = fit_inputs(dp, values)?;
    let named: Vec<(&str, Vec<f64>)> = fits
        .iter()
        .map(|f| (f.name.as_str(), f.bits.clone()))
        .collect();
    let predicted = propagate_moments(dp, output, &named)?;
    let measured = replay(dp, output, values)?;
    Ok((
        fits,
        DatapathFidelity {
            predicted,
            measured,
        },
    ))
}

/// Predicts analytically and checks against Monte-Carlo sampling of the
/// *same* per-bit model — isolates the engine's propagation error from
/// model-fit error.
///
/// # Errors
///
/// As [`propagate_moments`] and [`monte_carlo`].
pub fn check_against_monte_carlo(
    dp: &Datapath,
    output: Signal,
    inputs: &[(&str, Vec<f64>)],
    samples: u64,
    seed: u64,
) -> Result<DatapathFidelity, PropagateError> {
    let predicted = propagate_moments(dp, output, inputs)?;
    let measured = monte_carlo(dp, output, inputs, samples, seed)?;
    Ok(DatapathFidelity {
        predicted,
        measured,
    })
}
