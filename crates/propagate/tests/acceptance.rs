//! Accuracy acceptance suite: the analytical prediction must stay within
//! documented bounds of ground truth on realistic topologies.
//!
//! The engine's one approximation is operand/bit independence at each
//! adder (exact on single adders, documented in DESIGN.md §10). These
//! tests quantify what that costs on the paper's motivating datapaths,
//! with fixed seeds so the bounds are deterministic:
//!
//! * FIR `[1, 2, 1]`, 8-bit uniform inputs: |SNR gap| ≤ 3.5 dB per cell,
//! * 3×3 Gaussian conv2d, 8-bit pixels: |SNR gap| ≤ 4.5 dB per cell,
//! * 6-bit array multiplier (strongly correlated partial products — the
//!   engine's worst case): |SNR gap| ≤ 7 dB,
//! * best and worst cell by *predicted* SNR match ground truth on FIR and
//!   conv2d — the ordering a design-space search actually consumes.

use sealpaa_cells::StandardCell;
use sealpaa_propagate::{
    check_against_monte_carlo, fit_and_check, predict, topologies, DatapathFidelity,
};

const APPROX_CELLS: [StandardCell; 7] = [
    StandardCell::Lpaa1,
    StandardCell::Lpaa2,
    StandardCell::Lpaa3,
    StandardCell::Lpaa4,
    StandardCell::Lpaa5,
    StandardCell::Lpaa6,
    StandardCell::Lpaa7,
];

fn uniform_inputs(names: &[String], width: usize) -> Vec<(&str, Vec<f64>)> {
    names
        .iter()
        .map(|n| (n.as_str(), vec![0.5; width]))
        .collect()
}

fn fir_fidelity(cell: StandardCell) -> DatapathFidelity {
    let topo = topologies::fir(&cell.cell(), &[1, 2, 1], 8).expect("fits");
    let inputs = uniform_inputs(&topo.inputs, 8);
    check_against_monte_carlo(&topo.datapath, topo.output, &inputs, 20_000, 7).expect("valid")
}

fn conv2d_fidelity(cell: StandardCell) -> DatapathFidelity {
    let kernel = vec![vec![1u64, 2, 1], vec![2, 4, 2], vec![1, 2, 1]];
    let topo = topologies::conv2d(&cell.cell(), &kernel, 8).expect("fits");
    let inputs = uniform_inputs(&topo.inputs, 8);
    check_against_monte_carlo(&topo.datapath, topo.output, &inputs, 20_000, 11).expect("valid")
}

#[test]
fn fir_snr_prediction_within_documented_bounds() {
    for cell in APPROX_CELLS {
        let f = fir_fidelity(cell);
        let gap = f.snr_gap_db().expect("approximate cells err");
        assert!(
            gap.abs() <= 3.5,
            "cell {}: predicted {:.2} dB, measured {:.2} dB, gap {gap:+.2}",
            cell.name(),
            f.predicted.snr_db().expect("errs"),
            f.measured.snr_db().expect("errs"),
        );
    }
}

#[test]
fn conv2d_snr_prediction_within_documented_bounds() {
    for cell in APPROX_CELLS {
        let f = conv2d_fidelity(cell);
        let gap = f.snr_gap_db().expect("approximate cells err");
        assert!(gap.abs() <= 4.5, "cell {}: gap {gap:+.2} dB", cell.name());
    }
}

#[test]
fn multiplier_snr_prediction_within_documented_bounds() {
    // Partial products all share `x`, the engine's documented worst case.
    for cell in [
        StandardCell::Lpaa2,
        StandardCell::Lpaa5,
        StandardCell::Lpaa7,
    ] {
        let topo = topologies::multiplier(&cell.cell(), 6).expect("fits");
        let mut inputs: Vec<(&str, Vec<f64>)> = vec![("x", vec![0.5; 6])];
        for name in &topo.inputs[1..] {
            inputs.push((name.as_str(), vec![0.5]));
        }
        let f = check_against_monte_carlo(&topo.datapath, topo.output, &inputs, 20_000, 13)
            .expect("valid");
        let gap = f.snr_gap_db().expect("approximate cells err");
        assert!(gap.abs() <= 7.0, "cell {}: gap {gap:+.2} dB", cell.name());
    }
}

#[test]
fn predicted_ranking_identifies_best_and_worst_cell() {
    for fidelity in [
        fir_fidelity as fn(StandardCell) -> DatapathFidelity,
        conv2d_fidelity,
    ] {
        let scored: Vec<(StandardCell, f64, f64)> = APPROX_CELLS
            .iter()
            .map(|&cell| {
                let f = fidelity(cell);
                (
                    cell,
                    f.predicted.snr_db().expect("errs"),
                    f.measured.snr_db().expect("errs"),
                )
            })
            .collect();
        let best = |key: fn(&(StandardCell, f64, f64)) -> f64| {
            scored
                .iter()
                .max_by(|a, b| key(a).total_cmp(&key(b)))
                .expect("non-empty")
                .0
        };
        assert_eq!(best(|s| s.1), best(|s| s.2), "best cell by prediction");
        let worst = |key: fn(&(StandardCell, f64, f64)) -> f64| {
            scored
                .iter()
                .min_by(|a, b| key(a).total_cmp(&key(b)))
                .expect("non-empty")
                .0
        };
        assert_eq!(worst(|s| s.1), worst(|s| s.2), "worst cell by prediction");
    }
}

#[test]
fn fit_and_replay_loop_stays_within_fir_bounds() {
    // Pseudo-random 8-bit stream: the fitted per-bit model then carries
    // both propagation and model-fit error; the bound still holds.
    let values: Vec<u64> = (0u64..30_000)
        .map(|i| {
            let mut z = i
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(0x51f1_5eed);
            z ^= z >> 30;
            z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z ^= z >> 27;
            z & 0xff
        })
        .collect();
    for cell in [
        StandardCell::Lpaa1,
        StandardCell::Lpaa2,
        StandardCell::Lpaa6,
    ] {
        let topo = topologies::fir(&cell.cell(), &[1, 2, 1], 8).expect("fits");
        let (fits, f) = fit_and_check(&topo.datapath, topo.output, &values).expect("valid");
        assert_eq!(fits.len(), 3);
        assert!(
            fits.iter().all(|fit| fit.independence_violation < 0.02),
            "stream should be near-independent"
        );
        let gap = f.snr_gap_db().expect("approximate cells err");
        assert!(gap.abs() <= 3.5, "cell {}: gap {gap:+.2} dB", cell.name());
    }
}

#[test]
fn composed_pmf_agrees_with_moment_propagation() {
    let topo = topologies::fir(&StandardCell::Lpaa5.cell(), &[1, 2, 1], 8).expect("fits");
    let inputs = uniform_inputs(&topo.inputs, 8);
    let p = predict(&topo.datapath, topo.output, &inputs, true).expect("narrow adders");
    let pmf = p.pmf.expect("requested");
    assert!(pmf.truncated_mass() < 1e-9, "support fits untruncated");
    // Means agree exactly up to float noise (both are linear compositions
    // of the same per-adder laws); second moments differ only through the
    // cross terms, which the PMF convolution models identically.
    assert!(
        (pmf.mean() - p.moments.error_mean).abs() <= 1e-6 * p.moments.error_mean.abs().max(1.0),
        "pmf mean {} vs moments {}",
        pmf.mean(),
        p.moments.error_mean
    );
    assert!(
        (pmf.second_moment() - p.moments.error_second).abs()
            <= 1e-6 * p.moments.error_second.max(1.0),
        "pmf second {} vs moments {}",
        pmf.second_moment(),
        p.moments.error_second
    );
}

#[test]
fn accurate_datapath_predicts_and_measures_error_free() {
    let topo = topologies::fir(&StandardCell::Accurate.cell(), &[1, 2, 1], 8).expect("fits");
    let inputs = uniform_inputs(&topo.inputs, 8);
    let f =
        check_against_monte_carlo(&topo.datapath, topo.output, &inputs, 2_000, 3).expect("valid");
    assert_eq!(f.predicted.error_second, 0.0);
    assert_eq!(f.measured.mse, 0.0);
    assert_eq!(f.predicted.snr_db(), None);
    assert_eq!(f.measured.snr_db(), None);
    assert_eq!(f.snr_gap_db(), None);
}
