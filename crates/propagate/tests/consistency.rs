//! Exact-`Rational` consistency pins for the propagation engines.
//!
//! * The compositional tree engine must equal brute-force enumeration
//!   *exactly* (rational equality, no tolerance) wherever both apply.
//! * The fast moment engine must equal both wherever its independence
//!   assumptions hold exactly (single adders over independent input
//!   bits, including shifted operands).

use sealpaa_cells::{AdderChain, StandardCell};
use sealpaa_datapath::Datapath;
use sealpaa_num::{Prob, Rational};
use sealpaa_propagate::{
    brute_force_moments, exact_tree_moments, propagate_moments, PropagateError,
};

fn r(n: u64, d: u64) -> Rational {
    <Rational as Prob>::from_ratio(n, d)
}

/// A non-degenerate 3-bit profile with distinct per-bit probabilities.
fn bits_a() -> Vec<Rational> {
    vec![r(1, 3), r(1, 2), r(2, 5)]
}

fn bits_b() -> Vec<Rational> {
    vec![r(3, 4), r(1, 5), r(1, 2)]
}

fn bits_c() -> Vec<Rational> {
    vec![r(1, 2), r(2, 3), r(1, 7)]
}

/// `(x + y) + z` with 3-bit inputs, every adder the given cell.
fn two_adder_chain(cell: StandardCell) -> (Datapath, sealpaa_datapath::Signal) {
    let mut dp = Datapath::new();
    let x = dp.input("x", 3);
    let y = dp.input("y", 3);
    let z = dp.input("z", 3);
    let xy = dp
        .add(x, y, AdderChain::uniform(cell.cell(), 3))
        .expect("fits");
    let sum = dp
        .add(xy, z, AdderChain::uniform(cell.cell(), 4))
        .expect("fits");
    (dp, sum)
}

#[test]
fn tree_engine_equals_brute_force_on_two_adder_chain_for_every_cell() {
    for cell in StandardCell::ALL {
        let (dp, sum) = two_adder_chain(cell);
        let inputs = [("x", bits_a()), ("y", bits_b()), ("z", bits_c())];
        let inputs: Vec<(&str, Vec<Rational>)> =
            inputs.iter().map(|(n, b)| (*n, b.clone())).collect();
        let tree = exact_tree_moments(&dp, sum, &inputs).expect("tree-shaped");
        let brute = brute_force_moments(&dp, sum, &inputs).expect("9 input bits");
        assert_eq!(tree, brute, "cell {}", cell.name());
    }
}

#[test]
fn fast_engine_is_exact_on_a_single_adder_for_every_cell() {
    for cell in StandardCell::ALL {
        let mut dp = Datapath::new();
        let x = dp.input("x", 3);
        let y = dp.input("y", 3);
        let sum = dp
            .add(x, y, AdderChain::uniform(cell.cell(), 3))
            .expect("fits");
        let inputs: Vec<(&str, Vec<Rational>)> = vec![("x", bits_a()), ("y", bits_b())];
        let fast = propagate_moments(&dp, sum, &inputs).expect("valid");
        let brute = brute_force_moments(&dp, sum, &inputs).expect("6 input bits");
        let tree = exact_tree_moments(&dp, sum, &inputs).expect("tree-shaped");
        assert_eq!(fast.error_mean, brute.mean, "cell {}", cell.name());
        assert_eq!(fast.error_second, brute.second, "cell {}", cell.name());
        assert_eq!(
            fast.adders[0].error_probability,
            brute.error_probability,
            "cell {}",
            cell.name()
        );
        assert_eq!(tree, brute, "cell {}", cell.name());
    }
}

#[test]
fn fast_engine_is_exact_with_shifted_operands() {
    // (x << 2) + y: shifting preserves bit independence, so the fast
    // engine stays exact.
    for cell in [
        StandardCell::Lpaa2,
        StandardCell::Lpaa5,
        StandardCell::Lpaa6,
    ] {
        let mut dp = Datapath::new();
        let x = dp.input("x", 3);
        let y = dp.input("y", 3);
        let sx = dp.shl(x, 2).expect("fits");
        let sum = dp
            .add(sx, y, AdderChain::uniform(cell.cell(), 5))
            .expect("fits");
        let inputs: Vec<(&str, Vec<Rational>)> = vec![("x", bits_a()), ("y", bits_b())];
        let fast = propagate_moments(&dp, sum, &inputs).expect("valid");
        let brute = brute_force_moments(&dp, sum, &inputs).expect("6 input bits");
        assert_eq!(fast.error_mean, brute.mean, "cell {}", cell.name());
        assert_eq!(fast.error_second, brute.second, "cell {}", cell.name());
    }
}

#[test]
fn tree_engine_handles_gates_exactly() {
    // (x gated by b) + y: the gate correlates the adder's operand bits, so
    // only the exact engines agree — pin them against each other.
    let mut dp = Datapath::new();
    let x = dp.input("x", 3);
    let b = dp.input("b", 1);
    let y = dp.input("y", 3);
    let gated = dp.gate(x, b).expect("1-bit control");
    let sum = dp
        .add(gated, y, AdderChain::uniform(StandardCell::Lpaa3.cell(), 3))
        .expect("fits");
    let inputs: Vec<(&str, Vec<Rational>)> =
        vec![("x", bits_a()), ("b", vec![r(2, 7)]), ("y", bits_b())];
    let tree = exact_tree_moments(&dp, sum, &inputs).expect("tree-shaped");
    let brute = brute_force_moments(&dp, sum, &inputs).expect("7 input bits");
    assert_eq!(tree, brute);
}

#[test]
fn tree_engine_rejects_fanout() {
    // x + x reuses a signal: not a tree.
    let mut dp = Datapath::new();
    let x = dp.input("x", 3);
    let sum = dp
        .add(x, x, AdderChain::uniform(StandardCell::Lpaa1.cell(), 3))
        .expect("fits");
    let inputs: Vec<(&str, Vec<Rational>)> = vec![("x", bits_a())];
    let err = exact_tree_moments(&dp, sum, &inputs).expect_err("fan-out 2");
    assert_eq!(err, PropagateError::NotATree { signal: x.index() });
    // Brute force does not care about sharing.
    assert!(brute_force_moments(&dp, sum, &inputs).is_ok());
}

#[test]
fn accurate_cells_are_error_free_in_every_engine() {
    let (dp, sum) = two_adder_chain(StandardCell::Accurate);
    let inputs: Vec<(&str, Vec<Rational>)> =
        vec![("x", bits_a()), ("y", bits_b()), ("z", bits_c())];
    let fast = propagate_moments(&dp, sum, &inputs).expect("valid");
    let brute = brute_force_moments(&dp, sum, &inputs).expect("9 input bits");
    assert!(fast.error_mean.is_zero());
    assert!(fast.error_second.is_zero());
    assert!(brute.error_probability.is_zero());
    assert!(brute.second.is_zero());
}
