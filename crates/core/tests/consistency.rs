//! Cross-module exact consistency: three independent engines — the paper's
//! recursive analysis ([`analyze`]), the error-distance moment recursion
//! ([`error_magnitude`]), and the full PMF dynamic program
//! ([`error_distribution`]) — must agree *exactly* in `Rational` arithmetic
//! on homogeneous paper-cell chains, where the first-deviation and
//! output-value error semantics provably coincide.

use sealpaa_cells::{AdderChain, InputProfile, StandardCell};
use sealpaa_core::{analyze, error_distribution, error_magnitude};
use sealpaa_num::Rational;

fn r(num: i64, den: i64) -> Rational {
    Rational::from_ratio(num, den)
}

/// Several deliberately non-uniform exact profiles: a skewed constant, a
/// per-bit ramp with distinct `pa`/`pb`, and a near-saturated constant.
fn profiles(width: usize) -> Vec<InputProfile<Rational>> {
    let ramp_a: Vec<Rational> = (0..width)
        .map(|i| r(i as i64 + 1, width as i64 + 2))
        .collect();
    let ramp_b: Vec<Rational> = (0..width)
        .map(|i| r((width - i) as i64, width as i64 + 3))
        .collect();
    vec![
        InputProfile::constant(width, r(1, 3)),
        InputProfile::new(ramp_a, ramp_b, r(2, 7)).expect("valid profile"),
        InputProfile::constant(width, r(9, 10)),
    ]
}

/// The signed integer `d` as an exact rational.
fn scale(d: i64) -> Rational {
    r(d, 1)
}

#[test]
fn analysis_and_distribution_agree_exactly_on_error_probability() {
    for cell in StandardCell::ALL {
        let chain = AdderChain::uniform(cell.cell(), 5);
        for profile in profiles(5) {
            let analysis = analyze(&chain, &profile).expect("valid");
            let dist = error_distribution(&chain, &profile).expect("valid");
            assert_eq!(
                dist.error_probability(),
                analysis.error_probability(),
                "{cell} under {profile:?}"
            );
        }
    }
}

#[test]
fn distribution_moments_equal_the_magnitude_recursion_exactly() {
    for cell in StandardCell::ALL {
        let chain = AdderChain::uniform(cell.cell(), 4);
        for profile in profiles(4) {
            let moments = error_magnitude(&chain, &profile).expect("valid");
            let dist = error_distribution(&chain, &profile).expect("valid");
            assert_eq!(
                dist.mean(),
                moments.mean_error_distance,
                "{cell}: first moment"
            );
            let second = dist.pmf.iter().fold(Rational::zero(), |acc, (d, p)| {
                acc + scale(*d) * scale(*d) * p.clone()
            });
            assert_eq!(
                second, moments.mean_squared_error_distance,
                "{cell}: second moment"
            );
        }
    }
}

#[test]
fn pmf_is_a_probability_distribution_in_exact_arithmetic() {
    // The PMF masses of every chain/profile pair sum to exactly one — no
    // leaked or duplicated carry states in the dynamic program.
    for cell in StandardCell::ALL {
        let chain = AdderChain::uniform(cell.cell(), 5);
        for profile in profiles(5) {
            let dist = error_distribution(&chain, &profile).expect("valid");
            let total = dist
                .pmf
                .iter()
                .fold(Rational::zero(), |acc, (_, p)| acc + p.clone());
            assert_eq!(total, r(1, 1), "{cell}");
        }
    }
}
