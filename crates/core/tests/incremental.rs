//! Differential suite for the incremental analysis engine.
//!
//! The [`PrefixStepper`] promises that stepping through a chain performs
//! *exactly* the operations a fresh [`analyze`] performs, in the same order
//! — so its results are bit-identical in exact [`Rational`] arithmetic and
//! exactly equal (not merely close) in `f64`. The stepper-based DFS in
//! `sealpaa-explore` additionally promises byte-identical results for every
//! thread count. This suite pins both contracts on randomized hybrid chains
//! drawn from all eight standard cells.

use sealpaa_cells::{AdderChain, Cell, InputProfile, StandardCell};
use sealpaa_core::{analyze, PrefixStepper};
use sealpaa_explore::{
    accurate_cell_with_proxy_costs, exhaustive_best_reference, exhaustive_best_with,
    exhaustive_designs, Budget,
};
use sealpaa_num::Rational;

/// SplitMix64 — tiny deterministic RNG, no external dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    /// A random probability with a small denominator, exact in both
    /// `Rational` and `f64` parsing paths.
    fn prob(&mut self) -> (Rational, f64) {
        let den = 1 + self.below(16) as i64;
        let num = self.below(den as usize + 1) as i64;
        (Rational::from_ratio(num, den), num as f64 / den as f64)
    }
}

fn random_chain(rng: &mut Rng, width: usize) -> Vec<StandardCell> {
    (0..width)
        .map(|_| StandardCell::ALL[rng.below(StandardCell::ALL.len())])
        .collect()
}

fn random_profiles(rng: &mut Rng, width: usize) -> (InputProfile<Rational>, InputProfile<f64>) {
    let mut pa_q = Vec::new();
    let mut pa_f = Vec::new();
    let mut pb_q = Vec::new();
    let mut pb_f = Vec::new();
    for _ in 0..width {
        let (q, f) = rng.prob();
        pa_q.push(q);
        pa_f.push(f);
        let (q, f) = rng.prob();
        pb_q.push(q);
        pb_f.push(f);
    }
    let (cin_q, cin_f) = rng.prob();
    (
        InputProfile::new(pa_q, pb_q, cin_q).expect("valid probabilities"),
        InputProfile::new(pa_f, pb_f, cin_f).expect("valid probabilities"),
    )
}

#[test]
fn stepper_matches_fresh_analysis_bit_for_bit_in_rational() {
    let mut rng = Rng(0xDAC1_7001);
    for trial in 0..40 {
        let width = 1 + rng.below(10);
        let cells = random_chain(&mut rng, width);
        let (profile, _) = random_profiles(&mut rng, width);
        let mut stepper = PrefixStepper::new(&profile);
        for cell in &cells {
            stepper.push_cell(&cell.cell());
        }
        let chain = AdderChain::from_stages(cells.iter().map(|c| c.cell()).collect());
        let fresh = analyze(&chain, &profile).expect("widths match");
        // Exact arithmetic: `assert_eq!` is bit-for-bit identity.
        assert_eq!(
            stepper.success_probability(),
            fresh.success_probability(),
            "trial {trial}: {chain}"
        );
        assert_eq!(
            stepper.error_probability(),
            fresh.error_probability(),
            "trial {trial}: {chain}"
        );
        assert_eq!(
            stepper.carry_state(),
            &fresh.stages()[width - 1].carry_out,
            "trial {trial}: {chain}"
        );
    }
}

#[test]
fn stepper_matches_fresh_analysis_exactly_in_f64() {
    let mut rng = Rng(0xDAC1_7002);
    for trial in 0..40 {
        let width = 1 + rng.below(10);
        let cells = random_chain(&mut rng, width);
        let (_, profile) = random_profiles(&mut rng, width);
        let mut stepper = PrefixStepper::new(&profile);
        for cell in &cells {
            stepper.push_cell(&cell.cell());
        }
        let chain = AdderChain::from_stages(cells.iter().map(|c| c.cell()).collect());
        let fresh = analyze(&chain, &profile).expect("widths match");
        // Same operations in the same order ⇒ the same rounding ⇒ exact
        // f64 equality, not an epsilon comparison.
        assert_eq!(
            stepper.success_probability(),
            fresh.success_probability(),
            "trial {trial}: {chain}"
        );
        assert_eq!(
            stepper.error_probability(),
            fresh.error_probability(),
            "trial {trial}: {chain}"
        );
    }
}

#[test]
fn truncate_and_rewiden_reproduces_a_fresh_analysis() {
    // A random walk of push/truncate edits must land on exactly the value a
    // fresh analysis of the final chain computes — checkpoints are real
    // checkpoints, with no accumulated state from discarded suffixes.
    let mut rng = Rng(0xDAC1_7003);
    for trial in 0..25 {
        let width = 2 + rng.below(8);
        let (profile, _) = random_profiles(&mut rng, width);
        let mut stepper = PrefixStepper::new(&profile);
        let mut current: Vec<StandardCell> = Vec::new();
        for _ in 0..30 {
            if current.len() == width || (!current.is_empty() && rng.below(3) == 0) {
                let keep = rng.below(current.len() + 1);
                stepper.truncate(keep);
                current.truncate(keep);
            } else {
                let cell = StandardCell::ALL[rng.below(StandardCell::ALL.len())];
                stepper.push_cell(&cell.cell());
                current.push(cell);
            }
        }
        while current.len() < width {
            let cell = StandardCell::ALL[rng.below(StandardCell::ALL.len())];
            stepper.push_cell(&cell.cell());
            current.push(cell);
        }
        let chain = AdderChain::from_stages(current.iter().map(|c| c.cell()).collect());
        let fresh = analyze(&chain, &profile).expect("widths match");
        assert_eq!(
            stepper.success_probability(),
            fresh.success_probability(),
            "trial {trial}: {chain}"
        );
    }
}

#[test]
fn stepper_error_is_clamped_like_analysis() {
    // An all-accurate chain has success exactly 1; the clamp keeps the f64
    // error at +0.0 (never -0.0) in both code paths.
    let profile = InputProfile::<f64>::uniform(6);
    let mut stepper = PrefixStepper::new(&profile);
    for _ in 0..6 {
        stepper.push_cell(&StandardCell::Accurate.cell());
    }
    let chain = AdderChain::uniform(StandardCell::Accurate.cell(), 6);
    let fresh = analyze(&chain, &profile).expect("widths match");
    assert_eq!(stepper.error_probability(), 0.0);
    assert_eq!(fresh.error_probability(), 0.0);
    assert!(stepper.error_probability().is_sign_positive());
    assert!(fresh.error_probability().is_sign_positive());
}

fn dse_candidates() -> Vec<Cell> {
    vec![
        StandardCell::Lpaa1.cell(),
        StandardCell::Lpaa2.cell(),
        StandardCell::Lpaa5.cell(),
        accurate_cell_with_proxy_costs(),
    ]
}

#[test]
fn exhaustive_designs_is_identical_for_every_thread_count() {
    let candidates = dse_candidates();
    let mut rng = Rng(0xDAC1_7004);
    for width in [1, 3, 5] {
        let (_, profile) = random_profiles(&mut rng, width);
        let reference = exhaustive_designs(&candidates, &profile, 1).expect("valid");
        for threads in [2, 3, 7, 64] {
            let designs = exhaustive_designs(&candidates, &profile, threads).expect("valid");
            // `HybridDesign: PartialEq` compares f64 scores exactly — this
            // is byte-identity, not approximate agreement.
            assert_eq!(reference, designs, "width {width}, threads {threads}");
        }
    }
}

#[test]
fn exhaustive_best_matches_the_reference_scan_for_every_thread_count() {
    let candidates = dse_candidates();
    let mut rng = Rng(0xDAC1_7005);
    for width in [2, 4, 6] {
        let (_, profile) = random_profiles(&mut rng, width);
        for budget in [
            Budget::default(),
            Budget {
                max_power_nw: Some(1080.0 * width as f64 * 0.6),
                max_area_ge: None,
            },
            Budget {
                max_power_nw: Some(0.0),
                max_area_ge: Some(6.0 * width as f64),
            },
        ] {
            let reference =
                exhaustive_best_reference(&candidates, &profile, &budget).expect("valid");
            for threads in [1, 2, 5] {
                let best =
                    exhaustive_best_with(&candidates, &profile, &budget, threads).expect("valid");
                assert_eq!(reference, best, "width {width}, threads {threads}");
            }
        }
    }
}
