//! The exact distribution of the signed error distance — an extension
//! beyond the paper.
//!
//! Where [`error_magnitude`](crate::error_magnitude) gives the first two
//! moments in O(N), this module computes the *entire* probability mass
//! function `P(approx − exact = d)` by a sparse dynamic program over the
//! joint carry state. The support of the partial error grows with the
//! width (it is a subset of `(−2^N, 2^N)`), so this is reserved for the
//! moderate widths where a full histogram is actually interpretable.

use std::collections::BTreeMap;

use sealpaa_cells::{AdderChain, FaInput, InputProfile, TruthTable};
use sealpaa_num::Prob;

use crate::analyzer::AnalyzeError;

/// Widest chain [`error_distribution`] accepts; beyond this the support can
/// reach millions of points and the histogram stops being useful.
pub const MAX_DISTRIBUTION_WIDTH: usize = 20;

/// The exact error-distance PMF of an approximate chain.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorDistribution<T> {
    /// `(d, P(D = d))` pairs in ascending `d`, zero-probability entries
    /// omitted. Includes `d = 0` (the success mass) when non-zero.
    pub pmf: Vec<(i64, T)>,
}

impl<T: Prob> ErrorDistribution<T> {
    /// `P(D = d)`.
    pub fn probability_of(&self, d: i64) -> T {
        self.pmf
            .iter()
            .find(|(v, _)| *v == d)
            .map(|(_, p)| p.clone())
            .unwrap_or_else(T::zero)
    }

    /// `P(D ≠ 0)` — must equal the output-value error probability of
    /// [`exact_error_analysis`](crate::exact_error_analysis).
    pub fn error_probability(&self) -> T {
        self.pmf
            .iter()
            .filter(|(d, _)| *d != 0)
            .fold(T::zero(), |acc, (_, p)| acc + p.clone())
    }

    /// `E[D]` computed from the PMF (cross-checkable against
    /// [`error_magnitude`](crate::error_magnitude)).
    pub fn mean(&self) -> T {
        self.pmf.iter().fold(T::zero(), |acc, (d, p)| {
            acc + signed_scale::<T>(*d) * p.clone()
        })
    }

    /// `P(|D| > bound)` — the tail mass beyond an application's error
    /// tolerance, the quantity quality-configurable designs are sized by.
    pub fn tail_beyond(&self, bound: u64) -> T {
        self.pmf
            .iter()
            .filter(|(d, _)| d.unsigned_abs() > bound)
            .fold(T::zero(), |acc, (_, p)| acc + p.clone())
    }

    /// Largest `|d|` with non-zero probability (`0` for an exact adder).
    pub fn max_absolute_error(&self) -> u64 {
        self.pmf
            .iter()
            .map(|(d, _)| d.unsigned_abs())
            .max()
            .unwrap_or(0)
    }
}

/// Builds `T`'s representation of a (possibly negative) integer.
fn signed_scale<T: Prob>(d: i64) -> T {
    let mag = T::from_ratio(d.unsigned_abs(), 1);
    if d < 0 {
        T::zero() - mag
    } else {
        mag
    }
}

/// Computes the exact PMF of the signed error distance.
///
/// # Errors
///
/// Returns [`AnalyzeError::WidthMismatch`] if `profile` does not match the
/// chain.
///
/// # Panics
///
/// Panics if `chain.width() > MAX_DISTRIBUTION_WIDTH`.
///
/// # Examples
///
/// ```
/// use sealpaa_cells::{AdderChain, InputProfile, StandardCell};
/// use sealpaa_core::error_distribution;
///
/// let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 1);
/// let dist = error_distribution(&chain, &InputProfile::<f64>::uniform(1))?;
/// // One stage of LPAA 1: D ∈ {−1, 0, +1} with P(±1) = 1/8 each.
/// assert_eq!(dist.pmf.len(), 3);
/// assert!((dist.probability_of(1) - 0.125).abs() < 1e-12);
/// assert_eq!(dist.max_absolute_error(), 1);
/// # Ok::<(), sealpaa_core::AnalyzeError>(())
/// ```
pub fn error_distribution<T: Prob>(
    chain: &AdderChain,
    profile: &InputProfile<T>,
) -> Result<ErrorDistribution<T>, AnalyzeError> {
    if chain.width() != profile.width() {
        return Err(AnalyzeError::WidthMismatch {
            chain: chain.width(),
            profile: profile.width(),
        });
    }
    assert!(
        chain.width() <= MAX_DISTRIBUTION_WIDTH,
        "error_distribution supports up to {MAX_DISTRIBUTION_WIDTH} bits"
    );
    let accurate = TruthTable::accurate();
    // state[(joint carries)] -> partial error distance -> probability mass.
    let mut states: Vec<BTreeMap<i64, T>> = vec![BTreeMap::new(); 4];
    let p_cin = profile.p_cin();
    if !p_cin.is_zero() {
        states[0b11].insert(0, p_cin.clone());
    }
    if !p_cin.complement().is_zero() {
        states[0b00].insert(0, p_cin.complement());
    }

    for (i, cell) in chain.iter().enumerate() {
        let mut next: Vec<BTreeMap<i64, T>> = vec![BTreeMap::new(); 4];
        let weight_of = |bit: bool, p: &T| if bit { p.clone() } else { p.complement() };
        for s in 0..4usize {
            let c_approx = s & 1 == 1;
            let c_acc = s & 2 == 2;
            for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
                let w = weight_of(a, profile.pa(i)) * weight_of(b, profile.pb(i));
                if w.is_zero() {
                    continue;
                }
                let approx_out = cell.truth_table().eval(FaInput::new(a, b, c_approx));
                let acc_out = accurate.eval(FaInput::new(a, b, c_acc));
                let dv = (approx_out.sum as i64 - acc_out.sum as i64) << i;
                let target = (approx_out.carry_out as usize) | (acc_out.carry_out as usize) << 1;
                for (d, mass) in &states[s] {
                    let entry = next[target].entry(d + dv).or_insert_with(T::zero);
                    *entry = entry.clone() + w.clone() * mass.clone();
                }
            }
        }
        states = next;
    }

    // Fold in the final carry-out discrepancy (±2^N) and merge states.
    let carry_value = 1i64 << chain.width();
    let mut pmf: BTreeMap<i64, T> = BTreeMap::new();
    for (s, dist) in states.iter().enumerate() {
        let dc = match (s & 1 == 1, s & 2 == 2) {
            (true, false) => carry_value,
            (false, true) => -carry_value,
            _ => 0,
        };
        for (d, mass) in dist {
            if mass.is_zero() {
                continue;
            }
            let entry = pmf.entry(d + dc).or_insert_with(T::zero);
            *entry = entry.clone() + mass.clone();
        }
    }
    Ok(ErrorDistribution {
        pmf: pmf.into_iter().filter(|(_, p)| !p.is_zero()).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_error_analysis;
    use crate::magnitude::error_magnitude;
    use sealpaa_cells::StandardCell;
    use sealpaa_num::Rational;

    fn brute_force_pmf(
        chain: &AdderChain,
        profile: &InputProfile<Rational>,
    ) -> BTreeMap<i64, Rational> {
        let width = chain.width();
        let mut pmf = BTreeMap::new();
        for a in 0..1u64 << width {
            for b in 0..1u64 << width {
                for cin in [false, true] {
                    let w = profile.assignment_probability(a, b, cin);
                    let d = chain
                        .add(a, b, cin)
                        .error_distance(chain.accurate_sum(a, b, cin));
                    let entry = pmf.entry(d).or_insert_with(Rational::zero);
                    *entry = entry.clone() + w;
                }
            }
        }
        pmf.retain(|_, p| !p.is_zero());
        pmf
    }

    #[test]
    fn pmf_matches_brute_force_for_all_cells() {
        for cell in StandardCell::APPROXIMATE {
            let chain = AdderChain::uniform(cell.cell(), 3);
            let profile = InputProfile::<Rational>::constant(3, Rational::from_ratio(2, 7));
            let dist = error_distribution(&chain, &profile).expect("widths match");
            let expect = brute_force_pmf(&chain, &profile);
            let got: BTreeMap<i64, Rational> = dist.pmf.iter().cloned().collect();
            assert_eq!(got, expect, "{cell}");
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let chain = AdderChain::uniform(StandardCell::Lpaa4.cell(), 5);
        let profile = InputProfile::<Rational>::constant(5, Rational::from_ratio(3, 11));
        let dist = error_distribution(&chain, &profile).expect("widths match");
        let total = dist
            .pmf
            .iter()
            .fold(Rational::zero(), |acc, (_, p)| acc + p.clone());
        assert_eq!(total, Rational::one());
    }

    #[test]
    fn error_probability_matches_joint_dp() {
        let chain = AdderChain::from_stages(vec![
            StandardCell::Lpaa6.cell(),
            StandardCell::Lpaa5.cell(),
            StandardCell::Lpaa2.cell(),
        ]);
        let profile = InputProfile::<Rational>::constant(3, Rational::from_ratio(1, 3));
        let dist = error_distribution(&chain, &profile).expect("widths match");
        let joint = exact_error_analysis(&chain, &profile).expect("widths match");
        assert_eq!(dist.error_probability(), joint.output_error);
    }

    #[test]
    fn pmf_mean_matches_magnitude_analysis() {
        let chain = AdderChain::uniform(StandardCell::Lpaa5.cell(), 6);
        let profile = InputProfile::<Rational>::constant(6, Rational::from_ratio(4, 9));
        let dist = error_distribution(&chain, &profile).expect("widths match");
        let moments = error_magnitude(&chain, &profile).expect("widths match");
        assert_eq!(dist.mean(), moments.mean_error_distance);
    }

    #[test]
    fn tail_mass_and_max_error() {
        let chain = AdderChain::uniform(StandardCell::Lpaa2.cell(), 4);
        let profile = InputProfile::<Rational>::uniform(4);
        let dist = error_distribution(&chain, &profile).expect("widths match");
        // Tail beyond the maximum must be empty; tail beyond 0 is P(err).
        assert!(dist.tail_beyond(dist.max_absolute_error()).is_zero());
        assert_eq!(dist.tail_beyond(0), dist.error_probability());
        assert!(dist.max_absolute_error() > 0);
    }

    #[test]
    fn accurate_chain_is_a_point_mass_at_zero() {
        let chain = AdderChain::uniform(StandardCell::Accurate.cell(), 6);
        let profile = InputProfile::<Rational>::constant(6, Rational::from_ratio(1, 4));
        let dist = error_distribution(&chain, &profile).expect("widths match");
        assert_eq!(dist.pmf, vec![(0, Rational::one())]);
        assert!(dist.error_probability().is_zero());
    }

    #[test]
    #[should_panic(expected = "supports up to")]
    fn oversized_width_panics() {
        let w = MAX_DISTRIBUTION_WIDTH + 1;
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), w);
        let profile = InputProfile::<f64>::uniform(w);
        let _ = error_distribution(&chain, &profile);
    }

    #[test]
    fn width_mismatch_is_reported() {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 2);
        let profile = InputProfile::<f64>::uniform(3);
        assert!(error_distribution(&chain, &profile).is_err());
    }
}
