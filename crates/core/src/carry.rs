//! The success-conditioned carry state propagated between stages.

use std::fmt;

use sealpaa_num::Prob;

/// The pair of probabilities the proposed method propagates from stage to
/// stage (paper Sec. 4.1):
///
/// * `P(C ∩ Succ)` — carry is `1` **and** every stage so far was accurate,
/// * `P(C̄ ∩ Succ)` — carry is `0` **and** every stage so far was accurate.
///
/// Their sum is the probability that the chain is still error-free, which
/// can only shrink as stages are added (the paper notes "the carry-out
/// probabilities keep on decreasing because of the discarded error terms").
///
/// # Examples
///
/// ```
/// use sealpaa_core::CarryState;
///
/// let state = CarryState::initial(&0.25f64);
/// assert_eq!(*state.p_carry_and_success(), 0.25);
/// assert_eq!(*state.p_not_carry_and_success(), 0.75);
/// assert_eq!(state.success_mass(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CarryState<T> {
    carry_zero: T,
    carry_one: T,
}

impl<T: Prob> CarryState<T> {
    /// Creates a state from `P(C̄ ∩ Succ)` and `P(C ∩ Succ)`.
    pub fn new(carry_zero: T, carry_one: T) -> Self {
        CarryState {
            carry_zero,
            carry_one,
        }
    }

    /// The first-stage state (paper Eq. 5): no stage has run yet, so success
    /// is certain and the split is just the carry-in probability.
    pub fn initial(p_cin: &T) -> Self {
        CarryState {
            carry_zero: p_cin.complement(),
            carry_one: p_cin.clone(),
        }
    }

    /// `P(C = 0 ∩ Succ)`.
    pub fn p_not_carry_and_success(&self) -> &T {
        &self.carry_zero
    }

    /// `P(C = 1 ∩ Succ)`.
    pub fn p_carry_and_success(&self) -> &T {
        &self.carry_one
    }

    /// `P(Succ)` so far: the total probability mass still error-free.
    pub fn success_mass(&self) -> T {
        self.carry_zero.clone() + self.carry_one.clone()
    }
}

impl<T: Prob> fmt::Display for CarryState<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P(C̄∩S)={} P(C∩S)={}", self.carry_zero, self.carry_one)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sealpaa_num::Rational;

    #[test]
    fn initial_splits_cin() {
        let s = CarryState::initial(&0.2f64);
        assert!((s.p_carry_and_success() - 0.2).abs() < 1e-15);
        assert!((s.p_not_carry_and_success() - 0.8).abs() < 1e-15);
    }

    #[test]
    fn success_mass_is_sum() {
        let s = CarryState::new(Rational::from_ratio(1, 8), Rational::from_ratio(3, 8));
        assert_eq!(s.success_mass(), Rational::from_ratio(1, 2));
    }

    #[test]
    fn initial_mass_is_one_exactly() {
        let s = CarryState::initial(&Rational::from_ratio(7, 13));
        assert_eq!(s.success_mass(), Rational::one());
    }

    #[test]
    fn display_shows_both_components() {
        let s = CarryState::new(0.25f64, 0.5);
        let rendered = s.to_string();
        assert!(rendered.contains("0.25") && rendered.contains("0.5"));
    }
}
