//! The SEALPAA analytical method: recursive, matrix-based error-probability
//! analysis of multi-bit low-power approximate adders (Ayub, Hasan &
//! Shafique, DAC 2017, Sec. 4).
//!
//! # The method in one paragraph
//!
//! For every stage of a ripple chain of (approximate) full adders, the engine
//! propagates only two numbers: `P(Cout = 1 ∩ Succ)` and `P(Cout = 0 ∩ Succ)`
//! — the probability that the carry has a given value *and* no stage so far
//! has deviated from the accurate full adder. Error cases are discarded at
//! every stage, so no inclusion–exclusion over stage subsets is ever needed
//! and the whole analysis is a single O(N) pass (paper Algorithm 1). The
//! per-stage update is three dot products between an 8-entry input
//! probability matrix ([`Ipm`]) and three constant 0/1 row vectors derived
//! from the cell's truth table ([`MklMatrices`], paper Table 5).
//!
//! # Entry points
//!
//! * [`analyze`] — the proposed method; returns an [`Analysis`] with the
//!   final success/error probability and a full per-stage trace (paper
//!   Table 4).
//! * [`analyze_instrumented`] — same, plus exact operation counts
//!   ([`OpCounts`], paper Table 8).
//! * [`MklMatrices`] — derivation of the M, K, L vectors from any truth
//!   table (paper Table 5 is a test vector here, not an input).
//! * [`signal_probabilities`] — unconditioned signal probabilities of every
//!   carry and sum bit through the *approximate* chain.
//! * [`exact_error_analysis`] — an exact joint-chain DP (an extension beyond
//!   the paper) that also captures the rare error-*cancellation* effects the
//!   first-deviation semantics cannot, and per-bit error rates.
//!
//! # Examples
//!
//! ```
//! use sealpaa_cells::{AdderChain, InputProfile, StandardCell};
//! use sealpaa_core::analyze;
//!
//! // Paper Table 7, first column: 2-bit LPAA 1, all inputs at p = 0.1.
//! let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 2);
//! let profile = InputProfile::constant(2, 0.1);
//! let analysis = analyze(&chain, &profile)?;
//! assert!((analysis.error_probability() - 0.30780).abs() < 5e-6);
//! # Ok::<(), sealpaa_core::AnalyzeError>(())
//! ```

#![forbid(unsafe_code)]
// DP state indices (carry value, joint-state bits, run length) are semantic
// values, not mere positions; indexed loops read clearer than iterators here.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

mod analyzer;
mod carry;
mod distance;
mod distribution;
mod exact;
mod extremes;
mod magnitude;
mod matrices;
mod ops;
mod signal;
mod stepper;

pub use analyzer::{analyze, analyze_instrumented, Analysis, AnalyzeError, StageTrace};
pub use carry::CarryState;
pub use distance::ErrorDistanceDistribution;
pub use distribution::{error_distribution, ErrorDistribution, MAX_DISTRIBUTION_WIDTH};
pub use exact::{exact_error_analysis, ExactErrorAnalysis};
pub use extremes::{worst_case_error, worst_case_relative_error, Witness, WorstCaseError};
pub use magnitude::{error_magnitude, MagnitudeAnalysis};
pub use matrices::{Ipm, MklMatrices};
pub use ops::{table8_resource_model, OpCounts, ResourceEstimate};
pub use signal::{signal_probabilities, success_sum_probabilities, SignalAnalysis};
pub use stepper::PrefixStepper;
