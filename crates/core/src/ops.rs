//! Operation counting and the paper's resource model (Table 8).

use std::fmt;
use std::ops::AddAssign;

/// Exact counts of the arithmetic operations an analysis performed.
///
/// These are *measured* by instrumenting the engine (see
/// [`analyze_instrumented`](crate::analyze_instrumented)), so they reflect
/// this implementation's bookkeeping: two multiplications per IPM entry
/// (operand term × operand term × carry term), one complement per operand
/// probability, and additions only inside the binary-selector dot products.
/// The headline property they demonstrate is the paper's: cost grows
/// *linearly* in the number of stages, versus the exponential growth of both
/// exhaustive simulation (paper Fig. 1) and inclusion–exclusion analysis
/// (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Number of probability multiplications.
    pub multiplications: u64,
    /// Number of probability additions.
    pub additions: u64,
    /// Number of `1 − p` complement operations.
    pub complements: u64,
}

impl OpCounts {
    /// Total arithmetic operations of any kind.
    pub fn total(&self) -> u64 {
        self.multiplications + self.additions + self.complements
    }
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, rhs: OpCounts) {
        self.multiplications += rhs.multiplications;
        self.additions += rhs.additions;
        self.complements += rhs.complements;
    }
}

impl fmt::Display for OpCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} mul, {} add, {} compl",
            self.multiplications, self.additions, self.complements
        )
    }
}

/// The paper's own per-design resource accounting (Table 8): hardware-style
/// counts of multipliers, adders and memory units needed to evaluate the
/// method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceEstimate {
    /// Multiplier count (constant per Table 8, independent of width).
    pub multipliers: u64,
    /// Adder count (constant per Table 8).
    pub adders: u64,
    /// Memory units: 3 when all operand bits share one probability, width+1
    /// otherwise.
    pub memory_units: u64,
}

impl fmt::Display for ResourceEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} multipliers, {} adders, {} memory units",
            self.multipliers, self.adders, self.memory_units
        )
    }
}

/// Paper Table 8 verbatim: the resource utilisation of the proposed method.
///
/// * Operand bits equally probable: 32 multipliers, 21 adders, 3 memory
///   units (repeated per-stage products can be reused).
/// * Operand bits with per-bit probabilities: 48 multipliers, 21 adders,
///   `width + 1` memory units (one slot per bit probability plus the carry
///   state).
///
/// The counts are per design (the datapath is reused each of the `width`
/// iterations); only the memory scales with width, and then only linearly —
/// the contrast to paper Table 3's exponential inclusion–exclusion costs.
pub fn table8_resource_model(width: usize, equal_probabilities: bool) -> ResourceEstimate {
    if equal_probabilities {
        ResourceEstimate {
            multipliers: 32,
            adders: 21,
            memory_units: 3,
        }
    } else {
        ResourceEstimate {
            multipliers: 48,
            adders: 21,
            memory_units: width as u64 + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates() {
        let mut a = OpCounts {
            multiplications: 1,
            additions: 2,
            complements: 3,
        };
        a += OpCounts {
            multiplications: 10,
            additions: 20,
            complements: 30,
        };
        assert_eq!(a.multiplications, 11);
        assert_eq!(a.additions, 22);
        assert_eq!(a.complements, 33);
        assert_eq!(a.total(), 66);
    }

    #[test]
    fn table8_values_match_paper() {
        let equal = table8_resource_model(32, true);
        assert_eq!(
            (equal.multipliers, equal.adders, equal.memory_units),
            (32, 21, 3)
        );
        let varying = table8_resource_model(32, false);
        assert_eq!(
            (varying.multipliers, varying.adders, varying.memory_units),
            (48, 21, 33)
        );
    }

    #[test]
    fn memory_scales_linearly_only_for_varying_probabilities() {
        assert_eq!(table8_resource_model(8, true).memory_units, 3);
        assert_eq!(table8_resource_model(1024, true).memory_units, 3);
        assert_eq!(table8_resource_model(1024, false).memory_units, 1025);
    }

    #[test]
    fn display_is_informative() {
        let c = OpCounts {
            multiplications: 5,
            additions: 6,
            complements: 7,
        };
        assert_eq!(c.to_string(), "5 mul, 6 add, 7 compl");
        assert!(table8_resource_model(4, true)
            .to_string()
            .contains("32 multipliers"));
    }
}
