//! The error-distance distribution shared by the chain and block-based
//! analyses.
//!
//! [`ErrorDistribution`](crate::ErrorDistribution) keys its support on `i64`
//! because a ripple chain never exceeds
//! [`MAX_DISTRIBUTION_WIDTH`](crate::MAX_DISTRIBUTION_WIDTH) bits. The
//! block-based adders of
//! `sealpaa-blocks` run much wider — their accurate-cell configurations have
//! tiny supports even at the trace-replay width bound of 47 bits — so their
//! engine needs `i128` support keys and a richer statistics surface (CDF,
//! MSE, normalized mean). This module provides that shared container; the
//! engines that *fill* it live with their adder models.

use sealpaa_num::Prob;

/// The exact probability mass function of a signed error distance
/// `D = approx − exact`, with `i128` support keys.
///
/// Entries are `(d, P(D = d))` in ascending `d` with zero-probability
/// entries omitted; `d = 0` (the success mass) is included when non-zero.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorDistanceDistribution<T> {
    /// `(d, P(D = d))` pairs in ascending `d`.
    pub pmf: Vec<(i128, T)>,
}

impl<T: Prob> ErrorDistanceDistribution<T> {
    /// `P(D = d)`.
    pub fn probability_of(&self, d: i128) -> T {
        self.pmf
            .iter()
            .find(|(v, _)| *v == d)
            .map(|(_, p)| p.clone())
            .unwrap_or_else(T::zero)
    }

    /// `P(D ≠ 0)` — the probability the output value is wrong.
    pub fn error_rate(&self) -> T {
        self.pmf
            .iter()
            .filter(|(d, _)| *d != 0)
            .fold(T::zero(), |acc, (_, p)| acc + p.clone())
    }

    /// `E[D]` — the signed bias.
    pub fn mean(&self) -> T {
        self.pmf.iter().fold(T::zero(), |acc, (d, p)| {
            acc + signed_scale::<T>(*d) * p.clone()
        })
    }

    /// `E[|D|]` — the mean error distance (MED).
    pub fn mean_absolute(&self) -> T {
        self.pmf.iter().fold(T::zero(), |acc, (d, p)| {
            acc + unsigned_scale::<T>(d.unsigned_abs()) * p.clone()
        })
    }

    /// `E[D²]` — the mean squared error distance (MSE).
    ///
    /// # Panics
    ///
    /// Panics if some `d²` exceeds `u128` (cannot happen for the widths the
    /// block engine accepts: `|d| ≤ 2^48`).
    pub fn mean_squared(&self) -> T {
        self.pmf.iter().fold(T::zero(), |acc, (d, p)| {
            let mag = d.unsigned_abs();
            let sq = mag
                .checked_mul(mag)
                .expect("error-distance square overflow");
            acc + unsigned_scale::<T>(sq) * p.clone()
        })
    }

    /// `E[|D|] / (2^{width+1} − 1)` — the mean error distance normalized by
    /// the largest representable output (sum bits plus carry), the usual
    /// width-independent quality score (often written NMED or MRED against
    /// the full-scale output).
    ///
    /// # Panics
    ///
    /// Panics if `width > 62` (the normalizer must fit `u64`).
    pub fn normalized_mean_absolute(&self, width: usize) -> T {
        assert!(width <= 62, "normalizer 2^(width+1)-1 must fit u64");
        let full_scale = (1u64 << (width + 1)) - 1;
        let inv = T::from_ratio(1, full_scale);
        self.mean_absolute() * inv
    }

    /// `P(|D| > bound)` — tail mass beyond an application's tolerance.
    pub fn tail_beyond(&self, bound: u128) -> T {
        self.pmf
            .iter()
            .filter(|(d, _)| d.unsigned_abs() > bound)
            .fold(T::zero(), |acc, (_, p)| acc + p.clone())
    }

    /// Largest `|d|` with non-zero probability (`0` for an exact adder).
    pub fn max_absolute(&self) -> u128 {
        self.pmf
            .iter()
            .map(|(d, _)| d.unsigned_abs())
            .max()
            .unwrap_or(0)
    }

    /// The cumulative distribution `(d, P(D ≤ d))`, one entry per support
    /// point in ascending `d`; the last entry's probability is the total
    /// mass (exactly 1 for a complete distribution).
    pub fn cdf(&self) -> Vec<(i128, T)> {
        let mut acc = T::zero();
        self.pmf
            .iter()
            .map(|(d, p)| {
                acc = acc.clone() + p.clone();
                (*d, acc.clone())
            })
            .collect()
    }

    /// Total probability mass (must be 1 for a complete distribution;
    /// exposed so exact tests can assert it).
    pub fn total_mass(&self) -> T {
        self.pmf
            .iter()
            .fold(T::zero(), |acc, (_, p)| acc + p.clone())
    }
}

/// Builds `T`'s representation of a (possibly negative) `i128`.
fn signed_scale<T: Prob>(d: i128) -> T {
    let mag = unsigned_scale::<T>(d.unsigned_abs());
    if d < 0 {
        T::zero() - mag
    } else {
        mag
    }
}

/// Builds `T`'s representation of a `u128` exactly. Horner over 32-bit
/// limbs: every limb stays far below `i64::MAX`, which `from_ratio`'s
/// signed `Rational` implementation requires.
fn unsigned_scale<T: Prob>(mag: u128) -> T {
    if mag <= u128::from(u32::MAX) {
        return T::from_ratio(mag as u64, 1);
    }
    let two32 = T::from_ratio(1u64 << 32, 1);
    let mut acc = T::zero();
    for i in (0..4).rev() {
        let limb = ((mag >> (32 * i)) & u128::from(u32::MAX)) as u64;
        acc = acc * two32.clone() + T::from_ratio(limb, 1);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use sealpaa_num::Rational;

    fn dist() -> ErrorDistanceDistribution<Rational> {
        ErrorDistanceDistribution {
            pmf: vec![
                (-4, Rational::from_ratio(1, 8)),
                (0, Rational::from_ratio(3, 4)),
                (2, Rational::from_ratio(1, 8)),
            ],
        }
    }

    #[test]
    fn statistics_are_exact() {
        let d = dist();
        assert_eq!(d.error_rate(), Rational::from_ratio(1, 4));
        assert_eq!(d.mean(), Rational::from_ratio(-1, 4));
        assert_eq!(d.mean_absolute(), Rational::from_ratio(3, 4));
        // E[D²] = 16/8 + 4/8 = 5/2.
        assert_eq!(d.mean_squared(), Rational::from_ratio(5, 2));
        assert_eq!(d.max_absolute(), 4);
        assert_eq!(d.tail_beyond(2), Rational::from_ratio(1, 8));
        assert_eq!(d.tail_beyond(0), d.error_rate());
        assert_eq!(d.total_mass(), Rational::one());
        assert_eq!(d.probability_of(2), Rational::from_ratio(1, 8));
        assert!(d.probability_of(1).is_zero());
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_total_mass() {
        let d = dist();
        let cdf = d.cdf();
        assert_eq!(cdf.len(), d.pmf.len());
        for pair in cdf.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
        assert_eq!(cdf.last().expect("non-empty").1, Rational::one());
    }

    #[test]
    fn normalized_mean_uses_full_scale_output() {
        let d = dist();
        // width 2 ⇒ full scale 2³−1 = 7.
        assert_eq!(d.normalized_mean_absolute(2), Rational::from_ratio(3, 28));
    }

    #[test]
    fn wide_support_keys_stay_exact() {
        // A support point near the 47-bit replay bound: the scale helpers
        // must not lose a single ulp in Rational.
        let big = (1i128 << 48) - 3;
        let d = ErrorDistanceDistribution {
            pmf: vec![(big, Rational::one())],
        };
        assert_eq!(d.mean(), Rational::from_ratio((1i64 << 48) - 3, 1));
        assert_eq!(d.max_absolute(), big as u128);
        let sq = d.mean_squared();
        let expect =
            Rational::from_ratio((1i64 << 48) - 3, 1) * Rational::from_ratio((1i64 << 48) - 3, 1);
        assert_eq!(sq, expect);
    }

    #[test]
    fn empty_distribution_is_all_zero() {
        let d = ErrorDistanceDistribution::<f64> { pmf: vec![] };
        assert_eq!(d.error_rate(), 0.0);
        assert_eq!(d.max_absolute(), 0);
        assert!(d.cdf().is_empty());
    }
}
