//! Exact joint-chain analysis — an extension beyond the paper.
//!
//! The paper's `P(Error)` uses *first-deviation* semantics: the adder
//! "fails" as soon as any stage's `(sum, carry_out)` differs from the
//! accurate full adder's, given the accurate carry chain. For the seven
//! paper cells on homogeneous chains this coincides with the probability
//! that the final *output value* is wrong (their exhaustive validation
//! matched exactly, and our tests confirm it). In general, however, a
//! carry-only deviation can be *cancelled* downstream — e.g. an LPAA 6 stage
//! (whose two error rows corrupt only the carry) followed by an LPAA 5 stage
//! can re-converge with every sum bit intact — making the paper's figure a
//! safe over-estimate of the value-error probability.
//!
//! This module runs both chains (approximate and accurate) *jointly* as one
//! Markov chain over the state
//! `(approximate carry, accurate carry, output already corrupted, some stage
//! deviated)`, which is exact, linear-time, and yields:
//!
//! * the true output-value error probability (cancellation included),
//! * the paper's first-deviation error probability (for cross-validation
//!   against [`analyze`](crate::analyze)), and
//! * per-bit error rates of every sum bit.

use sealpaa_cells::{AdderChain, FaInput, InputProfile, TruthTable};
use sealpaa_num::Prob;

use crate::analyzer::AnalyzeError;

/// Results of the exact joint-chain DP.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactErrorAnalysis<T> {
    /// Probability that the final output (all sum bits + final carry-out)
    /// differs from the exact binary sum. Accounts for downstream
    /// cancellation of carry-only deviations.
    pub output_error: T,
    /// Probability that at least one stage deviates from the accurate full
    /// adder along the accurate carry chain — the paper's `P(Error)`
    /// semantics. Always ≥ `output_error`.
    pub stage_error: T,
    /// `bit_error[i]` = probability that sum bit `i` of the approximate
    /// chain differs from the accurate sum bit `i`.
    pub bit_error: Vec<T>,
}

/// Joint DP state index: 2 bits of carry (approx, accurate) × output-dirty ×
/// deviated = 16 states.
fn state_index(c_approx: bool, c_acc: bool, dirty: bool, deviated: bool) -> usize {
    (c_approx as usize) | (c_acc as usize) << 1 | (dirty as usize) << 2 | (deviated as usize) << 3
}

/// Runs the exact joint-chain analysis.
///
/// # Errors
///
/// Returns [`AnalyzeError::WidthMismatch`] if `profile` does not cover
/// exactly `chain.width()` bits.
///
/// # Examples
///
/// ```
/// use sealpaa_cells::{AdderChain, InputProfile, StandardCell};
/// use sealpaa_core::{analyze, exact_error_analysis};
///
/// let chain = AdderChain::uniform(StandardCell::Lpaa6.cell(), 8);
/// let profile = InputProfile::<f64>::uniform(8);
/// let exact = exact_error_analysis(&chain, &profile)?;
/// let paper = analyze(&chain, &profile)?;
/// // For the paper's cells on homogeneous chains the two notions agree.
/// assert!((exact.output_error - paper.error_probability()).abs() < 1e-12);
/// # Ok::<(), sealpaa_core::AnalyzeError>(())
/// ```
pub fn exact_error_analysis<T: Prob>(
    chain: &AdderChain,
    profile: &InputProfile<T>,
) -> Result<ExactErrorAnalysis<T>, AnalyzeError> {
    if chain.width() != profile.width() {
        return Err(AnalyzeError::WidthMismatch {
            chain: chain.width(),
            profile: profile.width(),
        });
    }
    let accurate = TruthTable::accurate();
    // state[s]: probability mass in joint state s.
    let mut state = vec![T::zero(); 16];
    let p_cin = profile.p_cin();
    state[state_index(true, true, false, false)] = p_cin.clone();
    state[state_index(false, false, false, false)] = p_cin.complement();

    let mut bit_error = Vec::with_capacity(chain.width());
    for (i, cell) in chain.iter().enumerate() {
        let mut next = vec![T::zero(); 16];
        let mut sum_differs = T::zero();
        for s in 0..16 {
            if state[s].is_zero() {
                continue;
            }
            let c_approx = s & 1 == 1;
            let c_acc = s & 2 == 2;
            let dirty = s & 4 == 4;
            let deviated = s & 8 == 8;
            for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
                let pa = if a {
                    profile.pa(i).clone()
                } else {
                    profile.pa(i).complement()
                };
                let pb = if b {
                    profile.pb(i).clone()
                } else {
                    profile.pb(i).complement()
                };
                let mass = state[s].clone() * pa * pb;
                if mass.is_zero() {
                    continue;
                }
                let approx_out = cell.truth_table().eval(FaInput::new(a, b, c_approx));
                let acc_out = accurate.eval(FaInput::new(a, b, c_acc));
                let differs = approx_out.sum != acc_out.sum;
                if differs {
                    sum_differs = sum_differs + mass.clone();
                }
                // "Deviated" is judged against the accurate carry chain, as
                // in the paper's analysis.
                let row_is_error = cell.truth_table().eval(FaInput::new(a, b, c_acc))
                    != accurate.eval(FaInput::new(a, b, c_acc));
                let idx = state_index(
                    approx_out.carry_out,
                    acc_out.carry_out,
                    dirty || differs,
                    deviated || row_is_error,
                );
                next[idx] = next[idx].clone() + mass;
            }
        }
        bit_error.push(sum_differs);
        state = next;
    }

    let mut output_error = T::zero();
    let mut stage_error = T::zero();
    for s in 0..16 {
        if state[s].is_zero() {
            continue;
        }
        let carry_mismatch = (s & 1 == 1) != (s & 2 == 2);
        let dirty = s & 4 == 4;
        let deviated = s & 8 == 8;
        if dirty || carry_mismatch {
            output_error = output_error + state[s].clone();
        }
        if deviated {
            stage_error = stage_error + state[s].clone();
        }
    }
    Ok(ExactErrorAnalysis {
        output_error,
        stage_error,
        bit_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use sealpaa_cells::StandardCell;
    use sealpaa_num::Rational;

    #[test]
    fn stage_error_matches_proposed_method_exactly() {
        for cell in StandardCell::APPROXIMATE {
            let chain = AdderChain::uniform(cell.cell(), 5);
            let profile = InputProfile::<Rational>::constant(5, Rational::from_ratio(3, 10));
            let exact = exact_error_analysis(&chain, &profile).expect("widths match");
            let paper = analyze(&chain, &profile).expect("widths match");
            assert_eq!(
                exact.stage_error,
                paper.error_probability(),
                "stage-error semantics must coincide with the paper's method for {cell}"
            );
        }
    }

    #[test]
    fn homogeneous_paper_cells_have_no_cancellation() {
        // The paper's exhaustive validation matched its analysis exactly;
        // that implicitly claims output error == first-deviation error for
        // LPAA 1–7. Verify analytically.
        for cell in StandardCell::APPROXIMATE {
            let chain = AdderChain::uniform(cell.cell(), 6);
            let profile = InputProfile::<Rational>::uniform(6);
            let exact = exact_error_analysis(&chain, &profile).expect("widths match");
            assert_eq!(
                exact.output_error, exact.stage_error,
                "no cancellation expected for homogeneous {cell}"
            );
        }
    }

    #[test]
    fn lpaa6_then_lpaa5_hybrid_cancels_errors() {
        // LPAA 6's error rows corrupt only the carry; a following LPAA 5
        // stage (sum = B, carry = A) can swallow the wrong carry on (0,0)
        // inputs, re-aligning the chains with all sum bits intact. The
        // paper's first-deviation estimate is therefore strictly larger than
        // the true output error for this hybrid.
        let chain =
            AdderChain::from_stages(vec![StandardCell::Lpaa6.cell(), StandardCell::Lpaa5.cell()]);
        let profile = InputProfile::<Rational>::uniform(2);
        let exact = exact_error_analysis(&chain, &profile).expect("widths match");
        assert!(
            exact.output_error < exact.stage_error,
            "expected cancellation: output {} vs stage {}",
            exact.output_error,
            exact.stage_error
        );
    }

    #[test]
    fn accurate_chain_is_error_free() {
        let chain = AdderChain::uniform(StandardCell::Accurate.cell(), 8);
        let profile = InputProfile::<Rational>::constant(8, Rational::from_ratio(2, 7));
        let exact = exact_error_analysis(&chain, &profile).expect("widths match");
        assert_eq!(exact.output_error, Rational::zero());
        assert_eq!(exact.stage_error, Rational::zero());
        assert!(exact.bit_error.iter().all(|p| p.is_zero()));
    }

    #[test]
    fn bit_errors_match_brute_force_2bit() {
        let chain = AdderChain::uniform(StandardCell::Lpaa4.cell(), 2);
        let profile = InputProfile::<Rational>::new(
            vec![Rational::from_ratio(1, 3), Rational::from_ratio(4, 5)],
            vec![Rational::from_ratio(2, 9), Rational::from_ratio(1, 2)],
            Rational::from_ratio(1, 6),
        )
        .expect("valid profile");
        let exact = exact_error_analysis(&chain, &profile).expect("widths match");

        let mut bit0 = Rational::zero();
        let mut bit1 = Rational::zero();
        let mut out_err = Rational::zero();
        for a in 0..4u64 {
            for b in 0..4u64 {
                for cin in [false, true] {
                    let w = profile.assignment_probability(a, b, cin);
                    let approx = chain.add(a, b, cin);
                    let acc = chain.accurate_sum(a, b, cin);
                    if (approx.sum_bits() ^ acc.sum_bits()) & 1 != 0 {
                        bit0 = bit0 + w.clone();
                    }
                    if (approx.sum_bits() ^ acc.sum_bits()) & 2 != 0 {
                        bit1 = bit1 + w.clone();
                    }
                    if approx != acc {
                        out_err = out_err + w;
                    }
                }
            }
        }
        assert_eq!(exact.bit_error[0], bit0);
        assert_eq!(exact.bit_error[1], bit1);
        assert_eq!(exact.output_error, out_err);
    }

    #[test]
    fn width_mismatch_is_reported() {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 3);
        let profile = InputProfile::<f64>::uniform(2);
        assert!(exact_error_analysis(&chain, &profile).is_err());
    }
}
