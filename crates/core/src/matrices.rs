//! The M, K, L row vectors and the input probability matrix (IPM).

use std::fmt;

use sealpaa_cells::{FaInput, TruthTable};
use sealpaa_num::Prob;

use crate::carry::CarryState;
use crate::ops::OpCounts;

/// The three constant 0/1 row vectors the proposed method needs per cell
/// (paper Sec. 4.2, Table 5), *derived* from the cell's truth table:
///
/// * `M[i] = 1` iff row `i` is a success case **and** produces `Cout = 1`,
/// * `K[i] = 1` iff row `i` is a success case **and** produces `Cout = 0`,
/// * `L[i] = 1` iff row `i` is a success case.
///
/// A "success case" is a row on which the cell's `(sum, carry_out)` both
/// equal the accurate full adder's. By construction `M + K = L` elementwise
/// (every success row has a definite carry value), which the analysis exploits
/// as an invariant.
///
/// # Examples
///
/// ```
/// use sealpaa_cells::StandardCell;
/// use sealpaa_core::MklMatrices;
///
/// // Paper Table 5, first row.
/// let mkl = MklMatrices::from_truth_table(&StandardCell::Lpaa1.truth_table());
/// assert_eq!(mkl.m_bits(), [0, 0, 0, 1, 0, 1, 1, 1]);
/// assert_eq!(mkl.k_bits(), [1, 1, 0, 0, 0, 0, 0, 0]);
/// assert_eq!(mkl.l_bits(), [1, 1, 0, 1, 0, 1, 1, 1]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MklMatrices {
    m: [bool; 8],
    k: [bool; 8],
    l: [bool; 8],
    s1: [bool; 8],
    s0: [bool; 8],
}

impl MklMatrices {
    /// Derives the matrices from a cell's truth table (paper Sec. 4.2,
    /// steps 1–3). Also derives the sum-bit selectors `S1`/`S0` (success
    /// rows split by the sum value), which the paper notes can evaluate
    /// "the probability of the output sum bits … using a similar matrices
    /// based approach".
    pub fn from_truth_table(table: &TruthTable) -> Self {
        let accurate = TruthTable::accurate();
        let mut m = [false; 8];
        let mut k = [false; 8];
        let mut l = [false; 8];
        let mut s1 = [false; 8];
        let mut s0 = [false; 8];
        for input in FaInput::all() {
            let i = input.index();
            let out = table.eval(input);
            let success = out == accurate.eval(input);
            l[i] = success;
            m[i] = success && out.carry_out;
            k[i] = success && !out.carry_out;
            s1[i] = success && out.sum;
            s0[i] = success && !out.sum;
        }
        MklMatrices { m, k, l, s1, s0 }
    }

    /// The M vector (`Cout = 1 ∩ Succ` selector).
    pub fn m(&self) -> &[bool; 8] {
        &self.m
    }

    /// The K vector (`Cout = 0 ∩ Succ` selector).
    pub fn k(&self) -> &[bool; 8] {
        &self.k
    }

    /// The L vector (`Succ` selector).
    pub fn l(&self) -> &[bool; 8] {
        &self.l
    }

    /// The S1 vector (`Sum = 1 ∩ Succ` selector).
    pub fn s1(&self) -> &[bool; 8] {
        &self.s1
    }

    /// The S0 vector (`Sum = 0 ∩ Succ` selector).
    pub fn s0(&self) -> &[bool; 8] {
        &self.s0
    }

    /// The M vector as `0`/`1` integers, in paper Table 5's notation.
    pub fn m_bits(&self) -> [u8; 8] {
        self.m.map(u8::from)
    }

    /// The K vector as `0`/`1` integers.
    pub fn k_bits(&self) -> [u8; 8] {
        self.k.map(u8::from)
    }

    /// The L vector as `0`/`1` integers.
    pub fn l_bits(&self) -> [u8; 8] {
        self.l.map(u8::from)
    }
}

impl fmt::Display for MklMatrices {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "M={:?} K={:?} L={:?}",
            self.m_bits(),
            self.k_bits(),
            self.l_bits()
        )
    }
}

/// The per-stage *input probability matrix* (paper Eq. 10): the probability
/// of each of the 8 truth-table rows occurring **jointly with success of all
/// previous stages**, i.e. entry `i = (A≪2)|(B≪1)|C` is
/// `P(A-term) · P(B-term) · P(C-term ∩ Succ)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ipm<T> {
    entries: [T; 8],
}

impl<T: Prob> Ipm<T> {
    /// Builds the IPM for one stage from the operand-bit probabilities and
    /// the success-conditioned carry state (paper Sec. 4.2, step 4).
    ///
    /// `ops` accumulates the exact multiplication/complement counts used
    /// (two multiplications per entry; the two operand complements).
    pub fn build(pa: &T, pb: &T, carry: &CarryState<T>, ops: &mut OpCounts) -> Self {
        let na = pa.complement();
        let nb = pb.complement();
        ops.complements += 2;
        let a_terms = [&na, pa];
        let b_terms = [&nb, pb];
        let c_terms = [carry.p_not_carry_and_success(), carry.p_carry_and_success()];
        let entries = std::array::from_fn(|i| {
            let a = a_terms[(i >> 2) & 1];
            let b = b_terms[(i >> 1) & 1];
            let c = c_terms[i & 1];
            ops.multiplications += 2;
            a.clone() * b.clone() * c.clone()
        });
        Ipm { entries }
    }

    /// Borrows the 8 entries in row-index order.
    pub fn entries(&self) -> &[T; 8] {
        &self.entries
    }

    /// Dot product with a 0/1 selector vector (paper Eq. 11/12). Since the
    /// selector entries are binary, only additions are incurred.
    pub fn dot(&self, selector: &[bool; 8], ops: &mut OpCounts) -> T {
        let mut acc: Option<T> = None;
        for (entry, &sel) in self.entries.iter().zip(selector) {
            if sel {
                acc = Some(match acc {
                    None => entry.clone(),
                    Some(total) => {
                        ops.additions += 1;
                        total + entry.clone()
                    }
                });
            }
        }
        acc.unwrap_or_else(T::zero)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sealpaa_cells::StandardCell;

    /// Paper Table 5, transcribed verbatim. The library must *derive* these
    /// from the Table 1 truth tables.
    type PaperRow = (StandardCell, [u8; 8], [u8; 8], [u8; 8]);
    const TABLE_5: [PaperRow; 7] = [
        (
            StandardCell::Lpaa1,
            [0, 0, 0, 1, 0, 1, 1, 1],
            [1, 1, 0, 0, 0, 0, 0, 0],
            [1, 1, 0, 1, 0, 1, 1, 1],
        ),
        (
            StandardCell::Lpaa2,
            [0, 0, 0, 1, 0, 1, 1, 0],
            [0, 1, 1, 0, 1, 0, 0, 0],
            [0, 1, 1, 1, 1, 1, 1, 0],
        ),
        (
            StandardCell::Lpaa3,
            [0, 0, 0, 1, 0, 1, 1, 0],
            [0, 1, 0, 0, 1, 0, 0, 0],
            [0, 1, 0, 1, 1, 1, 1, 0],
        ),
        (
            StandardCell::Lpaa4,
            [0, 0, 0, 0, 0, 1, 1, 1],
            [1, 1, 0, 0, 0, 0, 0, 0],
            [1, 1, 0, 0, 0, 1, 1, 1],
        ),
        (
            StandardCell::Lpaa5,
            [0, 0, 0, 0, 0, 1, 0, 1],
            [1, 0, 1, 0, 0, 0, 0, 0],
            [1, 0, 1, 0, 0, 1, 0, 1],
        ),
        (
            StandardCell::Lpaa6,
            [0, 0, 0, 1, 0, 1, 0, 1],
            [1, 0, 1, 0, 1, 0, 0, 0],
            [1, 0, 1, 1, 1, 1, 0, 1],
        ),
        (
            StandardCell::Lpaa7,
            [0, 0, 0, 0, 0, 0, 1, 1],
            [1, 1, 1, 0, 1, 0, 0, 0],
            [1, 1, 1, 0, 1, 0, 1, 1],
        ),
    ];

    #[test]
    fn derivation_reproduces_paper_table_5() {
        for (cell, m, k, l) in TABLE_5 {
            let mkl = MklMatrices::from_truth_table(&cell.truth_table());
            assert_eq!(mkl.m_bits(), m, "M of {cell}");
            assert_eq!(mkl.k_bits(), k, "K of {cell}");
            assert_eq!(mkl.l_bits(), l, "L of {cell}");
        }
    }

    #[test]
    fn s1_plus_s0_equals_l_for_every_cell() {
        for cell in StandardCell::ALL {
            let mkl = MklMatrices::from_truth_table(&cell.truth_table());
            for i in 0..8 {
                assert_eq!(
                    mkl.s1()[i] as u8 + mkl.s0()[i] as u8,
                    mkl.l()[i] as u8,
                    "{cell} row {i}"
                );
            }
        }
    }

    #[test]
    fn s1_selects_success_rows_with_sum_one() {
        // LPAA 1 success rows: 0,1,3,5,6,7; sum=1 on rows 1 and 7 only.
        let mkl = MklMatrices::from_truth_table(&StandardCell::Lpaa1.truth_table());
        assert_eq!(mkl.s1().map(u8::from), [0, 1, 0, 0, 0, 0, 0, 1]);
    }

    #[test]
    fn m_plus_k_equals_l_for_every_cell() {
        for cell in StandardCell::ALL {
            let mkl = MklMatrices::from_truth_table(&cell.truth_table());
            for i in 0..8 {
                assert_eq!(
                    mkl.m()[i] as u8 + mkl.k()[i] as u8,
                    mkl.l()[i] as u8,
                    "{cell} row {i}"
                );
            }
        }
    }

    #[test]
    fn accurate_cell_selects_every_row() {
        let mkl = MklMatrices::from_truth_table(&TruthTable::accurate());
        assert_eq!(mkl.l_bits(), [1; 8]);
        // Accurate carry-out is 1 on rows 3, 5, 6, 7 (majority function).
        assert_eq!(mkl.m_bits(), [0, 0, 0, 1, 0, 1, 1, 1]);
        assert_eq!(mkl.k_bits(), [1, 1, 1, 0, 1, 0, 0, 0]);
    }

    #[test]
    fn ipm_entries_sum_to_carry_mass() {
        // Σ IPM = P(Succ so far): the operand terms sum to 1.
        let mut ops = OpCounts::default();
        let carry = CarryState::new(0.3, 0.45);
        let ipm = Ipm::build(&0.7, &0.2, &carry, &mut ops);
        let total: f64 = ipm.entries().iter().sum();
        assert!((total - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ipm_matches_paper_table_4_stage_0() {
        // Stage 0 of the paper's worked example: P(A)=0.9, P(B)=0.8,
        // P(Cin)=0.5 → P(C̄next ∩ S) = 0.02, P(Cnext ∩ S) = 0.85.
        let mut ops = OpCounts::default();
        let carry = CarryState::initial(&0.5);
        let ipm = Ipm::build(&0.9, &0.8, &carry, &mut ops);
        let mkl = MklMatrices::from_truth_table(&StandardCell::Lpaa1.truth_table());
        let c0 = ipm.dot(mkl.k(), &mut ops);
        let c1 = ipm.dot(mkl.m(), &mut ops);
        assert!((c0 - 0.02).abs() < 1e-12, "got {c0}");
        assert!((c1 - 0.85).abs() < 1e-12, "got {c1}");
    }

    #[test]
    fn dot_with_empty_selector_is_zero() {
        let mut ops = OpCounts::default();
        let carry = CarryState::initial(&0.5);
        let ipm = Ipm::build(&0.5, &0.5, &carry, &mut ops);
        assert_eq!(ipm.dot(&[false; 8], &mut ops), 0.0);
    }

    #[test]
    fn op_counting_is_exact() {
        let mut ops = OpCounts::default();
        let carry = CarryState::initial(&0.5);
        let ipm = Ipm::build(&0.5, &0.5, &carry, &mut ops);
        assert_eq!(ops.multiplications, 16);
        assert_eq!(ops.complements, 2);
        let _ = ipm.dot(&[true; 8], &mut ops);
        assert_eq!(ops.additions, 7);
    }
}
