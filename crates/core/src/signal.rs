//! Unconditioned signal probabilities through the approximate chain.
//!
//! The paper propagates *success-conditioned* carry probabilities because it
//! targets the error probability. A separate, equally cheap recursion gives
//! the plain signal probabilities `P(carry_i = 1)` and `P(sum_i = 1)` of the
//! *approximate* hardware itself (the paper notes "the probability of the
//! output sum bits can also be evaluated using a similar matrices based
//! approach"). These are useful on their own, e.g. for switching-activity /
//! power estimation of the approximate datapath.

use sealpaa_cells::{AdderChain, FaInput, InputProfile};
use sealpaa_num::Prob;

use crate::analyzer::AnalyzeError;

/// Signal probabilities of every sum bit and carry of an approximate chain.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalAnalysis<T> {
    /// `carry[i]` = `P(carry into stage i = 1)` for `i` in `0..=width`;
    /// entry `0` is the external carry-in, entry `width` the final carry-out.
    pub carry: Vec<T>,
    /// `sum[i]` = `P(sum bit i = 1)` for `i` in `0..width`.
    pub sum: Vec<T>,
}

/// Propagates unconditioned signal probabilities through the approximate
/// chain: because all input bits are independent, the carry is a Markov
/// chain and one pass suffices.
///
/// # Errors
///
/// Returns [`AnalyzeError::WidthMismatch`] if `profile` does not cover
/// exactly `chain.width()` bits.
///
/// # Examples
///
/// ```
/// use sealpaa_cells::{AdderChain, InputProfile, StandardCell};
/// use sealpaa_core::signal_probabilities;
///
/// let chain = AdderChain::uniform(StandardCell::Accurate.cell(), 8);
/// let signals = signal_probabilities(&chain, &InputProfile::uniform(8))?;
/// // A fair accurate adder keeps every signal perfectly balanced.
/// for p in signals.sum.iter().chain(&signals.carry) {
///     assert!((p - 0.5f64).abs() < 1e-12);
/// }
/// # Ok::<(), sealpaa_core::AnalyzeError>(())
/// ```
pub fn signal_probabilities<T: Prob>(
    chain: &AdderChain,
    profile: &InputProfile<T>,
) -> Result<SignalAnalysis<T>, AnalyzeError> {
    if chain.width() != profile.width() {
        return Err(AnalyzeError::WidthMismatch {
            chain: chain.width(),
            profile: profile.width(),
        });
    }
    let mut carry = vec![profile.p_cin().clone()];
    let mut sum = Vec::with_capacity(chain.width());
    for (i, cell) in chain.iter().enumerate() {
        let p_carry = carry[i].clone();
        let mut p_sum_one = T::zero();
        let mut p_carry_one = T::zero();
        for input in FaInput::all() {
            let pa = if input.a {
                profile.pa(i).clone()
            } else {
                profile.pa(i).complement()
            };
            let pb = if input.b {
                profile.pb(i).clone()
            } else {
                profile.pb(i).complement()
            };
            let pc = if input.carry_in {
                p_carry.clone()
            } else {
                p_carry.complement()
            };
            let row = pa * pb * pc;
            let out = cell.truth_table().eval(input);
            if out.sum {
                p_sum_one = p_sum_one + row.clone();
            }
            if out.carry_out {
                p_carry_one = p_carry_one + row;
            }
        }
        sum.push(p_sum_one);
        carry.push(p_carry_one);
    }
    Ok(SignalAnalysis { carry, sum })
}

/// The success-conditioned sum-bit probabilities the paper sketches at the
/// end of Sec. 4.2: `result[i] = P(sum_i = 1 ∩ Succ through stage i)`,
/// computed as `IPM_i · S1` with the derived S1 selector.
///
/// Dividing by the prefix success (`Analysis::prefix_success`) conditions on
/// correctness: `P(sum_i = 1 | no error so far)`.
///
/// # Errors
///
/// Returns [`AnalyzeError::WidthMismatch`] if `profile` does not cover
/// exactly `chain.width()` bits.
///
/// # Examples
///
/// ```
/// use sealpaa_cells::{AdderChain, InputProfile, StandardCell};
/// use sealpaa_core::success_sum_probabilities;
///
/// let chain = AdderChain::uniform(StandardCell::Accurate.cell(), 4);
/// let p = success_sum_probabilities(&chain, &InputProfile::<f64>::uniform(4))?;
/// // An exact adder at fair inputs: success is certain and sums balanced.
/// for v in p {
///     assert!((v - 0.5).abs() < 1e-12);
/// }
/// # Ok::<(), sealpaa_core::AnalyzeError>(())
/// ```
pub fn success_sum_probabilities<T: Prob>(
    chain: &AdderChain,
    profile: &InputProfile<T>,
) -> Result<Vec<T>, AnalyzeError> {
    use crate::carry::CarryState;
    use crate::matrices::{Ipm, MklMatrices};
    use crate::ops::OpCounts;

    if chain.width() != profile.width() {
        return Err(AnalyzeError::WidthMismatch {
            chain: chain.width(),
            profile: profile.width(),
        });
    }
    let mut ops = OpCounts::default();
    let mut carry = CarryState::initial(profile.p_cin());
    let mut out = Vec::with_capacity(chain.width());
    for (i, cell) in chain.iter().enumerate() {
        let mkl = MklMatrices::from_truth_table(cell.truth_table());
        let ipm = Ipm::build(profile.pa(i), profile.pb(i), &carry, &mut ops);
        out.push(ipm.dot(mkl.s1(), &mut ops));
        carry = CarryState::new(ipm.dot(mkl.k(), &mut ops), ipm.dot(mkl.m(), &mut ops));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sealpaa_cells::StandardCell;
    use sealpaa_num::Rational;

    #[test]
    fn accurate_uniform_signals_stay_balanced() {
        let chain = AdderChain::uniform(StandardCell::Accurate.cell(), 6);
        let profile = InputProfile::<Rational>::uniform(6);
        let s = signal_probabilities(&chain, &profile).expect("widths match");
        for p in s.sum.iter().chain(&s.carry) {
            assert_eq!(*p, Rational::from_ratio(1, 2));
        }
    }

    #[test]
    fn lpaa5_signals_are_operand_pass_through() {
        // LPAA 5: sum = B, carry_out = A, so the signal probabilities simply
        // copy the operand probabilities.
        let chain = AdderChain::uniform(StandardCell::Lpaa5.cell(), 3);
        let profile = InputProfile::new(vec![0.2, 0.3, 0.4], vec![0.6, 0.7, 0.8], 0.9)
            .expect("valid profile");
        let s = signal_probabilities(&chain, &profile).expect("widths match");
        for i in 0..3 {
            assert!((s.sum[i] - profile.pb(i)).abs() < 1e-12, "sum {i}");
            assert!((s.carry[i + 1] - profile.pa(i)).abs() < 1e-12, "carry {i}");
        }
        assert_eq!(s.carry[0], 0.9);
    }

    #[test]
    fn all_zero_inputs_give_deterministic_signals() {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 4);
        let profile = InputProfile::<Rational>::constant(4, Rational::zero());
        let s = signal_probabilities(&chain, &profile).expect("widths match");
        // LPAA 1 on (0,0,0) outputs (0,0): everything stays 0 surely.
        for p in s.sum.iter().chain(&s.carry) {
            assert_eq!(*p, Rational::zero());
        }
    }

    #[test]
    fn signals_match_exhaustive_enumeration_2bit() {
        // Brute-force reference on a 2-bit LPAA 4 chain.
        let chain = AdderChain::uniform(StandardCell::Lpaa4.cell(), 2);
        let profile = InputProfile::<Rational>::new(
            vec![Rational::from_ratio(1, 4), Rational::from_ratio(2, 3)],
            vec![Rational::from_ratio(3, 5), Rational::from_ratio(1, 7)],
            Rational::from_ratio(1, 2),
        )
        .expect("valid profile");
        let s = signal_probabilities(&chain, &profile).expect("widths match");

        let mut sum0 = Rational::zero();
        let mut sum1 = Rational::zero();
        let mut cout = Rational::zero();
        for a in 0..4u64 {
            for b in 0..4u64 {
                for cin in [false, true] {
                    let w = profile.assignment_probability(a, b, cin);
                    let r = chain.add(a, b, cin);
                    if r.sum_bits() & 1 == 1 {
                        sum0 = sum0 + w.clone();
                    }
                    if r.sum_bits() & 2 == 2 {
                        sum1 = sum1 + w.clone();
                    }
                    if r.carry_out() {
                        cout = cout + w;
                    }
                }
            }
        }
        assert_eq!(s.sum[0], sum0);
        assert_eq!(s.sum[1], sum1);
        assert_eq!(s.carry[2], cout);
    }

    #[test]
    fn width_mismatch_is_reported() {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 2);
        let profile = InputProfile::<f64>::uniform(3);
        assert!(signal_probabilities(&chain, &profile).is_err());
        assert!(success_sum_probabilities(&chain, &profile).is_err());
    }

    #[test]
    fn success_sum_matches_enumeration() {
        // P(sum_i = 1 ∩ no stage erred through stage i), brute-forced.
        let chain = AdderChain::uniform(StandardCell::Lpaa6.cell(), 3);
        let profile = InputProfile::<Rational>::constant(3, Rational::from_ratio(2, 5));
        let got = success_sum_probabilities(&chain, &profile).expect("widths match");

        let accurate = sealpaa_cells::TruthTable::accurate();
        let mut expect = vec![Rational::zero(); 3];
        for a in 0..8u64 {
            for b in 0..8u64 {
                for cin in [false, true] {
                    let w = profile.assignment_probability(a, b, cin);
                    // Walk the accurate carry chain, noting per-stage success
                    // and the approximate sum bit.
                    let mut carry = cin;
                    let mut ok = true;
                    for i in 0..3 {
                        let input = FaInput::new((a >> i) & 1 == 1, (b >> i) & 1 == 1, carry);
                        let out = chain.stage(i).truth_table().eval(input);
                        ok = ok && out == accurate.eval(input);
                        if ok && out.sum {
                            expect[i] = expect[i].clone() + w.clone();
                        }
                        if !ok {
                            break;
                        }
                        carry = accurate.eval(input).carry_out;
                    }
                }
            }
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn success_sum_bounded_by_prefix_success() {
        let chain = AdderChain::uniform(StandardCell::Lpaa4.cell(), 5);
        let profile = InputProfile::<Rational>::constant(5, Rational::from_ratio(1, 3));
        let sums = success_sum_probabilities(&chain, &profile).expect("widths match");
        let analysis = crate::analyzer::analyze(&chain, &profile).expect("widths match");
        for (i, s) in sums.iter().enumerate() {
            assert!(*s <= analysis.prefix_success(i), "stage {i}");
        }
    }
}
