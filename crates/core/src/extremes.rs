//! Exact worst-case error analysis — an extension beyond the paper.
//!
//! Statistical error probability (the paper's metric) and worst-case error
//! bound different things: an application with a hard tolerance needs the
//! largest error the adder can *ever* produce, over all inputs. Because the
//! signed error distance decomposes per stage over the joint carry state,
//! its exact minimum and maximum are computable by an O(N) DP — no
//! enumeration, any width — together with *witness* operands that achieve
//! them (reconstructed by backtracking the DP).

use sealpaa_cells::{AdderChain, FaInput, TruthTable};

use crate::analyzer::AnalyzeError;

/// Concrete operands achieving an extreme error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Witness {
    /// Operand A.
    pub a: u64,
    /// Operand B.
    pub b: u64,
    /// Carry-in.
    pub carry_in: bool,
}

/// The exact error-distance extremes of a chain, with witnesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorstCaseError {
    /// The largest (most positive) achievable `approx − exact`.
    pub max_error: i128,
    /// Operands achieving `max_error`.
    pub max_witness: Witness,
    /// The smallest (most negative) achievable `approx − exact`.
    pub min_error: i128,
    /// Operands achieving `min_error`.
    pub min_witness: Witness,
}

impl WorstCaseError {
    /// The worst absolute error the adder can ever produce.
    pub fn max_absolute_error(&self) -> u128 {
        self.max_error
            .unsigned_abs()
            .max(self.min_error.unsigned_abs())
    }
}

/// One DP cell: the best partial error reachable in a joint carry state,
/// plus the backtracking link (previous state and the stage's input bits).
#[derive(Debug, Clone, Copy)]
struct Cell {
    parent: usize,
    a: bool,
    b: bool,
}

/// Computes the exact minimum and maximum signed error distance of the
/// chain over **all** inputs, with witnesses.
///
/// # Errors
///
/// Returns [`AnalyzeError::WidthMismatch`] if `chain.width() > 63` (witness
/// operands are reconstructed into `u64`).
///
/// # Examples
///
/// ```
/// use sealpaa_cells::{AdderChain, StandardCell};
/// use sealpaa_core::worst_case_error;
///
/// let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 8);
/// let wc = worst_case_error(&chain)?;
/// // The witnesses really do produce the claimed extremes.
/// let d = chain
///     .add(wc.max_witness.a, wc.max_witness.b, wc.max_witness.carry_in)
///     .error_distance(chain.accurate_sum(
///         wc.max_witness.a,
///         wc.max_witness.b,
///         wc.max_witness.carry_in,
///     ));
/// assert_eq!(d as i128, wc.max_error);
/// # Ok::<(), sealpaa_core::AnalyzeError>(())
/// ```
pub fn worst_case_error(chain: &AdderChain) -> Result<WorstCaseError, AnalyzeError> {
    let width = chain.width();
    if width > 63 {
        // Reuse the width-mismatch error shape: the chain exceeds what a
        // u64 witness can encode.
        return Err(AnalyzeError::WidthMismatch {
            chain: width,
            profile: 63,
        });
    }
    let accurate = TruthTable::accurate();

    // states: (approx carry) | (accurate carry) << 1; two runs, one
    // maximizing and one minimizing.
    let run = |maximize: bool| -> (i128, Witness) {
        let bad = if maximize { i128::MIN } else { i128::MAX };
        let better = |a: i128, b: i128| if maximize { a > b } else { a < b };
        // Per-stage DP tables for backtracking: table[stage][state].
        let mut tables: Vec<[Option<Cell>; 4]> = Vec::with_capacity(width);
        // Initial: cin = 0 → state 00; cin = 1 → state 11.
        let mut current: [i128; 4] = [bad; 4];
        current[0b00] = 0;
        current[0b11] = 0;
        for (i, cell) in chain.iter().enumerate() {
            let mut next: [i128; 4] = [bad; 4];
            let mut links: [Option<Cell>; 4] = [None; 4];
            for (s, &value) in current.iter().enumerate() {
                if value == bad {
                    continue;
                }
                let c_approx = s & 1 == 1;
                let c_acc = s & 2 == 2;
                for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
                    let approx_out = cell.truth_table().eval(FaInput::new(a, b, c_approx));
                    let acc_out = accurate.eval(FaInput::new(a, b, c_acc));
                    let dv = ((approx_out.sum as i128) - (acc_out.sum as i128)) << i;
                    let target =
                        (approx_out.carry_out as usize) | (acc_out.carry_out as usize) << 1;
                    let candidate = value + dv;
                    if next[target] == bad || better(candidate, next[target]) {
                        next[target] = candidate;
                        links[target] = Some(Cell { parent: s, a, b });
                    }
                }
            }
            tables.push(links);
            current = next;
        }
        // Fold in the final carry discrepancy and pick the best end state.
        let carry_weight = 1i128 << width;
        let mut best_state = usize::MAX;
        let mut best_value = bad;
        for (s, &value) in current.iter().enumerate() {
            if value == bad {
                continue;
            }
            let c_approx = s & 1 == 1;
            let c_acc = s & 2 == 2;
            let dc = (c_approx as i128 - c_acc as i128) * carry_weight;
            let total = value + dc;
            if best_state == usize::MAX || better(total, best_value) {
                best_state = s;
                best_value = total;
            }
        }
        // Backtrack the witness.
        let mut a = 0u64;
        let mut b = 0u64;
        let mut state = best_state;
        for i in (0..width).rev() {
            let link = tables[i][state].expect("reachable states have backtracking links");
            if link.a {
                a |= 1 << i;
            }
            if link.b {
                b |= 1 << i;
            }
            state = link.parent;
        }
        // The initial state encodes the carry-in (00 → 0, 11 → 1).
        let carry_in = state == 0b11;
        (best_value, Witness { a, b, carry_in })
    };

    let (max_error, max_witness) = run(true);
    let (min_error, min_witness) = run(false);
    Ok(WorstCaseError {
        max_error,
        max_witness,
        min_error,
        min_witness,
    })
}

/// Convenience: the worst absolute error *relative to the output range*
/// (`2^(N+1) − 1`), a width-normalized severity score in `[0, 1]`.
///
/// # Errors
///
/// Same conditions as [`worst_case_error`].
pub fn worst_case_relative_error(chain: &AdderChain) -> Result<f64, AnalyzeError> {
    let wc = worst_case_error(chain)?;
    let range = (1u128 << (chain.width() + 1)) - 1;
    Ok(wc.max_absolute_error() as f64 / range as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::error_distribution;
    use sealpaa_cells::{InputProfile, StandardCell};
    use sealpaa_num::Rational;

    fn verify_witness(chain: &AdderChain, w: Witness, expect: i128) {
        let d = chain
            .add(w.a, w.b, w.carry_in)
            .error_distance(chain.accurate_sum(w.a, w.b, w.carry_in));
        assert_eq!(
            d as i128, expect,
            "witness a={:#x} b={:#x} cin={}",
            w.a, w.b, w.carry_in
        );
    }

    #[test]
    fn extremes_match_distribution_support_for_all_cells() {
        for cell in StandardCell::APPROXIMATE {
            let chain = AdderChain::uniform(cell.cell(), 5);
            let wc = worst_case_error(&chain).expect("width ok");
            // Every input has positive probability at p = 1/2, so the PMF
            // support's extremes are the true extremes.
            let dist = error_distribution(&chain, &InputProfile::<Rational>::uniform(5))
                .expect("width ok");
            let d_min = dist.pmf.first().expect("non-empty").0 as i128;
            let d_max = dist.pmf.last().expect("non-empty").0 as i128;
            assert_eq!(wc.min_error, d_min, "{cell} min");
            assert_eq!(wc.max_error, d_max, "{cell} max");
        }
    }

    #[test]
    fn witnesses_reproduce_the_extremes() {
        for cell in StandardCell::APPROXIMATE {
            let chain = AdderChain::uniform(cell.cell(), 12);
            let wc = worst_case_error(&chain).expect("width ok");
            verify_witness(&chain, wc.max_witness, wc.max_error);
            verify_witness(&chain, wc.min_witness, wc.min_error);
        }
    }

    #[test]
    fn hybrid_chain_witnesses_hold() {
        let chain = AdderChain::from_stages(vec![
            StandardCell::Lpaa6.cell(),
            StandardCell::Lpaa5.cell(),
            StandardCell::Accurate.cell(),
            StandardCell::Lpaa2.cell(),
            StandardCell::Lpaa7.cell(),
        ]);
        let wc = worst_case_error(&chain).expect("width ok");
        verify_witness(&chain, wc.max_witness, wc.max_error);
        verify_witness(&chain, wc.min_witness, wc.min_error);
        assert!(wc.max_error >= 0 && wc.min_error <= 0);
    }

    #[test]
    fn accurate_chain_has_zero_extremes() {
        let chain = AdderChain::uniform(StandardCell::Accurate.cell(), 16);
        let wc = worst_case_error(&chain).expect("width ok");
        assert_eq!(wc.max_error, 0);
        assert_eq!(wc.min_error, 0);
        assert_eq!(wc.max_absolute_error(), 0);
    }

    #[test]
    fn wide_chains_are_linear_time() {
        // 60 bits would need 2^121 enumeration; the DP does it instantly.
        let chain = AdderChain::uniform(StandardCell::Lpaa5.cell(), 60);
        let wc = worst_case_error(&chain).expect("width ok");
        verify_witness(&chain, wc.max_witness, wc.max_error);
        assert!(wc.max_absolute_error() > 1 << 50);
    }

    #[test]
    fn relative_error_is_normalized() {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 8);
        let rel = worst_case_relative_error(&chain).expect("width ok");
        assert!((0.0..=1.0).contains(&rel));
        assert!(rel > 0.0);
    }

    #[test]
    fn oversized_width_rejected() {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 64);
        assert!(worst_case_error(&chain).is_err());
    }
}
