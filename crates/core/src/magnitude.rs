//! Analytical error-magnitude moments — an extension beyond the paper.
//!
//! The paper quantifies *whether* an approximate adder errs; error-resilient
//! applications usually also care *by how much* (mean error distance and its
//! variance drive PSNR in the image/video workloads the paper motivates
//! with). Both moments of the signed error distance
//!
//! ```text
//! D = approx(a, b, cin) − exact(a, b, cin)
//!   = Σ_i (sumᵃ_i − sumᵉ_i)·2^i + (coutᵃ − coutᵉ)·2^N
//! ```
//!
//! are computable *exactly* in one linear pass with the same joint-carry
//! Markov chain used by [`exact_error_analysis`](crate::exact_error_analysis):
//! per joint carry state we carry the probability mass, the first moment
//! `E[D_partial]`, and the second moment `E[D_partial²]` of the error
//! accumulated so far; each stage's sum-bit discrepancy contributes
//! `d·2^i` with `d ∈ {−1, 0, +1}`.

use sealpaa_cells::{AdderChain, FaInput, InputProfile, TruthTable};
use sealpaa_num::Prob;

use crate::analyzer::AnalyzeError;

/// Exact moments of the signed error distance of an approximate chain.
#[derive(Debug, Clone, PartialEq)]
pub struct MagnitudeAnalysis<T> {
    /// `E[D]` — the bias of the adder (signed; LPAA cells whose error rows
    /// overshoot and undershoot symmetrically have zero bias at symmetric
    /// inputs).
    pub mean_error_distance: T,
    /// `E[D²]` — the second raw moment; `√(E[D²])` is the RMS error
    /// distance.
    pub mean_squared_error_distance: T,
}

impl<T: Prob> MagnitudeAnalysis<T> {
    /// `Var[D] = E[D²] − E[D]²`.
    pub fn variance(&self) -> T {
        self.mean_squared_error_distance.clone()
            - self.mean_error_distance.clone() * self.mean_error_distance.clone()
    }

    /// Root-mean-square error distance, as `f64`.
    pub fn rms_error_distance(&self) -> f64 {
        self.mean_squared_error_distance.to_f64().max(0.0).sqrt()
    }
}

/// Per-state accumulator of the joint DP: probability mass and the first
/// two moments of the partial error distance.
#[derive(Clone)]
struct Moments<T> {
    mass: T,
    first: T,
    second: T,
}

impl<T: Prob> Moments<T> {
    fn zero() -> Self {
        Moments {
            mass: T::zero(),
            first: T::zero(),
            second: T::zero(),
        }
    }
}

/// Negates a value built from the non-negative [`Prob`] constructors.
fn neg<T: Prob>(value: T) -> T {
    T::zero() - value
}

/// Computes the exact first two moments of the signed error distance
/// `approx − exact` over the input distribution.
///
/// Works for any width and any [`Prob`] type: the per-stage weight `2^i` is
/// built by repeated doubling inside `T`, so `Rational` stays exact at any
/// width (with `f64`, widths beyond 53 bits round like any other `f64`
/// computation).
///
/// # Errors
///
/// Returns [`AnalyzeError::WidthMismatch`] if `profile` does not cover
/// exactly `chain.width()` bits.
///
/// # Examples
///
/// ```
/// use sealpaa_cells::{AdderChain, InputProfile, StandardCell};
/// use sealpaa_core::error_magnitude;
///
/// // LPAA 1's two error rows push the result up and down by 1 with equal
/// // probability at uniform inputs: zero bias, E[D²] = 1/4 for one stage.
/// let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 1);
/// let m = error_magnitude(&chain, &InputProfile::<f64>::uniform(1))?;
/// assert!(m.mean_error_distance.abs() < 1e-15);
/// assert!((m.mean_squared_error_distance - 0.25).abs() < 1e-15);
/// # Ok::<(), sealpaa_core::AnalyzeError>(())
/// ```
pub fn error_magnitude<T: Prob>(
    chain: &AdderChain,
    profile: &InputProfile<T>,
) -> Result<MagnitudeAnalysis<T>, AnalyzeError> {
    if chain.width() != profile.width() {
        return Err(AnalyzeError::WidthMismatch {
            chain: chain.width(),
            profile: profile.width(),
        });
    }
    let accurate = TruthTable::accurate();
    // Joint state: (approximate carry, accurate carry) ∈ 4.
    let mut states = vec![Moments::<T>::zero(); 4];
    let p_cin = profile.p_cin();
    states[0b11].mass = p_cin.clone();
    states[0b00].mass = p_cin.complement();

    let mut scale = T::one(); // 2^i, built by doubling
    for (i, cell) in chain.iter().enumerate() {
        let mut next = vec![Moments::<T>::zero(); 4];
        for s in 0..4usize {
            if states[s].mass.is_zero() && states[s].first.is_zero() && states[s].second.is_zero() {
                continue;
            }
            let c_approx = s & 1 == 1;
            let c_acc = s & 2 == 2;
            for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
                let pa = if a {
                    profile.pa(i).clone()
                } else {
                    profile.pa(i).complement()
                };
                let pb = if b {
                    profile.pb(i).clone()
                } else {
                    profile.pb(i).complement()
                };
                let w = pa * pb;
                if w.is_zero() {
                    continue;
                }
                let approx_out = cell.truth_table().eval(FaInput::new(a, b, c_approx));
                let acc_out = accurate.eval(FaInput::new(a, b, c_acc));
                let d = approx_out.sum as i8 - acc_out.sum as i8;
                let dv = match d {
                    0 => T::zero(),
                    1 => scale.clone(),
                    _ => neg(scale.clone()),
                };
                let target = (approx_out.carry_out as usize) | (acc_out.carry_out as usize) << 1;
                let src = &states[s];
                // D' = D + dv, so:
                //   E[1]      += w·m
                //   E[D']     += w·(F + dv·m)
                //   E[D'²]    += w·(S + 2·dv·F + dv²·m)
                let add_mass = w.clone() * src.mass.clone();
                let add_first = w.clone() * (src.first.clone() + dv.clone() * src.mass.clone());
                let two_dv = dv.clone() + dv.clone();
                let add_second = w
                    * (src.second.clone()
                        + two_dv * src.first.clone()
                        + dv.clone() * dv * src.mass.clone());
                next[target].mass = next[target].mass.clone() + add_mass;
                next[target].first = next[target].first.clone() + add_first;
                next[target].second = next[target].second.clone() + add_second;
            }
        }
        states = next;
        scale = scale.clone() + scale;
    }

    // The final carry-out discrepancy contributes ±2^N.
    let mut mean = T::zero();
    let mut second = T::zero();
    for (s, m) in states.iter().enumerate() {
        let c_approx = s & 1 == 1;
        let c_acc = s & 2 == 2;
        let dc = match (c_approx, c_acc) {
            (true, false) => scale.clone(),
            (false, true) => neg(scale.clone()),
            _ => T::zero(),
        };
        mean = mean + m.first.clone() + dc.clone() * m.mass.clone();
        let two_dc = dc.clone() + dc.clone();
        second =
            second + m.second.clone() + two_dc * m.first.clone() + dc.clone() * dc * m.mass.clone();
    }
    Ok(MagnitudeAnalysis {
        mean_error_distance: mean,
        mean_squared_error_distance: second,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sealpaa_cells::StandardCell;
    use sealpaa_num::Rational;

    /// Brute-force reference: weighted moments over all input combinations.
    fn brute_force(chain: &AdderChain, profile: &InputProfile<Rational>) -> (Rational, Rational) {
        let width = chain.width();
        let mut mean = Rational::zero();
        let mut second = Rational::zero();
        for a in 0..1u64 << width {
            for b in 0..1u64 << width {
                for cin in [false, true] {
                    let w = profile.assignment_probability(a, b, cin);
                    let d = chain
                        .add(a, b, cin)
                        .error_distance(chain.accurate_sum(a, b, cin));
                    let dv = Rational::from(d);
                    mean = mean + w.clone() * dv.clone();
                    second = second + w * dv.clone() * dv;
                }
            }
        }
        (mean, second)
    }

    #[test]
    fn moments_match_brute_force_for_all_cells() {
        for cell in StandardCell::APPROXIMATE {
            let chain = AdderChain::uniform(cell.cell(), 4);
            let profile = InputProfile::<Rational>::new(
                vec![
                    Rational::from_ratio(1, 3),
                    Rational::from_ratio(2, 5),
                    Rational::from_ratio(1, 2),
                    Rational::from_ratio(5, 7),
                ],
                vec![
                    Rational::from_ratio(4, 9),
                    Rational::from_ratio(1, 6),
                    Rational::from_ratio(3, 4),
                    Rational::from_ratio(2, 11),
                ],
                Rational::from_ratio(1, 5),
            )
            .expect("valid profile");
            let m = error_magnitude(&chain, &profile).expect("widths match");
            let (mean, second) = brute_force(&chain, &profile);
            assert_eq!(m.mean_error_distance, mean, "mean of {cell}");
            assert_eq!(
                m.mean_squared_error_distance, second,
                "second moment of {cell}"
            );
        }
    }

    #[test]
    fn hybrid_chain_moments_match_brute_force() {
        let chain = AdderChain::from_stages(vec![
            StandardCell::Lpaa6.cell(),
            StandardCell::Lpaa5.cell(),
            StandardCell::Accurate.cell(),
            StandardCell::Lpaa7.cell(),
        ]);
        let profile = InputProfile::<Rational>::constant(4, Rational::from_ratio(3, 8));
        let m = error_magnitude(&chain, &profile).expect("widths match");
        let (mean, second) = brute_force(&chain, &profile);
        assert_eq!(m.mean_error_distance, mean);
        assert_eq!(m.mean_squared_error_distance, second);
    }

    #[test]
    fn accurate_chain_has_zero_moments() {
        let chain = AdderChain::uniform(StandardCell::Accurate.cell(), 12);
        let profile = InputProfile::<Rational>::constant(12, Rational::from_ratio(2, 3));
        let m = error_magnitude(&chain, &profile).expect("widths match");
        assert!(m.mean_error_distance.is_zero());
        assert!(m.mean_squared_error_distance.is_zero());
        assert!(m.variance().is_zero());
        assert_eq!(m.rms_error_distance(), 0.0);
    }

    #[test]
    fn single_stage_lpaa1_moments() {
        // Errors: (0,1,0) → +1 (carry set) … actually D = +1: output 2 vs 1;
        // (1,0,0) → −1: output 0 vs 1. Both weight 1/8 at uniform inputs.
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 1);
        let profile = InputProfile::<Rational>::uniform(1);
        let m = error_magnitude(&chain, &profile).expect("widths match");
        assert_eq!(m.mean_error_distance, Rational::zero());
        assert_eq!(m.mean_squared_error_distance, Rational::from_ratio(1, 4));
        assert_eq!(m.variance(), Rational::from_ratio(1, 4));
        assert!((m.rms_error_distance() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn variance_is_never_negative() {
        for cell in StandardCell::APPROXIMATE {
            let chain = AdderChain::uniform(cell.cell(), 6);
            let profile = InputProfile::<Rational>::constant(6, Rational::from_ratio(1, 10));
            let m = error_magnitude(&chain, &profile).expect("widths match");
            assert!(m.variance() >= Rational::zero(), "{cell}");
        }
    }

    #[test]
    fn wide_chain_runs_exactly_in_rationals() {
        // 2^i handling must not overflow at large widths.
        let chain = AdderChain::uniform(StandardCell::Lpaa7.cell(), 96);
        let profile = InputProfile::<Rational>::constant(96, Rational::from_ratio(1, 7));
        let m = error_magnitude(&chain, &profile).expect("widths match");
        assert!(m.variance() >= Rational::zero());
        assert!(!m.mean_squared_error_distance.is_zero());
    }

    #[test]
    fn width_mismatch_is_reported() {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 2);
        let profile = InputProfile::<f64>::uniform(3);
        assert!(error_magnitude(&chain, &profile).is_err());
    }
}
