//! The proposed recursive analysis (paper Algorithm 1).

use std::fmt;

use sealpaa_cells::{AdderChain, InputProfile, TruthTable};
use sealpaa_num::Prob;

use crate::carry::CarryState;
use crate::matrices::{Ipm, MklMatrices};
use crate::ops::OpCounts;

/// Errors produced by [`analyze`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeError {
    /// The input profile covers a different number of bits than the chain
    /// has stages.
    WidthMismatch {
        /// Number of stages in the adder chain.
        chain: usize,
        /// Number of bits in the input profile.
        profile: usize,
    },
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::WidthMismatch { chain, profile } => write!(
                f,
                "adder chain has {chain} stages but input profile covers {profile} bits"
            ),
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Clamps a probability to `[0, 1]`.
///
/// `P(Error) = 1 − P(Succ)` is exact in `Rational` mode, but in f64 the
/// subtraction can land at `-0.0` (or a hair outside the unit interval after
/// rounding). Folding that here means *every* consumer — CLI, server, gear,
/// datapath, explore — sees a well-formed probability, instead of each
/// call-site carrying its own clamp.
pub(crate) fn clamp_unit<T: Prob>(p: T) -> T {
    if p <= T::zero() {
        T::zero() // also folds f64 −0.0 to +0.0
    } else if p >= T::one() {
        T::one()
    } else {
        p
    }
}

/// The per-stage record of the recursion — one column of paper Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTrace<T> {
    /// Stage index (0 = LSB).
    pub stage: usize,
    /// `P(A_i = 1)` used at this stage.
    pub pa: T,
    /// `P(B_i = 1)` used at this stage.
    pub pb: T,
    /// Success-conditioned carry state *entering* the stage
    /// (`P(C_curr ∩ Succ)` rows of Table 4).
    pub carry_in: CarryState<T>,
    /// Success-conditioned carry state *leaving* the stage
    /// (`P(C_next ∩ Succ)` rows of Table 4; the paper marks the last stage's
    /// as "NR" but it is well-defined and cheap, so it is always recorded).
    pub carry_out: CarryState<T>,
    /// `P(Succ)` through this stage inclusive — equals `IPM · L` and, by the
    /// `M + K = L` invariant, also `carry_out.success_mass()`.
    pub success_through: T,
}

/// The result of running the proposed method on a chain: the final
/// success/error probability plus the full per-stage trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis<T> {
    stages: Vec<StageTrace<T>>,
    success: T,
}

impl<T: Prob> Analysis<T> {
    /// `P(Succ)` of the whole multi-bit adder (paper Eq. 8/12): the
    /// probability that every stage behaved exactly like an accurate full
    /// adder.
    pub fn success_probability(&self) -> T {
        self.success.clone()
    }

    /// `P(Error) = 1 − P(Succ)` (paper Eq. 9): the probability that at least
    /// one stage deviates from the accurate adder along the accurate carry
    /// chain. Clamped to `[0, 1]` (in f64 the subtraction can produce `-0.0`
    /// or stray just outside the unit interval).
    pub fn error_probability(&self) -> T {
        clamp_unit(self.success.complement())
    }

    /// The per-stage trace, LSB first (paper Table 4).
    pub fn stages(&self) -> &[StageTrace<T>] {
        &self.stages
    }

    /// Number of analysed stages.
    pub fn width(&self) -> usize {
        self.stages.len()
    }

    /// `P(Succ)` through stage `i` inclusive — the success probability of
    /// the `i+1`-bit prefix of the adder (exposed so callers can study how
    /// error accumulates along the chain without re-running the analysis).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn prefix_success(&self, i: usize) -> T {
        self.stages[i].success_through.clone()
    }

    /// `P(Error)` of the `i+1`-bit prefix of the adder — the error
    /// probability a width-`i+1` truncation of the chain would report,
    /// clamped like [`error_probability`](Self::error_probability). One
    /// width-N analysis therefore answers a whole width sweep.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn prefix_error_probability(&self, i: usize) -> T {
        clamp_unit(self.stages[i].success_through.complement())
    }

    /// How much error probability each stage *introduces*:
    /// `contribution[i] = P(first deviation happens at stage i)`, i.e. the
    /// drop in success mass across stage `i`. The contributions sum to
    /// [`error_probability`](Self::error_probability), making this the
    /// natural tool for deciding which stages to harden (e.g. where to
    /// place accurate cells in a hybrid design).
    pub fn stage_error_contributions(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.stages.len());
        let mut prev = T::one();
        for stage in &self.stages {
            out.push(prev.clone() - stage.success_through.clone());
            prev = stage.success_through.clone();
        }
        out
    }
}

/// Runs the proposed method (paper Algorithm 1) on `chain` under `profile`.
///
/// The cost is a single O(N) pass: per stage, one 8-entry IPM build and
/// three binary dot products. Works for homogeneous and hybrid chains alike
/// because the M/K/L matrices are taken from each stage's own truth table.
///
/// # Errors
///
/// Returns [`AnalyzeError::WidthMismatch`] if `profile` does not cover
/// exactly `chain.width()` bits.
///
/// # Examples
///
/// ```
/// use sealpaa_cells::{AdderChain, InputProfile, StandardCell};
/// use sealpaa_core::analyze;
///
/// // The paper's Table 4 worked example: 4-bit LPAA 1.
/// let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 4);
/// let profile = InputProfile::new(
///     vec![0.9, 0.5, 0.4, 0.8],
///     vec![0.8, 0.7, 0.6, 0.9],
///     0.5,
/// )?;
/// let analysis = analyze(&chain, &profile)?;
/// assert!((analysis.success_probability() - 0.738476).abs() < 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn analyze<T: Prob>(
    chain: &AdderChain,
    profile: &InputProfile<T>,
) -> Result<Analysis<T>, AnalyzeError> {
    analyze_inner(chain, profile, &mut OpCounts::default())
}

/// Like [`analyze`], additionally returning the exact operation counts the
/// run incurred (for the paper's Table 8 resource discussion and the Fig. 1
/// computation-count comparison).
///
/// # Errors
///
/// Returns [`AnalyzeError::WidthMismatch`] if `profile` does not cover
/// exactly `chain.width()` bits.
pub fn analyze_instrumented<T: Prob>(
    chain: &AdderChain,
    profile: &InputProfile<T>,
) -> Result<(Analysis<T>, OpCounts), AnalyzeError> {
    let mut ops = OpCounts::default();
    let analysis = analyze_inner(chain, profile, &mut ops)?;
    Ok((analysis, ops))
}

fn analyze_inner<T: Prob>(
    chain: &AdderChain,
    profile: &InputProfile<T>,
    ops: &mut OpCounts,
) -> Result<Analysis<T>, AnalyzeError> {
    if chain.width() != profile.width() {
        return Err(AnalyzeError::WidthMismatch {
            chain: chain.width(),
            profile: profile.width(),
        });
    }
    let mut carry = CarryState::initial(profile.p_cin());
    ops.complements += 1;
    let mut stages = Vec::with_capacity(chain.width());
    let mut success = T::one();
    // Derive M/K/L once per distinct truth table (a chain mixes at most the
    // 8 standard cells, so a linear scan beats hashing).
    let mut mkl_cache: Vec<(&TruthTable, MklMatrices)> = Vec::new();
    for (i, cell) in chain.iter().enumerate() {
        let table = cell.truth_table();
        let mkl = match mkl_cache.iter().find(|(t, _)| *t == table) {
            Some((_, mkl)) => *mkl,
            None => {
                let mkl = MklMatrices::from_truth_table(table);
                mkl_cache.push((table, mkl));
                mkl
            }
        };
        let ipm = Ipm::build(profile.pa(i), profile.pb(i), &carry, ops);
        let carry_out = CarryState::new(ipm.dot(mkl.k(), ops), ipm.dot(mkl.m(), ops));
        success = ipm.dot(mkl.l(), ops);
        stages.push(StageTrace {
            stage: i,
            pa: profile.pa(i).clone(),
            pb: profile.pb(i).clone(),
            carry_in: carry.clone(),
            carry_out: carry_out.clone(),
            success_through: success.clone(),
        });
        carry = carry_out;
    }
    ops.complements += 1; // P(Error) = 1 − P(Succ)
    Ok(Analysis { stages, success })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sealpaa_cells::StandardCell;
    use sealpaa_num::Rational;

    fn table4_profile<T: Prob>() -> InputProfile<T> {
        InputProfile::new(
            vec![
                T::from_ratio(9, 10),
                T::from_ratio(5, 10),
                T::from_ratio(4, 10),
                T::from_ratio(8, 10),
            ],
            vec![
                T::from_ratio(8, 10),
                T::from_ratio(7, 10),
                T::from_ratio(6, 10),
                T::from_ratio(9, 10),
            ],
            T::from_ratio(1, 2),
        )
        .expect("valid profile")
    }

    /// Every number of paper Table 4, checked in exact arithmetic.
    #[test]
    fn table_4_worked_example_is_reproduced_exactly() {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 4);
        let analysis = analyze(&chain, &table4_profile::<Rational>()).expect("widths match");

        let expect_c0 = ["2/100", "1305/10000", "2064/10000"];
        let expect_c1 = ["85/100", "7295/10000", "58574/100000"];
        for (i, (c0, c1)) in expect_c0.iter().zip(&expect_c1).enumerate() {
            let out = &analysis.stages()[i].carry_out;
            let (n0, d0) = parse_ratio(c0);
            let (n1, d1) = parse_ratio(c1);
            assert_eq!(
                *out.p_not_carry_and_success(),
                Rational::from_ratio(n0, d0),
                "stage {i} C̄next"
            );
            assert_eq!(
                *out.p_carry_and_success(),
                Rational::from_ratio(n1, d1),
                "stage {i} Cnext"
            );
        }
        assert_eq!(
            analysis.success_probability(),
            Rational::from_ratio(738_476, 1_000_000)
        );
    }

    fn parse_ratio(s: &str) -> (i64, i64) {
        let (n, d) = s.split_once('/').expect("n/d");
        (n.parse().expect("num"), d.parse().expect("den"))
    }

    #[test]
    fn table_4_in_f64_matches_to_print_precision() {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 4);
        let analysis = analyze(&chain, &table4_profile::<f64>()).expect("widths match");
        assert!((analysis.success_probability() - 0.738476).abs() < 1e-9);
        assert!((analysis.error_probability() - 0.261524).abs() < 1e-9);
    }

    #[test]
    fn success_through_equals_carry_mass() {
        let chain = AdderChain::uniform(StandardCell::Lpaa3.cell(), 6);
        let profile = InputProfile::<Rational>::constant(6, Rational::from_ratio(3, 10));
        let analysis = analyze(&chain, &profile).expect("widths match");
        for stage in analysis.stages() {
            assert_eq!(
                stage.success_through,
                stage.carry_out.success_mass(),
                "stage {}",
                stage.stage
            );
        }
    }

    #[test]
    fn success_mass_is_monotonically_non_increasing() {
        let chain = AdderChain::uniform(StandardCell::Lpaa5.cell(), 10);
        let profile = InputProfile::constant(10, 0.35);
        let analysis = analyze(&chain, &profile).expect("widths match");
        let mut prev = 1.0f64;
        for stage in analysis.stages() {
            assert!(stage.success_through <= prev + 1e-15);
            prev = stage.success_through;
        }
    }

    #[test]
    fn accurate_chain_never_errs() {
        let chain = AdderChain::uniform(StandardCell::Accurate.cell(), 16);
        let profile = InputProfile::<Rational>::constant(16, Rational::from_ratio(1, 3));
        let analysis = analyze(&chain, &profile).expect("widths match");
        assert_eq!(analysis.error_probability(), Rational::zero());
        assert_eq!(analysis.success_probability(), Rational::one());
    }

    #[test]
    fn width_mismatch_is_reported() {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 4);
        let profile = InputProfile::<f64>::uniform(5);
        let err = analyze(&chain, &profile).unwrap_err();
        assert_eq!(
            err,
            AnalyzeError::WidthMismatch {
                chain: 4,
                profile: 5
            }
        );
        assert!(err.to_string().contains("4 stages"));
    }

    #[test]
    fn hybrid_chain_uses_per_stage_matrices() {
        // LPAA 5 at stage 0, accurate above: only stage 0 can err.
        let chain = AdderChain::lsb_approximate(
            StandardCell::Lpaa5.cell(),
            StandardCell::Accurate.cell(),
            1,
            4,
        );
        let profile = InputProfile::<Rational>::uniform(4);
        let analysis = analyze(&chain, &profile).expect("widths match");
        // LPAA 5 has 4 error rows of 8 → P(err) = 1/2 at uniform inputs.
        assert_eq!(analysis.error_probability(), Rational::from_ratio(1, 2));
        // All the loss happens at stage 0.
        assert_eq!(analysis.prefix_success(0), analysis.prefix_success(3));
    }

    #[test]
    fn instrumented_counts_scale_linearly() {
        let profile8 = InputProfile::<f64>::uniform(8);
        let profile16 = InputProfile::<f64>::uniform(16);
        let chain8 = AdderChain::uniform(StandardCell::Lpaa2.cell(), 8);
        let chain16 = AdderChain::uniform(StandardCell::Lpaa2.cell(), 16);
        let (_, ops8) = analyze_instrumented(&chain8, &profile8).expect("widths match");
        let (_, ops16) = analyze_instrumented(&chain16, &profile16).expect("widths match");
        // Doubling the width doubles the per-stage work exactly (the two
        // end-of-run complements are shared).
        assert_eq!(ops16.multiplications, 2 * ops8.multiplications);
        assert_eq!(ops16.additions, 2 * ops8.additions);
        assert_eq!(ops8.multiplications, 8 * 16);
    }

    #[test]
    fn stage_contributions_sum_to_error_probability() {
        let chain = AdderChain::from_stages(vec![
            StandardCell::Lpaa1.cell(),
            StandardCell::Accurate.cell(),
            StandardCell::Lpaa6.cell(),
            StandardCell::Lpaa2.cell(),
        ]);
        let profile = InputProfile::<Rational>::constant(4, Rational::from_ratio(2, 7));
        let analysis = analyze(&chain, &profile).expect("widths match");
        let contributions = analysis.stage_error_contributions();
        assert_eq!(contributions.len(), 4);
        // The accurate stage introduces exactly nothing.
        assert!(contributions[1].is_zero());
        let total = contributions
            .iter()
            .fold(Rational::zero(), |acc, c| acc + c.clone());
        assert_eq!(total, analysis.error_probability());
        for c in &contributions {
            assert!(*c >= Rational::zero());
        }
    }

    #[test]
    fn single_stage_error_equals_error_row_mass() {
        // For a 1-bit adder P(Error) is just the probability mass on the
        // error rows.
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 1);
        let profile = InputProfile::<Rational>::uniform(1);
        let analysis = analyze(&chain, &profile).expect("widths match");
        // 2 error rows of 8 equally likely → 1/4.
        assert_eq!(analysis.error_probability(), Rational::from_ratio(1, 4));
    }
}
