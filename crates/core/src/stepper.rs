//! Incremental, prefix-sharing analysis: the M/K/L recursion advanced one
//! stage at a time, with checkpoints and rewind.
//!
//! [`analyze`](crate::analyze) is a left-fold over [`CarryState`]: the state
//! after stage *i* depends only on the cells of stages `0..=i`. A
//! [`PrefixStepper`] exploits that by keeping the whole stack of per-depth
//! states, so design-space exploration can walk a tree of candidate cells
//! and pay **one** stage step per tree edge instead of a full O(N) pass per
//! leaf — `C^N` designs cost `Θ(Σ C^i) ≈ C^N` stage steps rather than
//! `N·C^N`.
//!
//! Each push performs *exactly* the operations [`analyze`](crate::analyze)
//! performs for that stage, in the same order, so the resulting success and
//! error probabilities are bit-identical to a fresh analysis of the same
//! prefix — in `f64` as well as in exact [`Rational`](sealpaa_num::Rational)
//! mode. The differential suite in `tests/incremental.rs` pins this.

use sealpaa_cells::{Cell, InputProfile, TruthTable};
use sealpaa_num::Prob;

use crate::analyzer::clamp_unit;
use crate::carry::CarryState;
use crate::matrices::{Ipm, MklMatrices};
use crate::ops::OpCounts;

/// One saved depth: the carry state after `d` stages and `P(Succ)` through
/// them (`T::one()` at depth 0).
#[derive(Debug, Clone, PartialEq)]
struct Checkpoint<T> {
    carry: CarryState<T>,
    success: T,
}

/// An incremental analysis cursor over the stages of an adder chain.
///
/// The stepper holds the [`CarryState`] after every prefix depth; [`push`]
/// advances one stage in O(1) (one 8-entry IPM build plus three dot
/// products), [`truncate`] rewinds to any shallower checkpoint without
/// recomputation. [`MklMatrices`] for distinct truth tables are derived once
/// and cached (a chain mixes at most the 8 standard cells).
///
/// [`push`]: PrefixStepper::push
/// [`truncate`]: PrefixStepper::truncate
///
/// # Examples
///
/// ```
/// use sealpaa_cells::{AdderChain, InputProfile, StandardCell};
/// use sealpaa_core::{analyze, PrefixStepper};
///
/// let profile = InputProfile::constant(4, 0.3);
/// let mut stepper = PrefixStepper::new(&profile);
/// for _ in 0..4 {
///     stepper.push_cell(&StandardCell::Lpaa1.cell());
/// }
/// let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 4);
/// let fresh = analyze(&chain, &profile)?;
/// assert_eq!(stepper.error_probability(), fresh.error_probability());
///
/// // Rewind two stages and widen differently: only the suffix is re-run.
/// stepper.truncate(2);
/// stepper.push_cell(&StandardCell::Accurate.cell());
/// assert_eq!(stepper.depth(), 3);
/// # Ok::<(), sealpaa_core::AnalyzeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PrefixStepper<'p, T: Prob> {
    profile: &'p InputProfile<T>,
    /// `states[d]` is the checkpoint after `d` stages; never empty.
    states: Vec<Checkpoint<T>>,
    ops: OpCounts,
    /// Per-distinct-truth-table M/K/L cache (linear scan; ≤ 8 entries in
    /// practice, far cheaper than a re-derivation).
    mkl_cache: Vec<(TruthTable, MklMatrices)>,
}

impl<'p, T: Prob> PrefixStepper<'p, T> {
    /// Opens a stepper at depth 0 (no stages analysed) for chains under
    /// `profile`. The profile's width bounds how deep the stepper can go.
    pub fn new(profile: &'p InputProfile<T>) -> Self {
        let mut ops = OpCounts::default();
        let carry = CarryState::initial(profile.p_cin());
        ops.complements += 1;
        PrefixStepper {
            profile,
            states: vec![Checkpoint {
                carry,
                success: T::one(),
            }],
            ops,
            mkl_cache: Vec::new(),
        }
    }

    /// Number of stages analysed so far.
    pub fn depth(&self) -> usize {
        self.states.len() - 1
    }

    /// Deepest reachable depth — the profile's width.
    pub fn max_depth(&self) -> usize {
        self.profile.width()
    }

    /// The M/K/L matrices for `table`, derived on first sight and cached.
    pub fn matrices_for(&mut self, table: &TruthTable) -> MklMatrices {
        if let Some((_, mkl)) = self.mkl_cache.iter().find(|(t, _)| t == table) {
            return *mkl;
        }
        let mkl = MklMatrices::from_truth_table(table);
        self.mkl_cache.push((*table, mkl));
        mkl
    }

    /// Advances one stage: the cell at the current depth has matrices
    /// `mkl`. Exactly [`analyze`](crate::analyze)'s per-stage operations, in
    /// the same order.
    ///
    /// # Panics
    ///
    /// Panics if the stepper is already at [`max_depth`](Self::max_depth).
    pub fn push(&mut self, mkl: &MklMatrices) {
        let Self {
            profile,
            states,
            ops,
            ..
        } = self;
        let depth = states.len() - 1;
        assert!(
            depth < profile.width(),
            "stepper is already at the profile width ({})",
            profile.width()
        );
        let ipm = Ipm::build(
            profile.pa(depth),
            profile.pb(depth),
            &states[depth].carry,
            ops,
        );
        let carry = CarryState::new(ipm.dot(mkl.k(), ops), ipm.dot(mkl.m(), ops));
        let success = ipm.dot(mkl.l(), ops);
        states.push(Checkpoint { carry, success });
    }

    /// [`push`](Self::push) with the matrices derived (and cached) from the
    /// cell's truth table.
    ///
    /// # Panics
    ///
    /// Panics if the stepper is already at [`max_depth`](Self::max_depth).
    pub fn push_cell(&mut self, cell: &Cell) {
        let mkl = self.matrices_for(cell.truth_table());
        self.push(&mkl);
    }

    /// Rewinds to a previously reached depth; the retained prefix is not
    /// recomputed.
    ///
    /// # Panics
    ///
    /// Panics if `depth` exceeds the current [`depth`](Self::depth).
    pub fn truncate(&mut self, depth: usize) {
        assert!(
            depth <= self.depth(),
            "cannot truncate to depth {depth} from depth {}",
            self.depth()
        );
        self.states.truncate(depth + 1);
    }

    /// The success-conditioned carry state after the current depth.
    pub fn carry_state(&self) -> &CarryState<T> {
        &self.states[self.depth()].carry
    }

    /// `P(Succ)` of the analysed prefix — equal to
    /// [`Analysis::success_probability`](crate::Analysis::success_probability)
    /// of the same chain prefix, bit for bit (`T::one()` at depth 0).
    pub fn success_probability(&self) -> T {
        self.states[self.depth()].success.clone()
    }

    /// `P(Error) = 1 − P(Succ)` of the analysed prefix, clamped to `[0, 1]`
    /// exactly like
    /// [`Analysis::error_probability`](crate::Analysis::error_probability).
    pub fn error_probability(&self) -> T {
        clamp_unit(self.states[self.depth()].success.complement())
    }

    /// Exact operation counts incurred by every stage step so far (rewound
    /// stages included — the work was done; the end-of-analysis complement
    /// is not, since no analysis is "finished").
    pub fn ops(&self) -> OpCounts {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use sealpaa_cells::{AdderChain, StandardCell};
    use sealpaa_num::Rational;

    #[test]
    fn stepping_matches_fresh_analysis_at_every_prefix() {
        let cells = [
            StandardCell::Lpaa1,
            StandardCell::Lpaa6,
            StandardCell::Accurate,
            StandardCell::Lpaa3,
        ];
        let profile = InputProfile::<Rational>::constant(4, Rational::from_ratio(3, 10));
        let mut stepper = PrefixStepper::new(&profile);
        for (i, cell) in cells.iter().enumerate() {
            stepper.push_cell(&cell.cell());
            let prefix = AdderChain::from_stages(cells[..=i].iter().map(|c| c.cell()).collect());
            let prefix_profile =
                InputProfile::<Rational>::constant(i + 1, Rational::from_ratio(3, 10));
            let fresh = analyze(&prefix, &prefix_profile).expect("widths match");
            assert_eq!(stepper.success_probability(), fresh.success_probability());
            assert_eq!(stepper.error_probability(), fresh.error_probability());
            assert_eq!(
                stepper.carry_state(),
                &fresh.stages()[i].carry_out,
                "depth {}",
                i + 1
            );
        }
    }

    #[test]
    fn truncate_rewinds_to_checkpoints() {
        let profile = InputProfile::constant(6, 0.4);
        let mut stepper = PrefixStepper::new(&profile);
        let lpaa2 = StandardCell::Lpaa2.cell();
        let accurate = StandardCell::Accurate.cell();
        for _ in 0..3 {
            stepper.push_cell(&lpaa2);
        }
        let at3 = stepper.success_probability();
        for _ in 3..6 {
            stepper.push_cell(&accurate);
        }
        stepper.truncate(3);
        assert_eq!(stepper.depth(), 3);
        assert_eq!(stepper.success_probability(), at3);
        // Re-widening after a rewind reproduces the same values.
        for _ in 3..6 {
            stepper.push_cell(&accurate);
        }
        let chain = AdderChain::lsb_approximate(lpaa2, accurate, 3, 6);
        let fresh = analyze(&chain, &profile).expect("widths match");
        assert_eq!(stepper.success_probability(), fresh.success_probability());
    }

    #[test]
    fn depth_zero_is_the_empty_prefix() {
        let profile = InputProfile::<Rational>::uniform(2);
        let stepper = PrefixStepper::new(&profile);
        assert_eq!(stepper.depth(), 0);
        assert_eq!(stepper.max_depth(), 2);
        assert_eq!(stepper.success_probability(), Rational::one());
        assert_eq!(stepper.error_probability(), Rational::zero());
    }

    #[test]
    fn mkl_cache_deduplicates_by_truth_table() {
        let profile = InputProfile::constant(8, 0.5);
        let mut stepper = PrefixStepper::new(&profile);
        for cell in [
            StandardCell::Lpaa1,
            StandardCell::Lpaa2,
            StandardCell::Lpaa1,
            StandardCell::Lpaa2,
        ] {
            stepper.push_cell(&cell.cell());
        }
        assert_eq!(stepper.mkl_cache.len(), 2);
    }

    #[test]
    fn ops_match_instrumented_analysis_per_stage() {
        let profile = InputProfile::constant(5, 0.2);
        let mut stepper = PrefixStepper::new(&profile);
        for _ in 0..5 {
            stepper.push_cell(&StandardCell::Lpaa4.cell());
        }
        // 16 multiplications per stage, as `analyze_instrumented` counts.
        assert_eq!(stepper.ops().multiplications, 5 * 16);
    }

    #[test]
    #[should_panic(expected = "already at the profile width")]
    fn pushing_past_the_profile_width_panics() {
        let profile = InputProfile::constant(1, 0.5);
        let mut stepper = PrefixStepper::new(&profile);
        stepper.push_cell(&StandardCell::Lpaa1.cell());
        stepper.push_cell(&StandardCell::Lpaa1.cell());
    }

    #[test]
    #[should_panic(expected = "cannot truncate")]
    fn truncating_deeper_than_current_panics() {
        let profile = InputProfile::<f64>::uniform(4);
        let stepper: PrefixStepper<'_, f64> = PrefixStepper::new(&profile);
        let mut stepper = stepper;
        stepper.truncate(1);
    }
}
