//! The working inclusion–exclusion evaluator.

use std::fmt;

use sealpaa_cells::{AdderChain, FaInput, InputProfile, TruthTable};
use sealpaa_num::Prob;

/// Errors produced by the baseline evaluator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InclExclError {
    /// The input profile covers a different number of bits than the chain.
    WidthMismatch {
        /// Stages in the chain.
        chain: usize,
        /// Bits in the profile.
        profile: usize,
    },
    /// The `2^k − 1` subset expansion is refused beyond this width — the
    /// blow-up paper Table 3 quantifies.
    WidthTooLarge {
        /// Requested stage count.
        width: usize,
        /// Maximum accepted stage count.
        max: usize,
    },
}

impl fmt::Display for InclExclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InclExclError::WidthMismatch { chain, profile } => write!(
                f,
                "adder chain has {chain} stages but input profile covers {profile} bits"
            ),
            InclExclError::WidthTooLarge { width, max } => write!(
                f,
                "inclusion-exclusion over {width} stages needs 2^{width} - 1 terms; \
                 widths above {max} are refused"
            ),
        }
    }
}

impl std::error::Error for InclExclError {}

/// Widest chain the baseline will expand (`2^24` terms is already ~17 M
/// carry-chain passes).
pub const MAX_INCLEXCL_WIDTH: usize = 24;

/// Joint probability `P(∩_{i∈S} E_i)` that **every** stage in the bit-mask
/// `subset` hits one of its error cases, where error cases are judged along
/// the accurate carry chain (the shared dependency that makes the events
/// non-independent — paper Sec. 3, challenge 1).
///
/// Computed by one exact pass over the accurate-carry Markov chain, so each
/// inclusion–exclusion term is cheap; it is the *number* of terms that kills
/// the approach.
///
/// # Errors
///
/// Returns [`InclExclError::WidthMismatch`] if `profile` does not match the
/// chain.
pub fn joint_error_probability<T: Prob>(
    chain: &AdderChain,
    profile: &InputProfile<T>,
    subset: u64,
) -> Result<T, InclExclError> {
    if chain.width() != profile.width() {
        return Err(InclExclError::WidthMismatch {
            chain: chain.width(),
            profile: profile.width(),
        });
    }
    let accurate = TruthTable::accurate();
    // dp[c] = probability mass with accurate carry value c, restricted to
    // paths that err at every subset stage seen so far.
    let mut dp = [profile.p_cin().complement(), profile.p_cin().clone()];
    for (i, cell) in chain.iter().enumerate() {
        let must_err = (subset >> i) & 1 == 1;
        let mut next = [T::zero(), T::zero()];
        for c in 0..2usize {
            if dp[c].is_zero() {
                continue;
            }
            for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
                let input = FaInput::new(a, b, c == 1);
                let is_error = cell.truth_table().eval(input) != accurate.eval(input);
                if must_err && !is_error {
                    continue;
                }
                let pa = if a {
                    profile.pa(i).clone()
                } else {
                    profile.pa(i).complement()
                };
                let pb = if b {
                    profile.pb(i).clone()
                } else {
                    profile.pb(i).complement()
                };
                let c_out = accurate.eval(input).carry_out as usize;
                next[c_out] = next[c_out].clone() + dp[c].clone() * pa * pb;
            }
        }
        dp = next;
    }
    Ok(dp[0].clone() + dp[1].clone())
}

/// The full inclusion–exclusion evaluation of
/// `P(Error) = P(E₀ ∪ … ∪ E_{k−1})`, returning the probability and the
/// number of subset terms evaluated (`2^k − 1`).
///
/// This is the honest baseline: exponential in the stage count by
/// construction. Its result must agree exactly with
/// `sealpaa_core::analyze` (the proposed method computes the same quantity
/// in O(k)); the integration tests assert that equality in rational
/// arithmetic.
///
/// # Errors
///
/// * [`InclExclError::WidthMismatch`] if `profile` does not match the chain.
/// * [`InclExclError::WidthTooLarge`] above [`MAX_INCLEXCL_WIDTH`] stages.
pub fn error_probability<T: Prob>(
    chain: &AdderChain,
    profile: &InputProfile<T>,
) -> Result<(T, u64), InclExclError> {
    let k = chain.width();
    if k != profile.width() {
        return Err(InclExclError::WidthMismatch {
            chain: k,
            profile: profile.width(),
        });
    }
    if k > MAX_INCLEXCL_WIDTH {
        return Err(InclExclError::WidthTooLarge {
            width: k,
            max: MAX_INCLEXCL_WIDTH,
        });
    }
    let mut positive = T::zero();
    let mut negative = T::zero();
    let mut terms = 0u64;
    for subset in 1..(1u64 << k) {
        let joint = joint_error_probability(chain, profile, subset)?;
        terms += 1;
        if subset.count_ones() % 2 == 1 {
            positive = positive + joint;
        } else {
            negative = negative + joint;
        }
    }
    // Accumulate positive and negative parts separately so subtraction
    // happens once — keeps `T = Rational` denominators small and avoids
    // transient negative values.
    Ok((positive - negative, terms))
}

/// Measured work of one full inclusion–exclusion evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BaselineOps {
    /// Subset terms evaluated (`2^k − 1`).
    pub terms: u64,
    /// Probability multiplications performed.
    pub multiplications: u64,
    /// Probability additions performed.
    pub additions: u64,
}

/// Like [`error_probability`], but also measures the arithmetic actually
/// performed — the empirical counterpart to the paper's Table 3 cost model
/// (`cost`): both must grow ~2× per added stage.
///
/// # Errors
///
/// Same conditions as [`error_probability`].
pub fn error_probability_instrumented<T: Prob>(
    chain: &AdderChain,
    profile: &InputProfile<T>,
) -> Result<(T, BaselineOps), InclExclError> {
    let k = chain.width();
    if k != profile.width() {
        return Err(InclExclError::WidthMismatch {
            chain: k,
            profile: profile.width(),
        });
    }
    if k > MAX_INCLEXCL_WIDTH {
        return Err(InclExclError::WidthTooLarge {
            width: k,
            max: MAX_INCLEXCL_WIDTH,
        });
    }
    let accurate = TruthTable::accurate();
    let mut ops = BaselineOps::default();
    let mut positive = T::zero();
    let mut negative = T::zero();
    for subset in 1..(1u64 << k) {
        // Inline the joint-term DP so every multiply/add is tallied.
        let mut dp = [profile.p_cin().complement(), profile.p_cin().clone()];
        for (i, cell) in chain.iter().enumerate() {
            let must_err = (subset >> i) & 1 == 1;
            let mut next = [T::zero(), T::zero()];
            for c in 0..2usize {
                if dp[c].is_zero() {
                    continue;
                }
                for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
                    let input = FaInput::new(a, b, c == 1);
                    let is_error = cell.truth_table().eval(input) != accurate.eval(input);
                    if must_err && !is_error {
                        continue;
                    }
                    let pa = if a {
                        profile.pa(i).clone()
                    } else {
                        profile.pa(i).complement()
                    };
                    let pb = if b {
                        profile.pb(i).clone()
                    } else {
                        profile.pb(i).complement()
                    };
                    let c_out = accurate.eval(input).carry_out as usize;
                    ops.multiplications += 2;
                    ops.additions += 1;
                    next[c_out] = next[c_out].clone() + dp[c].clone() * pa * pb;
                }
            }
            dp = next;
        }
        ops.terms += 1;
        ops.additions += 2;
        let joint = dp[0].clone() + dp[1].clone();
        if subset.count_ones() % 2 == 1 {
            positive = positive + joint;
        } else {
            negative = negative + joint;
        }
    }
    Ok((positive - negative, ops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sealpaa_cells::StandardCell;
    use sealpaa_num::Rational;

    #[test]
    fn singleton_subset_is_stage_error_mass() {
        // P(E₀) for a 1-stage LPAA 1 at uniform inputs = 2 error rows / 8.
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 1);
        let profile = InputProfile::<Rational>::uniform(1);
        let p = joint_error_probability(&chain, &profile, 0b1).expect("widths match");
        assert_eq!(p, Rational::from_ratio(1, 4));
    }

    #[test]
    fn empty_subset_is_total_mass_one() {
        let chain = AdderChain::uniform(StandardCell::Lpaa2.cell(), 3);
        let profile = InputProfile::<Rational>::uniform(3);
        let p = joint_error_probability(&chain, &profile, 0).expect("widths match");
        assert_eq!(p, Rational::one());
    }

    #[test]
    fn joint_probability_shrinks_with_subset_growth() {
        let chain = AdderChain::uniform(StandardCell::Lpaa5.cell(), 4);
        let profile = InputProfile::<Rational>::uniform(4);
        let p1 = joint_error_probability(&chain, &profile, 0b0001).expect("widths match");
        let p2 = joint_error_probability(&chain, &profile, 0b0011).expect("widths match");
        let p4 = joint_error_probability(&chain, &profile, 0b1111).expect("widths match");
        assert!(p1 > p2);
        assert!(p2 > p4);
        assert!(!p4.is_zero());
    }

    #[test]
    fn accurate_chain_has_zero_union() {
        let chain = AdderChain::uniform(StandardCell::Accurate.cell(), 5);
        let profile = InputProfile::<Rational>::constant(5, Rational::from_ratio(2, 5));
        let (p, terms) = error_probability(&chain, &profile).expect("widths match");
        assert_eq!(p, Rational::zero());
        assert_eq!(terms, 31);
    }

    #[test]
    fn two_stage_union_matches_hand_expansion() {
        // P(E₀ ∪ E₁) = P(E₀) + P(E₁) − P(E₀ ∩ E₁).
        let chain = AdderChain::uniform(StandardCell::Lpaa6.cell(), 2);
        let profile = InputProfile::<Rational>::constant(2, Rational::from_ratio(1, 3));
        let e0 = joint_error_probability(&chain, &profile, 0b01).expect("ok");
        let e1 = joint_error_probability(&chain, &profile, 0b10).expect("ok");
        let e01 = joint_error_probability(&chain, &profile, 0b11).expect("ok");
        let (union, terms) = error_probability(&chain, &profile).expect("ok");
        assert_eq!(union, e0 + e1 - e01);
        assert_eq!(terms, 3);
    }

    #[test]
    fn term_count_is_2_pow_k_minus_1() {
        let chain = AdderChain::uniform(StandardCell::Lpaa4.cell(), 6);
        let profile = InputProfile::<f64>::uniform(6);
        let (_, terms) = error_probability(&chain, &profile).expect("ok");
        assert_eq!(terms, 63);
    }

    #[test]
    fn instrumented_matches_plain_and_grows_exponentially() {
        let profile3 = InputProfile::<Rational>::constant(3, Rational::from_ratio(1, 5));
        let chain3 = AdderChain::uniform(StandardCell::Lpaa1.cell(), 3);
        let (p_inst, ops3) = error_probability_instrumented(&chain3, &profile3).expect("ok");
        let (p_plain, terms) = error_probability(&chain3, &profile3).expect("ok");
        assert_eq!(p_inst, p_plain);
        assert_eq!(ops3.terms, terms);

        // Work roughly doubles per added stage — the Table 3 blow-up,
        // measured rather than modelled.
        let mut last = ops3.multiplications;
        for k in 4..=8usize {
            let profile = InputProfile::<Rational>::constant(k, Rational::from_ratio(1, 5));
            let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), k);
            let (_, ops) = error_probability_instrumented(&chain, &profile).expect("ok");
            assert!(
                ops.multiplications > 17 * last / 10,
                "k={k}: {} vs {last}",
                ops.multiplications
            );
            last = ops.multiplications;
        }
    }

    #[test]
    fn oversized_width_refused() {
        let w = MAX_INCLEXCL_WIDTH + 1;
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), w);
        let profile = InputProfile::<f64>::uniform(w);
        assert!(matches!(
            error_probability(&chain, &profile),
            Err(InclExclError::WidthTooLarge { .. })
        ));
    }

    #[test]
    fn width_mismatch_rejected() {
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 2);
        let profile = InputProfile::<f64>::uniform(3);
        assert!(joint_error_probability(&chain, &profile, 1).is_err());
    }
}
