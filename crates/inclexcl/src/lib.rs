//! The traditional inclusion–exclusion analysis — the baseline the paper
//! argues against (Sec. 3, Table 3).
//!
//! Prior analytical work (Mazahir et al., *Probabilistic Error Modeling for
//! Approximate Adders*, IEEE TC 2016) computes the multi-bit error
//! probability as `P(E₁ ∪ E₂ ∪ … ∪ E_k)` where `E_i` is "stage `i` hits an
//! error case", expanded by the principle of inclusion–exclusion:
//!
//! ```text
//! P(∪ E_i) = Σ_{∅ ≠ S ⊆ {1..k}} (−1)^{|S|+1} · P(∩_{i∈S} E_i)
//! ```
//!
//! The expansion has `2^k − 1` terms — `40 × 10¹²` for a 32-bit adder (paper
//! Table 3) — which is why the paper's recursive method matters. This crate
//! implements the baseline *honestly*:
//!
//! * [`error_probability`] evaluates the full alternating sum, one joint
//!   probability per subset (each joint term via an exact carry-chain pass),
//!   so its cost really is Θ(2^k · k) and its result must equal the
//!   proposed method's — the cross-validation our integration tests rely on.
//! * [`cost`] is the closed-form resource model behind paper Table 3
//!   (term / multiplication / addition / memory counts vs. stage count).
//!
//! # Examples
//!
//! ```
//! use sealpaa_cells::{AdderChain, InputProfile, StandardCell};
//! use sealpaa_inclexcl::error_probability;
//!
//! let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 4);
//! let profile = InputProfile::constant(4, 0.1);
//! let (p, terms) = error_probability(&chain, &profile)?;
//! assert_eq!(terms, (1 << 4) - 1); // 2^k − 1 subset terms
//! assert!((p - 0.53090).abs() < 5e-6); // paper Table 7, LPAA 1, N = 4
//! # Ok::<(), sealpaa_inclexcl::InclExclError>(())
//! ```

#![forbid(unsafe_code)]
// DP state indices (carry value, joint-state bits, run length) are semantic
// values, not mere positions; indexed loops read clearer than iterators here.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

mod baseline;
mod cost;

pub use baseline::{
    error_probability, error_probability_instrumented, joint_error_probability, BaselineOps,
    InclExclError, MAX_INCLEXCL_WIDTH,
};
pub use cost::{cost, InclExclCost};
