//! Closed-form cost model of the inclusion–exclusion analysis
//! (paper Table 3).

use std::fmt;

/// Resource requirements of a traditional inclusion–exclusion analysis of a
/// `k`-stage adder (paper Table 3).
///
/// Formulas (derived to match the table's exactly-printed rows `k = 4, 8,
/// 12`; the paper's larger rows carry obvious typesetting glitches — e.g.
/// `52427` for `k = 16` where `k·(2^{k−1}−1) = 524272` — which
/// `EXPERIMENTS.md` documents):
///
/// * terms = `2^k − 1` (every non-empty stage subset),
/// * multiplications = `k · (2^{k−1} − 1)`,
/// * additions = `2^k − 2` (combining all terms),
/// * memory units = `2^{k+1} − 1` (the paper's text says `Σ 2^i = 2^{k+1}−2`;
///   its table prints `2^{k+1} − 1` — we follow the table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InclExclCost {
    /// Number of stages analysed.
    pub stages: u32,
    /// Inclusion–exclusion terms.
    pub terms: u128,
    /// Probability multiplications.
    pub multiplications: u128,
    /// Probability additions.
    pub additions: u128,
    /// Memory elements for the joint-probability history.
    pub memory_units: u128,
}

impl fmt::Display for InclExclCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "k={}: {} terms, {} mults, {} adds, {} memory units",
            self.stages, self.terms, self.multiplications, self.additions, self.memory_units
        )
    }
}

/// Evaluates the paper-Table-3 cost model for a `k`-stage adder.
///
/// # Panics
///
/// Panics if `stages` is 0 or exceeds 100 (the `u128` counters would
/// overflow long after the analysis stopped being computable anyway).
pub fn cost(stages: u32) -> InclExclCost {
    assert!(
        (1..=100).contains(&stages),
        "stage count must be in 1..=100"
    );
    let k = stages as u128;
    InclExclCost {
        stages,
        terms: (1u128 << stages) - 1,
        multiplications: k * ((1u128 << (stages - 1)) - 1),
        additions: (1u128 << stages) - 2,
        memory_units: (1u128 << (stages + 1)) - 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The rows of paper Table 3 that are printed without typos.
    #[test]
    fn matches_paper_table_3_exact_rows() {
        let c4 = cost(4);
        assert_eq!(
            (c4.terms, c4.multiplications, c4.additions, c4.memory_units),
            (15, 28, 14, 31)
        );
        let c8 = cost(8);
        assert_eq!(
            (c8.terms, c8.multiplications, c8.additions, c8.memory_units),
            (255, 1016, 254, 511)
        );
        let c12 = cost(12);
        assert_eq!(
            (
                c12.terms,
                c12.multiplications,
                c12.additions,
                c12.memory_units
            ),
            (4095, 24564, 4094, 8191)
        );
    }

    #[test]
    fn matches_paper_table_3_magnitudes_for_large_k() {
        // k = 20 row: ~10.5e6 multiplications, ~2.10e6 memory units.
        let c20 = cost(20);
        assert_eq!(c20.multiplications, 10_485_740);
        assert_eq!(c20.memory_units, 2_097_151);
        // k = 32 row: ~68.7e9 multiplications, ~8.5e9 memory units.
        let c32 = cost(32);
        assert_eq!(c32.multiplications, 32 * ((1u128 << 31) - 1));
        assert!((c32.multiplications as f64 - 68.7e9).abs() / 68.7e9 < 0.01);
        assert!((c32.memory_units as f64 - 8.5e9).abs() / 8.5e9 < 0.02);
    }

    #[test]
    fn growth_is_exponential() {
        for k in 2..30 {
            assert!(cost(k + 1).terms > 19 * cost(k).terms / 10, "k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "1..=100")]
    fn zero_stages_panics() {
        let _ = cost(0);
    }

    #[test]
    fn display_mentions_all_counts() {
        let s = cost(4).to_string();
        assert!(s.contains("15 terms") && s.contains("28 mults"));
    }
}
