//! Exact arbitrary-precision arithmetic for statistical error analysis.
//!
//! The SEALPAA analytical method (see the `sealpaa-core` crate) is a chain of
//! additions and multiplications over probabilities. Run over `f64` it is fast
//! but inexact; the paper's strongest validation claim — that the analytical
//! result matches exhaustive simulation *"precisely up to any decimal place"*
//! for equally probable inputs — can only be machine-checked in exact
//! arithmetic. This crate provides that substrate:
//!
//! * [`BigUint`] — arbitrary-precision unsigned integer,
//! * [`BigInt`] — signed wrapper around [`BigUint`],
//! * [`Rational`] — exact reduced fraction, and
//! * [`Prob`] — the numeric abstraction the analysis engine is generic over,
//!   implemented for both `f64` (fast) and [`Rational`] (exact).
//!
//! No third-party big-integer crate is used; everything here is implemented
//! from scratch on `u64` limbs.
//!
//! # Examples
//!
//! ```
//! use sealpaa_num::{Rational, Prob};
//!
//! // 1/10 is not representable in binary floating point…
//! let tenth = Rational::from_ratio(1, 10);
//! // …but is exact here: 3 * 1/10 == 3/10 precisely.
//! let three_tenths = tenth.clone() + tenth.clone() + tenth.clone();
//! assert_eq!(three_tenths, Rational::from_ratio(3, 10));
//! assert!((three_tenths.to_f64() - 0.3).abs() < 1e-15);
//! ```

#![forbid(unsafe_code)]
// DP state indices (carry value, joint-state bits, run length) are semantic
// values, not mere positions; indexed loops read clearer than iterators here.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

mod bigint;
mod biguint;
mod rational;
mod traits;

pub use bigint::BigInt;
pub use biguint::{BigUint, ParseBigUintError};
pub use rational::{ParseRationalError, Rational};
pub use traits::Prob;
