//! Arbitrary-precision unsigned integers on `u64` limbs.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Shl, Shr, Sub, SubAssign};
use std::str::FromStr;

/// An arbitrary-precision unsigned integer.
///
/// Stored as little-endian `u64` limbs with no trailing zero limbs (so the
/// value `0` is the empty limb vector). Sizes in this library stay modest —
/// products of a few hundred 64-bit probabilities — so the schoolbook
/// algorithms used here (O(n²) multiplication, shift-subtract division,
/// binary GCD) are more than fast enough and easy to audit.
///
/// # Examples
///
/// ```
/// use sealpaa_num::BigUint;
///
/// let a = BigUint::from(u64::MAX);
/// let b = &a * &a;
/// assert_eq!(b.to_string(), "340282366920938463426481119284349108225");
/// assert_eq!((&b / &a), a);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; invariant: `limbs.last() != Some(&0)`.
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Creates a value from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// `true` if the lowest bit is clear (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (`0` for the value zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&hi) => self.limbs.len() * 64 - hi.leading_zeros() as usize,
        }
    }

    /// Value of bit `i` (little-endian, bit 0 is the least significant).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i`, growing the limb vector as needed.
    pub fn set_bit(&mut self, i: usize) {
        let (limb, off) = (i / 64, i % 64);
        if self.limbs.len() <= limb {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1u64 << off;
    }

    /// Number of trailing zero bits, or `None` for the value zero.
    pub fn trailing_zeros(&self) -> Option<usize> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i * 64 + l.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }

    /// Splits the value into `(mantissa, exponent)` with
    /// `self ≈ mantissa * 2^exponent` and `mantissa` in `[0.5, 1)` (or `0`).
    ///
    /// Used to convert huge values to `f64` without overflowing the `f64`
    /// exponent range mid-computation.
    pub fn to_f64_parts(&self) -> (f64, i64) {
        let bl = self.bit_len();
        if bl == 0 {
            return (0.0, 0);
        }
        // Take the top (up to) 64 bits as an integer mantissa.
        let take = bl.min(64);
        let shift = bl - take;
        let mut top: u64 = 0;
        for i in 0..take {
            if self.bit(shift + i) {
                top |= 1u64 << i;
            }
        }
        // top is in [2^(take-1), 2^take); normalize to [0.5, 1).
        let mantissa = top as f64 / (take as f64).exp2();
        (mantissa, (shift + take) as i64)
    }

    /// Nearest-`f64` approximation (may be `inf` for astronomically large
    /// values, which never occur in this library's workloads).
    pub fn to_f64(&self) -> f64 {
        let (m, e) = self.to_f64_parts();
        m * (e as f64).exp2()
    }

    /// `self * 2^bits`.
    pub fn shl_bits(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let (limb_shift, bit_shift) = (bits / 64, bits % 64);
        let mut out = vec![0u64; self.limbs.len() + limb_shift + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            out[i + limb_shift] |= l << bit_shift;
            if bit_shift > 0 {
                out[i + limb_shift + 1] |= l >> (64 - bit_shift);
            }
        }
        BigUint::from_limbs(out)
    }

    /// `self / 2^bits` (floor).
    pub fn shr_bits(&self, bits: usize) -> BigUint {
        let (limb_shift, bit_shift) = (bits / 64, bits % 64);
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() - limb_shift];
        for i in 0..out.len() {
            out[i] = self.limbs[i + limb_shift] >> bit_shift;
            if bit_shift > 0 {
                if let Some(&next) = self.limbs.get(i + limb_shift + 1) {
                    out[i] |= next << (64 - bit_shift);
                }
            }
        }
        BigUint::from_limbs(out)
    }

    /// `self - other` if non-negative, `None` otherwise.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = self.limbs.clone();
        let mut borrow = 0u64;
        for (i, limb) in out.iter_mut().enumerate() {
            let rhs = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = limb.overflowing_sub(rhs);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *limb = d2;
            borrow = (b1 || b2) as u64;
        }
        debug_assert_eq!(borrow, 0);
        Some(BigUint::from_limbs(out))
    }

    /// Euclidean division: returns `(quotient, remainder)`.
    ///
    /// Uses bit-at-a-time shift-subtract, which is O(bits × limbs); fine for
    /// the modest operand sizes this library produces.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn divmod(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if divisor.limbs.len() == 1 {
            return self.divmod_u64(divisor.limbs[0]);
        }
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        let mut quotient = BigUint::zero();
        let mut remainder = BigUint::zero();
        for i in (0..self.bit_len()).rev() {
            remainder = remainder.shl_bits(1);
            if self.bit(i) {
                remainder.set_bit(0);
            }
            if remainder >= *divisor {
                remainder = remainder
                    .checked_sub(divisor)
                    .expect("remainder >= divisor was just checked");
                quotient.set_bit(i);
            }
        }
        (quotient, remainder)
    }

    /// Fast path of [`divmod`](Self::divmod) for single-limb divisors.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn divmod_u64(&self, divisor: u64) -> (BigUint, BigUint) {
        assert!(divisor != 0, "division by zero");
        let mut rem = 0u128;
        let mut out = vec![0u64; self.limbs.len()];
        for i in (0..self.limbs.len()).rev() {
            let acc = (rem << 64) | self.limbs[i] as u128;
            out[i] = (acc / divisor as u128) as u64;
            rem = acc % divisor as u128;
        }
        (BigUint::from_limbs(out), BigUint::from(rem as u64))
    }

    /// Greatest common divisor.
    ///
    /// Whenever at least one operand fits in a single limb the computation
    /// collapses onto machine words (one big-by-small remainder at most,
    /// then a `u64` Euclid loop); only genuinely multi-limb pairs take the
    /// binary route of [`gcd_slowpath`](Self::gcd_slowpath).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        match (self.to_u64(), other.to_u64()) {
            (Some(a), Some(b)) => return BigUint::from(gcd_u64(a, b)),
            (Some(a), None) => {
                if a == 0 {
                    return other.clone();
                }
                let r = other.divmod_u64(a).1.to_u64().expect("remainder < divisor");
                return BigUint::from(gcd_u64(a, r));
            }
            (None, Some(b)) => {
                if b == 0 {
                    return self.clone();
                }
                let r = self.divmod_u64(b).1.to_u64().expect("remainder < divisor");
                return BigUint::from(gcd_u64(b, r));
            }
            (None, None) => {}
        }
        self.gcd_slowpath(other)
    }

    /// The general multi-limb binary GCD (Stein's algorithm; no division),
    /// without the machine-word fast paths of [`gcd`](Self::gcd). Retained
    /// as the reference implementation for differential tests and the
    /// pre-fast-path benchmark baseline.
    pub fn gcd_slowpath(&self, other: &BigUint) -> BigUint {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        let ta = self.trailing_zeros().expect("non-zero");
        let tb = other.trailing_zeros().expect("non-zero");
        let common = ta.min(tb);
        let mut a = self.shr_bits(ta);
        let mut b = other.shr_bits(tb);
        // Both odd from here on.
        loop {
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.checked_sub(&a).expect("b >= a after swap");
            if b.is_zero() {
                return a.shl_bits(common);
            }
            b = b.shr_bits(b.trailing_zeros().expect("non-zero"));
        }
    }

    /// `self^exp` by square-and-multiply.
    pub fn pow(&self, mut exp: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }
}

/// Machine-word GCD (Euclid); `gcd(0, b) = b`.
pub(crate) fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Machine-word GCD on `u128` operands (Euclid); `gcd(0, b) = b`.
pub(crate) fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_limbs(vec![v])
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from(v as u64)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl Add<&BigUint> for &BigUint {
    type Output = BigUint;

    fn add(self, rhs: &BigUint) -> BigUint {
        // Single-limb fast path: the overwhelmingly common case once the
        // rational layer keeps values reduced.
        if self.limbs.len() <= 1 && rhs.limbs.len() <= 1 {
            let a = self.limbs.first().copied().unwrap_or(0) as u128;
            let b = rhs.limbs.first().copied().unwrap_or(0) as u128;
            return BigUint::from(a + b);
        }
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut out = long.limbs.clone();
        let mut carry = 0u64;
        for (i, limb) in out.iter_mut().enumerate() {
            let rhs_limb = short.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = limb.overflowing_add(rhs_limb);
            let (s2, c2) = s1.overflowing_add(carry);
            *limb = s2;
            carry = (c1 || c2) as u64;
            if carry == 0 && i >= short.limbs.len() {
                break;
            }
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }
}

impl Add for BigUint {
    type Output = BigUint;

    fn add(self, rhs: BigUint) -> BigUint {
        &self + &rhs
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = &*self + rhs;
    }
}

impl Sub<&BigUint> for &BigUint {
    type Output = BigUint;

    /// # Panics
    ///
    /// Panics if the result would be negative; use
    /// [`BigUint::checked_sub`] when underflow is possible.
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            .expect("BigUint subtraction underflowed")
    }
}

impl Sub for BigUint {
    type Output = BigUint;

    fn sub(self, rhs: BigUint) -> BigUint {
        &self - &rhs
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        *self = &*self - rhs;
    }
}

impl Mul<&BigUint> for &BigUint {
    type Output = BigUint;

    fn mul(self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        // Single-limb fast path: one widening machine multiply.
        if self.limbs.len() == 1 && rhs.limbs.len() == 1 {
            return BigUint::from(self.limbs[0] as u128 * rhs.limbs[0] as u128);
        }
        let mut out = vec![0u64; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let acc = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = acc as u64;
                carry = acc >> 64;
            }
            let mut k = i + rhs.limbs.len();
            while carry != 0 {
                let acc = out[k] as u128 + carry;
                out[k] = acc as u64;
                carry = acc >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Mul for BigUint {
    type Output = BigUint;

    fn mul(self, rhs: BigUint) -> BigUint {
        &self * &rhs
    }
}

impl std::ops::Div<&BigUint> for &BigUint {
    type Output = BigUint;

    fn div(self, rhs: &BigUint) -> BigUint {
        self.divmod(rhs).0
    }
}

impl std::ops::Rem<&BigUint> for &BigUint {
    type Output = BigUint;

    fn rem(self, rhs: &BigUint) -> BigUint {
        self.divmod(rhs).1
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;

    fn shl(self, bits: usize) -> BigUint {
        self.shl_bits(bits)
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;

    fn shr(self, bits: usize) -> BigUint {
        self.shr_bits(bits)
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Peel off 19-digit decimal chunks (10^19 fits in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut chunks = Vec::new();
        let mut v = self.clone();
        while !v.is_zero() {
            let (q, r) = v.divmod_u64(CHUNK);
            chunks.push(r.to_u64().expect("remainder < 10^19"));
            v = q;
        }
        let mut s = chunks.pop().expect("non-zero value").to_string();
        for c in chunks.into_iter().rev() {
            s.push_str(&format!("{c:019}"));
        }
        f.write_str(&s)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

impl fmt::Binary for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut s = String::new();
        for i in (0..self.bit_len()).rev() {
            s.push(if self.bit(i) { '1' } else { '0' });
        }
        f.write_str(&s)
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut s = format!("{:x}", self.limbs.last().expect("non-zero"));
        for &l in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{l:016x}"));
        }
        f.write_str(&s)
    }
}

/// Error returned when parsing a [`BigUint`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError {
    offending: char,
}

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid decimal digit {:?}", self.offending)
    }
}

impl std::error::Error for ParseBigUintError {}

impl FromStr for BigUint {
    type Err = ParseBigUintError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseBigUintError { offending: ' ' });
        }
        let mut acc = BigUint::zero();
        let ten = BigUint::from(10u64);
        for ch in s.chars() {
            let digit = ch.to_digit(10).ok_or(ParseBigUintError { offending: ch })?;
            acc = &(&acc * &ten) + &BigUint::from(digit as u64);
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn zero_properties() {
        let z = BigUint::zero();
        assert!(z.is_zero());
        assert!(z.is_even());
        assert_eq!(z.bit_len(), 0);
        assert_eq!(z.to_u64(), Some(0));
        assert_eq!(z.to_string(), "0");
        assert_eq!(z.trailing_zeros(), None);
    }

    #[test]
    fn add_with_carry_chain() {
        let a = big(u128::MAX);
        let b = BigUint::one();
        let sum = &a + &b;
        assert_eq!(sum.bit_len(), 129);
        assert_eq!(sum.shr_bits(128).to_u64(), Some(1));
    }

    #[test]
    fn sub_round_trips_add() {
        let a = big(0xDEAD_BEEF_0123_4567_89AB_CDEF);
        let b = big(0x1234_5678_9ABC_DEF0);
        assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn checked_sub_underflow_is_none() {
        assert_eq!(big(3).checked_sub(&big(4)), None);
        assert_eq!(big(4).checked_sub(&big(3)), Some(BigUint::one()));
    }

    #[test]
    fn mul_matches_u128() {
        let a = 0x1234_5678_9ABCu128;
        let b = 0xFEDC_BA98_7654u128;
        assert_eq!((&big(a) * &big(b)).to_u128(), Some(a * b));
    }

    #[test]
    fn mul_by_zero() {
        assert!((&big(12345) * &BigUint::zero()).is_zero());
    }

    #[test]
    fn divmod_matches_u128() {
        let a = 0xFFEE_DDCC_BBAA_9988_7766_5544u128;
        let b = 0x1_0000_0001u128;
        let (q, r) = big(a).divmod(&big(b));
        assert_eq!(q.to_u128(), Some(a / b));
        assert_eq!(r.to_u128(), Some(a % b));
    }

    #[test]
    fn divmod_small_divisor() {
        let a = big(1_000_000_007u128 * 999_999_937);
        let (q, r) = a.divmod_u64(999_999_937);
        assert_eq!(q.to_u64(), Some(1_000_000_007));
        assert!(r.is_zero());
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn divide_by_zero_panics() {
        let _ = big(1).divmod(&BigUint::zero());
    }

    #[test]
    fn gcd_basic() {
        assert_eq!(big(12).gcd(&big(18)).to_u64(), Some(6));
        assert_eq!(big(17).gcd(&big(5)).to_u64(), Some(1));
        assert_eq!(big(0).gcd(&big(7)).to_u64(), Some(7));
        assert_eq!(big(7).gcd(&big(0)).to_u64(), Some(7));
    }

    #[test]
    fn gcd_large_power_of_two_factor() {
        let a = big(1u128 << 100);
        let b = big(3u128 << 60);
        assert_eq!(a.gcd(&b), big(1u128 << 60));
    }

    #[test]
    fn shifts_round_trip() {
        let a = big(0xABCDEF);
        assert_eq!(a.shl_bits(77).shr_bits(77), a);
        assert_eq!(a.shl_bits(0), a);
        assert_eq!(big(0b1011).shr_bits(2).to_u64(), Some(0b10));
    }

    #[test]
    fn bit_access() {
        let mut v = BigUint::zero();
        v.set_bit(130);
        assert!(v.bit(130));
        assert!(!v.bit(129));
        assert_eq!(v.bit_len(), 131);
        assert_eq!(v.trailing_zeros(), Some(130));
    }

    #[test]
    fn display_parse_round_trip() {
        let s = "123456789012345678901234567890123456789";
        let v: BigUint = s.parse().expect("valid decimal");
        assert_eq!(v.to_string(), s);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("12x3".parse::<BigUint>().is_err());
        assert!("".parse::<BigUint>().is_err());
    }

    #[test]
    fn pow_small() {
        assert_eq!(big(3).pow(5).to_u64(), Some(243));
        assert_eq!(big(2).pow(0).to_u64(), Some(1));
        assert_eq!(big(10).pow(20).to_string(), "100000000000000000000");
    }

    #[test]
    fn ordering() {
        assert!(big(5) < big(6));
        assert!(big(1u128 << 90) > big(u64::MAX as u128));
        assert_eq!(big(42).cmp(&big(42)), Ordering::Equal);
    }

    #[test]
    fn to_f64_small_and_large() {
        assert_eq!(big(12345).to_f64(), 12345.0);
        let v = big(1u128 << 100);
        assert!((v.to_f64() - (2f64).powi(100)).abs() / (2f64).powi(100) < 1e-12);
    }

    #[test]
    fn to_f64_parts_mantissa_in_range() {
        for v in [1u128, 2, 3, 255, 1 << 70, (1 << 90) + 12345] {
            let (m, e) = big(v).to_f64_parts();
            assert!((0.5..1.0).contains(&m), "mantissa {m} out of range");
            let recon = m * (e as f64).exp2();
            assert!((recon - v as f64).abs() / (v as f64) < 1e-9);
        }
    }

    #[test]
    fn hex_and_binary_formatting() {
        assert_eq!(format!("{:x}", big(0xDEADBEEFu128)), "deadbeef");
        assert_eq!(format!("{:b}", big(0b1011)), "1011");
        assert_eq!(format!("{:x}", BigUint::zero()), "0");
        let wide = big((1u128 << 64) | 5);
        assert_eq!(format!("{wide:x}"), "10000000000000005");
    }
}
