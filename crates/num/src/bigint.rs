//! Signed arbitrary-precision integers.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use crate::BigUint;

/// An arbitrary-precision signed integer: a sign plus a [`BigUint`] magnitude.
///
/// Invariant: zero is never negative.
///
/// # Examples
///
/// ```
/// use sealpaa_num::BigInt;
///
/// let a = BigInt::from(-7i64);
/// let b = BigInt::from(3i64);
/// assert_eq!((a + b).to_string(), "-4");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigInt {
    negative: bool,
    mag: BigUint,
}

impl BigInt {
    /// The value `0`.
    pub fn zero() -> Self {
        BigInt {
            negative: false,
            mag: BigUint::zero(),
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigInt {
            negative: false,
            mag: BigUint::one(),
        }
    }

    /// Builds a value from an explicit sign and magnitude.
    ///
    /// A zero magnitude always yields the non-negative zero.
    pub fn from_sign_magnitude(negative: bool, mag: BigUint) -> Self {
        BigInt {
            negative: negative && !mag.is_zero(),
            mag,
        }
    }

    /// `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }

    /// `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.negative
    }

    /// Borrows the magnitude `|self|`.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// Consumes `self`, returning `(is_negative, magnitude)`.
    pub fn into_sign_magnitude(self) -> (bool, BigUint) {
        (self.negative, self.mag)
    }

    /// Nearest-`f64` approximation.
    pub fn to_f64(&self) -> f64 {
        let m = self.mag.to_f64();
        if self.negative {
            -m
        } else {
            m
        }
    }

    /// Splits into `(signed mantissa, exponent)`, see
    /// [`BigUint::to_f64_parts`].
    pub fn to_f64_parts(&self) -> (f64, i64) {
        let (m, e) = self.mag.to_f64_parts();
        (if self.negative { -m } else { m }, e)
    }

    /// Converts to `i64` if the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        let mag = self.mag.to_u64()?;
        if self.negative {
            if mag <= i64::MAX as u64 + 1 {
                Some((mag as i64).wrapping_neg())
            } else {
                None
            }
        } else {
            i64::try_from(mag).ok()
        }
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        BigInt::from_sign_magnitude(v < 0, BigUint::from(v.unsigned_abs()))
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        BigInt::from_sign_magnitude(false, BigUint::from(v))
    }
}

impl From<BigUint> for BigInt {
    fn from(mag: BigUint) -> Self {
        BigInt::from_sign_magnitude(false, mag)
    }
}

impl Neg for BigInt {
    type Output = BigInt;

    fn neg(self) -> BigInt {
        BigInt::from_sign_magnitude(!self.negative, self.mag)
    }
}

impl Neg for &BigInt {
    type Output = BigInt;

    fn neg(self) -> BigInt {
        BigInt::from_sign_magnitude(!self.negative, self.mag.clone())
    }
}

impl Add<&BigInt> for &BigInt {
    type Output = BigInt;

    fn add(self, rhs: &BigInt) -> BigInt {
        if self.negative == rhs.negative {
            BigInt::from_sign_magnitude(self.negative, &self.mag + &rhs.mag)
        } else {
            // Opposite signs: the larger magnitude wins.
            match self.mag.cmp(&rhs.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::from_sign_magnitude(self.negative, &self.mag - &rhs.mag)
                }
                Ordering::Less => BigInt::from_sign_magnitude(rhs.negative, &rhs.mag - &self.mag),
            }
        }
    }
}

impl Add for BigInt {
    type Output = BigInt;

    fn add(self, rhs: BigInt) -> BigInt {
        &self + &rhs
    }
}

impl Sub<&BigInt> for &BigInt {
    type Output = BigInt;

    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Sub for BigInt {
    type Output = BigInt;

    fn sub(self, rhs: BigInt) -> BigInt {
        &self - &rhs
    }
}

impl Mul<&BigInt> for &BigInt {
    type Output = BigInt;

    fn mul(self, rhs: &BigInt) -> BigInt {
        BigInt::from_sign_magnitude(self.negative != rhs.negative, &self.mag * &rhs.mag)
    }
}

impl Mul for BigInt {
    type Output = BigInt;

    fn mul(self, rhs: BigInt) -> BigInt {
        &self * &rhs
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.negative, other.negative) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => self.mag.cmp(&other.mag),
            (true, true) => other.mag.cmp(&self.mag),
        }
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negative {
            write!(f, "-{}", self.mag)
        } else {
            write!(f, "{}", self.mag)
        }
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn signs_on_construction() {
        assert!(!int(0).is_negative());
        assert!(int(-1).is_negative());
        assert!(!BigInt::from_sign_magnitude(true, BigUint::zero()).is_negative());
    }

    #[test]
    fn add_matches_i64() {
        for a in [-7i64, -1, 0, 3, 100] {
            for b in [-50i64, -3, 0, 7, 99] {
                assert_eq!((int(a) + int(b)).to_i64(), Some(a + b), "{a} + {b}");
            }
        }
    }

    #[test]
    fn sub_matches_i64() {
        for a in [-7i64, 0, 42] {
            for b in [-9i64, 0, 41, 43] {
                assert_eq!((int(a) - int(b)).to_i64(), Some(a - b), "{a} - {b}");
            }
        }
    }

    #[test]
    fn mul_sign_rules() {
        assert_eq!((int(-3) * int(4)).to_i64(), Some(-12));
        assert_eq!((int(-3) * int(-4)).to_i64(), Some(12));
        assert_eq!((int(-3) * int(0)).to_i64(), Some(0));
        assert!(!(int(-3) * int(0)).is_negative());
    }

    #[test]
    fn neg_round_trip() {
        assert_eq!(-(-int(5)), int(5));
        assert_eq!(-int(0), int(0));
    }

    #[test]
    fn ordering_across_signs() {
        assert!(int(-2) < int(1));
        assert!(int(-2) > int(-3));
        assert!(int(3) > int(2));
        assert_eq!(int(0).cmp(&int(0)), Ordering::Equal);
    }

    #[test]
    fn display() {
        assert_eq!(int(-42).to_string(), "-42");
        assert_eq!(int(0).to_string(), "0");
    }

    #[test]
    fn to_i64_limits() {
        assert_eq!(BigInt::from(i64::MIN).to_i64(), Some(i64::MIN));
        assert_eq!(BigInt::from(i64::MAX).to_i64(), Some(i64::MAX));
        let too_big = BigInt::from(u64::MAX);
        assert_eq!(too_big.to_i64(), None);
    }

    #[test]
    fn to_f64_signed() {
        assert_eq!(int(-1024).to_f64(), -1024.0);
    }
}
