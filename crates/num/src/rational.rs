//! Exact rational numbers.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::biguint::{gcd_u128, gcd_u64};
use crate::{BigInt, BigUint};

/// An exact rational number, always stored in lowest terms with a positive
/// denominator.
///
/// This is the number type behind the library's *exact* analysis mode: the
/// paper validates its analytical method against exhaustive simulation and
/// reports a match "precisely up to any decimal place" for equally probable
/// inputs; running both sides over [`Rational`] lets the test suite assert
/// literal equality instead of an epsilon comparison.
///
/// # Examples
///
/// ```
/// use sealpaa_num::Rational;
///
/// let p = Rational::from_ratio(1, 2);
/// let q = Rational::from_ratio(1, 3);
/// assert_eq!(p * q, Rational::from_ratio(1, 6));
/// assert_eq!(Rational::from_f64(0.5), Rational::from_ratio(1, 2));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    /// Numerator; carries the sign.
    num: BigInt,
    /// Denominator; invariant: non-zero, and `gcd(|num|, den) == 1`.
    /// A zero value is stored as `0/1`.
    den: BigUint,
}

impl Rational {
    /// The value `0`.
    pub fn zero() -> Self {
        Rational {
            num: BigInt::zero(),
            den: BigUint::one(),
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        Rational {
            num: BigInt::one(),
            den: BigUint::one(),
        }
    }

    /// Builds `num / den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn from_ratio(num: i64, den: i64) -> Self {
        assert!(den != 0, "denominator must be non-zero");
        let negative = (num < 0) != (den < 0);
        Rational::from_parts(
            BigInt::from_sign_magnitude(negative, BigUint::from(num.unsigned_abs())),
            BigUint::from(den.unsigned_abs()),
        )
    }

    /// Builds `num / den` in lowest terms from big components.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn from_parts(num: BigInt, den: BigUint) -> Self {
        assert!(!den.is_zero(), "denominator must be non-zero");
        if num.is_zero() {
            return Rational::zero();
        }
        let g = num.magnitude().gcd(&den);
        let (negative, mag) = num.into_sign_magnitude();
        Rational {
            num: BigInt::from_sign_magnitude(negative, &mag / &g),
            den: &den / &g,
        }
    }

    /// Exact conversion from a finite `f64` (every finite `f64` is a dyadic
    /// rational `mantissa × 2^exponent`).
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN or infinite.
    pub fn from_f64(value: f64) -> Self {
        assert!(
            value.is_finite(),
            "cannot convert non-finite f64 to Rational"
        );
        if value == 0.0 {
            return Rational::zero();
        }
        let bits = value.to_bits();
        let negative = bits >> 63 == 1;
        let exp_bits = ((bits >> 52) & 0x7FF) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (mantissa, exponent) = if exp_bits == 0 {
            // Subnormal.
            (frac, -1074i64)
        } else {
            (frac | (1u64 << 52), exp_bits - 1075)
        };
        let mag = BigUint::from(mantissa);
        if exponent >= 0 {
            Rational::from_parts(
                BigInt::from_sign_magnitude(negative, mag.shl_bits(exponent as usize)),
                BigUint::one(),
            )
        } else {
            Rational::from_parts(
                BigInt::from_sign_magnitude(negative, mag),
                BigUint::one().shl_bits((-exponent) as usize),
            )
        }
    }

    /// Nearest-`f64` approximation.
    pub fn to_f64(&self) -> f64 {
        if self.num.is_zero() {
            return 0.0;
        }
        let (mn, en) = self.num.to_f64_parts();
        let (md, ed) = self.den.to_f64_parts();
        (mn / md) * ((en - ed) as f64).exp2()
    }

    /// Borrows the numerator (sign carrier).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Borrows the (positive) denominator.
    pub fn denom(&self) -> &BigUint {
        &self.den
    }

    /// `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// The general big-integer addition, without the `u128` cross-
    /// multiplication fast path of `+`. Retained as the reference
    /// implementation for differential tests and the pre-fast-path
    /// benchmark baseline.
    pub fn add_slowpath(&self, rhs: &Rational) -> Rational {
        let num = &(&self.num * &BigInt::from(rhs.den.clone()))
            + &(&rhs.num * &BigInt::from(self.den.clone()));
        Rational::from_parts_slowpath(num, &self.den * &rhs.den)
    }

    /// The general big-integer subtraction counterpart of
    /// [`add_slowpath`](Self::add_slowpath).
    pub fn sub_slowpath(&self, rhs: &Rational) -> Rational {
        let num = &(&self.num * &BigInt::from(rhs.den.clone()))
            - &(&rhs.num * &BigInt::from(self.den.clone()));
        Rational::from_parts_slowpath(num, &self.den * &rhs.den)
    }

    /// The general big-integer multiplication counterpart of
    /// [`add_slowpath`](Self::add_slowpath).
    pub fn mul_slowpath(&self, rhs: &Rational) -> Rational {
        Rational::from_parts_slowpath(&self.num * &rhs.num, &self.den * &rhs.den)
    }

    /// [`from_parts`](Self::from_parts) reducing with the multi-limb binary
    /// GCD only, so the slow-path operations measure genuinely pre-fast-path
    /// arithmetic.
    fn from_parts_slowpath(num: BigInt, den: BigUint) -> Self {
        assert!(!den.is_zero(), "denominator must be non-zero");
        if num.is_zero() {
            return Rational::zero();
        }
        let g = num.magnitude().gcd_slowpath(&den);
        let (negative, mag) = num.into_sign_magnitude();
        Rational {
            num: BigInt::from_sign_magnitude(negative, &mag / &g),
            den: &den / &g,
        }
    }

    /// Renders the value as a decimal string with `digits` fractional digits
    /// (truncated towards zero), e.g. for table output.
    ///
    /// # Examples
    ///
    /// ```
    /// use sealpaa_num::Rational;
    ///
    /// assert_eq!(Rational::from_ratio(1, 3).to_decimal(5), "0.33333");
    /// assert_eq!(Rational::from_ratio(-7, 2).to_decimal(2), "-3.50");
    /// ```
    pub fn to_decimal(&self, digits: usize) -> String {
        let scale = BigUint::from(10u64).pow(digits as u32);
        let scaled = &(self.num.magnitude() * &scale) / &self.den;
        let (int_part, frac_part) = scaled.divmod(&scale);
        let sign = if self.is_negative() { "-" } else { "" };
        if digits == 0 {
            format!("{sign}{int_part}")
        } else {
            format!(
                "{sign}{int_part}.{:0>width$}",
                frac_part.to_string(),
                width = digits
            )
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

/// Error returned when parsing a [`Rational`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError {
    input: String,
}

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid rational {:?} (expected e.g. \"3/4\", \"0.25\", or \"-7\")",
            self.input
        )
    }
}

impl std::error::Error for ParseRationalError {}

impl std::str::FromStr for Rational {
    type Err = ParseRationalError;

    /// Parses `"n/d"` fractions, decimal strings like `"0.25"` (kept exact:
    /// `0.9` becomes `9/10`, not the nearest dyadic), and plain integers,
    /// with an optional leading `-`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseRationalError {
            input: s.to_owned(),
        };
        let (negative, body) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s),
        };
        if body.is_empty() {
            return Err(err());
        }
        let magnitude = if let Some((num, den)) = body.split_once('/') {
            let num: BigUint = num.parse().map_err(|_| err())?;
            let den: BigUint = den.parse().map_err(|_| err())?;
            if den.is_zero() {
                return Err(err());
            }
            Rational::from_parts(BigInt::from(num), den)
        } else if let Some((int_part, frac_part)) = body.split_once('.') {
            if frac_part.is_empty() || frac_part.len() > 500 {
                return Err(err());
            }
            let int_part = if int_part.is_empty() { "0" } else { int_part };
            let int: BigUint = int_part.parse().map_err(|_| err())?;
            let frac: BigUint = frac_part.parse().map_err(|_| err())?;
            let scale = BigUint::from(10u64).pow(frac_part.len() as u32);
            let num = &(&int * &scale) + &frac;
            Rational::from_parts(BigInt::from(num), scale)
        } else {
            let int: BigUint = body.parse().map_err(|_| err())?;
            Rational::from_parts(BigInt::from(int), BigUint::one())
        };
        Ok(if negative { -magnitude } else { magnitude })
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_ratio(v, 1)
    }
}

impl From<BigInt> for Rational {
    fn from(num: BigInt) -> Self {
        Rational::from_parts(num, BigUint::one())
    }
}

/// `(sign, |numerator|, denominator)` when both components fit in one limb.
#[inline]
fn small_parts(r: &Rational) -> Option<(bool, u64, u64)> {
    let n = r.num.magnitude().to_u64()?;
    let d = r.den.to_u64()?;
    Some((r.num.is_negative(), n, d))
}

/// Builds a rational from machine-word parts **already in lowest terms**.
#[inline]
fn small_rational(negative: bool, num: u128, den: u128) -> Rational {
    debug_assert!(den != 0 && gcd_u128(num, den) == 1);
    if num == 0 {
        return Rational::zero();
    }
    Rational {
        num: BigInt::from_sign_magnitude(negative, BigUint::from(num)),
        den: BigUint::from(den),
    }
}

/// `u128` cross-multiplication fast path for `±`: `None` when an operand
/// spans more than one limb or the signed numerator combination overflows
/// `u128`, in which case the caller defers to the big-integer route.
#[inline]
fn add_small(lhs: &Rational, rhs: &Rational, negate_rhs: bool) -> Option<Rational> {
    let (ls, ln, ld) = small_parts(lhs)?;
    let (rs, rn, rd) = small_parts(rhs)?;
    let rs = rs ^ (negate_rhs && rn != 0);
    let left = ln as u128 * rd as u128;
    let right = rn as u128 * ld as u128;
    let (negative, num) = if ls == rs {
        (ls, left.checked_add(right)?)
    } else if left >= right {
        (ls, left - right)
    } else {
        (rs, right - left)
    };
    if num == 0 {
        return Some(Rational::zero());
    }
    let den = ld as u128 * rd as u128;
    let g = gcd_u128(num, den);
    Some(small_rational(negative, num / g, den / g))
}

/// `u128` fast path for `*`: cross-reduces with machine-word GCDs first, so
/// the products of already-reduced operands come out reduced with no final
/// big GCD at all.
#[inline]
fn mul_small(lhs: &Rational, rhs: &Rational) -> Option<Rational> {
    let (ls, ln, ld) = small_parts(lhs)?;
    let (rs, rn, rd) = small_parts(rhs)?;
    if ln == 0 || rn == 0 {
        return Some(Rational::zero());
    }
    let g1 = gcd_u64(ln, rd);
    let g2 = gcd_u64(rn, ld);
    let num = (ln / g1) as u128 * (rn / g2) as u128;
    let den = (ld / g2) as u128 * (rd / g1) as u128;
    Some(small_rational(ls != rs, num, den))
}

impl Add<&Rational> for &Rational {
    type Output = Rational;

    fn add(self, rhs: &Rational) -> Rational {
        match add_small(self, rhs, false) {
            Some(fast) => fast,
            None => self.add_slowpath(rhs),
        }
    }
}

impl Sub<&Rational> for &Rational {
    type Output = Rational;

    fn sub(self, rhs: &Rational) -> Rational {
        match add_small(self, rhs, true) {
            Some(fast) => fast,
            None => self.sub_slowpath(rhs),
        }
    }
}

impl Mul<&Rational> for &Rational {
    type Output = Rational;

    fn mul(self, rhs: &Rational) -> Rational {
        match mul_small(self, rhs) {
            Some(fast) => fast,
            None => self.mul_slowpath(rhs),
        }
    }
}

impl Div<&Rational> for &Rational {
    type Output = Rational;

    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: &Rational) -> Rational {
        assert!(!rhs.is_zero(), "division by zero");
        // self/(n/d) = (self.num * ±d) / (self.den * |n|); moving rhs's sign
        // into the new numerator keeps the denominator positive.
        let num = &self.num * &BigInt::from_sign_magnitude(rhs.num.is_negative(), rhs.den.clone());
        Rational::from_parts(num, &self.den * rhs.num.magnitude())
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Rational {
            type Output = Rational;

            fn $method(self, rhs: Rational) -> Rational {
                (&self).$method(&rhs)
            }
        }

        impl $trait<&Rational> for Rational {
            type Output = Rational;

            fn $method(self, rhs: &Rational) -> Rational {
                (&self).$method(rhs)
            }
        }

        impl $trait<Rational> for &Rational {
            type Output = Rational;

            fn $method(self, rhs: Rational) -> Rational {
                self.$method(&rhs)
            }
        }
    };
}

forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);
forward_owned_binop!(Mul, mul);
forward_owned_binop!(Div, div);

impl Neg for Rational {
    type Output = Rational;

    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl std::iter::Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::zero(), |acc, v| acc + v)
    }
}

impl<'a> std::iter::Sum<&'a Rational> for Rational {
    fn sum<I: Iterator<Item = &'a Rational>>(iter: I) -> Rational {
        iter.fold(Rational::zero(), |acc, v| acc + v)
    }
}

impl std::iter::Product for Rational {
    fn product<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::one(), |acc, v| acc * v)
    }
}

impl<'a> std::iter::Product<&'a Rational> for Rational {
    fn product<I: Iterator<Item = &'a Rational>>(iter: I) -> Rational {
        iter.fold(Rational::one(), |acc, v| acc * v)
    }
}

impl Neg for &Rational {
    type Output = Rational;

    fn neg(self) -> Rational {
        -self.clone()
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b  (b, d > 0)
        if let (Some((ls, ln, ld)), Some((rs, rn, rd))) = (small_parts(self), small_parts(other)) {
            if ls != rs {
                return if ls {
                    Ordering::Less
                } else {
                    Ordering::Greater
                };
            }
            let ord = (ln as u128 * rd as u128).cmp(&(rn as u128 * ld as u128));
            return if ls { ord.reverse() } else { ord };
        }
        let lhs = &self.num * &BigInt::from(other.den.clone());
        let rhs = &other.num * &BigInt::from(self.den.clone());
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn construction_reduces() {
        assert_eq!(rat(2, 4), rat(1, 2));
        assert_eq!(rat(-6, -9), rat(2, 3));
        assert_eq!(rat(6, -9), rat(-2, 3));
        assert_eq!(rat(0, 5), Rational::zero());
    }

    #[test]
    #[should_panic(expected = "denominator must be non-zero")]
    fn zero_denominator_panics() {
        let _ = rat(1, 0);
    }

    #[test]
    fn arithmetic_matches_hand_values() {
        assert_eq!(rat(1, 2) + rat(1, 3), rat(5, 6));
        assert_eq!(rat(1, 2) - rat(1, 3), rat(1, 6));
        assert_eq!(rat(2, 3) * rat(3, 4), rat(1, 2));
        assert_eq!(rat(1, 2) / rat(1, 4), rat(2, 1));
    }

    #[test]
    fn signed_arithmetic() {
        assert_eq!(rat(-1, 2) + rat(1, 2), Rational::zero());
        assert_eq!(rat(-1, 2) * rat(-1, 2), rat(1, 4));
        assert_eq!(rat(1, 2) / rat(-1, 4), rat(-2, 1));
        assert_eq!(-rat(3, 7), rat(-3, 7));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = rat(1, 2) / Rational::zero();
    }

    #[test]
    fn from_f64_exact_dyadics() {
        assert_eq!(Rational::from_f64(0.5), rat(1, 2));
        assert_eq!(Rational::from_f64(0.75), rat(3, 4));
        assert_eq!(Rational::from_f64(-2.25), rat(-9, 4));
        assert_eq!(Rational::from_f64(0.0), Rational::zero());
        assert_eq!(Rational::from_f64(3.0), rat(3, 1));
    }

    #[test]
    fn from_f64_nondyadic_round_trips_through_f64() {
        for v in [0.1, 0.3, 1e-10, 123456.789, f64::MIN_POSITIVE] {
            let r = Rational::from_f64(v);
            assert_eq!(r.to_f64(), v, "round trip {v}");
        }
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn from_f64_nan_panics() {
        let _ = Rational::from_f64(f64::NAN);
    }

    #[test]
    fn ordering() {
        assert!(rat(1, 3) < rat(1, 2));
        assert!(rat(-1, 2) < rat(-1, 3));
        assert!(rat(7, 7) == rat(1, 1));
        assert!(rat(-1, 2) < Rational::zero());
    }

    #[test]
    fn display() {
        assert_eq!(rat(1, 2).to_string(), "1/2");
        assert_eq!(rat(4, 2).to_string(), "2");
        assert_eq!(rat(-1, 3).to_string(), "-1/3");
        assert_eq!(Rational::zero().to_string(), "0");
    }

    #[test]
    fn decimal_rendering() {
        assert_eq!(rat(1, 4).to_decimal(4), "0.2500");
        assert_eq!(rat(2, 3).to_decimal(6), "0.666666");
        assert_eq!(rat(5, 1).to_decimal(0), "5");
        assert_eq!(rat(-1, 8).to_decimal(3), "-0.125");
        assert_eq!(rat(1, 1000).to_decimal(5), "0.00100");
    }

    #[test]
    fn to_f64_of_tiny_ratio_of_huge_parts() {
        // (2^200 + 1) / 2^201 ≈ 0.5 without overflowing f64 range.
        let num = BigInt::from(BigUint::one().shl_bits(200) + BigUint::one());
        let den = BigUint::one().shl_bits(201);
        let r = Rational::from_parts(num, den);
        assert!((r.to_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sum_and_product_iterators() {
        let parts = [rat(1, 2), rat(1, 3), rat(1, 6)];
        assert_eq!(parts.iter().sum::<Rational>(), Rational::one());
        assert_eq!(parts.into_iter().sum::<Rational>(), Rational::one());
        let factors = [rat(2, 3), rat(3, 4), rat(4, 2)];
        assert_eq!(factors.iter().product::<Rational>(), Rational::one());
        let empty: [Rational; 0] = [];
        assert_eq!(empty.iter().sum::<Rational>(), Rational::zero());
        assert_eq!(empty.iter().product::<Rational>(), Rational::one());
    }

    #[test]
    fn parse_fractions_decimals_integers() {
        assert_eq!("3/4".parse::<Rational>().expect("valid"), rat(3, 4));
        assert_eq!("0.25".parse::<Rational>().expect("valid"), rat(1, 4));
        assert_eq!("0.9".parse::<Rational>().expect("valid"), rat(9, 10));
        assert_eq!(".5".parse::<Rational>().expect("valid"), rat(1, 2));
        assert_eq!("-1.5".parse::<Rational>().expect("valid"), rat(-3, 2));
        assert_eq!("-7/2".parse::<Rational>().expect("valid"), rat(-7, 2));
        assert_eq!("42".parse::<Rational>().expect("valid"), rat(42, 1));
        assert_eq!("0".parse::<Rational>().expect("valid"), Rational::zero());
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "-", "1/0", "a.b", "1.2.3", "1/", "/2", "0x10"] {
            assert!(bad.parse::<Rational>().is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn numer_denom_accessors() {
        let r = rat(-3, 6);
        assert_eq!(r.numer().to_i64(), Some(-1));
        assert_eq!(r.denom().to_u64(), Some(2));
    }
}
