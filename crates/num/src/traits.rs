//! The numeric abstraction used throughout the analysis crates.

use std::fmt::{Debug, Display};
use std::ops::{Add, Mul, Sub};

use crate::Rational;

/// Number type a probability analysis can run over.
///
/// The SEALPAA engine only ever needs a commutative semiring with subtraction
/// of smaller-from-larger values (all intermediate quantities are
/// probabilities in `[0, 1]`), plus conversions from/to `f64` for I/O. Two
/// implementations are provided:
///
/// * `f64` — fast, inexact; what the paper's MATLAB library uses.
/// * [`Rational`] — exact; lets tests assert *bit-for-bit* equality between
///   the analytical method and exhaustive enumeration (paper Table 6, row 1).
///
/// # Examples
///
/// ```
/// use sealpaa_num::{Prob, Rational};
///
/// fn half<T: Prob>() -> T {
///     T::from_ratio(1, 2)
/// }
///
/// assert_eq!(half::<f64>(), 0.5);
/// assert_eq!(half::<Rational>(), Rational::from_ratio(1, 2));
/// ```
pub trait Prob:
    Clone
    + PartialEq
    + PartialOrd
    + Debug
    + Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Sized
{
    /// The additive identity.
    fn zero() -> Self;

    /// The multiplicative identity.
    fn one() -> Self;

    /// Exact conversion from the ratio `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    fn from_ratio(num: u64, den: u64) -> Self;

    /// Conversion from an `f64`.
    ///
    /// For [`Rational`] the conversion is *exact* (every finite `f64` is a
    /// dyadic rational).
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    fn from_f64(value: f64) -> Self;

    /// Nearest-`f64` rendering of the value, used for reporting.
    fn to_f64(&self) -> f64;

    /// `1 - self`; the probability of the complementary event.
    fn complement(&self) -> Self {
        Self::one() - self.clone()
    }

    /// `true` if the value is exactly zero.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }
}

impl Prob for f64 {
    fn zero() -> Self {
        0.0
    }

    fn one() -> Self {
        1.0
    }

    fn from_ratio(num: u64, den: u64) -> Self {
        assert!(den != 0, "denominator must be non-zero");
        num as f64 / den as f64
    }

    fn from_f64(value: f64) -> Self {
        assert!(value.is_finite(), "probability must be finite");
        value
    }

    fn to_f64(&self) -> f64 {
        *self
    }
}

impl Prob for Rational {
    fn zero() -> Self {
        Rational::zero()
    }

    fn one() -> Self {
        Rational::one()
    }

    fn from_ratio(num: u64, den: u64) -> Self {
        Rational::from_ratio(num as i64, den as i64)
    }

    fn from_f64(value: f64) -> Self {
        Rational::from_f64(value)
    }

    fn to_f64(&self) -> f64 {
        Rational::to_f64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_complement() {
        assert_eq!(0.25f64.complement(), 0.75);
    }

    #[test]
    fn f64_identities() {
        assert_eq!(<f64 as Prob>::zero(), 0.0);
        assert_eq!(<f64 as Prob>::one(), 1.0);
        assert!(<f64 as Prob>::zero().is_zero());
        assert!(!<f64 as Prob>::one().is_zero());
    }

    #[test]
    fn rational_complement_is_exact() {
        let p = Rational::from_ratio(1, 3);
        assert_eq!(p.complement(), Rational::from_ratio(2, 3));
    }

    #[test]
    fn from_ratio_matches_between_impls() {
        for (n, d) in [(0, 1), (1, 2), (3, 4), (7, 8), (1, 10)] {
            let f = <f64 as Prob>::from_ratio(n, d);
            let r = <Rational as Prob>::from_ratio(n, d);
            assert!((f - r.to_f64()).abs() < 1e-15);
        }
    }

    #[test]
    #[should_panic(expected = "denominator must be non-zero")]
    fn f64_from_ratio_zero_den_panics() {
        let _ = <f64 as Prob>::from_ratio(1, 0);
    }
}
