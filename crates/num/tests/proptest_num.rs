//! Property-based tests for the arbitrary-precision types, checked against
//! native `u128`/`i128` arithmetic as the reference implementation.

use proptest::prelude::*;
use sealpaa_num::{BigInt, BigUint, Prob, Rational};

fn big(v: u128) -> BigUint {
    BigUint::from(v)
}

proptest! {
    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let sum = &big(a as u128) + &big(b as u128);
        prop_assert_eq!(sum.to_u128(), Some(a as u128 + b as u128));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let prod = &big(a as u128) * &big(b as u128);
        prop_assert_eq!(prod.to_u128(), Some(a as u128 * b as u128));
    }

    #[test]
    fn sub_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!((&big(hi) - &big(lo)).to_u128(), Some(hi - lo));
        if hi != lo {
            prop_assert_eq!(big(lo).checked_sub(&big(hi)), None);
        }
    }

    #[test]
    fn divmod_matches_u128(a in any::<u128>(), b in 1..=u128::MAX) {
        let (q, r) = big(a).divmod(&big(b));
        prop_assert_eq!(q.to_u128(), Some(a / b));
        prop_assert_eq!(r.to_u128(), Some(a % b));
    }

    #[test]
    fn divmod_reconstructs(a in any::<u128>(), b in 1u128..=u128::MAX) {
        let (q, r) = big(a).divmod(&big(b));
        let recon = &(&q * &big(b)) + &r;
        prop_assert_eq!(recon, big(a));
        prop_assert!(r < big(b));
    }

    #[test]
    fn gcd_divides_both(a in 1u128..1u128 << 100, b in 1u128..1u128 << 100) {
        let g = big(a).gcd(&big(b));
        prop_assert!((&big(a) % &g).is_zero());
        prop_assert!((&big(b) % &g).is_zero());
        // Maximality: (a/g) and (b/g) are coprime.
        let ga = &big(a) / &g;
        let gb = &big(b) / &g;
        prop_assert!(ga.gcd(&gb).is_one());
    }

    #[test]
    fn shift_round_trip(a in any::<u128>(), s in 0usize..300) {
        prop_assert_eq!(big(a).shl_bits(s).shr_bits(s), big(a));
    }

    #[test]
    fn display_parse_round_trip(a in any::<u128>()) {
        let v = big(a);
        let parsed: BigUint = v.to_string().parse().expect("own Display output parses");
        prop_assert_eq!(parsed, v);
    }

    #[test]
    fn mul_is_commutative_and_associative(
        a in any::<u128>(), b in any::<u128>(), c in any::<u64>()
    ) {
        let (a, b, c) = (big(a), big(b), big(c as u128));
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn distributivity(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (a, b, c) = (big(a as u128), big(b as u128), big(c as u128));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn bigint_add_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let sum = BigInt::from(a) + BigInt::from(b);
        let expect = a as i128 + b as i128;
        prop_assert_eq!(sum.to_string(), expect.to_string());
    }

    #[test]
    fn bigint_ordering_matches_i64(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(BigInt::from(a).cmp(&BigInt::from(b)), a.cmp(&b));
    }

    #[test]
    fn rational_field_axioms(
        (an, ad) in (any::<i32>(), 1i32..10_000),
        (bn, bd) in (any::<i32>(), 1i32..10_000),
        (cn, cd) in (any::<i32>(), 1i32..10_000),
    ) {
        let a = Rational::from_ratio(an as i64, ad as i64);
        let b = Rational::from_ratio(bn as i64, bd as i64);
        let c = Rational::from_ratio(cn as i64, cd as i64);
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!((&a + &b) + &c, &a + (&b + &c));
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!((&a * &b) * &c, &a * (&b * &c));
        prop_assert_eq!(&a * (&b + &c), &a * &b + &a * &c);
        prop_assert_eq!(&a + Rational::zero(), a.clone());
        prop_assert_eq!(&a * Rational::one(), a.clone());
        if !a.is_zero() {
            prop_assert_eq!(&a / &a, Rational::one());
        }
    }

    #[test]
    fn rational_sub_is_add_neg(
        (an, ad) in (any::<i32>(), 1i32..10_000),
        (bn, bd) in (any::<i32>(), 1i32..10_000),
    ) {
        let a = Rational::from_ratio(an as i64, ad as i64);
        let b = Rational::from_ratio(bn as i64, bd as i64);
        prop_assert_eq!(&a - &b, &a + (-&b));
    }

    #[test]
    fn rational_f64_round_trip(v in any::<i64>().prop_map(|b| f64::from_bits(b as u64))) {
        prop_assume!(v.is_finite());
        prop_assert_eq!(Rational::from_f64(v).to_f64(), v);
    }

    #[test]
    fn rational_ordering_consistent_with_f64(
        (an, ad) in (-1000i64..1000, 1i64..1000),
        (bn, bd) in (-1000i64..1000, 1i64..1000),
    ) {
        let a = Rational::from_ratio(an, ad);
        let b = Rational::from_ratio(bn, bd);
        let fa = an as f64 / ad as f64;
        let fb = bn as f64 / bd as f64;
        if (fa - fb).abs() > 1e-9 {
            prop_assert_eq!(a < b, fa < fb);
        }
    }

    #[test]
    fn prob_complement_involution(p in 0.0f64..=1.0) {
        let r = Rational::from_f64(p);
        // Exact in rational arithmetic…
        prop_assert_eq!(r.complement().complement(), r);
        // …only approximate in f64 (1 - (1 - p) rounds).
        prop_assert!((p.complement().complement() - p).abs() < 1e-15);
    }
}
