//! A constant-coefficient FIR filter computed with approximate adders.
//!
//! The paper's motivating applications — image/video processing, DSP — are
//! dominated by multiply-accumulate chains with *constant* coefficients,
//! which hardware implements multiplier-lessly as shift-and-add. This
//! module builds exactly that: per tap, the coefficient is decomposed into
//! its set bits, every `sample << bit` is accumulated through an
//! approximate adder chain, and the output quality is measured against an
//! exact reference in PSNR-style terms.

use sealpaa_cells::{AdderChain, Cell};

/// A FIR filter `y[n] = Σ_t coeff[t] · x[n − t]` whose every addition runs
/// through an approximate accumulator chain.
///
/// # Examples
///
/// ```
/// use sealpaa_cells::StandardCell;
/// use sealpaa_datapath::FirFilter;
///
/// // A 4-tap moving-average filter on 8-bit samples, exact cells.
/// let fir = FirFilter::new(StandardCell::Accurate.cell(), &[1, 1, 1, 1], 8)?;
/// let y = fir.apply(&[4, 4, 4, 4, 8, 8, 8, 8]);
/// assert_eq!(y[3], 16); // 4+4+4+4
/// assert_eq!(y[7], 32); // 8+8+8+8
/// # Ok::<(), sealpaa_datapath::DatapathError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FirFilter {
    accumulator: AdderChain,
    coefficients: Vec<u64>,
    sample_width: usize,
}

impl FirFilter {
    /// Builds a filter with the given unsigned coefficients for
    /// `sample_width`-bit samples. The accumulator is sized to hold the
    /// worst-case output exactly.
    ///
    /// # Errors
    ///
    /// Returns [`DatapathError::TooWide`](crate::DatapathError::TooWide) if
    /// the worst-case accumulator would exceed 63 bits.
    ///
    /// # Panics
    ///
    /// Panics if `coefficients` is empty, all-zero, or `sample_width` is 0.
    pub fn new(
        cell: Cell,
        coefficients: &[u64],
        sample_width: usize,
    ) -> Result<Self, crate::DatapathError> {
        assert!(!coefficients.is_empty(), "a FIR filter needs taps");
        assert!(sample_width > 0, "samples need at least one bit");
        let gain: u64 = coefficients.iter().sum();
        assert!(gain > 0, "at least one coefficient must be non-zero");
        let acc_width = sample_width + (64 - gain.leading_zeros() as usize);
        if acc_width > 62 {
            return Err(crate::DatapathError::TooWide { width: acc_width });
        }
        Ok(FirFilter {
            accumulator: AdderChain::uniform(cell, acc_width),
            coefficients: coefficients.to_vec(),
            sample_width,
        })
    }

    /// Number of taps.
    pub fn taps(&self) -> usize {
        self.coefficients.len()
    }

    /// Filters a sample stream (samples truncated to the configured width).
    /// `y[n]` uses only samples `x[n], …, x[n − taps + 1]`; leading outputs
    /// use the available prefix.
    pub fn apply(&self, samples: &[u64]) -> Vec<u64> {
        self.run(samples, false)
    }

    /// The exact reference output for the same stream.
    pub fn apply_exact(&self, samples: &[u64]) -> Vec<u64> {
        self.run(samples, true)
    }

    fn run(&self, samples: &[u64], exact: bool) -> Vec<u64> {
        let mask = if self.sample_width >= 64 {
            u64::MAX
        } else {
            (1u64 << self.sample_width) - 1
        };
        let mut out = Vec::with_capacity(samples.len());
        for n in 0..samples.len() {
            let mut acc = 0u64;
            for (t, &coeff) in self.coefficients.iter().enumerate() {
                let Some(index) = n.checked_sub(t) else { break };
                let x = samples[index] & mask;
                // coeff · x as shift-adds over the coefficient's set bits.
                for bit in 0..64 {
                    if (coeff >> bit) & 1 == 1 {
                        let term = x << bit;
                        acc = if exact {
                            self.accumulator.accurate_sum(acc, term, false).sum_bits()
                        } else {
                            self.accumulator.add(acc, term, false).sum_bits()
                        };
                    }
                }
            }
            out.push(acc);
        }
        out
    }

    /// Compares the approximate and exact outputs on a stream and
    /// summarises the damage.
    pub fn quality(&self, samples: &[u64]) -> FirQuality {
        let approx = self.apply(samples);
        let exact = self.apply_exact(samples);
        let n = approx.len().max(1);
        let mut wrong = 0u64;
        let mut sq_sum = 0.0f64;
        let mut max_abs = 0u64;
        let mut peak = 0u64;
        for (a, e) in approx.iter().zip(&exact) {
            if a != e {
                wrong += 1;
            }
            let abs = a.abs_diff(*e);
            max_abs = max_abs.max(abs);
            sq_sum += (abs as f64).powi(2);
            peak = peak.max(*e);
        }
        let mse = sq_sum / n as f64;
        FirQuality {
            outputs: approx.len() as u64,
            wrong_outputs: wrong,
            mse,
            psnr_db: if mse == 0.0 || peak == 0 {
                None
            } else {
                Some(10.0 * ((peak as f64).powi(2) / mse).log10())
            },
            max_absolute_error: max_abs,
        }
    }
}

/// Quality summary of an approximate FIR run against the exact reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FirQuality {
    /// Outputs produced.
    pub outputs: u64,
    /// Outputs that differed from the exact filter.
    pub wrong_outputs: u64,
    /// Mean squared error of the output stream.
    pub mse: f64,
    /// Peak-signal-to-noise ratio in dB (peak = max exact output).
    /// `None` when the ratio is not a finite number: an error-free run
    /// (`mse == 0`) or an all-zero exact output (`peak == 0`) — the same
    /// convention as [`Image::psnr_against`](crate::Image::psnr_against).
    pub psnr_db: Option<f64>,
    /// Worst absolute output error.
    pub max_absolute_error: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sealpaa_cells::StandardCell;

    fn ramp(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| (i * 7 + 3) % 256).collect()
    }

    #[test]
    fn exact_filter_matches_direct_convolution() {
        let fir = FirFilter::new(StandardCell::Accurate.cell(), &[3, 1, 2], 8).expect("fits");
        let x = ramp(50);
        let y = fir.apply(&x);
        for n in 2..50 {
            let expect = 3 * x[n] + x[n - 1] + 2 * x[n - 2];
            assert_eq!(y[n], expect, "n={n}");
        }
    }

    #[test]
    fn exact_filter_quality_is_perfect() {
        let fir = FirFilter::new(StandardCell::Accurate.cell(), &[1, 2, 1], 8).expect("fits");
        let q = fir.quality(&ramp(100));
        assert_eq!(q.wrong_outputs, 0);
        assert_eq!(q.mse, 0.0);
        assert_eq!(q.psnr_db, None);
    }

    #[test]
    fn approximate_filter_degrades_gracefully() {
        let good = FirFilter::new(StandardCell::Lpaa6.cell(), &[1, 2, 1], 8).expect("fits");
        let bad = FirFilter::new(StandardCell::Lpaa2.cell(), &[1, 2, 1], 8).expect("fits");
        let x = ramp(400);
        let qg = good.quality(&x);
        let qb = bad.quality(&x);
        assert!(qg.wrong_outputs > 0, "LPAA 6 should err occasionally");
        let (pg, pb) = (
            qg.psnr_db.expect("LPAA 6 errs"),
            qb.psnr_db.expect("LPAA 2 errs"),
        );
        assert!(pg > pb, "LPAA 6 PSNR {pg} should beat LPAA 2 PSNR {pb}");
    }

    #[test]
    fn prefix_outputs_use_available_samples() {
        let fir = FirFilter::new(StandardCell::Accurate.cell(), &[1, 1], 8).expect("fits");
        let y = fir.apply(&[10, 20]);
        assert_eq!(y, vec![10, 30]);
    }

    #[test]
    fn accumulator_width_overflow_rejected() {
        let err = FirFilter::new(StandardCell::Accurate.cell(), &[u64::MAX >> 8], 16)
            .expect_err("too wide");
        assert!(matches!(err, crate::DatapathError::TooWide { .. }));
    }

    #[test]
    #[should_panic(expected = "needs taps")]
    fn empty_taps_panics() {
        let _ = FirFilter::new(StandardCell::Accurate.cell(), &[], 8);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn all_zero_taps_panics() {
        let _ = FirFilter::new(StandardCell::Accurate.cell(), &[0, 0], 8);
    }
}
