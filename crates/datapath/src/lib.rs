//! Accelerator datapaths built from approximate adders.
//!
//! The paper's introduction motivates the analysis with DSP-style
//! accelerators and closes Sec. 1.1 noting that "the analysis complexity
//! will further aggravate when these adders form an accelerator data path".
//! This crate provides that layer:
//!
//! * [`Datapath`] — a DAG of signals whose add nodes are concrete
//!   [`sealpaa_cells::AdderChain`]s (homogeneous, hybrid, accurate — anything the cell
//!   library expresses), evaluated bit-true and against an exact reference,
//! * [`estimate`] — the analytical composition: per-bit signal
//!   probabilities are propagated node by node (using the paper's machinery
//!   per adder) and every adder gets its analytical error probability plus a
//!   union-bound estimate for the whole datapath,
//! * [`CsaTree`] — multi-operand carry-save reduction through approximate
//!   3:2 compressors (the paper's CSA topology),
//! * [`ShiftAddMultiplier`] — an approximate array-style multiplier that
//!   accumulates partial products through approximate chains (the multiplier
//!   context of reference 16 of the paper), and
//! * [`FirFilter`] — a constant-coefficient FIR filter computed entirely
//!   with approximate additions, the paper's image/DSP motivation made
//!   concrete.
//!
//! # Examples
//!
//! ```
//! use sealpaa_cells::StandardCell;
//! use sealpaa_datapath::Datapath;
//!
//! // sum = (x + y) + z over 8-bit LPAA 6 adders.
//! let mut dp = Datapath::new();
//! let x = dp.input("x", 8);
//! let y = dp.input("y", 8);
//! let z = dp.input("z", 8);
//! let chain = |w| sealpaa_cells::AdderChain::uniform(StandardCell::Lpaa6.cell(), w);
//! let xy = dp.add(x, y, chain(8))?; // output is 9 bits (carry included)
//! let sum = dp.add(xy, z, chain(9))?;
//! let outputs = dp.evaluate(&[("x", 85), ("y", 34), ("z", 8)])?;
//! assert_eq!(outputs.value(sum), 127); // correct here: no error row was hit
//! # Ok::<(), sealpaa_datapath::DatapathError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conv2d;
mod csa;
mod estimate;
mod fir;
mod graph;
mod multiplier;

pub use conv2d::{Conv2d, Image};
pub use csa::CsaTree;
pub use estimate::{estimate, simulate, AdderEstimate, DatapathEstimate};
pub use fir::{FirFilter, FirQuality};
pub use graph::{Datapath, DatapathError, Evaluation, NodeKind, Signal};
pub use multiplier::{MultiplierQuality, ShiftAddMultiplier};
