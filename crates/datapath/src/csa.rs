//! Carry-save (3:2 compressor) trees built from approximate full adders.
//!
//! The paper names the Carry Save Adder alongside the ripple-carry adder as
//! the multi-bit topologies LPAAs are cascaded into ("e.g., traditional
//! Ripple Carry Adder (RCA) and Carry Save Adder (CSA), which are used as
//! building blocks of digital signal processors"). In a CSA tree each full
//! adder acts as a 3:2 compressor — three input rows become a sum row and a
//! carry row with *no* horizontal carry propagation — so an approximate
//! cell's error behaviour shows up very differently than in a ripple chain:
//! there is no carry chain for errors to ride, but every row passes through
//! more cells.

use sealpaa_cells::{AdderChain, Cell, FaInput, InputProfile, TruthTable};
use sealpaa_core::analyze;
use sealpaa_sim::Xoshiro256pp;

/// A multi-operand adder that reduces its inputs with layers of 3:2
/// compressors (each built from the configured cell) and merges the final
/// two rows with a ripple chain of the same cell.
///
/// # Examples
///
/// ```
/// use sealpaa_cells::StandardCell;
/// use sealpaa_datapath::CsaTree;
///
/// let tree = CsaTree::new(StandardCell::Accurate.cell(), 8, 4);
/// assert_eq!(tree.add_all(&[100, 200, 50, 25]), 375);
/// ```
#[derive(Debug, Clone)]
pub struct CsaTree {
    cell: Cell,
    merge: AdderChain,
    operand_bits: usize,
    operands: usize,
    working_bits: usize,
}

impl CsaTree {
    /// Builds a tree for `operands` inputs of `operand_bits` bits each.
    ///
    /// # Panics
    ///
    /// Panics if `operands < 2`, `operand_bits == 0`, or the worst-case
    /// result exceeds 63 bits.
    pub fn new(cell: Cell, operand_bits: usize, operands: usize) -> Self {
        assert!(operands >= 2, "a CSA tree needs at least two operands");
        assert!(operand_bits > 0, "operands need at least one bit");
        let growth = 64 - (operands as u64).leading_zeros() as usize;
        let working_bits = operand_bits + growth;
        assert!(working_bits <= 63, "worst-case result exceeds 63 bits");
        CsaTree {
            merge: AdderChain::uniform(cell.clone(), working_bits),
            cell,
            operand_bits,
            operands,
            working_bits,
        }
    }

    /// Number of operands the tree accepts.
    pub fn operand_count(&self) -> usize {
        self.operands
    }

    /// One 3:2 compression of three rows into (sum row, carry row): per bit
    /// the cell maps `(x_i, y_i, z_i)` to `sum_i` and `carry_{i+1}`, with no
    /// horizontal propagation.
    pub fn compress(&self, x: u64, y: u64, z: u64) -> (u64, u64) {
        let table = self.cell.truth_table();
        let mut sum = 0u64;
        let mut carry = 0u64;
        for i in 0..self.working_bits {
            let out = table.eval(FaInput::new(
                (x >> i) & 1 == 1,
                (y >> i) & 1 == 1,
                (z >> i) & 1 == 1,
            ));
            if out.sum {
                sum |= 1 << i;
            }
            if out.carry_out && i + 1 < self.working_bits {
                carry |= 1 << (i + 1);
            }
        }
        (sum, carry)
    }

    /// Reduces all operands to two rows via repeated 3:2 compression
    /// (Wallace-style: greedily compress triples per layer).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.operand_count()`.
    pub fn reduce(&self, values: &[u64]) -> (u64, u64) {
        assert_eq!(values.len(), self.operands, "operand count mismatch");
        let mask = if self.operand_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.operand_bits) - 1
        };
        let mut rows: Vec<u64> = values.iter().map(|v| v & mask).collect();
        while rows.len() > 2 {
            let mut next = Vec::with_capacity(rows.len().div_ceil(3) * 2);
            let mut chunks = rows.chunks_exact(3);
            for triple in &mut chunks {
                let (s, c) = self.compress(triple[0], triple[1], triple[2]);
                next.push(s);
                next.push(c);
            }
            next.extend_from_slice(chunks.remainder());
            rows = next;
        }
        if rows.len() == 1 {
            rows.push(0);
        }
        (rows[0], rows[1])
    }

    /// Full multi-operand addition: reduce to two rows, then merge with the
    /// ripple chain (the "vector-merge" adder).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.operand_count()`.
    pub fn add_all(&self, values: &[u64]) -> u64 {
        let (sum_row, carry_row) = self.reduce(values);
        self.merge.add(sum_row, carry_row, false).sum_bits()
    }

    /// The exact reference sum (operands truncated to their width).
    pub fn exact_sum(&self, values: &[u64]) -> u64 {
        let mask = if self.operand_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.operand_bits) - 1
        };
        values.iter().map(|v| v & mask).sum()
    }

    /// Analytical estimate of the tree's error probability by propagating
    /// per-bit signal probabilities through the compressor layers (bit
    /// independence assumed — rows produced by shared compressors are in
    /// truth correlated, so this is a heuristic; [`quality`](Self::quality)
    /// is the ground truth) and scoring the final merge chain with the
    /// paper's exact per-adder analysis.
    ///
    /// `operand_probs[k][i]` is `P(bit i of operand k = 1)`; missing high
    /// bits default to 0.
    ///
    /// Returns `(p_any_compressor_deviates, p_merge_deviates, p_any)`.
    ///
    /// # Panics
    ///
    /// Panics if `operand_probs.len() != self.operand_count()` or any
    /// probability is outside `[0, 1]`.
    pub fn estimate(&self, operand_probs: &[Vec<f64>]) -> (f64, f64, f64) {
        assert_eq!(operand_probs.len(), self.operands, "operand count mismatch");
        let extend = |src: &[f64]| -> Vec<f64> {
            assert!(
                src.iter().all(|p| (0.0..=1.0).contains(p)),
                "probabilities must be in [0, 1]"
            );
            let mut v = src.to_vec();
            v.truncate(self.operand_bits);
            v.resize(self.working_bits, 0.0);
            v
        };
        let accurate = TruthTable::accurate();
        let table = self.cell.truth_table();
        let mut rows: Vec<Vec<f64>> = operand_probs.iter().map(|p| extend(p)).collect();
        let mut no_deviation = 1.0f64;
        while rows.len() > 2 {
            let mut next: Vec<Vec<f64>> = Vec::new();
            let mut chunks = rows.chunks_exact(3);
            for triple in &mut chunks {
                let mut sum_row = vec![0.0; self.working_bits];
                let mut carry_row = vec![0.0; self.working_bits];
                for i in 0..self.working_bits {
                    let probs = [triple[0][i], triple[1][i], triple[2][i]];
                    let mut p_sum = 0.0;
                    let mut p_carry = 0.0;
                    let mut p_err = 0.0;
                    for input in FaInput::all() {
                        let w = [input.a, input.b, input.carry_in]
                            .iter()
                            .zip(&probs)
                            .map(|(&bit, &p)| if bit { p } else { 1.0 - p })
                            .product::<f64>();
                        let out = table.eval(input);
                        if out.sum {
                            p_sum += w;
                        }
                        if out.carry_out {
                            p_carry += w;
                        }
                        if out != accurate.eval(input) {
                            p_err += w;
                        }
                    }
                    sum_row[i] = p_sum;
                    if i + 1 < self.working_bits {
                        carry_row[i + 1] = p_carry;
                    }
                    no_deviation *= 1.0 - p_err;
                }
                next.push(sum_row);
                next.push(carry_row);
            }
            for rest in chunks.remainder() {
                next.push(rest.clone());
            }
            rows = next;
        }
        if rows.len() == 1 {
            rows.push(vec![0.0; self.working_bits]);
        }
        let p_compressors = 1.0 - no_deviation;
        let profile = InputProfile::new(rows[0].clone(), rows[1].clone(), 0.0)
            .expect("propagated probabilities stay in [0, 1]");
        let p_merge = analyze(&self.merge, &profile)
            .expect("widths match by construction")
            .error_probability()
            .clamp(0.0, 1.0);
        let p_any = 1.0 - (1.0 - p_compressors) * (1.0 - p_merge);
        (p_compressors, p_merge, p_any)
    }

    /// Monte-Carlo error rate and mean absolute error over uniformly random
    /// operand vectors: `(error_rate, mean_abs_error)`.
    pub fn quality(&self, samples: u64, seed: u64) -> (f64, f64) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mask = (1u64 << self.operand_bits) - 1;
        let mut errors = 0u64;
        let mut abs_sum = 0.0f64;
        for _ in 0..samples {
            let values: Vec<u64> = (0..self.operands).map(|_| rng.next_u64() & mask).collect();
            let approx = self.add_all(&values);
            let exact = self.exact_sum(&values);
            if approx != exact {
                errors += 1;
            }
            abs_sum += approx.abs_diff(exact) as f64;
        }
        (
            errors as f64 / samples.max(1) as f64,
            abs_sum / samples.max(1) as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sealpaa_cells::StandardCell;

    #[test]
    fn accurate_tree_sums_exactly_for_many_shapes() {
        for operands in [2usize, 3, 4, 5, 7, 9] {
            let tree = CsaTree::new(StandardCell::Accurate.cell(), 8, operands);
            let values: Vec<u64> = (0..operands as u64).map(|i| (i * 37 + 11) % 256).collect();
            assert_eq!(
                tree.add_all(&values),
                values.iter().sum::<u64>(),
                "{operands} operands"
            );
        }
    }

    #[test]
    fn accurate_compress_preserves_value() {
        // 3:2 compression is value-preserving: x + y + z = sum + carry.
        let tree = CsaTree::new(StandardCell::Accurate.cell(), 8, 3);
        for (x, y, z) in [(0u64, 0, 0), (255, 255, 255), (170, 85, 204), (1, 2, 4)] {
            let (s, c) = tree.compress(x, y, z);
            assert_eq!(s + c, x + y + z, "{x}+{y}+{z}");
        }
    }

    #[test]
    fn approximate_tree_errs_but_is_bounded() {
        let tree = CsaTree::new(StandardCell::Lpaa6.cell(), 8, 8);
        let (err, mean_abs) = tree.quality(2_000, 5);
        assert!(err > 0.0, "LPAA 6 CSA should err");
        assert!(
            mean_abs < 2048.0,
            "errors should stay bounded, got {mean_abs}"
        );
    }

    #[test]
    fn estimate_is_zero_for_accurate_cells() {
        let tree = CsaTree::new(StandardCell::Accurate.cell(), 8, 6);
        let probs = vec![vec![0.5; 8]; 6];
        let (pc, pm, pa) = tree.estimate(&probs);
        assert!(pc.abs() < 1e-12);
        assert!(pm.abs() < 1e-12);
        assert!(pa.abs() < 1e-12);
    }

    #[test]
    fn estimate_tracks_monte_carlo_regime() {
        let tree = CsaTree::new(StandardCell::Lpaa6.cell(), 6, 6);
        let probs = vec![vec![0.3; 6]; 6];
        let (_, _, p_any) = tree.estimate(&probs);
        let (mc, _) = tree.quality(20_000, 9);
        // Deviation semantics upper-bound output error; the independence
        // heuristic keeps it in the same regime.
        assert!(p_any >= mc - 0.05, "est {p_any} vs mc {mc}");
        assert!((p_any - mc).abs() < 0.35, "est {p_any} vs mc {mc}");
    }

    #[test]
    fn estimate_validates_inputs() {
        let tree = CsaTree::new(StandardCell::Lpaa1.cell(), 4, 3);
        let bad_len = std::panic::catch_unwind(|| tree.estimate(&vec![vec![0.5; 4]; 2]));
        assert!(bad_len.is_err());
        let bad_prob = std::panic::catch_unwind(|| tree.estimate(&vec![vec![1.5; 4]; 3]));
        assert!(bad_prob.is_err());
    }

    #[test]
    fn csa_and_sequential_accumulation_differ() {
        // Same cell, same operands, different topology → generally different
        // results: in the CSA there is no carry chain to ride.
        let cell = StandardCell::Lpaa1.cell();
        let tree = CsaTree::new(cell.clone(), 8, 4);
        let chain = AdderChain::uniform(cell, 10);
        let values = [200u64, 100, 50, 255];
        let csa = tree.add_all(&values);
        let mut seq = 0u64;
        for v in values {
            seq = chain.add(seq, v, false).sum_bits();
        }
        let exact: u64 = values.iter().sum();
        // At least one of them errs on this carry-heavy input; they need not
        // agree with each other.
        assert!(csa != exact || seq != exact);
    }

    #[test]
    fn lpaa5_compressor_tree_is_wiring_only() {
        // LPAA 5 (sum = b, carry = a) as a 3:2 compressor forwards rows:
        // compress(x, y, z) = (y, x << 1 masked).
        let tree = CsaTree::new(StandardCell::Lpaa5.cell(), 6, 3);
        let (s, c) = tree.compress(0b101010, 0b010101, 0b111000);
        assert_eq!(s, 0b010101);
        assert_eq!(c, 0b1010100 & ((1 << tree.working_bits) - 1));
    }

    #[test]
    fn operand_count_is_enforced() {
        let tree = CsaTree::new(StandardCell::Accurate.cell(), 8, 4);
        assert_eq!(tree.operand_count(), 4);
        let result = std::panic::catch_unwind(|| tree.add_all(&[1, 2, 3]));
        assert!(result.is_err());
    }

    #[test]
    #[should_panic(expected = "at least two operands")]
    fn single_operand_rejected() {
        let _ = CsaTree::new(StandardCell::Accurate.cell(), 8, 1);
    }

    #[test]
    #[should_panic(expected = "exceeds 63 bits")]
    fn oversized_tree_rejected() {
        let _ = CsaTree::new(StandardCell::Accurate.cell(), 60, 32);
    }
}
