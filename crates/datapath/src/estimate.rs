//! Analytical composition over a datapath.
//!
//! Per adder, the paper's method is exact given its operands' bit
//! probabilities and bit independence. Across a datapath those operands are
//! intermediate signals — we propagate their *marginal* bit probabilities
//! node by node (using [`signal_probabilities`] per adder) and treat them as
//! independent at each adder's inputs. That independence is an
//! approximation (shared fan-in correlates signals), so the composed figure
//! is an *estimate*; the tests quantify its agreement with Monte-Carlo on
//! realistic topologies, and [`simulate`] is always available for ground
//! truth.

use sealpaa_cells::InputProfile;
use sealpaa_core::{analyze, signal_probabilities};
use sealpaa_sim::Xoshiro256pp;

use crate::graph::{Datapath, DatapathError, Node, Signal};

/// The analytical estimate for one adder node.
#[derive(Debug, Clone, PartialEq)]
pub struct AdderEstimate {
    /// The adder's output signal.
    pub signal: Signal,
    /// Analytical `P(error)` of this adder under the propagated operand
    /// probabilities (paper semantics: any stage deviates).
    pub error_probability: f64,
}

/// The composed analytical estimate for a whole datapath.
#[derive(Debug, Clone, PartialEq)]
pub struct DatapathEstimate {
    /// Per-adder estimates, in node order.
    pub adders: Vec<AdderEstimate>,
    /// `1 − Π (1 − pᵢ)`: the probability that *some* adder deviates, under
    /// the independence heuristic. An upper-bound-flavoured proxy for the
    /// output error rate.
    pub any_adder_error: f64,
    /// Propagated `P(bit = 1)` for every signal (indexed by
    /// [`Signal::index`]).
    pub signal_probabilities: Vec<Vec<f64>>,
}

/// Propagates input-bit probabilities through the datapath and scores every
/// adder with the paper's analysis.
///
/// `inputs` pairs each input name with its per-bit `P(bit = 1)` vector (LSB
/// first, matching the declared width).
///
/// # Errors
///
/// * [`DatapathError::MissingInput`] / [`DatapathError::UnknownInput`] on
///   name mismatches,
/// * [`DatapathError::BadProbabilities`] if a vector has the wrong length
///   or out-of-range values.
pub fn estimate(
    dp: &Datapath,
    inputs: &[(&str, Vec<f64>)],
) -> Result<DatapathEstimate, DatapathError> {
    for (name, _) in inputs {
        if !dp.input_names().any(|n| n == *name) {
            return Err(DatapathError::UnknownInput {
                name: (*name).to_owned(),
            });
        }
    }
    let mut probs: Vec<Vec<f64>> = Vec::with_capacity(dp.len());
    let mut adders = Vec::new();
    for index in 0..dp.len() {
        let signal = signal_at(dp, index);
        let width = dp.width(signal);
        let bit_probs = match dp.node(signal) {
            Node::Input { name } => {
                let (_, p) = inputs
                    .iter()
                    .find(|(n, _)| n == name)
                    .ok_or_else(|| DatapathError::MissingInput { name: name.clone() })?;
                if p.len() != width || p.iter().any(|&v| !(0.0..=1.0).contains(&v)) {
                    return Err(DatapathError::BadProbabilities { name: name.clone() });
                }
                p.clone()
            }
            Node::Const { value } => (0..width).map(|i| ((value >> i) & 1) as f64).collect(),
            Node::Shl { a, amount } => {
                let mut v = vec![0.0; *amount];
                v.extend_from_slice(&probs[a.index()]);
                v
            }
            Node::Gate { a, bit } => {
                // P(out_i = 1) = P(bit = 1) · P(a_i = 1): the control is an
                // independent input bit in the supported topologies.
                let p_bit = probs[bit.index()][0];
                probs[a.index()].iter().map(|&p| p * p_bit).collect()
            }
            Node::Add { a, b, chain } => {
                let extend = |src: &[f64]| {
                    let mut v = src.to_vec();
                    v.resize(chain.width(), 0.0);
                    v
                };
                let profile =
                    InputProfile::new(extend(&probs[a.index()]), extend(&probs[b.index()]), 0.0)
                        .expect("propagated probabilities stay in [0, 1]");
                let analysis = analyze(chain, &profile).expect("widths match by construction");
                adders.push(AdderEstimate {
                    signal,
                    error_probability: analysis.error_probability().clamp(0.0, 1.0),
                });
                let signals =
                    signal_probabilities(chain, &profile).expect("widths match by construction");
                let mut out = signals.sum;
                out.push(signals.carry[chain.width()]);
                out
            }
        };
        probs.push(bit_probs);
    }
    let any_adder_error = 1.0
        - adders
            .iter()
            .map(|a| 1.0 - a.error_probability)
            .product::<f64>();
    Ok(DatapathEstimate {
        adders,
        any_adder_error,
        signal_probabilities: probs,
    })
}

/// Monte-Carlo ground truth for a datapath output: draws inputs from the
/// same per-bit Bernoulli model and measures the real error rate of
/// `output` against the exact evaluation.
///
/// Returns `(output_error_rate, mean_abs_error_distance)`.
///
/// # Errors
///
/// Same conditions as [`estimate`].
pub fn simulate(
    dp: &Datapath,
    output: Signal,
    inputs: &[(&str, Vec<f64>)],
    samples: u64,
    seed: u64,
) -> Result<(f64, f64), DatapathError> {
    // Validate names/lengths by reusing the estimator's checks.
    let _ = estimate(dp, inputs)?;
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut errors = 0u64;
    let mut abs_ed_sum = 0.0f64;
    for _ in 0..samples {
        let drawn: Vec<(&str, u64)> = inputs
            .iter()
            .map(|(name, probs)| {
                let mut v = 0u64;
                for (i, &p) in probs.iter().enumerate() {
                    if rng.next_f64() < p {
                        v |= 1 << i;
                    }
                }
                (*name, v)
            })
            .collect();
        let approx = dp.evaluate(&drawn)?.value(output);
        let exact = dp.evaluate_exact(&drawn)?.value(output);
        if approx != exact {
            errors += 1;
        }
        abs_ed_sum += (approx as i64 - exact as i64).unsigned_abs() as f64;
    }
    Ok((
        errors as f64 / samples.max(1) as f64,
        abs_ed_sum / samples.max(1) as f64,
    ))
}

fn signal_at(_dp: &Datapath, index: usize) -> Signal {
    // Signals are created densely; the caller iterates 0..dp.len().
    Signal::new(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sealpaa_cells::{AdderChain, StandardCell};

    fn chain(cell: StandardCell, width: usize) -> AdderChain {
        AdderChain::uniform(cell.cell(), width)
    }

    fn tree(cell: StandardCell) -> (Datapath, Signal) {
        let mut dp = Datapath::new();
        let a = dp.input("a", 6);
        let b = dp.input("b", 6);
        let c = dp.input("c", 6);
        let d = dp.input("d", 6);
        let ab = dp.add(a, b, chain(cell, 6)).expect("fits");
        let cd = dp.add(c, d, chain(cell, 6)).expect("fits");
        let sum = dp.add(ab, cd, chain(cell, 7)).expect("fits");
        (dp, sum)
    }

    fn uniform_inputs() -> Vec<(&'static str, Vec<f64>)> {
        ["a", "b", "c", "d"]
            .into_iter()
            .map(|n| (n, vec![0.5; 6]))
            .collect()
    }

    #[test]
    fn accurate_tree_estimates_zero_error() {
        let (dp, _) = tree(StandardCell::Accurate);
        let est = estimate(&dp, &uniform_inputs()).expect("valid inputs");
        assert_eq!(est.adders.len(), 3);
        for a in &est.adders {
            assert!(a.error_probability.abs() < 1e-12);
        }
        assert!(est.any_adder_error.abs() < 1e-12);
    }

    #[test]
    fn signal_probabilities_propagate_through_adders() {
        let (dp, sum) = tree(StandardCell::Accurate);
        let est = estimate(&dp, &uniform_inputs()).expect("valid inputs");
        // A fair exact adder keeps bits balanced.
        for &p in &est.signal_probabilities[sum.index()] {
            assert!((0.0..=1.0).contains(&p));
        }
        assert!((est.signal_probabilities[sum.index()][0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn estimate_tracks_monte_carlo_on_a_tree() {
        let (dp, sum) = tree(StandardCell::Lpaa6);
        let inputs = uniform_inputs();
        let est = estimate(&dp, &inputs).expect("valid inputs");
        let (mc_error, _) = simulate(&dp, sum, &inputs, 40_000, 11).expect("valid inputs");
        // `any_adder_error` counts stage deviations under an independence
        // heuristic; it must land in the right regime (same order, upper
        // side) of the true output error.
        assert!(
            est.any_adder_error >= mc_error - 0.02,
            "est {} vs mc {mc_error}",
            est.any_adder_error
        );
        assert!(
            (est.any_adder_error - mc_error).abs() < 0.15,
            "est {} vs mc {mc_error}",
            est.any_adder_error
        );
    }

    #[test]
    fn constants_and_shifts_propagate_deterministic_bits() {
        let mut dp = Datapath::new();
        let x = dp.input("x", 4);
        let k = dp.constant(0b1010, 4);
        let shifted = dp.shl(k, 1).expect("fits");
        let sum = dp
            .add(x, shifted, chain(StandardCell::Accurate, 5))
            .expect("fits");
        let est = estimate(&dp, &[("x", vec![0.5; 4])]).expect("valid inputs");
        assert_eq!(
            est.signal_probabilities[k.index()],
            vec![0.0, 1.0, 0.0, 1.0]
        );
        assert_eq!(
            est.signal_probabilities[shifted.index()],
            vec![0.0, 0.0, 1.0, 0.0, 1.0]
        );
        assert_eq!(est.signal_probabilities[sum.index()].len(), dp.width(sum));
    }

    #[test]
    fn bad_probability_vectors_rejected() {
        let mut dp = Datapath::new();
        let _ = dp.input("x", 4);
        assert!(matches!(
            estimate(&dp, &[("x", vec![0.5; 3])]),
            Err(DatapathError::BadProbabilities { .. })
        ));
        assert!(matches!(
            estimate(&dp, &[("x", vec![0.5, 0.5, 0.5, 1.5])]),
            Err(DatapathError::BadProbabilities { .. })
        ));
        assert!(matches!(
            estimate(&dp, &[("y", vec![0.5; 4])]),
            Err(DatapathError::UnknownInput { .. })
        ));
        assert!(matches!(
            estimate(&dp, &[]),
            Err(DatapathError::MissingInput { .. })
        ));
    }

    #[test]
    fn simulation_of_accurate_tree_never_errs() {
        let (dp, sum) = tree(StandardCell::Accurate);
        let (err, med) = simulate(&dp, sum, &uniform_inputs(), 2_000, 5).expect("valid");
        assert_eq!(err, 0.0);
        assert_eq!(med, 0.0);
    }
}
