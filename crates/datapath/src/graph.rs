//! The datapath DAG and its bit-true evaluation.

use std::fmt;

use sealpaa_cells::{AdderChain, Cell};

/// A handle to one signal (node output) in a [`Datapath`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signal(usize);

impl Signal {
    /// The node index (stable for the life of the datapath).
    pub fn index(self) -> usize {
        self.0
    }

    pub(crate) fn new(index: usize) -> Signal {
        Signal(index)
    }
}

/// Errors produced while building or evaluating a [`Datapath`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatapathError {
    /// Two inputs share a name.
    DuplicateInput {
        /// The repeated name.
        name: String,
    },
    /// An adder chain is narrower than one of its operands, which would
    /// silently truncate bits.
    ChainTooNarrow {
        /// The chain width.
        chain: usize,
        /// The wider operand's width.
        operand: usize,
    },
    /// A signal would exceed the 63-bit evaluation limit.
    TooWide {
        /// The requested width.
        width: usize,
    },
    /// A referenced signal does not belong to this datapath.
    UnknownSignal {
        /// The offending index.
        index: usize,
    },
    /// `evaluate` was not given a value for this input.
    MissingInput {
        /// The input's name.
        name: String,
    },
    /// `evaluate` was given a value for a name that is not an input.
    UnknownInput {
        /// The offending name.
        name: String,
    },
    /// A per-bit probability vector does not match its input's width or
    /// contains a value outside `[0, 1]`.
    BadProbabilities {
        /// The input's name.
        name: String,
    },
    /// A gate node's control signal is wider than one bit.
    GateControlTooWide {
        /// The control signal's width.
        width: usize,
    },
    /// A per-adder cell assignment does not cover every adder node.
    AdderCountMismatch {
        /// Number of adder nodes in the datapath.
        expected: usize,
        /// Number of cells supplied.
        got: usize,
    },
}

impl fmt::Display for DatapathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatapathError::DuplicateInput { name } => write!(f, "duplicate input name {name:?}"),
            DatapathError::ChainTooNarrow { chain, operand } => write!(
                f,
                "adder chain is {chain} bits wide but an operand has {operand} bits"
            ),
            DatapathError::TooWide { width } => {
                write!(f, "signal width {width} exceeds the 63-bit evaluation limit")
            }
            DatapathError::UnknownSignal { index } => {
                write!(f, "signal #{index} does not belong to this datapath")
            }
            DatapathError::MissingInput { name } => write!(f, "no value given for input {name:?}"),
            DatapathError::UnknownInput { name } => {
                write!(f, "value given for unknown input {name:?}")
            }
            DatapathError::BadProbabilities { name } => write!(
                f,
                "bit-probability vector for input {name:?} has the wrong length or values outside [0, 1]"
            ),
            DatapathError::GateControlTooWide { width } => write!(
                f,
                "gate control signal must be 1 bit wide, got {width} bits"
            ),
            DatapathError::AdderCountMismatch { expected, got } => write!(
                f,
                "datapath has {expected} adder nodes but {got} cells were assigned"
            ),
        }
    }
}

impl std::error::Error for DatapathError {}

#[derive(Debug, Clone)]
pub(crate) enum Node {
    Input {
        name: String,
    },
    Const {
        value: u64,
    },
    Add {
        a: Signal,
        b: Signal,
        chain: AdderChain,
    },
    Shl {
        a: Signal,
        amount: usize,
    },
    Gate {
        a: Signal,
        bit: Signal,
    },
}

/// A read-only view of one datapath node, for analyses built in other
/// crates (error-model propagation, optimizers) that need to walk the graph
/// without owning it.
#[derive(Debug, Clone, Copy)]
pub enum NodeKind<'a> {
    /// An external input.
    Input {
        /// The input's name.
        name: &'a str,
    },
    /// A constant.
    Const {
        /// The constant's value.
        value: u64,
    },
    /// An addition through a concrete (possibly approximate) chain.
    Add {
        /// First operand.
        a: Signal,
        /// Second operand.
        b: Signal,
        /// The chain performing the addition.
        chain: &'a AdderChain,
    },
    /// An exact left shift.
    Shl {
        /// The shifted signal.
        a: Signal,
        /// Shift amount in bits.
        amount: usize,
    },
    /// A gated pass-through: `a` if the 1-bit control is set, else 0 (the
    /// partial-product generator of a shift-add multiplier).
    Gate {
        /// The gated signal.
        a: Signal,
        /// The 1-bit control signal.
        bit: Signal,
    },
}

/// A feed-forward datapath whose additions are performed by concrete
/// (possibly approximate) [`AdderChain`]s. Nodes can only reference earlier
/// signals, so the graph is acyclic by construction.
#[derive(Debug, Clone, Default)]
pub struct Datapath {
    nodes: Vec<Node>,
    widths: Vec<usize>,
}

impl Datapath {
    /// Creates an empty datapath.
    pub fn new() -> Self {
        Datapath::default()
    }

    /// Declares an external input of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or above 63, or if `name` repeats an earlier
    /// input (inputs are identified by name in [`evaluate`](Self::evaluate)).
    pub fn input(&mut self, name: impl Into<String>, width: usize) -> Signal {
        let name = name.into();
        assert!((1..=63).contains(&width), "input width must be 1..=63");
        assert!(
            !self.input_names().any(|n| n == name),
            "duplicate input name {name:?}"
        );
        self.push(Node::Input { name }, width)
    }

    /// Declares a constant.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or above 63 or `value` does not fit in it.
    pub fn constant(&mut self, value: u64, width: usize) -> Signal {
        assert!((1..=63).contains(&width), "constant width must be 1..=63");
        assert!(
            width == 63 || value < (1u64 << width),
            "constant {value} does not fit in {width} bits"
        );
        self.push(Node::Const { value }, width)
    }

    /// Adds two signals through `chain`. The output is `chain.width() + 1`
    /// bits wide (the carry-out is part of the value).
    ///
    /// # Errors
    ///
    /// * [`DatapathError::UnknownSignal`] if an operand is foreign,
    /// * [`DatapathError::ChainTooNarrow`] if the chain cannot hold an
    ///   operand without truncation,
    /// * [`DatapathError::TooWide`] if the result would exceed 63 bits.
    pub fn add(
        &mut self,
        a: Signal,
        b: Signal,
        chain: AdderChain,
    ) -> Result<Signal, DatapathError> {
        self.check(a)?;
        self.check(b)?;
        let operand = self.width(a).max(self.width(b));
        if chain.width() < operand {
            return Err(DatapathError::ChainTooNarrow {
                chain: chain.width(),
                operand,
            });
        }
        let out_width = chain.width() + 1;
        if out_width > 63 {
            return Err(DatapathError::TooWide { width: out_width });
        }
        Ok(self.push(Node::Add { a, b, chain }, out_width))
    }

    /// Shifts a signal left by `amount` bits (exact; widens the signal).
    ///
    /// # Errors
    ///
    /// * [`DatapathError::UnknownSignal`] if the operand is foreign,
    /// * [`DatapathError::TooWide`] if the result would exceed 63 bits.
    pub fn shl(&mut self, a: Signal, amount: usize) -> Result<Signal, DatapathError> {
        self.check(a)?;
        let out_width = self.width(a) + amount;
        if out_width > 63 {
            return Err(DatapathError::TooWide { width: out_width });
        }
        Ok(self.push(Node::Shl { a, amount }, out_width))
    }

    /// Gates a signal by a 1-bit control: the output is `a` when the control
    /// bit is 1 and 0 otherwise (a partial-product row of a multiplier).
    /// The output has `a`'s width. The gate is exact hardware — it behaves
    /// identically under approximate and exact evaluation.
    ///
    /// # Errors
    ///
    /// * [`DatapathError::UnknownSignal`] if an operand is foreign,
    /// * [`DatapathError::GateControlTooWide`] if `bit` is not 1 bit wide.
    pub fn gate(&mut self, a: Signal, bit: Signal) -> Result<Signal, DatapathError> {
        self.check(a)?;
        self.check(bit)?;
        if self.width(bit) != 1 {
            return Err(DatapathError::GateControlTooWide {
                width: self.width(bit),
            });
        }
        let out_width = self.width(a);
        Ok(self.push(Node::Gate { a, bit }, out_width))
    }

    /// The bit width of a signal.
    ///
    /// # Panics
    ///
    /// Panics if `signal` is foreign to this datapath.
    pub fn width(&self, signal: Signal) -> usize {
        self.widths[signal.0]
    }

    /// A read-only view of the node behind a signal.
    ///
    /// # Panics
    ///
    /// Panics if `signal` is foreign to this datapath.
    pub fn kind(&self, signal: Signal) -> NodeKind<'_> {
        match &self.nodes[signal.0] {
            Node::Input { name } => NodeKind::Input { name },
            Node::Const { value } => NodeKind::Const { value: *value },
            Node::Add { a, b, chain } => NodeKind::Add {
                a: *a,
                b: *b,
                chain,
            },
            Node::Shl { a, amount } => NodeKind::Shl {
                a: *a,
                amount: *amount,
            },
            Node::Gate { a, bit } => NodeKind::Gate { a: *a, bit: *bit },
        }
    }

    /// Iterates every signal in creation (topological) order.
    pub fn signals(&self) -> impl Iterator<Item = Signal> {
        (0..self.nodes.len()).map(Signal)
    }

    /// A copy of this datapath with every adder chain replaced by a uniform
    /// chain of the assigned cell at the original chain's width — the
    /// substitution step of per-node adder-assignment search. `cells[k]` is
    /// assigned to the `k`-th adder in [`adders`](Self::adders) order.
    ///
    /// # Errors
    ///
    /// Returns [`DatapathError::AdderCountMismatch`] if `cells` does not
    /// have exactly one cell per adder node.
    pub fn with_adder_cells(&self, cells: &[Cell]) -> Result<Datapath, DatapathError> {
        let expected = self
            .nodes
            .iter()
            .filter(|n| matches!(n, Node::Add { .. }))
            .count();
        if cells.len() != expected {
            return Err(DatapathError::AdderCountMismatch {
                expected,
                got: cells.len(),
            });
        }
        let mut next = cells.iter();
        let nodes = self
            .nodes
            .iter()
            .map(|node| match node {
                Node::Add { a, b, chain } => Node::Add {
                    a: *a,
                    b: *b,
                    chain: AdderChain::uniform(
                        next.next().expect("count checked above").clone(),
                        chain.width(),
                    ),
                },
                other => other.clone(),
            })
            .collect();
        Ok(Datapath {
            nodes,
            widths: self.widths.clone(),
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the datapath has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The signals that are `Add` nodes (the fallible ones), in creation
    /// order.
    pub fn adders(&self) -> Vec<Signal> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| matches!(n, Node::Add { .. }).then_some(Signal(i)))
            .collect()
    }

    /// Iterates over the declared input names, in creation order.
    pub fn input_names(&self) -> impl Iterator<Item = &str> {
        self.nodes.iter().filter_map(|n| match n {
            Node::Input { name } => Some(name.as_str()),
            _ => None,
        })
    }

    /// Evaluates the datapath bit-true (approximate adders behave per their
    /// truth tables). Input values are truncated to their declared widths.
    ///
    /// # Errors
    ///
    /// [`DatapathError::MissingInput`] / [`DatapathError::UnknownInput`] on
    /// an input assignment mismatch.
    pub fn evaluate(&self, inputs: &[(&str, u64)]) -> Result<Evaluation, DatapathError> {
        self.run(inputs, false)
    }

    /// Evaluates the datapath with every adder replaced by exact addition —
    /// the golden reference for quality measurements.
    ///
    /// # Errors
    ///
    /// Same conditions as [`evaluate`](Self::evaluate).
    pub fn evaluate_exact(&self, inputs: &[(&str, u64)]) -> Result<Evaluation, DatapathError> {
        self.run(inputs, true)
    }

    fn run(&self, inputs: &[(&str, u64)], exact: bool) -> Result<Evaluation, DatapathError> {
        for (name, _) in inputs {
            if !self.input_names().any(|n| n == *name) {
                return Err(DatapathError::UnknownInput {
                    name: (*name).to_owned(),
                });
            }
        }
        let mut values = Vec::with_capacity(self.nodes.len());
        for (i, node) in self.nodes.iter().enumerate() {
            let value = match node {
                Node::Input { name } => {
                    let (_, v) = inputs
                        .iter()
                        .find(|(n, _)| n == name)
                        .ok_or_else(|| DatapathError::MissingInput { name: name.clone() })?;
                    v & mask(self.widths[i])
                }
                Node::Const { value } => *value,
                Node::Add { a, b, chain } => {
                    let (va, vb) = (values[a.0], values[b.0]);
                    if exact {
                        chain.accurate_sum(va, vb, false).value()
                    } else {
                        chain.add(va, vb, false).value()
                    }
                }
                Node::Shl { a, amount } => values[a.0] << amount,
                Node::Gate { a, bit } => {
                    if values[bit.0] & 1 == 1 {
                        values[a.0]
                    } else {
                        0
                    }
                }
            };
            values.push(value);
        }
        Ok(Evaluation { values })
    }

    fn push(&mut self, node: Node, width: usize) -> Signal {
        self.nodes.push(node);
        self.widths.push(width);
        Signal(self.nodes.len() - 1)
    }

    fn check(&self, signal: Signal) -> Result<(), DatapathError> {
        if signal.0 < self.nodes.len() {
            Ok(())
        } else {
            Err(DatapathError::UnknownSignal { index: signal.0 })
        }
    }

    pub(crate) fn node(&self, signal: Signal) -> &Node {
        &self.nodes[signal.0]
    }
}

fn mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// The values of every signal after one evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evaluation {
    values: Vec<u64>,
}

impl Evaluation {
    /// The value of one signal.
    ///
    /// # Panics
    ///
    /// Panics if `signal` is foreign to the evaluated datapath.
    pub fn value(&self, signal: Signal) -> u64 {
        self.values[signal.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sealpaa_cells::StandardCell;

    fn accurate(width: usize) -> AdderChain {
        AdderChain::uniform(StandardCell::Accurate.cell(), width)
    }

    #[test]
    fn adder_tree_with_exact_cells_sums_exactly() {
        let mut dp = Datapath::new();
        let a = dp.input("a", 8);
        let b = dp.input("b", 8);
        let c = dp.input("c", 8);
        let d = dp.input("d", 8);
        let ab = dp.add(a, b, accurate(8)).expect("fits");
        let cd = dp.add(c, d, accurate(8)).expect("fits");
        let sum = dp.add(ab, cd, accurate(9)).expect("fits");
        let out = dp
            .evaluate(&[("a", 200), ("b", 100), ("c", 255), ("d", 1)])
            .expect("all inputs bound");
        assert_eq!(out.value(sum), 556);
        assert_eq!(dp.adders().len(), 3);
    }

    #[test]
    fn approximate_and_exact_evaluations_diverge_on_error_rows() {
        let mut dp = Datapath::new();
        let x = dp.input("x", 4);
        let y = dp.input("y", 4);
        let chain = AdderChain::uniform(StandardCell::Lpaa1.cell(), 4);
        let s = dp.add(x, y, chain).expect("fits");
        // (0,1,0) at stage 0 is an LPAA 1 error row.
        let approx = dp.evaluate(&[("x", 0), ("y", 1)]).expect("bound");
        let exact = dp.evaluate_exact(&[("x", 0), ("y", 1)]).expect("bound");
        assert_ne!(approx.value(s), exact.value(s));
        assert_eq!(exact.value(s), 1);
    }

    #[test]
    fn shift_and_constant_nodes() {
        let mut dp = Datapath::new();
        let x = dp.input("x", 4);
        let k = dp.constant(3, 4);
        let shifted = dp.shl(x, 2).expect("narrow enough");
        let sum = dp.add(shifted, k, accurate(6)).expect("fits");
        let out = dp.evaluate(&[("x", 5)]).expect("bound");
        assert_eq!(out.value(shifted), 20);
        assert_eq!(out.value(sum), 23);
        assert_eq!(dp.width(sum), 7);
    }

    #[test]
    fn input_values_truncate_to_width() {
        let mut dp = Datapath::new();
        let x = dp.input("x", 4);
        let out = dp.evaluate(&[("x", 0xFF)]).expect("bound");
        assert_eq!(out.value(x), 0xF);
    }

    #[test]
    fn narrow_chain_rejected() {
        let mut dp = Datapath::new();
        let x = dp.input("x", 8);
        let y = dp.input("y", 8);
        assert_eq!(
            dp.add(x, y, accurate(4)),
            Err(DatapathError::ChainTooNarrow {
                chain: 4,
                operand: 8
            })
        );
    }

    #[test]
    fn width_limits_enforced() {
        let mut dp = Datapath::new();
        let x = dp.input("x", 40);
        assert!(matches!(dp.shl(x, 30), Err(DatapathError::TooWide { .. })));
        let y = dp.input("y", 40);
        assert!(matches!(
            dp.add(x, y, accurate(63)),
            Err(DatapathError::TooWide { .. })
        ));
    }

    #[test]
    fn foreign_signal_rejected() {
        let mut other = Datapath::new();
        let a = other.input("a", 4);
        let b = other.input("b", 4);
        let mut dp = Datapath::new();
        assert!(matches!(
            dp.add(a, b, accurate(4)),
            Err(DatapathError::UnknownSignal { .. })
        ));
    }

    #[test]
    fn input_binding_errors() {
        let mut dp = Datapath::new();
        let _ = dp.input("x", 4);
        assert!(matches!(
            dp.evaluate(&[]),
            Err(DatapathError::MissingInput { .. })
        ));
        assert!(matches!(
            dp.evaluate(&[("x", 0), ("bogus", 1)]),
            Err(DatapathError::UnknownInput { .. })
        ));
    }

    #[test]
    fn gate_passes_or_zeroes() {
        let mut dp = Datapath::new();
        let x = dp.input("x", 4);
        let sel = dp.input("sel", 1);
        let g = dp.gate(x, sel).expect("1-bit control");
        assert_eq!(dp.width(g), 4);
        let on = dp.evaluate(&[("x", 9), ("sel", 1)]).expect("bound");
        let off = dp.evaluate(&[("x", 9), ("sel", 0)]).expect("bound");
        assert_eq!(on.value(g), 9);
        assert_eq!(off.value(g), 0);
        // Gates are exact hardware: both evaluation modes agree.
        let exact = dp.evaluate_exact(&[("x", 9), ("sel", 1)]).expect("bound");
        assert_eq!(exact.value(g), 9);
    }

    #[test]
    fn wide_gate_control_rejected() {
        let mut dp = Datapath::new();
        let x = dp.input("x", 4);
        let sel = dp.input("sel", 2);
        assert_eq!(
            dp.gate(x, sel),
            Err(DatapathError::GateControlTooWide { width: 2 })
        );
    }

    #[test]
    fn kind_views_match_builders() {
        let mut dp = Datapath::new();
        let x = dp.input("x", 4);
        let k = dp.constant(5, 4);
        let s = dp.shl(x, 1).expect("fits");
        let sum = dp.add(s, k, accurate(5)).expect("fits");
        assert!(matches!(dp.kind(x), NodeKind::Input { name: "x" }));
        assert!(matches!(dp.kind(k), NodeKind::Const { value: 5 }));
        assert!(matches!(dp.kind(s), NodeKind::Shl { amount: 1, .. }));
        match dp.kind(sum) {
            NodeKind::Add { a, b, chain } => {
                assert_eq!((a, b), (s, k));
                assert_eq!(chain.width(), 5);
            }
            other => panic!("expected Add, got {other:?}"),
        }
        assert_eq!(dp.signals().count(), dp.len());
    }

    #[test]
    fn with_adder_cells_substitutes_every_adder() {
        let mut dp = Datapath::new();
        let a = dp.input("a", 4);
        let b = dp.input("b", 4);
        let c = dp.input("c", 4);
        let ab = dp.add(a, b, accurate(4)).expect("fits");
        let sum = dp.add(ab, c, accurate(5)).expect("fits");
        let swapped = dp
            .with_adder_cells(&[StandardCell::Lpaa1.cell(), StandardCell::Accurate.cell()])
            .expect("one cell per adder");
        // Same shape and widths, different first-adder behaviour.
        assert_eq!(swapped.len(), dp.len());
        assert_eq!(swapped.width(sum), dp.width(sum));
        let inputs = [("a", 0u64), ("b", 1), ("c", 0)];
        let original = dp.evaluate(&inputs).expect("bound").value(sum);
        let modified = swapped.evaluate(&inputs).expect("bound").value(sum);
        // (0,1,0) at stage 0 is an LPAA 1 error row; the original is exact.
        assert_eq!(original, 1);
        assert_ne!(modified, original);
        assert_eq!(
            dp.with_adder_cells(&[StandardCell::Lpaa1.cell()])
                .expect_err("wrong count"),
            DatapathError::AdderCountMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    #[should_panic(expected = "duplicate input name")]
    fn duplicate_input_panics() {
        let mut dp = Datapath::new();
        let _ = dp.input("x", 4);
        let _ = dp.input("x", 4);
    }
}
