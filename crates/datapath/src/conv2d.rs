//! 2-D convolution (image filtering) on approximate adders.
//!
//! The paper's headline application domain is image/video processing; a 2-D
//! convolution kernel (blur, sharpen, Gaussian) is the canonical such
//! workload. As in [`FirFilter`](crate::FirFilter), every
//! coefficient-multiply is decomposed into shift-adds and every addition
//! runs through the configured approximate chain, so the kernel's quality
//! directly reflects the cell's multi-bit error behaviour.

use sealpaa_cells::{AdderChain, Cell};

use crate::graph::DatapathError;

/// A small grayscale image: `height × width` pixels, row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<u64>,
}

impl Image {
    /// Builds an image from row-major pixels.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height` or either dimension is 0.
    pub fn new(width: usize, height: usize, pixels: Vec<u64>) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        assert_eq!(
            pixels.len(),
            width * height,
            "pixel count must match dimensions"
        );
        Image {
            width,
            height,
            pixels,
        }
    }

    /// A deterministic synthetic test image: a diagonal gradient with a
    /// superimposed ripple, quantized to `bits` bits.
    pub fn synthetic(width: usize, height: usize, bits: usize) -> Self {
        let peak = ((1u64 << bits) - 1) as f64;
        let pixels = (0..height)
            .flat_map(|y| {
                (0..width).map(move |x| {
                    let gradient = (x + y) as f64 / (width + height) as f64;
                    let ripple = 0.15 * ((x as f64 / 3.0).sin() * (y as f64 / 5.0).cos());
                    ((gradient + ripple).clamp(0.0, 1.0) * peak) as u64
                })
            })
            .collect();
        Image::new(width, height, pixels)
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn pixel(&self, x: usize, y: usize) -> u64 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Peak-signal-to-noise ratio of `self` against a reference image of the
    /// same dimensions, with the reference's maximum as the peak.
    ///
    /// Returns `None` when the ratio is undefined as a finite number:
    /// identical images (`mse == 0`, conventionally "infinite PSNR") or an
    /// all-zero reference (`peak == 0`, no signal to compare against).
    /// Callers rendering quality reports should print these cases as
    /// "identical" rather than a numeric dB figure. (Earlier versions
    /// returned `f64::INFINITY` here, which leaked `inf` into reports and
    /// JSON output.)
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn psnr_against(&self, reference: &Image) -> Option<f64> {
        assert_eq!(
            (self.width, self.height),
            (reference.width, reference.height),
            "image dimensions must match"
        );
        let mut sq = 0.0f64;
        let mut peak = 0u64;
        for (a, e) in self.pixels.iter().zip(&reference.pixels) {
            sq += (a.abs_diff(*e) as f64).powi(2);
            peak = peak.max(*e);
        }
        let mse = sq / self.pixels.len() as f64;
        if mse == 0.0 || peak == 0 {
            None
        } else {
            Some(10.0 * ((peak as f64).powi(2) / mse).log10())
        }
    }
}

/// A 2-D convolution whose every addition runs through an approximate adder
/// chain.
///
/// # Examples
///
/// ```
/// use sealpaa_cells::StandardCell;
/// use sealpaa_datapath::{Conv2d, Image};
///
/// // 3x3 Gaussian blur on 8-bit pixels, exact cells.
/// let kernel = [[1, 2, 1], [2, 4, 2], [1, 2, 1]];
/// let blur = Conv2d::new(
///     StandardCell::Accurate.cell(),
///     &kernel.map(|r| r.to_vec()),
///     8,
/// )?;
/// let image = Image::synthetic(16, 16, 8);
/// let out = blur.apply(&image);
/// assert_eq!(out.width(), 14); // valid convolution shrinks by kernel-1
/// assert!(out.psnr_against(&blur.apply_exact(&image)).is_none()); // identical
/// # Ok::<(), sealpaa_datapath::DatapathError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    accumulator: AdderChain,
    kernel: Vec<Vec<u64>>,
    pixel_bits: usize,
}

impl Conv2d {
    /// Builds a convolution for `pixel_bits`-bit pixels with the given
    /// unsigned kernel. The accumulator chain is sized for the worst case.
    ///
    /// # Errors
    ///
    /// Returns [`DatapathError::TooWide`] if the worst-case accumulator
    /// exceeds the evaluation width.
    ///
    /// # Panics
    ///
    /// Panics if the kernel is empty, ragged, all-zero, or `pixel_bits` is 0.
    pub fn new(cell: Cell, kernel: &[Vec<u64>], pixel_bits: usize) -> Result<Self, DatapathError> {
        assert!(
            !kernel.is_empty() && !kernel[0].is_empty(),
            "kernel must be non-empty"
        );
        assert!(pixel_bits > 0, "pixels need at least one bit");
        let kw = kernel[0].len();
        assert!(
            kernel.iter().all(|row| row.len() == kw),
            "kernel rows must have equal length"
        );
        let gain: u64 = kernel.iter().flatten().sum();
        assert!(gain > 0, "at least one kernel coefficient must be non-zero");
        let acc_width = pixel_bits + (64 - gain.leading_zeros() as usize);
        if acc_width > 62 {
            return Err(DatapathError::TooWide { width: acc_width });
        }
        Ok(Conv2d {
            accumulator: AdderChain::uniform(cell, acc_width),
            kernel: kernel.to_vec(),
            pixel_bits,
        })
    }

    /// Kernel dimensions `(height, width)`.
    pub fn kernel_size(&self) -> (usize, usize) {
        (self.kernel.len(), self.kernel[0].len())
    }

    /// Valid convolution through the approximate accumulator; the output
    /// shrinks by `kernel − 1` in each dimension.
    ///
    /// # Panics
    ///
    /// Panics if the image is smaller than the kernel.
    pub fn apply(&self, image: &Image) -> Image {
        self.run(image, false)
    }

    /// The exact reference convolution.
    ///
    /// # Panics
    ///
    /// Panics if the image is smaller than the kernel.
    pub fn apply_exact(&self, image: &Image) -> Image {
        self.run(image, true)
    }

    fn run(&self, image: &Image, exact: bool) -> Image {
        let (kh, kw) = self.kernel_size();
        assert!(
            image.width >= kw && image.height >= kh,
            "image must be at least as large as the kernel"
        );
        let mask = (1u64 << self.pixel_bits) - 1;
        let out_w = image.width - kw + 1;
        let out_h = image.height - kh + 1;
        let mut pixels = Vec::with_capacity(out_w * out_h);
        for y in 0..out_h {
            for x in 0..out_w {
                let mut acc = 0u64;
                for (ky, row) in self.kernel.iter().enumerate() {
                    for (kx, &coeff) in row.iter().enumerate() {
                        let p = image.pixel(x + kx, y + ky) & mask;
                        for bit in 0..64 {
                            if (coeff >> bit) & 1 == 1 {
                                let term = p << bit;
                                acc = if exact {
                                    self.accumulator.accurate_sum(acc, term, false).sum_bits()
                                } else {
                                    self.accumulator.add(acc, term, false).sum_bits()
                                };
                            }
                        }
                    }
                }
                pixels.push(acc);
            }
        }
        Image::new(out_w, out_h, pixels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sealpaa_cells::StandardCell;

    fn gaussian() -> Vec<Vec<u64>> {
        vec![vec![1, 2, 1], vec![2, 4, 2], vec![1, 2, 1]]
    }

    #[test]
    fn exact_convolution_matches_direct_sum() {
        let conv = Conv2d::new(StandardCell::Accurate.cell(), &gaussian(), 8).expect("fits");
        let image = Image::synthetic(10, 8, 8);
        let out = conv.apply(&image);
        assert_eq!((out.width(), out.height()), (8, 6));
        for y in 0..6 {
            for x in 0..8 {
                let mut expect = 0u64;
                for ky in 0..3 {
                    for kx in 0..3 {
                        expect += gaussian()[ky][kx] * image.pixel(x + kx, y + ky);
                    }
                }
                assert_eq!(out.pixel(x, y), expect, "({x},{y})");
            }
        }
    }

    #[test]
    fn approximate_blur_loses_psnr_but_not_everything() {
        let image = Image::synthetic(24, 24, 8);
        let exact = Conv2d::new(StandardCell::Accurate.cell(), &gaussian(), 8)
            .expect("fits")
            .apply(&image);
        let good = Conv2d::new(StandardCell::Lpaa6.cell(), &gaussian(), 8)
            .expect("fits")
            .apply(&image);
        let bad = Conv2d::new(StandardCell::Lpaa2.cell(), &gaussian(), 8)
            .expect("fits")
            .apply(&image);
        let psnr_good = good.psnr_against(&exact).expect("differs from exact");
        let psnr_bad = bad.psnr_against(&exact).expect("differs from exact");
        // 16 chained approximate additions per pixel compound hard; the
        // point is the *ranking*, plus a sanity floor on the better cell.
        assert!(psnr_good.is_finite() && psnr_good > 5.0, "got {psnr_good}");
        assert!(psnr_good > psnr_bad, "{psnr_good} vs {psnr_bad}");
    }

    #[test]
    fn synthetic_image_is_deterministic_and_in_range() {
        let a = Image::synthetic(12, 9, 8);
        let b = Image::synthetic(12, 9, 8);
        assert_eq!(a, b);
        for y in 0..9 {
            for x in 0..12 {
                assert!(a.pixel(x, y) <= 255);
            }
        }
    }

    #[test]
    fn psnr_of_identical_images_is_undefined_not_inf() {
        let image = Image::synthetic(8, 8, 8);
        assert_eq!(image.psnr_against(&image), None);
        // A one-pixel difference brings it back to a finite figure.
        let mut pixels: Vec<u64> = (0..64).map(|i| image.pixel(i % 8, i / 8)).collect();
        pixels[0] ^= 1;
        let nudged = Image::new(8, 8, pixels);
        let psnr = nudged.psnr_against(&image).expect("differs");
        assert!(psnr.is_finite() && psnr > 0.0);
    }

    #[test]
    fn psnr_of_zero_reference_is_undefined() {
        let zero = Image::new(2, 2, vec![0; 4]);
        let other = Image::new(2, 2, vec![1, 0, 0, 0]);
        assert_eq!(other.psnr_against(&zero), None);
    }

    #[test]
    #[should_panic(expected = "dimensions must match")]
    fn psnr_dimension_mismatch_panics() {
        let a = Image::synthetic(8, 8, 8);
        let b = Image::synthetic(9, 8, 8);
        let _ = a.psnr_against(&b);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_kernel_panics() {
        let _ = Conv2d::new(StandardCell::Accurate.cell(), &[vec![1, 2], vec![1]], 8);
    }

    #[test]
    fn oversized_accumulator_rejected() {
        let err = Conv2d::new(StandardCell::Accurate.cell(), &[vec![u64::MAX >> 4]], 8)
            .expect_err("too wide");
        assert!(matches!(err, DatapathError::TooWide { .. }));
    }

    #[test]
    #[should_panic(expected = "at least as large")]
    fn image_smaller_than_kernel_panics() {
        let conv = Conv2d::new(StandardCell::Accurate.cell(), &gaussian(), 8).expect("fits");
        let _ = conv.apply(&Image::synthetic(2, 2, 8));
    }
}
