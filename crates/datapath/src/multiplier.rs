//! An approximate shift-add multiplier built from approximate adder chains.
//!
//! Multipliers are where approximate adders earn their keep (the paper cites
//! the architectural-space exploration of approximate multipliers, its
//! reference [16]): a `w × w` multiplication is `w − 1` additions of shifted
//! partial products, so per-adder error compounds. This module implements
//! the classic shift-add scheme with a configurable accumulator chain and
//! measures the resulting arithmetic quality.

use sealpaa_cells::{AdderChain, Cell};
use sealpaa_sim::Xoshiro256pp;

/// A `width × width` unsigned multiplier whose partial-product accumulation
/// runs through approximate adder chains.
///
/// Partial products (`a << i` for every set bit `b_i`) are accumulated LSB
/// first through a `2·width`-bit chain of the configured cell.
///
/// # Examples
///
/// ```
/// use sealpaa_cells::StandardCell;
/// use sealpaa_datapath::ShiftAddMultiplier;
///
/// let exact = ShiftAddMultiplier::new(StandardCell::Accurate.cell(), 8);
/// assert_eq!(exact.multiply(200, 100), 20_000);
///
/// let approx = ShiftAddMultiplier::new(StandardCell::Lpaa6.cell(), 8);
/// let quality = approx.quality(20_000, 7);
/// assert!(quality.error_rate > 0.0 && quality.error_rate < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct ShiftAddMultiplier {
    accumulator: AdderChain,
    width: usize,
}

impl ShiftAddMultiplier {
    /// Builds a multiplier for `width`-bit operands using `cell` in the
    /// accumulator.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or above 31 (the product must fit 63 bits).
    pub fn new(cell: Cell, width: usize) -> Self {
        assert!((1..=31).contains(&width), "operand width must be 1..=31");
        ShiftAddMultiplier {
            accumulator: AdderChain::uniform(cell, 2 * width),
            width,
        }
    }

    /// Operand width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Multiplies two operands (truncated to `width` bits) through the
    /// approximate accumulator.
    pub fn multiply(&self, a: u64, b: u64) -> u64 {
        let mask = (1u64 << self.width) - 1;
        let (a, b) = (a & mask, b & mask);
        let product_mask = (1u64 << (2 * self.width)) - 1;
        let mut acc = 0u64;
        for i in 0..self.width {
            if (b >> i) & 1 == 1 {
                acc = self
                    .accumulator
                    .add(acc, (a << i) & product_mask, false)
                    .sum_bits();
            }
        }
        acc
    }

    /// `true` if the approximate product equals `a · b` (over truncated
    /// operands).
    pub fn is_correct(&self, a: u64, b: u64) -> bool {
        let mask = (1u64 << self.width) - 1;
        self.multiply(a, b) == (a & mask) * (b & mask)
    }

    /// Monte-Carlo quality metrics over uniformly random operands.
    pub fn quality(&self, samples: u64, seed: u64) -> MultiplierQuality {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mask = (1u64 << self.width) - 1;
        let mut errors = 0u64;
        let mut rel_ed_sum = 0.0f64;
        let mut max_abs = 0u64;
        for _ in 0..samples {
            let a = rng.next_u64() & mask;
            let b = rng.next_u64() & mask;
            let approx = self.multiply(a, b);
            let exact = a * b;
            if approx != exact {
                errors += 1;
                let abs = approx.abs_diff(exact);
                max_abs = max_abs.max(abs);
                if exact != 0 {
                    rel_ed_sum += abs as f64 / exact as f64;
                }
            }
        }
        MultiplierQuality {
            samples,
            error_rate: errors as f64 / samples.max(1) as f64,
            mean_relative_error: rel_ed_sum / samples.max(1) as f64,
            max_absolute_error: max_abs,
        }
    }
}

/// Arithmetic quality of an approximate multiplier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiplierQuality {
    /// Samples drawn.
    pub samples: u64,
    /// Fraction of products that were wrong.
    pub error_rate: f64,
    /// Mean relative error distance (MRED), the standard approximate
    /// multiplier metric.
    pub mean_relative_error: f64,
    /// Worst observed absolute error.
    pub max_absolute_error: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sealpaa_cells::StandardCell;

    #[test]
    fn accurate_multiplier_is_exact_exhaustively_4bit() {
        let m = ShiftAddMultiplier::new(StandardCell::Accurate.cell(), 4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(m.multiply(a, b), a * b, "{a}*{b}");
            }
        }
    }

    #[test]
    fn zero_and_one_are_always_exact() {
        // b = 0 adds nothing; b = 1 adds a single partial product into an
        // all-zero accumulator — carries never fire, so even approximate
        // cells whose error rows need a carry or both operands stay silent…
        // except cells that corrupt the no-carry rows themselves (LPAA 2/3
        // err on (0,0,0)). Use LPAA 1 which is clean on (x,0,0) rows only
        // for x = 0: check b = 0 which performs no additions at all.
        for cell in StandardCell::APPROXIMATE {
            let m = ShiftAddMultiplier::new(cell.cell(), 6);
            for a in [0u64, 13, 63] {
                assert_eq!(m.multiply(a, 0), 0, "{cell}: {a} * 0");
            }
        }
    }

    #[test]
    fn approximate_multiplier_errs_but_stays_close() {
        let m = ShiftAddMultiplier::new(StandardCell::Lpaa6.cell(), 8);
        let q = m.quality(5_000, 3);
        assert!(
            q.error_rate > 0.0,
            "LPAA 6 accumulation should err sometimes"
        );
        assert!(
            q.mean_relative_error < 0.5,
            "MRED should be moderate, got {}",
            q.mean_relative_error
        );
    }

    #[test]
    fn better_cells_give_better_multipliers() {
        let q6 = ShiftAddMultiplier::new(StandardCell::Lpaa6.cell(), 8).quality(5_000, 9);
        let q2 = ShiftAddMultiplier::new(StandardCell::Lpaa2.cell(), 8).quality(5_000, 9);
        assert!(
            q6.error_rate < q2.error_rate,
            "LPAA 6 ({}) should beat LPAA 2 ({})",
            q6.error_rate,
            q2.error_rate
        );
    }

    #[test]
    fn operands_truncate_to_width() {
        let m = ShiftAddMultiplier::new(StandardCell::Accurate.cell(), 4);
        assert_eq!(m.multiply(0xFF, 2), 15 * 2);
    }

    #[test]
    fn is_correct_agrees_with_multiply() {
        let m = ShiftAddMultiplier::new(StandardCell::Lpaa5.cell(), 5);
        for a in 0..32u64 {
            for b in 0..32u64 {
                assert_eq!(m.is_correct(a, b), m.multiply(a, b) == a * b);
            }
        }
    }

    #[test]
    #[should_panic(expected = "1..=31")]
    fn oversized_width_panics() {
        let _ = ShiftAddMultiplier::new(StandardCell::Accurate.cell(), 32);
    }
}
