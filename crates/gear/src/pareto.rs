//! Configuration-space exploration for GeAr — the "accuracy configurable"
//! promise, quantified.
//!
//! GeAr's entire reason to exist (paper Sec. 2.2) is the trade-off knob: a
//! larger sub-adder length `L = R + P` buys accuracy with latency (the
//! carry path is `L` bits) and area (`k · L` full adders instead of `N`).
//! With the exact linear-time error analysis, the *whole* configuration
//! space of a width can be scored in microseconds and reduced to its Pareto
//! frontier.

use std::fmt;

use sealpaa_num::Prob;

use crate::analysis::{bit_cases, union_error_dp};
use crate::config::{GearConfig, GearError};

/// One scored GeAr configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GearDesign {
    /// The configuration.
    pub config: GearConfig,
    /// Exact error probability at the given input probability.
    pub error_probability: f64,
    /// Critical-path proxy: the sub-adder length `L` (the carry ripples at
    /// most `L` bits; an exact RCA would be `N`).
    pub latency_bits: usize,
    /// Area proxy: total full-adder count `k · L` (an exact RCA is `N`).
    pub full_adders: usize,
}

impl fmt::Display for GearDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} → P(err)={:.6}, latency {} bits, {} FAs",
            self.config, self.error_probability, self.latency_bits, self.full_adders
        )
    }
}

/// Enumerates every valid `GeAr(N, R, P)` for a width (all `R ≥ 1`,
/// `P ≥ 0` that tile), including the exact single-block `GeAr(N, N, 0)`.
pub fn enumerate_configs(n: usize) -> Vec<GearConfig> {
    let mut out = Vec::new();
    for r in 1..=n {
        for p in 0..n {
            if let Ok(config) = GearConfig::new(n, r, p) {
                out.push(config);
            }
        }
    }
    out
}

/// Scores every valid configuration of width `n` at constant input-bit
/// probability `p_input` and returns all designs (use [`pareto_front`] to
/// filter).
///
/// # Errors
///
/// Propagates [`GearError`] from the analysis (cannot occur for the
/// configurations this function itself enumerates; the signature allows
/// future probability validation).
pub fn score_configs<T: Prob>(n: usize, p_input: T) -> Result<Vec<GearDesign>, GearError> {
    // Constant input probability ⇒ one (propagate, generate) case table
    // serves every bit of every configuration, and the sweep reuses a
    // single pair of DP buffers instead of reallocating per config. The DP
    // transition itself is the shared `dp_step`, so each score equals
    // `error_probability` for the same configuration bit for bit.
    let cases = vec![bit_cases(&p_input, &p_input); n];
    let mut dp = Vec::new();
    let mut next = Vec::new();
    let mut out = Vec::new();
    for config in enumerate_configs(n) {
        let err = union_error_dp(&config, &cases, T::zero(), &mut dp, &mut next);
        out.push(GearDesign {
            config,
            error_probability: err.to_f64().clamp(0.0, 1.0),
            latency_bits: config.sub_adder_length(),
            full_adders: config.block_count() * config.sub_adder_length(),
        });
    }
    Ok(out)
}

/// Filters designs down to the Pareto frontier over
/// (error probability ↓, latency ↓, area ↓), sorted by ascending latency.
pub fn pareto_front(mut designs: Vec<GearDesign>) -> Vec<GearDesign> {
    let dominates = |a: &GearDesign, b: &GearDesign| {
        let no_worse = a.error_probability <= b.error_probability
            && a.latency_bits <= b.latency_bits
            && a.full_adders <= b.full_adders;
        let better = a.error_probability < b.error_probability
            || a.latency_bits < b.latency_bits
            || a.full_adders < b.full_adders;
        no_worse && better
    };
    designs.sort_by(|a, b| {
        a.latency_bits
            .cmp(&b.latency_bits)
            .then(a.error_probability.total_cmp(&b.error_probability))
    });
    let mut front: Vec<GearDesign> = Vec::new();
    for design in designs {
        if !front.iter().any(|kept| dominates(kept, &design)) {
            front.retain(|kept| !dominates(&design, kept));
            front.push(design);
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_includes_known_configs() {
        let configs = enumerate_configs(8);
        assert!(configs.contains(&GearConfig::new(8, 2, 2).expect("valid")));
        assert!(configs.contains(&GearConfig::new(8, 8, 0).expect("valid")));
        assert!(configs.contains(&GearConfig::new(8, 1, 0).expect("valid")));
        // Everything enumerated really tiles.
        for c in &configs {
            assert_eq!(
                (8 - c.sub_adder_length()) % c.result_bits(),
                0,
                "{c} does not tile"
            );
        }
    }

    #[test]
    fn scores_are_probabilities_and_exact_config_is_error_free() {
        let designs = score_configs(8, 0.5f64).expect("valid probabilities");
        assert!(!designs.is_empty());
        for d in &designs {
            assert!((0.0..=1.0).contains(&d.error_probability), "{d}");
        }
        let exact = designs
            .iter()
            .find(|d| d.config == GearConfig::new(8, 8, 0).expect("valid"))
            .expect("single-block config is enumerated");
        assert_eq!(exact.error_probability, 0.0);
        assert_eq!(exact.latency_bits, 8);
    }

    #[test]
    fn frontier_is_mutually_non_dominated_and_spans_the_tradeoff() {
        let designs = score_configs(16, 0.5f64).expect("valid probabilities");
        let total = designs.len();
        let front = pareto_front(designs);
        assert!(!front.is_empty());
        // With three objectives many configurations survive; the frontier
        // must never grow, and at 16 bits some configuration is dominated
        // (e.g. a long-latency, high-area, high-error straggler).
        assert!(front.len() <= total);
        for a in &front {
            for b in &front {
                if a != b {
                    let no_worse = a.error_probability <= b.error_probability
                        && a.latency_bits <= b.latency_bits
                        && a.full_adders <= b.full_adders;
                    let better = a.error_probability < b.error_probability
                        || a.latency_bits < b.latency_bits
                        || a.full_adders < b.full_adders;
                    assert!(!(no_worse && better), "{a} dominates {b}");
                }
            }
        }
        // The exact design (zero error) and a minimal-latency design must
        // both survive — the frontier spans the trade-off.
        assert!(front.iter().any(|d| d.error_probability == 0.0));
        let min_latency = front
            .iter()
            .map(|d| d.latency_bits)
            .min()
            .expect("non-empty");
        assert!(min_latency < 16);
    }

    #[test]
    fn longer_sub_adders_mean_less_error_along_fixed_r() {
        let designs = score_configs(16, 0.5f64).expect("valid probabilities");
        let mut r2: Vec<&GearDesign> = designs
            .iter()
            .filter(|d| d.config.result_bits() == 2)
            .collect();
        r2.sort_by_key(|d| d.config.prediction_bits());
        for pair in r2.windows(2) {
            assert!(
                pair[1].error_probability <= pair[0].error_probability + 1e-12,
                "{} then {}",
                pair[0],
                pair[1]
            );
        }
    }
}
