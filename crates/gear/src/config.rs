//! GeAr configuration arithmetic.

use std::fmt;
use std::ops::Range;

/// Errors produced when constructing a [`GearConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GearError {
    /// `R` must be at least 1 (each sub-adder must contribute result bits).
    ZeroResultBits,
    /// The total width must be at least one sub-adder length (`N ≥ R + P`).
    WidthTooSmall {
        /// Requested total width `N`.
        n: usize,
        /// Sub-adder length `L = R + P`.
        l: usize,
    },
    /// `(N − L)` must be divisible by `R` for the blocks to tile the width
    /// (paper: `k = ((N − L)/R) + 1`).
    NotTileable {
        /// Requested total width `N`.
        n: usize,
        /// Result bits per block `R`.
        r: usize,
        /// Prediction bits per block `P`.
        p: usize,
    },
    /// Probability vectors must cover exactly `N` bits.
    WidthMismatch {
        /// Expected width `N`.
        expected: usize,
        /// Provided vector length.
        actual: usize,
    },
}

impl fmt::Display for GearError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GearError::ZeroResultBits => f.write_str("R must be at least 1"),
            GearError::WidthTooSmall { n, l } => {
                write!(
                    f,
                    "total width {n} is smaller than one sub-adder of length {l}"
                )
            }
            GearError::NotTileable { n, r, p } => write!(
                f,
                "GeAr(N={n}, R={r}, P={p}) does not tile: (N - R - P) must be divisible by R"
            ),
            GearError::WidthMismatch { expected, actual } => write!(
                f,
                "probability vector covers {actual} bits but the adder is {expected} bits wide"
            ),
        }
    }
}

impl std::error::Error for GearError {}

/// A GeAr adder configuration `GeAr(N, R, P)` (paper Sec. 2.2):
///
/// * `N` — operand width,
/// * `R` — result bits contributed by each sub-adder,
/// * `P` — previous (prediction/overlap) bits each sub-adder uses to
///   estimate its carry-in,
/// * `L = R + P` — sub-adder length, `k = (N − L)/R + 1` sub-adders.
///
/// # Examples
///
/// ```
/// use sealpaa_gear::GearConfig;
///
/// let config = GearConfig::new(16, 4, 4)?;
/// assert_eq!(config.sub_adder_length(), 8);
/// assert_eq!(config.block_count(), 3);
/// assert_eq!(config.block_window(0), 0..8);
/// assert_eq!(config.block_window(2), 8..16);
/// # Ok::<(), sealpaa_gear::GearError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GearConfig {
    n: usize,
    r: usize,
    p: usize,
}

impl GearConfig {
    /// Creates a configuration, validating the paper's tiling constraints.
    ///
    /// # Errors
    ///
    /// See [`GearError`].
    pub fn new(n: usize, r: usize, p: usize) -> Result<Self, GearError> {
        if r == 0 {
            return Err(GearError::ZeroResultBits);
        }
        let l = r + p;
        if n < l {
            return Err(GearError::WidthTooSmall { n, l });
        }
        if !(n - l).is_multiple_of(r) {
            return Err(GearError::NotTileable { n, r, p });
        }
        Ok(GearConfig { n, r, p })
    }

    /// The ACA-style configuration (Verma et al., DATE 2008, the paper's
    /// ref.\ 19): every result bit is predicted from the `l − 1` bits below
    /// it, i.e. `GeAr(N, 1, l − 1)`. GeAr captures it as a special case
    /// (paper Sec. 2.2: GeAr "captures all of the prominent previously
    /// proposed LLAAs").
    ///
    /// # Errors
    ///
    /// Same conditions as [`new`](Self::new).
    pub fn aca(n: usize, l: usize) -> Result<Self, GearError> {
        if l == 0 {
            return Err(GearError::ZeroResultBits);
        }
        GearConfig::new(n, 1, l - 1)
    }

    /// The ETAII-style configuration: non-overlapping result blocks of `r`
    /// bits, each predicting its carry from the previous `r` bits, i.e.
    /// `GeAr(N, r, r)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`new`](Self::new).
    pub fn etaii(n: usize, r: usize) -> Result<Self, GearError> {
        GearConfig::new(n, r, r)
    }

    /// Operand width `N`.
    pub fn width(&self) -> usize {
        self.n
    }

    /// Result bits per sub-adder `R`.
    pub fn result_bits(&self) -> usize {
        self.r
    }

    /// Prediction/overlap bits per sub-adder `P`.
    pub fn prediction_bits(&self) -> usize {
        self.p
    }

    /// Sub-adder length `L = R + P`.
    pub fn sub_adder_length(&self) -> usize {
        self.r + self.p
    }

    /// Number of sub-adders `k = (N − L)/R + 1`.
    pub fn block_count(&self) -> usize {
        (self.n - self.sub_adder_length()) / self.r + 1
    }

    /// The bit window sub-adder `i` (0-based, LSB block first) reads:
    /// `[R·i, R·i + L)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.block_count()`.
    pub fn block_window(&self, i: usize) -> Range<usize> {
        assert!(i < self.block_count(), "block index out of range");
        let start = self.r * i;
        start..start + self.sub_adder_length()
    }

    /// The bit positions sub-adder `i` actually contributes to the output:
    /// block 0 contributes its full window, later blocks only their top `R`
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.block_count()`.
    pub fn block_result_bits(&self, i: usize) -> Range<usize> {
        let window = self.block_window(i);
        if i == 0 {
            window
        } else {
            window.start + self.p..window.end
        }
    }

    /// The configuration as a sequence of generalized block segments:
    /// `(result_start, result_width, prediction_depth)` per sub-adder, LSB
    /// block first. This is the bridge to the heterogeneous block model of
    /// `sealpaa-blocks` — sub-adder 0 becomes a depth-0 block over its full
    /// window, every later sub-adder a width-`R` block predicting its
    /// carry from the `P` bits below its result segment.
    ///
    /// The segments tile `[0, N)` exactly and each window
    /// `[start − depth, start + width)` reproduces the sub-adder's
    /// [`block_window`](Self::block_window).
    pub fn block_segments(&self) -> Vec<(usize, usize, usize)> {
        (0..self.block_count())
            .map(|i| {
                let result = self.block_result_bits(i);
                let depth = if i == 0 { 0 } else { self.p };
                (result.start, result.len(), depth)
            })
            .collect()
    }
}

impl fmt::Display for GearConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GeAr(N={}, R={}, P={})", self.n, self.r, self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_dimensions() {
        // GeAr(N=8, R=2, P=2): L = 4, k = (8-4)/2 + 1 = 3.
        let g = GearConfig::new(8, 2, 2).expect("valid");
        assert_eq!(g.sub_adder_length(), 4);
        assert_eq!(g.block_count(), 3);
        assert_eq!(g.block_window(0), 0..4);
        assert_eq!(g.block_window(1), 2..6);
        assert_eq!(g.block_window(2), 4..8);
    }

    #[test]
    fn result_bits_tile_the_width_exactly() {
        for (n, r, p) in [(8, 2, 2), (16, 4, 4), (12, 3, 0), (16, 2, 6), (9, 1, 2)] {
            let g = GearConfig::new(n, r, p).expect("valid config");
            let mut covered = vec![false; n];
            for i in 0..g.block_count() {
                for bit in g.block_result_bits(i) {
                    assert!(!covered[bit], "bit {bit} doubly assigned in {g}");
                    covered[bit] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "coverage gap in {g}");
        }
    }

    #[test]
    fn top_block_reaches_msb() {
        let g = GearConfig::new(16, 4, 4).expect("valid");
        assert_eq!(g.block_window(g.block_count() - 1).end, 16);
    }

    #[test]
    fn p_zero_is_plain_block_partition() {
        let g = GearConfig::new(12, 3, 0).expect("valid");
        assert_eq!(g.block_count(), 4);
        for i in 0..4 {
            assert_eq!(g.block_result_bits(i).len(), 3);
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        assert_eq!(GearConfig::new(8, 0, 2), Err(GearError::ZeroResultBits));
        assert!(matches!(
            GearConfig::new(3, 2, 2),
            Err(GearError::WidthTooSmall { .. })
        ));
        assert!(matches!(
            GearConfig::new(9, 2, 2),
            Err(GearError::NotTileable { .. })
        ));
    }

    #[test]
    fn full_width_single_block_is_exact_adder() {
        let g = GearConfig::new(8, 8, 0).expect("valid");
        assert_eq!(g.block_count(), 1);
        assert_eq!(g.block_result_bits(0), 0..8);
    }

    #[test]
    fn block_segments_tile_and_reproduce_windows() {
        for (n, r, p) in [(8, 2, 2), (16, 4, 4), (12, 3, 0), (16, 2, 6), (9, 1, 2)] {
            let g = GearConfig::new(n, r, p).expect("valid config");
            let segments = g.block_segments();
            assert_eq!(segments.len(), g.block_count());
            let mut next = 0;
            for (i, &(start, width, depth)) in segments.iter().enumerate() {
                assert_eq!(start, next, "segments must tile in {g}");
                assert_eq!(start - depth..start + width, g.block_window(i));
                next = start + width;
            }
            assert_eq!(next, n, "segments must cover the width in {g}");
        }
    }

    #[test]
    fn named_configurations_are_gear_special_cases() {
        let aca = GearConfig::aca(16, 4).expect("valid");
        assert_eq!((aca.result_bits(), aca.prediction_bits()), (1, 3));
        assert_eq!(aca.sub_adder_length(), 4);
        let etaii = GearConfig::etaii(16, 4).expect("valid");
        assert_eq!((etaii.result_bits(), etaii.prediction_bits()), (4, 4));
        assert!(GearConfig::aca(16, 0).is_err());
        assert!(GearConfig::etaii(15, 4).is_err()); // does not tile
    }

    #[test]
    fn display_and_errors_format() {
        let g = GearConfig::new(8, 2, 2).expect("valid");
        assert_eq!(g.to_string(), "GeAr(N=8, R=2, P=2)");
        assert!(GearConfig::new(9, 2, 2)
            .unwrap_err()
            .to_string()
            .contains("does not tile"));
    }
}
