//! Analytical error probabilities for GeAr adders.
//!
//! A sub-adder `j ≥ 1` of `GeAr(N, R, P)` errs exactly when the *true* carry
//! arriving at its window start is `1` **and** all `P` of its prediction
//! bits propagate (`a ⊕ b = 1`): a propagating run preserves the carry, so
//! the mis-predicted carry-in (0 instead of 1) survives into the block's
//! result bits and flips the sum bit there. Sub-adder 0 receives the real
//! carry-in and never errs.
//!
//! Because a propagating run *preserves* the carry value, the whole union
//! event can be tracked by a linear DP over the joint state
//! `(true carry, propagate-run-length capped at P)` — the GeAr analogue of
//! the paper's recursive method, in O(N·P) instead of the `2^k`-term
//! inclusion–exclusion expansion of Mazahir et al.

use sealpaa_num::Prob;

use crate::config::{GearConfig, GearError};

/// Per-(a,b) weights of one bit position: `(probability, propagate, generate)`.
pub(crate) fn bit_cases<T: Prob>(pa: &T, pb: &T) -> [(T, bool, bool); 4] {
    let na = pa.complement();
    let nb = pb.complement();
    [
        (na.clone() * nb.clone(), false, false), // kill
        (na * pb.clone(), true, false),          // propagate
        (pa.clone() * nb, true, false),          // propagate
        (pa.clone() * pb.clone(), false, true),  // generate
    ]
}

fn check_widths(
    config: &GearConfig,
    pa: &[impl Sized],
    pb: &[impl Sized],
) -> Result<(), GearError> {
    for len in [pa.len(), pb.len()] {
        if len != config.width() {
            return Err(GearError::WidthMismatch {
                expected: config.width(),
                actual: len,
            });
        }
    }
    Ok(())
}

/// Positions (bit indices) at which each fallible block's error condition is
/// decided: block `j ≥ 1` is checked once bits `R·j .. R·j+P−1` have been
/// consumed.
fn check_positions(config: &GearConfig) -> Vec<usize> {
    (1..config.block_count())
        .map(|j| config.result_bits() * j + config.prediction_bits())
        .collect()
}

/// Resets a DP buffer to the 2 × (p+1) all-zero state, reusing row
/// allocations where possible.
fn reset_rows<T: Prob>(buf: &mut Vec<Vec<T>>, p: usize) {
    buf.resize_with(2, Vec::new);
    for row in buf.iter_mut() {
        row.clear();
        row.resize_with(p + 1, T::zero);
    }
}

/// Advances the joint `(carry, propagate-run)` DP across one bit position:
/// clears `next`, then accumulates every case transition. All entry points
/// share this step, so they apply the exact same operation order and agree
/// bit for bit.
fn dp_step<T: Prob>(dp: &[Vec<T>], next: &mut [Vec<T>], cases: &[(T, bool, bool); 4], p: usize) {
    for row in next.iter_mut() {
        for cell in row.iter_mut() {
            *cell = T::zero();
        }
    }
    for carry in 0..2usize {
        for run in 0..=p {
            if dp[carry][run].is_zero() {
                continue;
            }
            for (weight, propagate, generate) in cases {
                let new_carry = if *propagate {
                    carry
                } else {
                    *generate as usize
                };
                let new_run = if *propagate { (run + 1).min(p) } else { 0 };
                next[new_carry][new_run] =
                    next[new_carry][new_run].clone() + dp[carry][run].clone() * weight.clone();
            }
        }
    }
}

/// The union-error DP over precomputed per-bit cases, writing into
/// caller-owned buffers so a configuration sweep reuses one pair of
/// allocations (and, at constant input probability, one case table) across
/// every configuration.
pub(crate) fn union_error_dp<T: Prob>(
    config: &GearConfig,
    cases: &[[(T, bool, bool); 4]],
    p_cin: T,
    dp: &mut Vec<Vec<T>>,
    next: &mut Vec<Vec<T>>,
) -> T {
    let p = config.prediction_bits();
    let checks = check_positions(config);
    reset_rows(dp, p);
    reset_rows(next, p);
    dp[0][0] = p_cin.complement();
    dp[1][0] = p_cin;
    for t in 0..config.width() {
        if checks.contains(&t) {
            // A block's overlap just completed: paths with carry 1 that
            // propagated through all P prediction bits are erroneous.
            dp[1][p] = T::zero();
        }
        dp_step(dp, next, &cases[t], p);
        std::mem::swap(dp, next);
    }
    let mut success = T::zero();
    for row in dp.iter() {
        for cell in row {
            success = success + cell.clone();
        }
    }
    success.complement()
}

/// Exact error probability of a GeAr adder by the linear-time DP — the
/// recursive-analysis analogue the paper advertises for LLAAs (Sec. 1.1).
///
/// `pa[i]`/`pb[i]` are `P(A_i = 1)`/`P(B_i = 1)` (LSB first) and `p_cin` is
/// the external carry-in probability; all bits are independent.
///
/// # Errors
///
/// Returns [`GearError::WidthMismatch`] if the probability slices do not
/// cover exactly `N` bits.
///
/// # Examples
///
/// ```
/// use sealpaa_gear::{GearConfig, error_probability};
///
/// // A single full-width block is an exact adder.
/// let exact = GearConfig::new(8, 8, 0)?;
/// let p = error_probability::<f64>(&exact, &[0.5; 8], &[0.5; 8], 0.5)?;
/// assert_eq!(p, 0.0);
/// # Ok::<(), sealpaa_gear::GearError>(())
/// ```
pub fn error_probability<T: Prob>(
    config: &GearConfig,
    pa: &[T],
    pb: &[T],
    p_cin: T,
) -> Result<T, GearError> {
    check_widths(config, pa, pb)?;
    let cases: Vec<_> = pa.iter().zip(pb).map(|(a, b)| bit_cases(a, b)).collect();
    let mut dp = Vec::new();
    let mut next = Vec::new();
    Ok(union_error_dp(config, &cases, p_cin, &mut dp, &mut next))
}

/// Exact error probability via the traditional inclusion–exclusion
/// expansion over block subsets (the \[12\]-style analysis the paper compares
/// against): `2^{k−1} − 1` joint terms, each solved by a carry-chain DP.
/// Returns the probability and the number of subset terms evaluated.
///
/// Must agree exactly with [`error_probability`]; kept as the baseline for
/// cross-validation and cost comparison.
///
/// # Errors
///
/// Returns [`GearError::WidthMismatch`] if the probability slices do not
/// cover exactly `N` bits.
///
/// # Panics
///
/// Panics if the configuration has more than 24 fallible blocks (the subset
/// expansion — the very cost this baseline demonstrates — becomes
/// impractical).
pub fn error_probability_inclexcl<T: Prob>(
    config: &GearConfig,
    pa: &[T],
    pb: &[T],
    p_cin: T,
) -> Result<(T, u64), GearError> {
    check_widths(config, pa, pb)?;
    let fallible = config.block_count() - 1;
    assert!(
        fallible <= 24,
        "inclusion-exclusion over >24 blocks refused"
    );
    let checks = check_positions(config);
    let p = config.prediction_bits();
    let cases: Vec<_> = pa.iter().zip(pb).map(|(a, b)| bit_cases(a, b)).collect();

    let mut positive = T::zero();
    let mut negative = T::zero();
    let mut terms = 0u64;
    let mut dp = Vec::new();
    let mut next = Vec::new();
    for subset in 1u64..1 << fallible {
        // Joint probability that *every* block in the subset errs: keep only
        // mass satisfying the error condition at each selected check point.
        reset_rows(&mut dp, p);
        reset_rows(&mut next, p);
        dp[0][0] = p_cin.complement();
        dp[1][0] = p_cin.clone();
        for t in 0..config.width() {
            if let Some(j) = checks.iter().position(|&c| c == t) {
                if (subset >> j) & 1 == 1 {
                    let keep = dp[1][p].clone();
                    reset_rows(&mut dp, p);
                    dp[1][p] = keep;
                }
            }
            dp_step(&dp, &mut next, &cases[t], p);
            std::mem::swap(&mut dp, &mut next);
        }
        let mut joint = T::zero();
        for row in &dp {
            for cell in row {
                joint = joint + cell.clone();
            }
        }
        terms += 1;
        if subset.count_ones() % 2 == 1 {
            positive = positive + joint;
        } else {
            negative = negative + joint;
        }
    }
    Ok((positive - negative, terms))
}

/// The cheap approximation that treats block errors as independent:
/// `P ≈ 1 − ∏_j (1 − P(E_j))`. Useful to quantify how much the exact
/// treatment of the shared carry chain matters.
///
/// # Errors
///
/// Returns [`GearError::WidthMismatch`] if the probability slices do not
/// cover exactly `N` bits.
pub fn error_probability_block_independent<T: Prob>(
    config: &GearConfig,
    pa: &[T],
    pb: &[T],
    p_cin: T,
) -> Result<T, GearError> {
    check_widths(config, pa, pb)?;
    let fallible = config.block_count() - 1;
    let mut no_error = T::one();
    for j in 0..fallible {
        let (single, _) = single_block_error(config, pa, pb, p_cin.clone(), j);
        no_error = no_error * single.complement();
    }
    Ok(no_error.complement())
}

/// Per-block marginal error probabilities `P(E_j)` for the fallible blocks
/// (sub-adders `1..k`, in order) — useful for deciding *where* to spend
/// correction hardware.
///
/// # Errors
///
/// Returns [`GearError::WidthMismatch`] if the probability slices do not
/// cover exactly `N` bits.
///
/// # Examples
///
/// ```
/// use sealpaa_gear::{block_error_probabilities, GearConfig};
///
/// let config = GearConfig::new(8, 2, 2)?;
/// let blocks = block_error_probabilities::<f64>(&config, &[0.5; 8], &[0.5; 8], 0.0)?;
/// assert_eq!(blocks.len(), config.block_count() - 1);
/// # Ok::<(), sealpaa_gear::GearError>(())
/// ```
pub fn block_error_probabilities<T: Prob>(
    config: &GearConfig,
    pa: &[T],
    pb: &[T],
    p_cin: T,
) -> Result<Vec<T>, GearError> {
    check_widths(config, pa, pb)?;
    Ok((0..config.block_count() - 1)
        .map(|j| single_block_error(config, pa, pb, p_cin.clone(), j).0)
        .collect())
}

/// `P(E_j)` for one fallible block (0-based among blocks 1..k).
fn single_block_error<T: Prob>(
    config: &GearConfig,
    pa: &[T],
    pb: &[T],
    p_cin: T,
    j: usize,
) -> (T, usize) {
    let p = config.prediction_bits();
    let check = check_positions(config)[j];
    let mut dp = Vec::new();
    let mut next = Vec::new();
    reset_rows(&mut dp, p);
    reset_rows(&mut next, p);
    dp[0][0] = p_cin.complement();
    dp[1][0] = p_cin;
    for t in 0..check {
        let cases = bit_cases(&pa[t], &pb[t]);
        dp_step(&dp, &mut next, &cases, p);
        std::mem::swap(&mut dp, &mut next);
    }
    (dp[1][p].clone(), check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functional::GearAdder;
    use sealpaa_num::Rational;

    fn uniform_rational(n: usize) -> Vec<Rational> {
        vec![Rational::from_ratio(1, 2); n]
    }

    #[test]
    fn single_block_config_is_error_free() {
        let config = GearConfig::new(8, 8, 0).expect("valid");
        let p = error_probability::<f64>(&config, &[0.3; 8], &[0.7; 8], 0.5).expect("widths");
        assert!(p.abs() < 1e-12, "got {p}");
    }

    #[test]
    fn matches_exhaustive_functional_count_exactly() {
        for (n, r, p) in [(8, 2, 2), (8, 4, 0), (6, 2, 2), (9, 1, 2), (8, 2, 4)] {
            let config = GearConfig::new(n, r, p).expect("valid");
            let adder = GearAdder::new(config);
            let (errors, total) = adder.exhaustive_error_count();
            let analytical = error_probability(
                &config,
                &uniform_rational(n),
                &uniform_rational(n),
                Rational::from_ratio(1, 2),
            )
            .expect("widths");
            assert_eq!(
                analytical,
                Rational::from_ratio(errors as i64, total as i64),
                "GeAr(N={n}, R={r}, P={p})"
            );
        }
    }

    #[test]
    fn linear_dp_equals_inclusion_exclusion() {
        let config = GearConfig::new(12, 2, 2).expect("valid");
        let pa: Vec<Rational> = (0..12)
            .map(|i| Rational::from_ratio(i as i64 + 1, 20))
            .collect();
        let pb: Vec<Rational> = (0..12)
            .map(|i| Rational::from_ratio(19 - i as i64, 20))
            .collect();
        let cin = Rational::from_ratio(1, 3);
        let linear = error_probability(&config, &pa, &pb, cin.clone()).expect("widths");
        let (ie, terms) = error_probability_inclexcl(&config, &pa, &pb, cin).expect("widths");
        assert_eq!(linear, ie);
        assert_eq!(terms, (1 << (config.block_count() - 1)) - 1);
    }

    #[test]
    fn independent_approximation_overestimates_here() {
        // Block errors are positively correlated through the shared carry
        // chain, so the independence approximation should not match exactly
        // (and typically overestimates the union for these configs).
        let config = GearConfig::new(12, 2, 2).expect("valid");
        let exact = error_probability::<f64>(&config, &[0.5; 12], &[0.5; 12], 0.5).expect("ok");
        let approx =
            error_probability_block_independent::<f64>(&config, &[0.5; 12], &[0.5; 12], 0.5)
                .expect("ok");
        assert!(
            (exact - approx).abs() > 1e-6,
            "exact {exact} vs approx {approx}"
        );
    }

    #[test]
    fn more_prediction_bits_reduce_error() {
        let pa = [0.5f64; 14];
        let pb = [0.5f64; 14];
        let mut last = 1.0f64;
        for p in [0usize, 2, 4, 6] {
            let config = GearConfig::new(14, 2, p).expect("valid");
            let err = error_probability(&config, &pa, &pb, 0.0).expect("widths");
            assert!(err < last, "P={p}: {err} should beat {last}");
            last = err;
        }
    }

    #[test]
    fn zero_carry_inputs_never_err() {
        // All A bits zero → no carry is ever generated → GeAr is exact.
        let config = GearConfig::new(8, 2, 2).expect("valid");
        let p = error_probability::<f64>(&config, &[0.0; 8], &[0.7; 8], 0.0).expect("widths");
        assert!(p.abs() < 1e-12, "got {p}");
    }

    #[test]
    fn width_mismatch_rejected() {
        let config = GearConfig::new(8, 2, 2).expect("valid");
        assert!(error_probability::<f64>(&config, &[0.5; 7], &[0.5; 8], 0.5).is_err());
    }
}
