//! Bit-true functional model of a GeAr adder.

use crate::config::GearConfig;

/// A concrete GeAr adder instance that can be evaluated on operands.
///
/// Each sub-adder performs an exact addition over its L-bit window with
/// carry-in 0 (the external carry-in feeds sub-adder 0 only); sub-adder `i`
/// contributes the result bits [`GearConfig::block_result_bits`] and the
/// top block's carry-out becomes the adder's carry-out — exactly the
/// parallel-sub-adder structure of paper Fig. 2.
///
/// # Examples
///
/// ```
/// use sealpaa_gear::{GearAdder, GearConfig};
///
/// let adder = GearAdder::new(GearConfig::new(8, 2, 2)?);
/// // 77 + 66 produces no long carry chains: GeAr gets it right.
/// assert_eq!(adder.add(77, 66, false), (143, false));
/// assert!(adder.matches_accurate(77, 66, false));
/// # Ok::<(), sealpaa_gear::GearError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GearAdder {
    config: GearConfig,
}

impl GearAdder {
    /// Wraps a configuration in an evaluatable adder.
    pub fn new(config: GearConfig) -> Self {
        GearAdder { config }
    }

    /// Borrows the configuration.
    pub fn config(&self) -> &GearConfig {
        &self.config
    }

    /// Evaluates the GeAr adder: returns `(sum_bits, carry_out)`.
    ///
    /// Operands are truncated to `N` bits.
    ///
    /// # Panics
    ///
    /// Panics if the configured width exceeds 63 bits (sub-adder arithmetic
    /// is done in `u64`).
    pub fn add(&self, a: u64, b: u64, carry_in: bool) -> (u64, bool) {
        let n = self.config.width();
        assert!(n < 64, "functional evaluation supports up to 63 bits");
        let mask = (1u64 << n) - 1;
        let (a, b) = (a & mask, b & mask);
        let mut sum = 0u64;
        let mut carry_out = false;
        for i in 0..self.config.block_count() {
            let window = self.config.block_window(i);
            let w_len = window.end - window.start;
            let w_mask = (1u64 << w_len) - 1;
            let wa = (a >> window.start) & w_mask;
            let wb = (b >> window.start) & w_mask;
            let cin = if i == 0 { carry_in as u64 } else { 0 };
            let block_sum = wa + wb + cin;
            for bit in self.config.block_result_bits(i) {
                if (block_sum >> (bit - window.start)) & 1 == 1 {
                    sum |= 1 << bit;
                }
            }
            if i == self.config.block_count() - 1 {
                carry_out = (block_sum >> w_len) & 1 == 1;
            }
        }
        (sum, carry_out)
    }

    /// `true` if the GeAr result for these operands equals exact binary
    /// addition (sum bits and carry-out).
    pub fn matches_accurate(&self, a: u64, b: u64, carry_in: bool) -> bool {
        let n = self.config.width();
        let mask = (1u64 << n) - 1;
        let total = (a & mask) as u128 + (b & mask) as u128 + carry_in as u128;
        let (sum, carry) = self.add(a, b, carry_in);
        sum == (total as u64) & mask && carry == (total >> n != 0)
    }

    /// Evaluates the GeAr adder with `rounds` passes of the carry-mispredict
    /// error *correction* scheme the paper points to ("the error in this
    /// LLAA model can be detected as well as corrected", its ref.\ 11).
    ///
    /// Detection per sub-adder `j ≥ 1`: the carry-out of sub-adder `j − 1`'s
    /// window (true, once lower blocks are corrected) is compared against
    /// the carry `j` predicted from its `P` overlap bits with carry-in 0; a
    /// mispredict can only be low (carry is monotone in carry-in), so the
    /// correction is `+1` into the block's result segment. Each round
    /// settles one more block, so `rounds >= block_count() - 1` reproduces
    /// exact addition — the accuracy-configurability trade-off of
    /// quality-configurable LLAAs.
    ///
    /// # Panics
    ///
    /// Panics if the configured width exceeds 63 bits.
    pub fn add_with_correction(
        &self,
        a: u64,
        b: u64,
        carry_in: bool,
        rounds: usize,
    ) -> (u64, bool) {
        let n = self.config.width();
        assert!(n < 64, "functional evaluation supports up to 63 bits");
        let mask = (1u64 << n) - 1;
        let (a, b) = (a & mask, b & mask);
        let k = self.config.block_count();
        let p = self.config.prediction_bits();
        let l = self.config.sub_adder_length();

        // Initial window sums and (round-invariant) prediction carries.
        let mut sums = Vec::with_capacity(k);
        let mut pred_carry = Vec::with_capacity(k);
        for j in 0..k {
            let window = self.config.block_window(j);
            let w_mask = (1u64 << l) - 1;
            let wa = (a >> window.start) & w_mask;
            let wb = (b >> window.start) & w_mask;
            let cin = if j == 0 { carry_in as u64 } else { 0 };
            sums.push(wa + wb + cin);
            let p_mask = (1u64 << p) - 1;
            pred_carry.push(if j == 0 || p == 0 {
                0
            } else {
                ((wa & p_mask) + (wb & p_mask)) >> p
            });
        }

        let mut corrected = vec![false; k];
        for _ in 0..rounds {
            for j in 1..k {
                if corrected[j] {
                    continue;
                }
                // True carry into block j's result region = carry-out of
                // block j-1's (corrected) window.
                let carry_from_below = (sums[j - 1] >> l) & 1;
                if carry_from_below == 1 && pred_carry[j] == 0 {
                    sums[j] += 1 << p;
                    corrected[j] = true;
                }
            }
        }

        let mut sum = 0u64;
        for j in 0..k {
            let window = self.config.block_window(j);
            for bit in self.config.block_result_bits(j) {
                if (sums[j] >> (bit - window.start)) & 1 == 1 {
                    sum |= 1 << bit;
                }
            }
        }
        let carry_out = (sums[k - 1] >> l) & 1 == 1;
        (sum, carry_out)
    }

    /// Exhaustively counts erroneous input combinations (over all
    /// `2^(2N+1)` cases) — usable for small widths to validate the
    /// analytical error probabilities.
    ///
    /// # Panics
    ///
    /// Panics if the width exceeds 12 bits (2²⁵ cases).
    pub fn exhaustive_error_count(&self) -> (u64, u64) {
        let n = self.config.width();
        assert!(n <= 12, "exhaustive GeAr sweep supports up to 12 bits");
        let mut errors = 0u64;
        let mut total = 0u64;
        for a in 0..1u64 << n {
            for b in 0..1u64 << n {
                for cin in [false, true] {
                    total += 1;
                    if !self.matches_accurate(a, b, cin) {
                        errors += 1;
                    }
                }
            }
        }
        (errors, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GearConfig;

    fn gear(n: usize, r: usize, p: usize) -> GearAdder {
        GearAdder::new(GearConfig::new(n, r, p).expect("valid config"))
    }

    #[test]
    fn single_block_is_exact() {
        let adder = gear(8, 8, 0);
        for (a, b, cin) in [(0u64, 0u64, false), (255, 255, true), (123, 45, false)] {
            assert!(adder.matches_accurate(a, b, cin), "{a}+{b}+{cin}");
        }
    }

    #[test]
    fn known_failure_long_carry_chain() {
        // 0b00001111 + 0b00000001: the carry generated at bit 0 must travel
        // to bit 4; block 1 of GeAr(8,2,2) (window 2..6) sees propagate bits
        // at 2,3 and a real carry → it errs.
        let adder = gear(8, 2, 2);
        assert!(!adder.matches_accurate(0b0000_1111, 0b0000_0001, false));
        let (sum, _) = adder.add(0b0000_1111, 0b0000_0001, false);
        assert_ne!(sum, 16);
    }

    #[test]
    fn carry_absorbed_by_generate_bit_is_fine() {
        // a=0b0011, b=0b0001 in GeAr(8,2,2): carry from bit 0 dies at bit 1
        // (generate), never reaching block 1's result bits.
        let adder = gear(8, 2, 2);
        assert!(adder.matches_accurate(0b0011, 0b0001, false));
    }

    #[test]
    fn external_carry_in_feeds_block_zero() {
        let adder = gear(8, 2, 2);
        assert!(adder.matches_accurate(0, 0, true));
        assert_eq!(adder.add(0, 0, true), (1, false));
    }

    #[test]
    fn carry_out_comes_from_top_block() {
        let adder = gear(8, 2, 2);
        let (sum, carry) = adder.add(0xFF, 0xFF, false);
        // 255 + 255 = 510: all blocks see generate-heavy inputs; exact.
        assert_eq!(sum, 510 & 0xFF);
        assert!(carry);
        assert!(adder.matches_accurate(0xFF, 0xFF, false));
    }

    #[test]
    fn p_zero_partition_errs_on_any_crossing_carry() {
        let adder = gear(4, 2, 0);
        // 0b0010 + 0b0010 = 0b0100 carries across the block boundary at bit 2.
        assert!(!adder.matches_accurate(0b0010, 0b0010, false));
    }

    #[test]
    fn zero_correction_rounds_equals_plain_add() {
        let adder = gear(8, 2, 2);
        for a in 0..256u64 {
            for b in [0u64, 1, 17, 85, 170, 255] {
                for cin in [false, true] {
                    assert_eq!(
                        adder.add_with_correction(a, b, cin, 0),
                        adder.add(a, b, cin),
                        "{a}+{b}+{cin}"
                    );
                }
            }
        }
    }

    #[test]
    fn full_correction_is_exact_exhaustively() {
        for (n, r, p) in [(8, 2, 2), (8, 2, 0), (6, 1, 1), (9, 3, 3)] {
            let adder = gear(n, r, p);
            let rounds = adder.config().block_count() - 1;
            for a in 0..1u64 << n {
                for b in 0..1u64 << n {
                    for cin in [false, true] {
                        let (sum, carry) = adder.add_with_correction(a, b, cin, rounds);
                        let total = a + b + cin as u64;
                        let mask = (1u64 << n) - 1;
                        assert_eq!(sum, total & mask, "GeAr({n},{r},{p}): {a}+{b}+{cin}");
                        assert_eq!(carry, total >> n != 0, "GeAr({n},{r},{p}): {a}+{b}+{cin}");
                    }
                }
            }
        }
    }

    #[test]
    fn correction_rounds_monotonically_reduce_errors() {
        let adder = gear(10, 1, 1); // 10 blocks: plenty of room to improve
        let mut last_errors = u64::MAX;
        for rounds in 0..adder.config().block_count() {
            let mut errors = 0u64;
            for a in 0..1u64 << 10 {
                let b = a.wrapping_mul(2654435761) & 0x3FF; // deterministic spread
                let (sum, carry) = adder.add_with_correction(a, b, false, rounds);
                let total = a + b;
                if sum != (total & 0x3FF) || carry != (total >> 10 != 0) {
                    errors += 1;
                }
            }
            assert!(
                errors <= last_errors,
                "rounds={rounds}: {errors} > {last_errors}"
            );
            last_errors = errors;
        }
        assert_eq!(last_errors, 0, "full correction must be exact");
    }

    #[test]
    fn single_correction_fixes_single_block_failures() {
        // 0b00001111 + 1 defeats GeAr(8,2,2) (carry must travel past P=2),
        // but exactly one block mispredicts, so one round fixes it.
        let adder = gear(8, 2, 2);
        assert!(!adder.matches_accurate(0b0000_1111, 1, false));
        let (sum, carry) = adder.add_with_correction(0b0000_1111, 1, false, 1);
        assert_eq!((sum, carry), (16, false));
    }

    #[test]
    fn exhaustive_count_matches_reference_loop() {
        let adder = gear(6, 2, 2);
        let (errors, total) = adder.exhaustive_error_count();
        assert_eq!(total, 1 << 13);
        assert!(errors > 0);
        // Spot-check against an independent reference loop.
        let mut expect = 0u64;
        for a in 0..64u64 {
            for b in 0..64u64 {
                for cin in [false, true] {
                    if !adder.matches_accurate(a, b, cin) {
                        expect += 1;
                    }
                }
            }
        }
        assert_eq!(errors, expect);
    }
}
