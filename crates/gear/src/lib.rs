//! The GeAr low-latency approximate adder (paper Sec. 2.2, Fig. 2) and its
//! error analyses.
//!
//! GeAr (Shafique et al., DAC 2015) splits an N-bit addition across `k`
//! overlapping L-bit sub-adders that run in parallel with no carry linkage:
//! each sub-adder contributes its top `R` result bits and uses `P = L − R`
//! lower *prediction* bits to guess its carry-in. A sub-adder errs exactly
//! when a real carry arrives at its window **and** all `P` prediction bits
//! propagate it — the event this crate analyses.
//!
//! Three ways to get the error probability, mirroring the paper's Sec. 1.1
//! claim that the proposed style of recursive analysis also covers LLAAs
//! with less overhead than the inclusion–exclusion approach of Mazahir et
//! al. (IEEE TC 2016):
//!
//! * [`error_probability`] — exact, linear-time DP over
//!   `(carry, propagate-run-length)`; the analogue of the paper's recursive
//!   method for GeAr.
//! * [`error_probability_inclexcl`] — exact, but via the traditional
//!   `2^k − 1`-term inclusion–exclusion expansion (one carry-chain DP per
//!   subset term) for cross-validation and cost comparison.
//! * [`error_probability_block_independent`] — the cheap approximation that
//!   ignores inter-block correlation, to quantify how much the exact
//!   treatment matters.
//!
//! Plus a bit-true functional model ([`GearAdder`]) for simulation-based
//! validation.
//!
//! # Examples
//!
//! ```
//! use sealpaa_gear::{GearConfig, error_probability};
//!
//! // GeAr(N=8, R=2, P=2): 3 sub-adders of length 4.
//! let config = GearConfig::new(8, 2, 2)?;
//! assert_eq!(config.block_count(), 3);
//! let p_err = error_probability::<f64>(&config, &[0.5; 8], &[0.5; 8], 0.0)?;
//! assert!(p_err > 0.0 && p_err < 1.0);
//! # Ok::<(), sealpaa_gear::GearError>(())
//! ```

#![forbid(unsafe_code)]
// DP state indices (carry value, joint-state bits, run length) are semantic
// values, not mere positions; indexed loops read clearer than iterators here.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

mod analysis;
mod config;
mod functional;
mod pareto;

pub use analysis::{
    block_error_probabilities, error_probability, error_probability_block_independent,
    error_probability_inclexcl,
};
pub use config::{GearConfig, GearError};
pub use functional::GearAdder;
pub use pareto::{enumerate_configs, pareto_front, score_configs, GearDesign};
